"""Registry of the shipped structural blocks, pre-wired for linting.

Every netlist builder the library ships is represented here with the
entry points it is designed to be driven through, the epoch geometry its
datapath clocks at (t_INV for multipliers, t_BFF for balancer adders,
t_TFF2 for PNM-fed paths — paper section 4), and the analytical JJ figure
from :mod:`repro.models` it must stay calibrated against.  The CLI's
``--all-blocks`` sweep, the ``lint`` experiment, and the regression tests
all iterate this one registry, so a new structural builder becomes lint
coverage by adding one entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.lint.api import LintConfig, lint_block, lint_circuit
from repro.lint.report import Report
from repro.models import technology as tech


@dataclass(frozen=True)
class ShippedBlock:
    """One lintable structural block."""

    name: str
    description: str
    run: Callable[[], Report]


def _lint_unipolar_multiplier() -> Report:
    from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ, build_unipolar_multiplier
    from repro.pulsesim.netlist import Circuit

    circuit = Circuit("multiplier_unipolar")
    block = build_unipolar_multiplier(circuit, "mul")
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_INV_FS),
        expected_jj=MULTIPLIER_UNIPOLAR_JJ,
    )
    return lint_block(block, config)


def _lint_bipolar_multiplier() -> Report:
    from repro.core.multiplier import MULTIPLIER_BIPOLAR_JJ, build_bipolar_multiplier
    from repro.pulsesim.netlist import Circuit

    circuit = Circuit("multiplier_bipolar")
    block = build_bipolar_multiplier(circuit, "mul")
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_INV_FS),
        expected_jj=MULTIPLIER_BIPOLAR_JJ,
    )
    return lint_block(block, config)


def _lint_balancer() -> Report:
    from repro.core.balancer import BALANCER_JJ, build_structural_balancer
    from repro.pulsesim.netlist import Circuit

    circuit = Circuit("balancer")
    block = build_structural_balancer(circuit, "bal")
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=BALANCER_JJ,
    )
    return lint_block(block, config)


def _lint_merger_adder() -> Report:
    from repro.core.adder import build_merger_tree, merger_tree_jj
    from repro.pulsesim.netlist import Circuit

    circuit = Circuit("merger_adder")
    block = build_merger_tree(circuit, "add", m_inputs=4)
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=merger_tree_jj(4),
        # The M:1 merger tree is the paper's collision-prone adder (Fig 5):
        # equal-length lanes collide by construction and the cure is the
        # staggered-offset schedule, not a netlist change.
        suppress=frozenset({"merger-collision"}),
    )
    return lint_block(block, config)


def _lint_counting_network() -> Report:
    from repro.core.counting import build_counting_network, counting_network_jj
    from repro.pulsesim.netlist import Circuit

    circuit = Circuit("counting_network")
    block = build_counting_network(circuit, "cn", m_inputs=4)
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=counting_network_jj(4),
    )
    return lint_block(block, config)


def _lint_pnm() -> Report:
    from repro.core.pnm import build_tff2_pnm, pnm_jj
    from repro.pulsesim.netlist import Circuit

    bits = 4
    circuit = Circuit("pnm")
    block = build_tff2_pnm(circuit, "pnm", bits=bits)
    config = LintConfig(
        epoch=EpochSpec(bits=bits, slot_fs=tech.T_TFF2_FS),
        expected_jj=pnm_jj(bits),
    )
    return lint_block(block, config)


def _lint_dpu() -> Report:
    from repro.core.dpu import build_dpu, dpu_compute_jj
    from repro.pulsesim.netlist import Circuit

    length = 4
    circuit = Circuit("dpu")
    block = build_dpu(circuit, "dpu", length=length)
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=dpu_compute_jj(length),
    )
    return lint_block(block, config)


def _unipolar_pe_jj() -> int:
    """Analytical figure for the *unipolar* PE netlist we actually build.

    The paper's 126-JJ anchor assumes the bipolar multiplier; the shipped
    netlist uses the 16-JJ unipolar variant, so the model figure swaps
    multipliers accordingly.
    """
    from repro.core.balancer import BALANCER_JJ
    from repro.core.buffer import INTEGRATOR_STAGE_JJ
    from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ

    return MULTIPLIER_UNIPOLAR_JJ + BALANCER_JJ + INTEGRATOR_STAGE_JJ


def _lint_pe() -> Report:
    from repro.core.pe import build_processing_element
    from repro.pulsesim.netlist import Circuit

    epoch = EpochSpec(bits=8, slot_fs=tech.T_BFF_FS)
    circuit = Circuit("processing_element")
    block = build_processing_element(circuit, "pe", epoch)
    config = LintConfig(epoch=epoch, expected_jj=_unipolar_pe_jj())
    return lint_block(block, config)


def _structural_fir_jj(taps: int, bits: int) -> int:
    """Analytical area of the structural FIR, piece by piece.

    Per-tap unipolar multipliers + the counting network + the memory-cell
    delay line with its fanout splitters + the head splitter + the
    NDRO coefficient bank (a functional model, but its JJs are real).
    """
    from repro.core.buffer import MEMORY_CELL_JJ
    from repro.core.counting import counting_network_jj
    from repro.core.membank import membank_jj
    from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ

    datapath = taps * MULTIPLIER_UNIPOLAR_JJ + counting_network_jj(taps)
    delay_line = (taps - 1) * (MEMORY_CELL_JJ + tech.JJ_SPLITTER)
    return datapath + delay_line + tech.JJ_SPLITTER + membank_jj(taps, bits)


def _lint_structural_fir() -> Report:
    from repro.core.fir_structural import StructuralUnaryFir

    epoch = EpochSpec(bits=4, slot_fs=tech.T_TFF2_FS)
    fir = StructuralUnaryFir(epoch, coefficient_words=[3, 5, 7, 9])
    entry_points = [(fir._head, "a")]
    for mult in fir.multipliers:
        entry_points.append(mult.input("a"))
        entry_points.append(mult.input("epoch"))
    observed = [fir.network.output("y"), fir.network.output("y_alt")]
    config = LintConfig(
        epoch=epoch, expected_jj=_structural_fir_jj(fir.taps, epoch.bits)
    )
    return lint_circuit(
        fir.circuit,
        entry_points=entry_points,
        observed_outputs=observed,
        config=config,
        actual_jj=fir.jj_count,
        target="structural_fir",
    )


def _lint_cgra_fabric() -> Report:
    from repro.cgra.fabric import Fabric, build_fabric_netlist
    from repro.pulsesim.netlist import Circuit

    epoch = EpochSpec(bits=6, slot_fs=tech.T_BFF_FS)
    fabric = Fabric(rows=2, cols=2, epoch=epoch)
    circuit = Circuit("cgra_fabric")
    pes = build_fabric_netlist(circuit, fabric)
    entry_points: List = []
    observed: List = []
    for pe in pes:
        entry_points.extend(pe.input(alias) for alias in pe.input_aliases)
        observed.extend(pe.output(alias) for alias in pe.output_aliases)
    config = LintConfig(epoch=epoch, expected_jj=fabric.n_pes * _unipolar_pe_jj())
    return lint_circuit(
        circuit,
        entry_points=entry_points,
        observed_outputs=observed,
        config=config,
        target=fabric.describe(),
    )


SHIPPED_BLOCKS: Dict[str, ShippedBlock] = {
    block.name: block
    for block in (
        ShippedBlock(
            "multiplier-unipolar",
            "one-NDRO unipolar multiplier (Fig 3c left)",
            _lint_unipolar_multiplier,
        ),
        ShippedBlock(
            "multiplier-bipolar",
            "two-NDRO + inverter bipolar multiplier (Fig 3c right)",
            _lint_bipolar_multiplier,
        ),
        ShippedBlock(
            "balancer",
            "BFF routing unit + DFF2 output stage (Fig 6)",
            _lint_balancer,
        ),
        ShippedBlock(
            "adder-merger",
            "4:1 merger-tree adder (Fig 5)",
            _lint_merger_adder,
        ),
        ShippedBlock(
            "counting-network",
            "4:1 balancer counting network (Fig 8)",
            _lint_counting_network,
        ),
        ShippedBlock(
            "pnm",
            "4-bit TFF2-chain pulse-number multiplier (Fig 9b)",
            _lint_pnm,
        ),
        ShippedBlock(
            "dpu",
            "length-4 unipolar dot-product unit (Fig 15)",
            _lint_dpu,
        ),
        ShippedBlock(
            "pe",
            "unipolar processing element (Fig 13a)",
            _lint_pe,
        ),
        ShippedBlock(
            "structural-fir",
            "4-tap structural unary FIR (Fig 17)",
            _lint_structural_fir,
        ),
        ShippedBlock(
            "cgra-fabric",
            "2x2 CGRA fabric of PEs (Fig 13b)",
            _lint_cgra_fabric,
        ),
    )
}


def lint_shipped_block(name: str) -> Report:
    """Lint one registry entry by name."""
    try:
        entry = SHIPPED_BLOCKS[name]
    except KeyError:
        known = ", ".join(sorted(SHIPPED_BLOCKS))
        raise ConfigurationError(
            f"unknown block {name!r}; known blocks: {known}"
        ) from None
    return entry.run()


def lint_all_blocks() -> List[Report]:
    """Lint every shipped block, in registry order."""
    return [entry.run() for entry in SHIPPED_BLOCKS.values()]
