"""Registry of the shipped structural blocks, pre-wired for analysis.

Every netlist builder the library ships is represented here with the
entry points it is designed to be driven through, the epoch geometry its
datapath clocks at (t_INV for multipliers, t_BFF for balancer adders,
t_TFF2 for PNM-fed paths — paper section 4), and the analytical JJ figure
from :mod:`repro.models` it must stay calibrated against.  The CLI's
``--all-blocks`` sweep, the ``lint`` experiment, the abstract
interpreter (:mod:`repro.analyze.blocks`), and the regression tests all
iterate this one registry, so a new structural builder becomes lint *and*
static-analysis coverage by adding one entry.

Construction and consumption are split: each entry's builder returns a
:class:`BuiltBlock` — the instantiated circuit plus the endpoints and
policy any analysis needs — and the linter (or analyzer) consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.lint.api import LintConfig, lint_circuit
from repro.lint.graph import Endpoint
from repro.lint.report import Report
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit


@dataclass
class BuiltBlock:
    """One instantiated shipped block, ready for lint or static analysis."""

    target: str
    circuit: Circuit
    entry_points: List[Endpoint]
    observed_outputs: List[Endpoint]
    config: LintConfig
    actual_jj: Optional[int] = None

    def lint(self) -> Report:
        return lint_circuit(
            self.circuit,
            entry_points=self.entry_points,
            observed_outputs=self.observed_outputs,
            config=self.config,
            actual_jj=self.actual_jj,
            target=self.target,
        )


def _from_block(block: Block, config: LintConfig) -> BuiltBlock:
    """Seed a :class:`BuiltBlock` from a Block's exposed ports.

    The block's exposed inputs become the stimulus entry points and its
    exposed outputs the observed outputs, which is exactly how the
    structural builders intend their blocks to be driven (mirrors
    :func:`repro.lint.api.lint_block`).
    """
    return BuiltBlock(
        target=f"{block.circuit.name}:{block.name}",
        circuit=block.circuit,
        entry_points=[block.input(alias) for alias in block.input_aliases],
        observed_outputs=[
            block.output(alias) for alias in block.output_aliases
        ],
        config=config,
        actual_jj=block.jj_count if block.elements else None,
    )


@dataclass(frozen=True)
class ShippedBlock:
    """One registry entry: name, description, and the netlist builder."""

    name: str
    description: str
    build: Callable[[], BuiltBlock] = field(compare=False)

    def run(self) -> Report:
        """Build and lint (the historical one-shot entry point)."""
        return self.build().lint()


def _build_unipolar_multiplier() -> BuiltBlock:
    from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ, build_unipolar_multiplier

    circuit = Circuit("multiplier_unipolar")
    block = build_unipolar_multiplier(circuit, "mul")
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_INV_FS),
        expected_jj=MULTIPLIER_UNIPOLAR_JJ,
    )
    return _from_block(block, config)


def _build_bipolar_multiplier() -> BuiltBlock:
    from repro.core.multiplier import MULTIPLIER_BIPOLAR_JJ, build_bipolar_multiplier

    circuit = Circuit("multiplier_bipolar")
    block = build_bipolar_multiplier(circuit, "mul")
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_INV_FS),
        expected_jj=MULTIPLIER_BIPOLAR_JJ,
    )
    return _from_block(block, config)


def _build_balancer() -> BuiltBlock:
    from repro.core.balancer import BALANCER_JJ, build_structural_balancer

    circuit = Circuit("balancer")
    block = build_structural_balancer(circuit, "bal")
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=BALANCER_JJ,
    )
    return _from_block(block, config)


def _build_merger_adder() -> BuiltBlock:
    from repro.core.adder import build_merger_tree, merger_tree_jj

    circuit = Circuit("merger_adder")
    block = build_merger_tree(circuit, "add", m_inputs=4)
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=merger_tree_jj(4),
        # The M:1 merger tree is the paper's collision-prone adder (Fig 5):
        # equal-length lanes collide by construction and the cure is the
        # staggered-offset schedule, not a netlist change.
        suppress=frozenset({"merger-collision"}),
    )
    return _from_block(block, config)


def _build_counting_network() -> BuiltBlock:
    from repro.core.counting import build_counting_network, counting_network_jj

    circuit = Circuit("counting_network")
    block = build_counting_network(circuit, "cn", m_inputs=4)
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=counting_network_jj(4),
    )
    return _from_block(block, config)


def _build_pnm() -> BuiltBlock:
    from repro.core.pnm import build_tff2_pnm, pnm_jj

    bits = 4
    circuit = Circuit("pnm")
    block = build_tff2_pnm(circuit, "pnm", bits=bits)
    config = LintConfig(
        epoch=EpochSpec(bits=bits, slot_fs=tech.T_TFF2_FS),
        expected_jj=pnm_jj(bits),
    )
    return _from_block(block, config)


def _build_dpu() -> BuiltBlock:
    from repro.core.dpu import build_dpu, dpu_compute_jj

    length = 4
    circuit = Circuit("dpu")
    block = build_dpu(circuit, "dpu", length=length)
    config = LintConfig(
        epoch=EpochSpec(bits=8, slot_fs=tech.T_BFF_FS),
        expected_jj=dpu_compute_jj(length),
    )
    return _from_block(block, config)


def _unipolar_pe_jj() -> int:
    """Analytical figure for the *unipolar* PE netlist we actually build.

    The paper's 126-JJ anchor assumes the bipolar multiplier; the shipped
    netlist uses the 16-JJ unipolar variant, so the model figure swaps
    multipliers accordingly.
    """
    from repro.core.balancer import BALANCER_JJ
    from repro.core.buffer import INTEGRATOR_STAGE_JJ
    from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ

    return MULTIPLIER_UNIPOLAR_JJ + BALANCER_JJ + INTEGRATOR_STAGE_JJ


def _build_pe() -> BuiltBlock:
    from repro.core.pe import build_processing_element

    epoch = EpochSpec(bits=8, slot_fs=tech.T_BFF_FS)
    circuit = Circuit("processing_element")
    block = build_processing_element(circuit, "pe", epoch)
    config = LintConfig(epoch=epoch, expected_jj=_unipolar_pe_jj())
    return _from_block(block, config)


def _structural_fir_jj(taps: int, bits: int) -> int:
    """Analytical area of the structural FIR, piece by piece.

    Per-tap unipolar multipliers + the counting network + the memory-cell
    delay line with its fanout splitters + the head splitter + the
    NDRO coefficient bank (a functional model, but its JJs are real).
    """
    from repro.core.buffer import MEMORY_CELL_JJ
    from repro.core.counting import counting_network_jj
    from repro.core.membank import membank_jj
    from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ

    datapath = taps * MULTIPLIER_UNIPOLAR_JJ + counting_network_jj(taps)
    delay_line = (taps - 1) * (MEMORY_CELL_JJ + tech.JJ_SPLITTER)
    return datapath + delay_line + tech.JJ_SPLITTER + membank_jj(taps, bits)


def _build_structural_fir() -> BuiltBlock:
    from repro.core.fir_structural import StructuralUnaryFir

    epoch = EpochSpec(bits=4, slot_fs=tech.T_TFF2_FS)
    fir = StructuralUnaryFir(epoch, coefficient_words=[3, 5, 7, 9])
    entry_points: List[Endpoint] = [(fir._head, "a")]
    for mult in fir.multipliers:
        entry_points.append(mult.input("a"))
        entry_points.append(mult.input("epoch"))
    observed = [fir.network.output("y"), fir.network.output("y_alt")]
    config = LintConfig(
        epoch=epoch, expected_jj=_structural_fir_jj(fir.taps, epoch.bits)
    )
    return BuiltBlock(
        target="structural_fir",
        circuit=fir.circuit,
        entry_points=entry_points,
        observed_outputs=observed,
        config=config,
        actual_jj=fir.jj_count,
    )


def _build_cgra_fabric() -> BuiltBlock:
    from repro.cgra.fabric import Fabric, build_fabric_netlist

    epoch = EpochSpec(bits=6, slot_fs=tech.T_BFF_FS)
    fabric = Fabric(rows=2, cols=2, epoch=epoch)
    circuit = Circuit("cgra_fabric")
    pes = build_fabric_netlist(circuit, fabric)
    entry_points: List[Endpoint] = []
    observed: List[Endpoint] = []
    for pe in pes:
        entry_points.extend(pe.input(alias) for alias in pe.input_aliases)
        observed.extend(pe.output(alias) for alias in pe.output_aliases)
    config = LintConfig(epoch=epoch, expected_jj=fabric.n_pes * _unipolar_pe_jj())
    return BuiltBlock(
        target=fabric.describe(),
        circuit=circuit,
        entry_points=entry_points,
        observed_outputs=observed,
        config=config,
    )


SHIPPED_BLOCKS: Dict[str, ShippedBlock] = {
    block.name: block
    for block in (
        ShippedBlock(
            "multiplier-unipolar",
            "one-NDRO unipolar multiplier (Fig 3c left)",
            _build_unipolar_multiplier,
        ),
        ShippedBlock(
            "multiplier-bipolar",
            "two-NDRO + inverter bipolar multiplier (Fig 3c right)",
            _build_bipolar_multiplier,
        ),
        ShippedBlock(
            "balancer",
            "BFF routing unit + DFF2 output stage (Fig 6)",
            _build_balancer,
        ),
        ShippedBlock(
            "adder-merger",
            "4:1 merger-tree adder (Fig 5)",
            _build_merger_adder,
        ),
        ShippedBlock(
            "counting-network",
            "4:1 balancer counting network (Fig 8)",
            _build_counting_network,
        ),
        ShippedBlock(
            "pnm",
            "4-bit TFF2-chain pulse-number multiplier (Fig 9b)",
            _build_pnm,
        ),
        ShippedBlock(
            "dpu",
            "length-4 unipolar dot-product unit (Fig 15)",
            _build_dpu,
        ),
        ShippedBlock(
            "pe",
            "unipolar processing element (Fig 13a)",
            _build_pe,
        ),
        ShippedBlock(
            "structural-fir",
            "4-tap structural unary FIR (Fig 17)",
            _build_structural_fir,
        ),
        ShippedBlock(
            "cgra-fabric",
            "2x2 CGRA fabric of PEs (Fig 13b)",
            _build_cgra_fabric,
        ),
    )
}


def build_shipped_block(name: str) -> BuiltBlock:
    """Instantiate one registry entry's netlist + analysis policy."""
    try:
        entry = SHIPPED_BLOCKS[name]
    except KeyError:
        known = ", ".join(sorted(SHIPPED_BLOCKS))
        raise ConfigurationError(
            f"unknown block {name!r}; known blocks: {known}"
        ) from None
    return entry.build()


def lint_shipped_block(name: str) -> Report:
    """Lint one registry entry by name."""
    return build_shipped_block(name).lint()


def lint_all_blocks() -> List[Report]:
    """Lint every shipped block, in registry order."""
    return [entry.run() for entry in SHIPPED_BLOCKS.values()]
