"""Graph view of a :class:`~repro.pulsesim.netlist.Circuit` for analysis.

The linter's rules all consume this one pre-computed view: per-port fan-in
and fan-out indexes, element-level adjacency, reachability from the
stimulus entry points, combinational strongly-connected components, and
worst-case arrival times (the static-timing substrate).

Storage-role cells (:class:`~repro.pulsesim.element.CellRole.STORAGE`)
play the role registers play in synchronous STA: they absorb pulses, so
they legally break feedback loops and terminate timing paths.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.pulsesim.element import CellRole, Element
from repro.pulsesim.netlist import Circuit, Wire

#: An (element, port) endpoint, the currency of the whole linter.
Endpoint = Tuple[Element, str]


class CircuitGraph:
    """Immutable analysis indexes over one circuit.

    Args:
        circuit: The netlist under analysis.
        entry_points: ``(element, input_port)`` pairs driven by external
            stimulus (block inputs, testbench drives).  These seed
            reachability and timing; a port that is neither wired nor an
            entry point is *floating*.
        observed_outputs: ``(element, output_port)`` pairs that are
            architecturally observed (block outputs).  Probed ports are
            always considered observed.
    """

    def __init__(
        self,
        circuit: Circuit,
        entry_points: Iterable[Endpoint] = (),
        observed_outputs: Iterable[Endpoint] = (),
    ):
        self.circuit = circuit
        self.entry_points: Set[Tuple[int, str]] = {
            (id(element), port) for element, port in entry_points
        }
        self.entry_elements: Dict[int, Element] = {
            id(element): element for element, _ in entry_points
        }
        self.observed: Set[Tuple[int, str]] = {
            (id(element), port) for element, port in observed_outputs
        }
        for element, port in circuit.probed_ports():
            self.observed.add((id(element), port))

        # Per-port indexes: snapshots of the circuit's own wire buckets
        # (same (id, port) keying), copied so later connect() calls do not
        # leak into this graph's view.
        self.out_wires: Dict[Tuple[int, str], List[Wire]] = {
            key: list(wires) for key, wires in circuit._fanout.items()
        }
        self.in_wires: Dict[Tuple[int, str], List[Wire]] = {
            key: list(wires) for key, wires in circuit._fanin.items()
        }
        # Element-level adjacency (ids, stable under mutation-free analysis).
        self.successors: Dict[int, List[Wire]] = {id(e): [] for e in circuit.elements}
        self.predecessors: Dict[int, List[Wire]] = {id(e): [] for e in circuit.elements}
        for wire in circuit.iter_wires():
            self.successors[id(wire.source)].append(wire)
            self.predecessors[id(wire.sink)].append(wire)

        self._arrivals: Optional[Dict[int, int]] = None

    # -- port-level queries -------------------------------------------------
    def fan_out(self, element: Element, port: str) -> List[Wire]:
        return self.out_wires.get((id(element), port), [])

    def fan_in(self, element: Element, port: str) -> List[Wire]:
        return self.in_wires.get((id(element), port), [])

    def is_entry(self, element: Element, port: str) -> bool:
        return (id(element), port) in self.entry_points

    def is_driven(self, element: Element, port: str) -> bool:
        """Whether an input port receives pulses (wired or external)."""
        return bool(self.fan_in(element, port)) or self.is_entry(element, port)

    def is_observed(self, element: Element, port: str) -> bool:
        return (id(element), port) in self.observed

    # -- reachability --------------------------------------------------------
    def reachable_elements(self) -> Set[int]:
        """Ids of elements reachable from any entry point (BFS over wires)."""
        frontier = deque(self.entry_elements.values())
        seen: Set[int] = {id(e) for e in frontier}
        while frontier:
            element = frontier.popleft()
            for wire in self.successors[id(element)]:
                sink_id = id(wire.sink)
                if sink_id not in seen:
                    seen.add(sink_id)
                    frontier.append(wire.sink)
        return seen

    # -- combinational loops -------------------------------------------------
    def combinational_cycles(self) -> List[List[Element]]:
        """Cycles whose every member lacks the STORAGE role.

        Uses Tarjan's SCC algorithm restricted to the subgraph of
        non-storage elements; an SCC of size > 1 (or a self-loop) is a
        pulse racetrack: every cell re-emits immediately, so one pulse
        circulates forever.
        """
        elements = [
            e for e in self.circuit.elements if not e.has_role(CellRole.STORAGE)
        ]
        member = {id(e): e for e in elements}
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = [0]
        cycles: List[List[Element]] = []

        def neighbours(eid: int) -> List[int]:
            return [
                id(w.sink) for w in self.successors[eid] if id(w.sink) in member
            ]

        def strongconnect(root: int) -> None:
            # Iterative Tarjan (netlists can be deep chains).
            work = [(root, iter(neighbours(root)))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                eid, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(neighbours(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[eid] = min(lowlink[eid], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[eid])
                if lowlink[eid] == index[eid]:
                    component: List[int] = []
                    while True:
                        node = stack.pop()
                        on_stack.discard(node)
                        component.append(node)
                        if node == eid:
                            break
                    if len(component) > 1 or any(
                        id(w.sink) == component[0]
                        for w in self.successors[component[0]]
                    ):
                        cycles.append([member[n] for n in reversed(component)])

        for element in elements:
            if id(element) not in index:
                strongconnect(id(element))
        return cycles

    # -- static timing -------------------------------------------------------
    def arrival_times(self) -> Dict[int, int]:
        """Worst-case pulse arrival time (fs) at each element's inputs.

        Longest-path analysis from the entry points: a pulse entering at
        time 0 reaches element ``e`` no later than ``arrival[e]``, where
        each hop adds the source cell's propagation delay plus the wire
        delay.  Back edges (feedback already reported by the loop rule, or
        loops broken by storage cells) are not followed, so the analysis
        terminates on any netlist.
        """
        if self._arrivals is not None:
            return self._arrivals
        arrivals: Dict[int, int] = {}
        WHITE, GRAY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {}
        elements = {id(e): e for e in self.circuit.elements}

        order: List[int] = []  # reverse-topological finish order

        for start in self.entry_elements:
            if colour.get(start, WHITE) != WHITE:
                continue
            work: List[Tuple[int, Iterable[Wire]]] = [
                (start, iter(self.successors[start]))
            ]
            colour[start] = GRAY
            while work:
                eid, it = work[-1]
                advanced = False
                for wire in it:
                    sid = id(wire.sink)
                    if colour.get(sid, WHITE) == WHITE:
                        colour[sid] = GRAY
                        work.append((sid, iter(self.successors[sid])))
                        advanced = True
                        break
                if not advanced:
                    colour[eid] = BLACK
                    order.append(eid)
                    work.pop()

        # Relax in topological order (reverse of finish order).
        for eid in self.entry_elements:
            arrivals[eid] = 0
        for eid in reversed(order):
            if eid not in arrivals:
                continue
            element = elements[eid]
            departure = arrivals[eid] + element.propagation_delay_fs
            for wire in self.successors[eid]:
                sid = id(wire.sink)
                if colour.get(sid) != BLACK:
                    continue
                candidate = departure + wire.delay
                if candidate > arrivals.get(sid, -1):
                    # Back/cross edges into GRAY nodes were skipped above;
                    # re-relaxation over the DAG is monotone and exact.
                    arrivals[sid] = candidate
        self._arrivals = arrivals
        return arrivals

    def wire_arrival(self, wire: Wire) -> Optional[int]:
        """Worst-case arrival time of pulses delivered by one wire."""
        arrivals = self.arrival_times()
        source_arrival = arrivals.get(id(wire.source))
        if source_arrival is None:
            return None
        return source_arrival + wire.source.propagation_delay_fs + wire.delay

    def output_arrival(self, element: Element, port: str) -> Optional[int]:
        """Worst-case time a pulse leaves ``element.port``."""
        arrivals = self.arrival_times()
        arrival = arrivals.get(id(element))
        if arrival is None:
            return None
        return arrival + element.propagation_delay_fs
