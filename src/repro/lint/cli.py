"""Command-line interface for the netlist linter.

Usage::

    python -m repro.lint --all-blocks            # lint every shipped block
    python -m repro.lint pnm dpu                 # lint a subset by name
    python -m repro.lint --list-blocks           # show lintable blocks
    python -m repro.lint --list-rules            # show the rule catalogue
    python -m repro.lint --all-blocks --json     # machine-readable output
    python -m repro.lint --all-blocks --fail-on warning
    usfq-lint --all-blocks                       # console-script alias

The exit code is 0 when no diagnostic reaches the ``--fail-on`` severity
(default ``error``) and 1 otherwise, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from repro.lint.blocks import SHIPPED_BLOCKS, lint_shipped_block
from repro.lint.report import Report, Severity
from repro.lint.rules import RULES, rule_catalogue


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usfq-lint",
        description=(
            "Design-rule check, static timing analysis, and JJ-budget "
            "cross-check for the shipped U-SFQ netlists."
        ),
    )
    parser.add_argument(
        "blocks",
        nargs="*",
        metavar="BLOCK",
        help="shipped block names to lint (see --list-blocks)",
    )
    parser.add_argument(
        "--all-blocks",
        action="store_true",
        help="lint every shipped structural block",
    )
    parser.add_argument(
        "--list-blocks", action="store_true", help="list lintable block names"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule catalogue"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON document instead of text"
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print info-level diagnostics in text output",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="RULE",
        help="drop a rule's diagnostics (repeatable)",
    )
    parser.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error", "never"],
        help="lowest severity that makes the exit code non-zero (default: error)",
    )
    args = parser.parse_args(argv)

    if args.list_blocks:
        for entry in SHIPPED_BLOCKS.values():
            print(f"{entry.name:20s} {entry.description}")
        return 0
    if args.list_rules:
        for info in rule_catalogue():
            print(f"{info.name:20s} [{info.category}/{info.severity}] {info.summary}")
        return 0

    names = list(SHIPPED_BLOCKS) if args.all_blocks else args.blocks
    if not names:
        parser.error("nothing to lint: pass block names or --all-blocks")

    unknown_rules = set(args.suppress) - set(RULES)
    if unknown_rules:
        parser.error(
            f"--suppress: unknown rule(s) {', '.join(sorted(unknown_rules))}; "
            "see --list-rules"
        )
    unknown_blocks = [name for name in names if name not in SHIPPED_BLOCKS]
    if unknown_blocks:
        parser.error(
            f"unknown block(s) {', '.join(unknown_blocks)}; see --list-blocks"
        )

    reports: List[Report] = []
    for name in names:
        report = lint_shipped_block(name)
        if args.suppress:
            report = _resuppress(report, frozenset(args.suppress))
        reports.append(report)

    if args.json:
        print(json.dumps([report.to_dict() for report in reports], indent=2))
    else:
        for report in reports:
            print(report.format_text(verbose=args.verbose))
            print()
        errors = sum(len(r.errors) for r in reports)
        warnings = sum(len(r.warnings) for r in reports)
        print(
            f"linted {len(reports)} block(s): "
            f"{errors} error(s), {warnings} warning(s)"
        )

    if args.fail_on == "never":
        return 0
    level = Severity.parse(args.fail_on)
    return 1 if any(report.fails_at(level) for report in reports) else 0


def _resuppress(report: Report, rules: frozenset) -> Report:
    """Apply CLI-level rule suppression on top of a finished report."""
    kept = [d for d in report.diagnostics if d.rule not in rules]
    dropped = [d for d in report.diagnostics if d.rule in rules]
    return replace(
        report, diagnostics=kept, suppressed=report.suppressed + dropped
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
