"""Diagnostic containers for the netlist linter.

A lint run produces a :class:`Report`: an ordered list of
:class:`Diagnostic` records, each attributed to a rule, a severity, and
(usually) an element/port location.  Reports render as plain text for the
CLI and as JSON-serialisable dictionaries for tooling.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Diagnostic severity; comparisons follow numeric order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            known = ", ".join(s.name.lower() for s in cls)
            raise ValueError(f"unknown severity {text!r}; known: {known}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one netlist location."""

    rule: str
    severity: Severity
    message: str
    element: Optional[str] = None
    port: Optional[str] = None

    @property
    def location(self) -> str:
        if self.element is None:
            return ""
        if self.port is None:
            return self.element
        return f"{self.element}.{self.port}"

    def render(self) -> str:
        location = f" at {self.location}" if self.element else ""
        return f"[{self.severity}] {self.rule}{location}: {self.message}"

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "element": self.element,
            "port": self.port,
        }


@dataclass
class Report:
    """The outcome of linting one circuit/block."""

    target: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Diagnostics dropped by per-rule suppression (kept for accounting).
    suppressed: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # -- queries -----------------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    @property
    def ok(self) -> bool:
        """True when the report carries no errors (warnings allowed)."""
        return not self.errors

    def worst(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def fails_at(self, level: Severity) -> bool:
        """Whether any diagnostic reaches ``level`` (CLI exit-code policy)."""
        return any(d.severity >= level for d in self.diagnostics)

    # -- rendering ---------------------------------------------------------
    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} note(s)"
        )

    def format_text(self, verbose: bool = True) -> str:
        lines = [f"== lint {self.target}: {self.summary()} =="]
        shown = (
            self.diagnostics
            if verbose
            else [d for d in self.diagnostics if d.severity > Severity.INFO]
        )
        lines.extend(f"  {d.render()}" for d in shown)
        if self.suppressed:
            rules = sorted({d.rule for d in self.suppressed})
            lines.append(
                f"  ({len(self.suppressed)} diagnostic(s) suppressed: "
                f"{', '.join(rules)})"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "target": self.target,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "suppressed": len(self.suppressed),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
