"""The lint rule catalogue: RSFQ design rules over a :class:`CircuitGraph`.

Every rule is a function ``rule(ctx) -> list[Diagnostic]`` registered in
:data:`RULES` with a category and a default severity.  Rules never mutate
the circuit; they read the pre-computed :class:`~repro.lint.graph.CircuitGraph`
on the :class:`LintContext`.

The physical rationale for each rule is catalogued in ``docs/linting.md``;
in one line each:

* SFQ pulses are single flux quanta — an output can drive exactly one
  input, and fanout/fan-in must go through explicit splitter/merger cells
  whose SQUIDs regenerate the pulse (Table 1 of the paper).
* Pass-through loops circulate a pulse forever (the simulator's
  ``max_events`` guard is the dynamic symptom; the DRC finds it statically).
* Clocked cells without a clock driver can never emit.
* Combinational paths must fit inside the computing epoch
  (``2^B`` cycles of t_INV / t_BFF / t_TFF2, paper section 4).
* Mergers lose one of two pulses arriving within their dead time (Fig 5b).
* A block's structural JJ total must track the analytical area model it
  calibrates (DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.encoding.epoch import EpochSpec
from repro.lint.graph import CircuitGraph
from repro.lint.report import Diagnostic, Severity
from repro.pulsesim.element import CellRole
from repro.pulsesim.netlist import Circuit


@dataclass
class LintContext:
    """Everything a rule may consult."""

    circuit: Circuit
    graph: CircuitGraph
    epoch: Optional[EpochSpec] = None
    expected_jj: Optional[int] = None
    jj_tolerance: float = 0.15
    #: JJ total to compare against ``expected_jj``; defaults to the
    #: circuit's own count but blocks may scope it to their cells.
    actual_jj: Optional[int] = None


@dataclass(frozen=True)
class RuleInfo:
    """Registry metadata for one rule."""

    name: str
    category: str  # "drc" | "timing" | "budget"
    severity: Severity
    summary: str
    check: Callable[[LintContext], List[Diagnostic]] = field(compare=False)


RULES: Dict[str, RuleInfo] = {}


def rule(name: str, category: str, severity: Severity, summary: str):
    """Decorator registering a rule in :data:`RULES`."""

    def register(check: Callable[[LintContext], List[Diagnostic]]):
        RULES[name] = RuleInfo(name, category, severity, summary, check)
        return check

    return register


def _diag(info_name: str, message: str, element=None, port=None,
          severity: Optional[Severity] = None) -> Diagnostic:
    info = RULES[info_name]
    return Diagnostic(
        rule=info.name,
        severity=severity or info.severity,
        message=message,
        element=element.name if element is not None else None,
        port=port,
    )


# -- design-rule checks --------------------------------------------------------
@rule(
    "implicit-fanout",
    "drc",
    Severity.ERROR,
    "An output port drives more than one sink without a splitter cell.",
)
def check_implicit_fanout(ctx: LintContext) -> List[Diagnostic]:
    diagnostics = []
    for element in ctx.circuit.elements:
        for port in element.output_names:
            wires = ctx.graph.fan_out(element, port)
            if len(wires) > 1:
                sinks = ", ".join(
                    f"{w.sink.name}.{w.sink_port}" for w in wires
                )
                diagnostics.append(
                    _diag(
                        "implicit-fanout",
                        f"drives {len(wires)} sinks ({sinks}); an SFQ pulse "
                        "is one flux quantum — insert an explicit splitter",
                        element,
                        port,
                    )
                )
    return diagnostics


@rule(
    "unmerged-fanin",
    "drc",
    Severity.ERROR,
    "Several wires land on one input port of a non-merger cell.",
)
def check_unmerged_fanin(ctx: LintContext) -> List[Diagnostic]:
    diagnostics = []
    for element in ctx.circuit.elements:
        is_merger = element.has_role(CellRole.MERGER)
        for port in element.input_names:
            wires = ctx.graph.fan_in(element, port)
            if len(wires) <= 1:
                continue
            sources = ", ".join(
                f"{w.source.name}.{w.source_port}" for w in wires
            )
            if is_merger:
                diagnostics.append(
                    _diag(
                        "unmerged-fanin",
                        f"{len(wires)} wires ({sources}) share a merger input; "
                        "confluence inside the cell hides per-input collisions",
                        element,
                        port,
                        severity=Severity.INFO,
                    )
                )
            else:
                diagnostics.append(
                    _diag(
                        "unmerged-fanin",
                        f"{len(wires)} wires ({sources}) drive one input; "
                        "wired-OR does not exist in RSFQ — insert a merger",
                        element,
                        port,
                    )
                )
    return diagnostics


@rule(
    "floating-input",
    "drc",
    Severity.WARNING,
    "An input port is neither wired nor declared an external entry point.",
)
def check_floating_input(ctx: LintContext) -> List[Diagnostic]:
    diagnostics = []
    for element in ctx.circuit.elements:
        for port in element.input_names:
            if not ctx.graph.is_driven(element, port):
                diagnostics.append(
                    _diag(
                        "floating-input",
                        "never receives a pulse; dead port or missing wire",
                        element,
                        port,
                    )
                )
    return diagnostics


@rule(
    "dead-element",
    "drc",
    Severity.WARNING,
    "A cell is unreachable from every stimulus entry point.",
)
def check_dead_element(ctx: LintContext) -> List[Diagnostic]:
    if not ctx.graph.entry_elements:
        return [
            Diagnostic(
                rule="dead-element",
                severity=Severity.WARNING,
                message=(
                    "no entry points declared; reachability analysis is "
                    "vacuous (pass entry_points= or lint via a Block)"
                ),
            )
        ]
    reachable = ctx.graph.reachable_elements()
    return [
        _diag(
            "dead-element",
            "no pulse can ever reach this cell from the declared stimuli",
            element,
        )
        for element in ctx.circuit.elements
        if id(element) not in reachable
    ]


@rule(
    "dangling-output",
    "drc",
    Severity.WARNING,
    "An output port has no sink, no probe, and is not a block output.",
)
def check_dangling_output(ctx: LintContext) -> List[Diagnostic]:
    diagnostics = []
    for element in ctx.circuit.elements:
        for port in element.output_names:
            if ctx.graph.fan_out(element, port):
                continue
            if ctx.graph.is_observed(element, port):
                continue
            if element.has_role(CellRole.BUFFER):
                diagnostics.append(
                    _diag(
                        "dangling-output",
                        "unconnected, but the cell is a buffer — treated as "
                        "an intentional termination",
                        element,
                        port,
                        severity=Severity.INFO,
                    )
                )
            else:
                diagnostics.append(
                    _diag(
                        "dangling-output",
                        "pulses emitted here vanish unobserved; probe the "
                        "port, expose it, or terminate it with a JTL",
                        element,
                        port,
                    )
                )
    return diagnostics


@rule(
    "combinational-loop",
    "drc",
    Severity.ERROR,
    "A feedback loop contains no storage cell to absorb the pulse.",
)
def check_combinational_loop(ctx: LintContext) -> List[Diagnostic]:
    diagnostics = []
    for cycle in ctx.graph.combinational_cycles():
        names = " -> ".join(element.name for element in cycle)
        diagnostics.append(
            _diag(
                "combinational-loop",
                f"pass-through cycle [{names}] circulates a pulse forever; "
                "break it with a storage cell (DFF/NDRO/TFF)",
                cycle[0],
            )
        )
    return diagnostics


@rule(
    "no-clock-driver",
    "drc",
    Severity.ERROR,
    "A clocked cell has no driven clock/readout port.",
)
def check_no_clock_driver(ctx: LintContext) -> List[Diagnostic]:
    diagnostics = []
    for element in ctx.circuit.elements:
        if not element.has_role(CellRole.CLOCKED):
            continue
        clock_ports = type(element).CLOCK_PORTS
        if not clock_ports:
            continue
        if any(ctx.graph.is_driven(element, port) for port in clock_ports):
            continue
        ports = "/".join(clock_ports)
        diagnostics.append(
            _diag(
                "no-clock-driver",
                f"clock port(s) {ports} undriven; the cell can never emit",
                element,
                clock_ports[0],
            )
        )
    return diagnostics


# -- static timing analysis ----------------------------------------------------
# The rule bodies live in repro.analyze.timing so the linter and the
# abstract interpreter share one worst-case timing engine; the thin
# wrappers here keep the rules registered (and their severities
# registry-controlled) without duplicating the path analysis.
@rule(
    "epoch-overflow",
    "timing",
    Severity.ERROR,
    "A worst-case path is longer than the computing epoch.",
)
def check_epoch_overflow(ctx: LintContext) -> List[Diagnostic]:
    if ctx.epoch is None:
        return []
    from repro.analyze.timing import epoch_overflow_diagnostics

    return epoch_overflow_diagnostics(
        ctx.circuit, ctx.graph, ctx.epoch,
        severity=RULES["epoch-overflow"].severity,
    )


@rule(
    "merger-collision",
    "timing",
    Severity.WARNING,
    "Two merger inputs can arrive within the cell's dead time.",
)
def check_merger_collision(ctx: LintContext) -> List[Diagnostic]:
    from repro.analyze.timing import merger_collision_diagnostics

    return merger_collision_diagnostics(
        ctx.circuit, ctx.graph,
        severity=RULES["merger-collision"].severity,
    )


# -- area budget ---------------------------------------------------------------
@rule(
    "jj-budget",
    "budget",
    Severity.WARNING,
    "The structural JJ count diverges from the analytical area model.",
)
def check_jj_budget(ctx: LintContext) -> List[Diagnostic]:
    if ctx.expected_jj is None:
        return []
    actual = ctx.actual_jj if ctx.actual_jj is not None else ctx.circuit.jj_count
    expected = ctx.expected_jj
    if expected <= 0:
        raise ValueError(f"expected_jj must be positive, got {expected}")
    divergence = abs(actual - expected) / expected
    if actual == expected:
        message = f"structural count {actual} JJ matches the area model"
        severity = Severity.INFO
    elif divergence <= ctx.jj_tolerance:
        message = (
            f"structural count {actual} JJ vs analytical {expected} JJ "
            f"({divergence:.1%} divergence, within {ctx.jj_tolerance:.0%} "
            "calibration tolerance)"
        )
        severity = Severity.INFO
    else:
        message = (
            f"structural count {actual} JJ diverges from analytical "
            f"{expected} JJ by {divergence:.1%} (> {ctx.jj_tolerance:.0%}); "
            "re-calibrate repro.models.area or fix the netlist"
        )
        severity = Severity.WARNING
    return [
        Diagnostic(
            rule="jj-budget",
            severity=severity,
            message=message,
        )
    ]


@rule(
    "noc-link-lookahead",
    "timing",
    Severity.ERROR,
    "A NoC link cell must carry a positive minimum latency and a usable FIFO.",
)
def check_noc_link_lookahead(ctx: LintContext) -> List[Diagnostic]:
    """NOC-role cells carry the conservative-sync lookahead.

    The partitioned parallel engine (:mod:`repro.shard`) advances shards
    in time windows bounded by the minimum latency of the slowest-proof
    cut link; a NOC cell with zero latency would collapse the window to
    nothing and deadlock the protocol, and a zero-depth FIFO drops every
    flit.  :class:`~repro.cells.noc.NocLink` enforces both at
    construction; this rule keeps the invariant for custom NOC cells.
    """
    diagnostics = []
    for element in ctx.circuit.elements:
        if not element.has_role(CellRole.NOC):
            continue
        if element.propagation_delay_fs < 1:
            diagnostics.append(
                _diag(
                    "noc-link-lookahead",
                    f"minimum latency {element.propagation_delay_fs} fs is "
                    "not positive; the conservative-sync lookahead would be "
                    "zero and the partitioned engine could never advance",
                    element,
                )
            )
        fifo_depth = getattr(element, "fifo_depth", None)
        if fifo_depth is not None and fifo_depth < 1:
            diagnostics.append(
                _diag(
                    "noc-link-lookahead",
                    f"link FIFO depth {fifo_depth} buffers nothing; every "
                    "flit would be dropped",
                    element,
                )
            )
    return diagnostics


def rule_catalogue() -> List[RuleInfo]:
    """All registered rules, DRC first, then timing, then budget."""
    order = {"drc": 0, "timing": 1, "budget": 2}
    return sorted(RULES.values(), key=lambda info: (order[info.category], info.name))
