"""Public linting entry points: configuration, circuits, and blocks.

Typical usage::

    from repro.lint import LintConfig, lint_block
    from repro.core.multiplier import build_unipolar_multiplier
    from repro.pulsesim import Circuit

    circuit = Circuit("mul")
    block = build_unipolar_multiplier(circuit, "mul")
    report = lint_block(block)
    assert report.ok, report.format_text()
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, Optional

from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.lint.graph import CircuitGraph, Endpoint
from repro.lint.report import Report
from repro.lint.rules import RULES, LintContext, rule_catalogue
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit


@dataclass(frozen=True)
class LintConfig:
    """Options steering one lint run.

    Attributes:
        suppress: Rule names whose diagnostics are dropped (they are still
            counted in :attr:`Report.suppressed`).
        epoch: Epoch geometry for static timing; ``None`` skips the
            ``epoch-overflow`` rule.
        expected_jj: Analytical JJ figure for the ``jj-budget`` cross-check;
            ``None`` skips it.
        jj_tolerance: Relative divergence accepted as calibration noise.
    """

    suppress: FrozenSet[str] = frozenset()
    epoch: Optional[EpochSpec] = None
    expected_jj: Optional[int] = None
    jj_tolerance: float = 0.15

    def __post_init__(self):
        unknown = set(self.suppress) - set(RULES)
        if unknown:
            known = ", ".join(sorted(RULES))
            raise ConfigurationError(
                f"cannot suppress unknown rule(s) {sorted(unknown)}; known: {known}"
            )
        if not 0 <= self.jj_tolerance < 1:
            raise ConfigurationError(
                f"jj_tolerance must be in [0, 1), got {self.jj_tolerance}"
            )

    def suppressing(self, *rules: str) -> "LintConfig":
        """A copy with additional rules suppressed."""
        return replace(self, suppress=self.suppress | frozenset(rules))


def lint_circuit(
    circuit: Circuit,
    entry_points: Iterable[Endpoint] = (),
    observed_outputs: Iterable[Endpoint] = (),
    config: Optional[LintConfig] = None,
    actual_jj: Optional[int] = None,
    target: Optional[str] = None,
) -> Report:
    """Run every registered rule over one circuit and return the report.

    Args:
        circuit: The netlist to analyse.
        entry_points: ``(element, input_port)`` pairs driven externally.
        observed_outputs: ``(element, output_port)`` pairs read externally
            (probed ports are always treated as observed).
        config: Rule options; defaults to :class:`LintConfig`'s defaults.
        actual_jj: Override the JJ total for the budget cross-check (e.g.
            to include functional-model memory outside the netlist).
        target: Report label; defaults to the circuit name.
    """
    config = config or LintConfig()
    graph = CircuitGraph(circuit, entry_points, observed_outputs)
    ctx = LintContext(
        circuit=circuit,
        graph=graph,
        epoch=config.epoch,
        expected_jj=config.expected_jj,
        jj_tolerance=config.jj_tolerance,
        actual_jj=actual_jj,
    )
    report = Report(target=target or circuit.name)
    for info in rule_catalogue():
        diagnostics = info.check(ctx)
        if info.name in config.suppress:
            report.suppressed.extend(diagnostics)
        else:
            report.extend(diagnostics)
    return report


def lint_block(
    block: Block,
    config: Optional[LintConfig] = None,
    extra_entry_points: Iterable[Endpoint] = (),
    extra_observed: Iterable[Endpoint] = (),
) -> Report:
    """Lint the circuit owning ``block``, seeded from its exposed ports.

    The block's exposed inputs become the stimulus entry points and its
    exposed outputs the observed outputs, which is exactly how the
    structural builders intend their blocks to be driven.
    """
    entry_points = [block.input(alias) for alias in block.input_aliases]
    entry_points.extend(extra_entry_points)
    observed = [block.output(alias) for alias in block.output_aliases]
    observed.extend(extra_observed)
    return lint_circuit(
        block.circuit,
        entry_points=entry_points,
        observed_outputs=observed,
        config=config,
        actual_jj=block.jj_count if block.elements else None,
        target=f"{block.circuit.name}:{block.name}",
    )
