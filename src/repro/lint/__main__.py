"""``python -m repro.lint`` — the netlist linter CLI."""

import sys

from repro.lint.cli import main

sys.exit(main())
