"""Static analysis for RSFQ netlists: DRC, timing, and JJ budgets.

The simulator in :mod:`repro.pulsesim` deliberately tolerates physically
illegal constructions (implicit fanout, wired-OR fan-in, pass-through
loops) so tests can build minimal scaffolding.  This package is the
production gate: a rule-based analyzer that enforces the paper's
structural discipline over any :class:`~repro.pulsesim.netlist.Circuit`.

Three rule categories:

* **DRC** — implicit fanout, un-merged fan-in, floating inputs, dead
  elements, dangling outputs, storage-free combinational loops, and
  undriven clock ports;
* **timing** — worst-case arrival-time analysis against the computing
  epoch (``2^B`` cycles of t_INV / t_BFF / t_TFF2) and merger
  collision-window hazards;
* **budget** — the structural JJ count cross-checked against the
  analytical :mod:`repro.models.area` figures.

Quickstart::

    from repro.lint import lint_block
    report = lint_block(block)          # entry points = exposed ports
    assert report.ok, report.format_text()

CLI: ``python -m repro.lint --all-blocks`` or the ``usfq-lint`` script.
"""

from repro.lint.api import LintConfig, lint_block, lint_circuit
from repro.lint.blocks import SHIPPED_BLOCKS, lint_all_blocks, lint_shipped_block
from repro.lint.graph import CircuitGraph
from repro.lint.report import Diagnostic, Report, Severity
from repro.lint.rules import RULES, rule_catalogue

__all__ = [
    "CircuitGraph",
    "Diagnostic",
    "LintConfig",
    "RULES",
    "Report",
    "SHIPPED_BLOCKS",
    "Severity",
    "lint_all_blocks",
    "lint_block",
    "lint_circuit",
    "lint_shipped_block",
    "rule_catalogue",
]
