"""Table 2: state-of-the-art RSFQ multipliers and adders, plus our fits."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.models import baselines


def run() -> ExperimentResult:
    result = ExperimentResult(
        "table2",
        "Published binary RSFQ adders/multipliers and the derived fits",
        ["ref", "kind", "bits", "JJs", "latency (ps)", "arch", "technology"],
    )
    for entry in baselines.TABLE2:
        result.add_row(
            entry.ref, entry.kind, entry.bits, entry.jj_count,
            entry.latency_ps, entry.arch, entry.technology,
        )

    result.notes.append(
        f"multiplier area fit (WP+SA): {baselines.MULTIPLIER_AREA_FIT.slope:.0f} "
        f"JJ/bit + {baselines.MULTIPLIER_AREA_FIT.intercept:.0f}"
    )
    result.notes.append(
        f"adder area fit (all): {baselines.ADDER_AREA_FIT.slope:.0f} "
        f"JJ/bit + {baselines.ADDER_AREA_FIT.intercept:.0f}"
    )
    result.notes.append(
        f"multiplier latency fit: {baselines.MULTIPLIER_LATENCY_FIT.slope:.0f} "
        f"ps/bit + {baselines.MULTIPLIER_LATENCY_FIT.intercept:.0f}; adder "
        f"latency fit: {baselines.ADDER_LATENCY_FIT.slope:.1f} ps/bit + "
        f"{baselines.ADDER_LATENCY_FIT.intercept:.0f}"
    )
    result.add_claim(
        "dataset size", "10 designs", str(len(baselines.TABLE2)),
        len(baselines.TABLE2) == 10,
    )
    checks = {
        "nagaoka2019": (8, 17000, 333),
        "dorojevets2009-16": (16, 16683, 255),
    }
    for ref, (bits, jj, lat) in checks.items():
        entry = next(e for e in baselines.TABLE2 if e.ref == ref)
        result.add_claim(
            f"{ref} transcribed correctly",
            f"{bits} bits, {jj} JJs, {lat} ps",
            f"{entry.bits} bits, {entry.jj_count} JJs, {entry.latency_ps:.0f} ps",
            (entry.bits, entry.jj_count, entry.latency_ps) == (bits, jj, lat),
        )
    return result
