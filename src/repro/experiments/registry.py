"""Registry mapping experiment ids to their run() callables.

Experiments whose work decomposes into independent, picklable sweep
points additionally appear in :data:`SWEEPS`, mapping the id to a module
that provides ``sweep_points() -> list``, ``run_point(point) -> dict``
and ``assemble(partials) -> ExperimentResult`` with
``run() == assemble([run_point(p) for p in sweep_points()])``.  The
experiment runner (:mod:`repro.runner`) uses this to fan one experiment
out across worker processes.
"""

from __future__ import annotations

from types import ModuleType
from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.experiments import (
    fig02_primitives,
    fig03_encoding,
    fig04_multiplier,
    fig05_merger,
    fig07_balancer,
    fig08_adder,
    fig09_pnm,
    fig11_buffer,
    fig12_shiftreg,
    fig14_pe,
    fig16_dpu,
    fig18_fir,
    fig19_accuracy,
    fig20_regions,
    fig21_power,
    lint_blocks,
    shard_noc,
    table1,
    table2,
    table3,
    validation,
)
from repro.experiments.report import ExperimentResult

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig02": fig02_primitives.run,
    "fig03": fig03_encoding.run,
    "fig04": fig04_multiplier.run,
    "fig05": fig05_merger.run,
    "fig07": fig07_balancer.run,
    "fig08": fig08_adder.run,
    "fig09": fig09_pnm.run,
    "fig11": fig11_buffer.run,
    "fig12": fig12_shiftreg.run,
    "fig14": fig14_pe.run,
    "fig16": fig16_dpu.run,
    "fig18": fig18_fir.run,
    "fig19": fig19_accuracy.run,
    "fig20": fig20_regions.run,
    "fig21": fig21_power.run,
    "lint": lint_blocks.run,
    "shard": shard_noc.run,
    "validation": validation.run,
}

#: Experiments that expose their sweep as picklable per-point work units.
SWEEPS: Dict[str, ModuleType] = {
    "fig14": fig14_pe,
    "fig16": fig16_dpu,
    "fig18": fig18_fir,
    "fig19": fig19_accuracy,
}

#: Opt-in variants of registry experiments.  They resolve and run like any
#: experiment but are *not* in :data:`EXPERIMENTS`, so the default suite
#: (and its byte-stable stdout) never includes them; a CLI flag swaps the
#: id in (e.g. ``usfq-experiments table3 --measured-activity``).
VARIANTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table3-measured": table3.run_measured,
}


def resolve_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    """Look up an experiment's run() callable, or raise ConfigurationError."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        pass
    try:
        return VARIANTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (e.g. ``fig18``)."""
    return resolve_experiment(experiment_id)()


def run_all() -> List[ExperimentResult]:
    """Run every experiment in registry order."""
    return [runner() for runner in EXPERIMENTS.values()]
