"""Fig 7: balancer waveforms.

Drives the structural balancer (BFF routing unit + DFF2 output stage) with
the figure's stimulus — a lone pulse on B, alternating pulses, and a
simultaneous A+B pair — and reports the output event timeline plus rendered
traces.  Checks the three contract points: outputs alternate, the
simultaneous pair produces one pulse on each output, and each output ends
up with half of the total pulses.
"""

from __future__ import annotations

from repro.analog.waveform import pulses_to_trace
from repro.core.balancer import build_structural_balancer
from repro.experiments.report import ExperimentResult
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator
from repro.units import ps, to_ps


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig07",
        "Balancer waveforms (structural BFF + DFF2 netlist)",
        ["event", "time (ps)", "port"],
    )

    circuit = Circuit("fig07")
    balancer = build_structural_balancer(circuit, "bal")
    probe_y1 = balancer.probe_output("y1")
    probe_y2 = balancer.probe_output("y2")

    # Stimulus mirroring Fig 7: B first, then A, then a simultaneous pair,
    # then a final B — all spaced beyond t_BFF except the pair.
    a_times = [ps(200), ps(400), ps(700)]
    b_times = [ps(50), ps(400), ps(1000)]
    sim = Simulator(circuit)
    for t in a_times:
        balancer.drive(sim, "a", t)
        result.add_row("input A", to_ps(t), "a")
    for t in b_times:
        balancer.drive(sim, "b", t)
        result.add_row("input B", to_ps(t), "b")
    sim.run()

    for t in sorted(probe_y1.times):
        result.add_row("output", to_ps(t), "y1")
    for t in sorted(probe_y2.times):
        result.add_row("output", to_ps(t), "y2")

    total_in = len(a_times) + len(b_times)
    result.add_claim(
        "first pulse (B) exits through Y1",
        "Y1",
        "Y1" if probe_y1.times and min(probe_y1.times) < min(probe_y2.times) else "Y2",
        bool(probe_y1.times) and min(probe_y1.times) < min(probe_y2.times),
    )
    result.add_claim(
        "each output carries (N_A + N_B) / 2 pulses",
        f"{total_in // 2} + {total_in // 2}",
        f"{probe_y1.count()} + {probe_y2.count()}",
        probe_y1.count() == total_in // 2 and probe_y2.count() == total_in // 2,
    )
    pair_y1 = [t for t in probe_y1.times if ps(400) <= t <= ps(450)]
    pair_y2 = [t for t in probe_y2.times if ps(400) <= t <= ps(450)]
    result.add_claim(
        "simultaneous pair -> one pulse per output",
        "1 on Y1, 1 on Y2",
        f"{len(pair_y1)} on Y1, {len(pair_y2)} on Y2",
        len(pair_y1) == 1 and len(pair_y2) == 1,
    )

    y1_trace = pulses_to_trace("Y1", probe_y1.times, 0, ps(1200))
    y2_trace = pulses_to_trace("Y2", probe_y2.times, 0, ps(1200))
    result.notes.append(f"Y1 |{y1_trace.ascii_sparkline()}|")
    result.notes.append(f"Y2 |{y2_trace.ascii_sparkline()}|")
    return result
