"""Fig 16: dot-product-unit area.

Unary DPU area is bit-independent and linear in the vector length L
(L multipliers + an (L-1)-balancer counting network); the binary DPU is a
single fitted MAC whose area grows with bits.  Headline claims: unary wins
for L < 64 at any resolution; at L = 128 the two are comparable (unary
wins at high resolution); beyond 256 the binary MAC wins.

The per-``L`` sweep is exposed as picklable work units
(:func:`sweep_points` / :func:`run_point` / :func:`assemble`) so the
experiment runner can fan the sweep out across worker processes.
"""

from __future__ import annotations

from typing import List

from repro.experiments.report import ExperimentResult
from repro.models import area

LENGTHS = (16, 32, 64, 128, 256)
BITS_SWEEP = (6, 8, 10, 12, 14, 16)


def sweep_points() -> List[int]:
    """One work unit per vector length."""
    return list(LENGTHS)


def run_point(length: int) -> dict:
    """Evaluate one vector length against every resolution."""
    unary = area.dpu_unary_jj(length)
    saves = [
        "yes" if unary < area.dpu_binary_jj(bits) else "no"
        for bits in BITS_SWEEP
    ]
    return {"length": length, "row": (f"unary L={length}", unary, *saves)}


def assemble(partials: List[dict]) -> ExperimentResult:
    """Combine per-``L`` partials (in sweep order) into the figure."""
    result = ExperimentResult(
        "fig16",
        "DPU area: unary (per L) vs binary (per bits)",
        ["config", "JJs"] + [f"saves @{b}b" for b in BITS_SWEEP],
    )
    for partial in partials:
        result.add_row(*partial["row"])
    result.add_row(
        "binary MAC", "-",
        *[round(area.dpu_binary_jj(bits)) for bits in BITS_SWEEP],
    )

    always_64 = all(
        area.dpu_unary_jj(64) < area.dpu_binary_jj(bits) for bits in BITS_SWEEP
    )
    result.add_claim(
        "unary saves area for L <= 64 at any resolution",
        "yes", "yes" if always_64 else "no", always_64,
    )
    crossover_128 = next(
        (b for b in BITS_SWEEP if area.dpu_unary_jj(128) < area.dpu_binary_jj(b)),
        None,
    )
    result.add_claim(
        "L = 128 comparable; unary wins at high resolution",
        "> 12 bits",
        f"> {crossover_128 - 2 if crossover_128 else '-'} bits",
        crossover_128 is not None and crossover_128 >= 8,
    )
    never_256 = all(
        area.dpu_unary_jj(256) > area.dpu_binary_jj(bits) for bits in BITS_SWEEP
    )
    result.add_claim(
        "beyond 256 taps the binary MAC is smaller",
        "yes", "yes" if never_256 else "no", never_256,
    )
    result.notes.append(
        "unary DPU JJs = 46 L + 56 (L - 1): bit-independent (the Fig 16 flat lines)"
    )
    return result


def run() -> ExperimentResult:
    return assemble([run_point(point) for point in sweep_points()])
