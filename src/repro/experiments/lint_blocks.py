"""Lint sweep over every shipped structural block (the `repro.lint` gate).

Not a paper figure: this experiment runs the design-rule checker, the
static timing analysis, and the JJ-budget cross-check over each netlist
the library ships, and claims that all of them are free of structural
errors and stay calibrated against the analytical area models.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.lint.blocks import SHIPPED_BLOCKS
from repro.lint.report import Severity


def run() -> ExperimentResult:
    result = ExperimentResult(
        "lint",
        "Design-rule + timing + JJ-budget lint of the shipped netlists",
        ["block", "errors", "warnings", "notes", "status"],
    )
    total_errors = 0
    budget_mismatches = 0
    for entry in SHIPPED_BLOCKS.values():
        report = entry.run()
        errors = len(report.errors)
        total_errors += errors
        for diagnostic in report.by_rule("jj-budget"):
            if diagnostic.severity > Severity.INFO:
                budget_mismatches += 1
        result.add_row(
            entry.name,
            errors,
            len(report.warnings),
            len(report.infos),
            "clean" if report.ok else "FAIL",
        )
    result.add_claim(
        "every shipped structural block passes the RSFQ design-rule check",
        paper="0 errors",
        measured=f"{total_errors} errors",
        holds=total_errors == 0,
    )
    result.add_claim(
        "structural JJ counts track the analytical area models",
        paper="within calibration tolerance",
        measured=f"{budget_mismatches} block(s) diverging",
        holds=budget_mismatches == 0,
    )
    result.notes.append(
        "warnings are physical hazards the paper documents (merger collision "
        "windows, unterminated balancer outputs); run `usfq-lint --all-blocks "
        "--verbose` for the full diagnostics"
    )
    return result
