"""Fig 4: latency and area of the U-SFQ multiplier versus binary designs.

The unary multiplier's area is constant (46 JJs) while binary multipliers
grow with bit width; its latency is ``2**B * t_INV`` (exponential) while
binary latency grows roughly linearly.  Headline claims: 25-200x less area
than the wave-pipelined trend over 2-16 bits, 370x less than the 17 kJJ
bit-parallel multiplier [37], which is itself ~6x faster at 8 bits.
"""

from __future__ import annotations

from repro.core.multiplier import MULTIPLIER_BIPOLAR_JJ
from repro.experiments.report import ExperimentResult
from repro.models import baselines, latency
from repro.units import to_ns

BITS_SWEEP = tuple(range(2, 17))


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig04",
        "Multiplier latency and area: unary vs binary",
        [
            "bits",
            "unary latency (ns)",
            "binary latency (ns)",
            "unary JJs",
            "binary JJs (fit)",
            "area ratio",
        ],
    )
    unary_jj = MULTIPLIER_BIPOLAR_JJ
    for bits in BITS_SWEEP:
        unary_lat = to_ns(latency.multiplier_unary_latency_fs(bits))
        binary_lat = to_ns(latency.multiplier_binary_latency_fs(bits))
        binary_jj = baselines.multiplier_binary_jj(bits)
        result.add_row(
            bits, unary_lat, binary_lat, unary_jj, binary_jj,
            round(binary_jj / unary_jj, 1),
        )

    ratio_low = baselines.multiplier_binary_jj(BITS_SWEEP[0]) / unary_jj
    ratio_high = baselines.multiplier_binary_jj(BITS_SWEEP[-1]) / unary_jj
    result.add_claim(
        "area savings vs WP trend, 2-16 bits",
        "25x-200x",
        f"{ratio_low:.0f}x-{ratio_high:.0f}x",
        20 <= ratio_low <= 60 and 150 <= ratio_high <= 260,
    )

    bp = baselines.NAGAOKA_BP_MULTIPLIER
    ratio_bp = bp.jj_count / unary_jj
    result.add_claim(
        "area savings vs 8-bit bit-parallel [37]",
        "370x",
        f"{ratio_bp:.0f}x",
        abs(ratio_bp - 370) < 15,
    )
    speed_bp = latency.multiplier_unary_latency_fs(8) / bp.latency_fs
    result.add_claim(
        "BP multiplier speedup over unary at 8 bits",
        "~6x",
        f"{speed_bp:.1f}x",
        4 <= speed_bp <= 9,
    )

    # Scan from 4 bits: below that the latency fit sits on its floor and
    # is not meaningful (no published sub-4-bit designs in Table 2).
    crossover = None
    for bits in range(4, 17):
        if latency.multiplier_unary_latency_fs(bits) >= latency.multiplier_binary_latency_fs(bits):
            crossover = bits
            break
    result.add_claim(
        "unary faster than the binary trend below",
        "8 bits",
        f"{crossover} bits",
        crossover == 8,
    )
    result.notes.append(
        "t_INV = 9 ps -> ~111 GHz maximum pulse rate; unary latency = 2^B * t_INV"
    )
    return result
