"""Experiment result containers and plain-text rendering.

Every experiment module produces an :class:`ExperimentResult`: the rows of
the regenerated table/figure plus a list of :class:`Claim` checks that
compare the paper's headline numbers against what this reproduction
measures.  The CLI and the benchmark suite render these with
:func:`format_result`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class Claim:
    """One paper-stated quantity versus our measurement."""

    description: str
    paper: str
    measured: str
    holds: bool

    def render(self) -> str:
        status = "OK " if self.holds else "DIFF"
        return f"  [{status}] {self.description}: paper={self.paper} measured={self.measured}"


@dataclass
class ExperimentResult:
    """A regenerated table or figure."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    claims: List[Claim] = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(values)

    def add_claim(self, description: str, paper: str, measured: str, holds: bool) -> None:
        self.claims.append(Claim(description, paper, measured, holds))

    @property
    def claims_held(self) -> int:
        return sum(1 for claim in self.claims if claim.holds)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_result(result: ExperimentResult) -> str:
    """Render one experiment as an aligned plain-text report."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if result.rows:
        cells = [[_cell(v) for v in row] for row in result.rows]
        widths = [
            max(len(str(column)), *(len(row[i]) for row in cells))
            for i, column in enumerate(result.columns)
        ]
        header = "  ".join(str(c).ljust(w) for c, w in zip(result.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    if result.claims:
        lines.append(f"claims ({result.claims_held}/{len(result.claims)} hold):")
        for claim in result.claims:
            lines.append(claim.render())
    return "\n".join(lines)
