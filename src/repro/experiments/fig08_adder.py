"""Fig 8: latency and area of the unary adders versus binary adders.

The 2:1 merger (5 JJs) and the balancer (56 JJs) are compared against the
Table 2 binary adder trend.  Headline claim: the balancer saves 11-200x in
area over binary adders for 4-16 bits, at a latency penalty.
"""

from __future__ import annotations

from repro.core.balancer import BALANCER_JJ
from repro.experiments.report import ExperimentResult
from repro.models import baselines, latency, technology as tech
from repro.units import to_ns

BITS_SWEEP = (4, 6, 8, 10, 12, 14, 16)


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig08",
        "Adder latency and area: merger / balancer vs binary",
        [
            "bits",
            "merger lat (ns)",
            "balancer lat (ns)",
            "binary lat (ns)",
            "merger JJs",
            "balancer JJs",
            "binary JJs (fit)",
        ],
    )
    for bits in BITS_SWEEP:
        result.add_row(
            bits,
            to_ns(latency.adder_unary_merger_latency_fs(bits)),
            to_ns(latency.adder_unary_balancer_latency_fs(bits)),
            to_ns(latency.adder_binary_latency_fs(bits)),
            tech.JJ_MERGER,
            BALANCER_JJ,
            baselines.adder_binary_jj(bits),
        )

    ratio_low = baselines.adder_binary_jj(4) / BALANCER_JJ
    ratio_high = baselines.adder_binary_jj(16) / BALANCER_JJ
    result.add_claim(
        "balancer area savings, 4-16 bits",
        "11x-200x",
        f"{ratio_low:.0f}x-{ratio_high:.0f}x",
        ratio_low >= 10 and ratio_high >= 150,
    )
    penalty = latency.adder_unary_balancer_latency_fs(16) > latency.adder_binary_latency_fs(16)
    result.add_claim(
        "unary adders pay a latency penalty at high resolution",
        "yes",
        "yes" if penalty else "no",
        penalty,
    )
    result.notes.append(
        "balancer latency = 2^B * t_BFF (12 ps); merger latency additionally "
        "scales with the input count (here M = 2)"
    )
    return result
