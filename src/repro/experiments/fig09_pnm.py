"""Fig 9: pulse-number multiplier streams.

Programs the structural TFF2-chain PNM with the paper's example words —
"1111" (15 pulses) and "0100" (4 pulses) — and compares the inter-pulse
spacing uniformity against the typical burst PNM, which emits the same
counts bunched at the maximum rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.pnm import BurstPnm, build_tff2_pnm, pnm_tick_pattern
from repro.experiments.report import ExperimentResult
from repro.models import technology as tech
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator
from repro.pulsesim.schedule import clock_times

BITS = 4


def _run_structural(word: int):
    """Simulate the TFF2 PNM for one word; returns output pulse times."""
    circuit = Circuit(f"pnm_{word}")
    pnm = build_tff2_pnm(circuit, "pnm", BITS)
    probe = pnm.probe_output("out")
    sim = Simulator(circuit)
    # Program the NDRO gates before the clock starts.
    for bit in range(BITS):
        port = f"set{bit}" if (word >> bit) & 1 else f"reset{bit}"
        pnm.drive(sim, port, 0)
    ticks = clock_times(tech.T_TFF2_FS, (1 << BITS), start=tech.T_TFF2_FS)
    pnm.drive(sim, "clk", ticks)
    sim.run()
    return sorted(probe.times)


def _spacing_cv(times) -> float:
    """Coefficient of variation of the inter-pulse intervals."""
    gaps = np.diff(np.asarray(times, dtype=float))
    if gaps.size < 2 or np.mean(gaps) == 0:
        return 0.0
    return float(np.std(gaps) / np.mean(gaps))


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig09",
        "Pulse-number multiplier: programmable counts and rate uniformity",
        ["design", "word", "pulses", "spacing CV"],
    )

    for word, label in ((0b1111, "1111"), (0b0100, "0100"), (0b1010, "1010")):
        times = _run_structural(word)
        result.add_row("TFF2 chain (proposed)", label, len(times), _spacing_cv(times))
        if label == "1111":
            result.add_claim(
                'word "1111" emits 15 pulses', "15", str(len(times)), len(times) == 15
            )
        if label == "0100":
            result.add_claim(
                'word "0100" emits 4 pulses', "4", str(len(times)), len(times) == 4
            )

    # Typical burst PNM: same counts, maximum-rate bursts.
    burst_cvs = {}
    for word, label in ((0b1111, "1111"), (0b0100, "0100")):
        circuit = Circuit(f"burst_{word}")
        burst = circuit.add(BurstPnm("burst", word, BITS))
        probe = circuit.probe(burst, "out")
        sim = Simulator(circuit)
        sim.schedule_input(burst, "trigger", 0)
        sim.run()
        # Burst spacing is perfectly regular *within* the burst but the
        # epoch-level rate is not uniform: measure CV over the whole epoch
        # by appending the epoch end as a virtual boundary.
        epoch_fs = (1 << BITS) * tech.T_TFF2_FS
        times = sorted(probe.times) + [epoch_fs]
        cv = _spacing_cv(times)
        burst_cvs[label] = cv
        result.add_row("TFF burst (typical)", label, probe.count(), cv)

    tff2_cv = _spacing_cv(_run_structural(0b0100))
    result.add_claim(
        "TFF2 stream is more uniform than the burst PNM",
        "uniform rate (Fig 9b)",
        f"CV {tff2_cv:.2f} vs {burst_cvs['0100']:.2f}",
        tff2_cv < burst_cvs["0100"],
    )
    pattern = pnm_tick_pattern(0b0100, BITS)
    result.notes.append(f'word "0100" tick pattern: {pattern} (every 4th slot)')
    return result
