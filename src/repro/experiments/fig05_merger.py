"""Fig 5: pulse collisions in merger-based addition.

A 4:1 merger tree fed four simultaneous pulses loses pulses to collisions
(four in, three out in the paper's example); staggering lanes inside a
wide-enough slot restores correct operation at a latency cost that grows
with the number of inputs.
"""

from __future__ import annotations

from repro.core.adder import MergerAdder, min_slot_fs
from repro.experiments.report import ExperimentResult
from repro.pulsesim.schedule import uniform_stream_times
from repro.units import to_ps


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig05",
        "Merger collisions and the collision-free slot width",
        ["scenario", "pulses in", "pulses out", "collisions"],
    )

    adder = MergerAdder(4)

    # Four simultaneous pulses, no stagger (the Fig 5b failure).
    simultaneous = [[0], [0], [0], [0]]
    out = adder.run(simultaneous)
    result.add_row("4 simultaneous, no stagger", 4, out, adder.collisions)
    result.add_claim(
        "simultaneous pulses collide (out < in)",
        "4 in -> 3 out (example)",
        f"4 in -> {out} out",
        out < 4,
    )

    # Same pulses, staggered lanes (the Fig 5c fix).
    out = adder.run(simultaneous, stagger=True)
    result.add_row("4 simultaneous, staggered", 4, out, adder.collisions)
    result.add_claim(
        "lane stagger removes collisions", "4 in -> 4 out", f"4 in -> {out} out",
        out == 4,
    )

    # Full streams in collision-free slots.
    slot = min_slot_fs(4)
    counts = (5, 3, 7, 1)
    times = [uniform_stream_times(n, 16, slot) for n in counts]
    out = adder.run(times, stagger=True)
    result.add_row(
        f"streams {counts}, slot {to_ps(slot):.0f} ps", sum(counts), out,
        adder.collisions,
    )
    result.add_claim(
        "stream addition is exact in the M*t_merger slot",
        f"sum = {sum(counts)}",
        str(out),
        out == sum(counts),
    )
    result.notes.append(
        f"minimum collision-free slot for a 4:1 tree: {to_ps(slot):.0f} ps "
        "(grows linearly with the input count, Fig 5c)"
    )
    return result
