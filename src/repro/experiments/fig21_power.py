"""Fig 21: bipolar-multiplier active power versus operand values.

Sweeps the Race-Logic operand over [-1, 1] for pulse streams encoding -1,
0, and +1.  Checks the 68-135 nW envelope and that the stream-0 line is
flat (half the pulses always propagate).  Our RL bipolar convention
(Id_b = 2 Id_u - 1) mirrors the paper's +-1 line labels; magnitudes match.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.models import power
from repro.units import to_nw

RL_SWEEP = np.linspace(-1.0, 1.0, 11)


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig21",
        "Bipolar multiplier active power vs Race-Logic operand",
        ["RL value"] + [f"stream={s:+.0f} (nW)" for s in (-1.0, 0.0, 1.0)],
    )
    lines = {}
    for stream in (-1.0, 0.0, 1.0):
        lines[stream] = [
            to_nw(power.bipolar_multiplier_active_w(rl, stream)) for rl in RL_SWEEP
        ]
    for i, rl in enumerate(RL_SWEEP):
        result.add_row(
            round(float(rl), 1),
            round(lines[-1.0][i], 1),
            round(lines[0.0][i], 1),
            round(lines[1.0][i], 1),
        )

    all_values = [v for line in lines.values() for v in line]
    result.add_claim(
        "active power envelope", "68-135 nW",
        f"{min(all_values):.0f}-{max(all_values):.0f} nW",
        abs(min(all_values) - 68) < 1 and abs(max(all_values) - 135) < 1,
    )
    flat = max(lines[0.0]) - min(lines[0.0])
    result.add_claim(
        "stream = 0 line is constant", "constant (half the pulses propagate)",
        f"spread {flat:.2f} nW", flat < 0.5,
    )
    slopes_opposed = (lines[1.0][-1] - lines[1.0][0]) * (
        lines[-1.0][-1] - lines[-1.0][0]
    ) < 0
    result.add_claim(
        "the +-1 stream lines slope in opposite directions",
        "one rises, one falls with the RL operand",
        "yes" if slopes_opposed else "no",
        slopes_opposed,
    )
    result.notes.append(
        "power model: P = 68 nW + 67 nW * rho, rho = fraction of slots whose "
        "pulse reaches the output (p_A b + (1 - p_A)(1 - b))"
    )
    return result
