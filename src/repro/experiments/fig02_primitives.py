"""Fig 2: the two unary primitives the paper builds on.

(a) Race-Logic ``min`` with a first-arrival gate: A=2, B=3 -> 2 (one OR
gate / 8 JJs versus >4 kJJ for a binary comparator).
(b) CMOS pulse-stream multiplication: A=0.5 as a half-rate stream gated by
B=0.25 (high the first quarter of the epoch), P_max=8 -> 1/8 = 0.125.
"""

from __future__ import annotations

from repro.cells.logic import FirstArrival
from repro.encoding.epoch import EpochSpec
from repro.encoding.pulsestream import PulseStreamCodec
from repro.encoding.racelogic import RaceLogicCodec
from repro.experiments.report import ExperimentResult
from repro.models import baselines
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig02",
        "Unary primitives: Race-Logic min and pulse-stream multiply",
        ["primitive", "inputs", "expected", "measured"],
    )

    # (a) RL minimum via a first-arrival gate.
    epoch = EpochSpec(bits=3)
    race = RaceLogicCodec(epoch)
    circuit = Circuit("rl_min")
    gate = circuit.add(FirstArrival("fa"))
    probe = circuit.probe(gate, "q")
    sim = Simulator(circuit)
    sim.schedule_input(gate, "a", race.epoch.slot_time(2))
    sim.schedule_input(gate, "b", race.epoch.slot_time(3))
    sim.run()
    min_slot = (probe.first() - gate.delay) // epoch.slot_fs
    result.add_row("RL min (FA gate)", "A=2, B=3", 2, min_slot)
    result.add_claim("min(2, 3) via FA", "2", str(min_slot), min_slot == 2)
    result.add_claim(
        "FA gate JJ count", "8 JJs [51]", str(gate.jj_count), gate.jj_count == 8
    )

    # (b) CMOS-style pulse-stream multiplication, P_max = 8.
    streams = PulseStreamCodec(epoch)
    a_times = streams.encode_unipolar(0.5)  # 4 pulses
    gate_limit = epoch.slot_time(race.slot_for_unipolar(0.25))  # high for 1/4 epoch
    passed = sum(1 for t in a_times if t < gate_limit)
    product = passed / epoch.n_max
    result.add_row("pulse-stream multiply", "A=0.5, B=0.25, P_max=8", 0.125, product)
    result.add_claim(
        "0.5 x 0.25 with P_max=8", "1/8 = 0.125", f"{product}", product == 0.125
    )

    binary_min_jj = baselines.adder_binary_jj(8)
    result.notes.append(
        "a binary 8-bit min needs a comparator on the scale of a fitted adder "
        f"(~{binary_min_jj:,.0f} JJs) versus 8 JJs for the FA gate"
    )
    return result
