"""Fig 20: unary-vs-binary FIR savings regions over (taps, bits).

Three panels — latency savings, JJ savings, efficiency gain — plus the
application overlays (IR sensors, SDR) and the two commercial reference
cards.  Paper headlines: an 8-bit 32-tap unary FIR saves 56 % latency; for
the RTL-2832U-class design the unary FIR is ~60 % larger but ~90 % lower
latency / ~80 % better efficiency; for IR sensors it saves 13-78 % latency
and ~40 % area with 62-89 % better efficiency.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.models import regions


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig20",
        "FIR savings regions over (taps, bits)",
        ["panel", "grid ('....' = binary wins)"],
    )
    for metric in ("latency", "area", "efficiency"):
        grid = regions.savings_grid(metric)
        lines = regions.render_grid_ascii(grid)
        result.add_row(metric, lines[0])
        for line in lines[1:]:
            result.add_row("", line)

    cell = regions.latency_savings(32, 8)
    result.add_claim(
        "8-bit 32-tap latency savings", "56 %", f"{cell:.0f} %",
        30 <= cell <= 70,
    )
    penalty = regions.latency_savings(32, 9)
    result.add_claim(
        "latency penalty beyond 8 bits at 32 taps", "binary wins",
        f"{penalty:.0f} %", penalty < cell,
    )

    rtl = regions.reference_point_summary(regions.RTL2832U_POINT, "RTL-2832U")
    result.add_claim(
        "RTL-2832U-class: unary latency savings", "~90 %",
        f"{rtl['latency_savings_pct']:.0f} %",
        80 <= rtl["latency_savings_pct"] <= 97,
    )
    result.add_claim(
        "RTL-2832U-class: unary needs more area", "60 % larger",
        f"{-rtl['area_savings_pct']:.0f} % larger",
        rtl["area_savings_pct"] < 0,
    )
    result.add_claim(
        "RTL-2832U-class: unary efficiency gain", "~80 % better",
        f"{rtl['efficiency_gain_pct']:.0f} % better",
        rtl["efficiency_gain_pct"] > 50,
    )

    ir = regions.region_summary(regions.IR_SENSORS)
    lat_low, lat_high = ir["latency_savings_pct"]
    result.add_claim(
        "IR sensors: latency savings", "13-78 %",
        f"{max(lat_low, 0):.0f}-{lat_high:.0f} %",
        lat_high >= 60,
    )
    area_low, area_high = ir["area_savings_pct"]
    result.add_claim(
        "IR sensors: area savings (best case)", "40 %",
        f"up to {area_high:.0f} %", 25 <= area_high <= 55,
    )
    eff_low, eff_high = ir["efficiency_gain_pct"]
    result.add_claim(
        "IR sensors: efficiency gain", "62-89 % better",
        f"{eff_low:.0f}-{eff_high:.0f} % better", eff_low > 0,
    )
    result.notes.append(
        "overlays: IR sensors = 16-32 taps x 6-8 bits; SDR = 200-900 taps x "
        "7-14 bits; reference cards at "
        f"{regions.RTL2832U_POINT} (RTL-2832U) and {regions.RSP_POINT} (RSP)"
    )
    return result
