"""Sharded wide-FIR workload over the temporal NoC (the PaST-NoC regime).

Not a paper figure: this experiment demonstrates the scaling story the
paper's authors sketch in PaST-NoC — many small pulse-stream fabrics
stitched into one system by a packet-switched temporal NoC.  It builds a
four-channel unary FIR bank (each channel: a splitter tree into
slot-staggered tap delay lines, TFF2 weight dividers, and a merger
adder), cuts it into four fabric shards with
:func:`repro.shard.plan_partition`, and runs the partitioned system
under conservative window synchronization, claiming

1. the partitioned run is **bit-identical** to the monolithic sealed run
   of the same NoC-augmented circuit on every probed port (the PR-8
   tentpole guarantee, also fuzzed by the ``shard-differential`` oracle),
2. no pulse is lost to NoC link-FIFO overflow (the partitioner cut
   low-traffic wires, so the bounded FIFOs never saturate), and
3. the JJ area balance across shards stays within 1.5x of fair share.

The shard topology (shard count, cuts, lookahead, sync windows) is
published through the metrics registry, so the run manifest records it.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cells.interconnect import IdealMerger, Jtl, Splitter
from repro.cells.toggle import Tff2
from repro.experiments.report import ExperimentResult
from repro.pulsesim import Circuit, Simulator
from repro.pulsesim.element import Element
from repro.pulsesim.schedule import uniform_stream_times
from repro.shard import ShardSimulator, build_noc_circuit, plan_partition
from repro.trace.metrics import current_registry

_CHANNELS = 4
_TAPS = 4
_NUM_SHARDS = 4
_SLOT_FS = 12_000
_N_MAX = 1_024
_PULSES = 600


def _build_fir_bank() -> Tuple[Circuit, List[Element]]:
    """A ``_CHANNELS``-wide unary FIR bank; one probe per channel."""
    circuit = Circuit(f"firbank{_CHANNELS}x{_TAPS}")
    heads = []
    for channel in range(_CHANNELS):
        head = circuit.add(Jtl(f"ch{channel}_in"))
        heads.append(head)
        # 1 -> _TAPS fanout via a two-level splitter tree.
        root = circuit.add(Splitter(f"ch{channel}_s0"))
        circuit.connect(head, "q", root, "a", delay=500)
        taps = []
        for side, port in enumerate(("q1", "q2")):
            leaf = circuit.add(Splitter(f"ch{channel}_s1{side}"))
            circuit.connect(root, port, leaf, "a", delay=500)
            taps.append((leaf, "q1"))
            taps.append((leaf, "q2"))
        outputs = []
        for tap, (element, port) in enumerate(taps):
            # Tap delay line: `tap` slots of latency, FIR-style.
            stage, stage_port = element, port
            weight = tap % 2 + 1  # divide by 2 or 4: the coefficient
            for w in range(weight):
                divider = circuit.add(Tff2(f"ch{channel}_t{tap}_w{w}"))
                circuit.connect(stage, stage_port, divider, "a",
                                delay=500 + tap * _SLOT_FS * (w == 0))
                stage, stage_port = divider, "q1"
            outputs.append((stage, stage_port))
        while len(outputs) > 1:
            merged = []
            for pair in range(0, len(outputs), 2):
                merger = circuit.add(
                    IdealMerger(f"ch{channel}_m{len(outputs)}_{pair // 2}")
                )
                circuit.connect(*outputs[pair], merger, "a", delay=500)
                circuit.connect(*outputs[pair + 1], merger, "b", delay=500)
                merged.append((merger, "q"))
            outputs = merged
        circuit.probe(*outputs[0])
    return circuit, heads


def _stimulus(channel: int) -> List[int]:
    return uniform_stream_times(
        _PULSES - 37 * channel, _N_MAX, _SLOT_FS, start=137 * channel
    )


def run() -> ExperimentResult:
    result = ExperimentResult(
        "shard",
        f"{_CHANNELS}-channel FIR bank sharded {_NUM_SHARDS} ways over the "
        "temporal NoC",
        ["shard", "cells", "JJ", "share"],
    )

    circuit, heads = _build_fir_bank()
    plan = plan_partition(
        circuit, _NUM_SHARDS,
        entry_points=[(head, "a") for head in heads],
    )

    # Monolithic reference: the same NoC-augmented netlist, run whole.
    mono_circuit = build_noc_circuit(circuit, plan)
    mono = Simulator(mono_circuit, kernel="sealed")
    for channel, head in enumerate(heads):
        mono.schedule_train(mono_circuit[head.name], "a", _stimulus(channel))
    mono_stats = mono.run()
    mono_recordings = {
        tap.probe.label: list(tap.probe.times)
        for taps in mono_circuit._taps.values()
        for tap in taps
    }

    # Partitioned run: one sealed kernel per shard, windowed sync.
    fresh, fresh_heads = _build_fir_bank()
    with ShardSimulator(fresh, plan, jobs=1) as sharded:
        for channel, head in enumerate(fresh_heads):
            sharded.schedule_train(head.name, "a", _stimulus(channel))
        stats = sharded.run()
        recordings = sharded.recordings()
        drops = sharded.noc_drops()
        windows = sharded.windows

    fair = sum(plan.jj_by_shard) / plan.num_shards
    for shard in range(plan.num_shards):
        result.add_row(
            shard,
            len(plan.cells_of(shard)),
            plan.jj_by_shard[shard],
            f"{plan.jj_by_shard[shard] / fair:.2f}x",
        )

    identical = (
        recordings == mono_recordings
        and stats.events_processed == mono_stats.events_processed
        and stats.pulses_emitted == mono_stats.pulses_emitted
        and stats.end_time == mono_stats.end_time
    )
    result.add_claim(
        "partitioned run is bit-identical to the monolithic sealed run "
        "on every probed port",
        paper="exact equivalence",
        measured="identical" if identical else "DIVERGED",
        holds=identical,
    )
    dropped = sum(drops.values())
    result.add_claim(
        "no pulse is lost to NoC link-FIFO overflow",
        paper="0 drops",
        measured=f"{dropped} drop(s) across {len(plan.cuts)} link(s)",
        holds=dropped == 0,
    )
    balance = max(plan.jj_by_shard) / fair
    result.add_claim(
        "JJ area balance across shards stays within 1.5x of fair share",
        paper="<= 1.50x",
        measured=f"{balance:.2f}x",
        holds=balance <= 1.5,
    )

    registry = current_registry()
    if registry is not None:
        registry.gauge("shard.num_shards").set(plan.num_shards)
        registry.gauge("shard.cuts").set(len(plan.cuts))
        registry.gauge("shard.lookahead_fs").set(plan.lookahead_fs or 0)
        registry.gauge("shard.windows").set(windows)
        registry.gauge("shard.jj_balance").set(balance)

    result.notes.append(
        f"{len(plan.cuts)} cut wire(s), lookahead "
        f"{plan.lookahead_fs} fs, {windows} sync window(s); "
        "re-run the equivalence sweep with `usfq-verify --profile ci` "
        "(shard-differential oracle) or one block with `usfq-shard run`"
    )
    return result
