"""Fig 12: JJ cost of the four Race-Logic shift-register designs.

Per delay stage (one word): plain binary DFF bank, binary + B2RC
converter (3.2x), DFF-chain RL delay (exponential in bits), and the
proposed integrator buffer (constant).  Headline claims: the buffer beats
both RL-native alternatives everywhere, with a 2.5x (8-bit) to 1.3x
(16-bit) overhead over the plain binary register.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.models import area

BITS_SWEEP = tuple(range(8, 17))


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig12",
        "Shift-register area per delay stage",
        ["bits", "binary", "B2RC", "DFF RL", "buffer", "buffer/binary"],
    )
    for bits in BITS_SWEEP:
        binary = area.shift_register_binary_jj(bits)
        buffer = area.shift_register_buffer_jj(bits)
        result.add_row(
            bits,
            binary,
            area.shift_register_b2rc_jj(bits),
            area.shift_register_dff_rl_jj(bits),
            buffer,
            round(buffer / binary, 2),
        )

    overhead_8 = area.shift_register_buffer_jj(8) / area.shift_register_binary_jj(8)
    overhead_16 = area.shift_register_buffer_jj(16) / area.shift_register_binary_jj(16)
    result.add_claim(
        "buffer overhead vs binary at 8 bits", "2.5x", f"{overhead_8:.2f}x",
        abs(overhead_8 - 2.5) < 0.15,
    )
    result.add_claim(
        "buffer overhead vs binary at 16 bits", "1.3x", f"{overhead_16:.2f}x",
        abs(overhead_16 - 1.3) < 0.1,
    )
    b2rc_factor = area.shift_register_b2rc_jj(12) / area.shift_register_binary_jj(12)
    result.add_claim(
        "B2RC costs up to 3.2x the binary register", "3.2x", f"{b2rc_factor:.1f}x",
        abs(b2rc_factor - 3.2) < 0.1,
    )
    dff_wins = all(
        area.shift_register_buffer_jj(b) < area.shift_register_dff_rl_jj(b)
        for b in BITS_SWEEP
    )
    result.add_claim(
        "buffer beats the DFF-chain RL register at all resolutions",
        "yes", "yes" if dff_wins else "no", dff_wins,
    )
    result.notes.append(
        "the buffer's inductance grows with bits instead of its JJ count; "
        "the paper reports that increment as negligible"
    )
    return result
