"""Experiment harness: one module per table/figure of the paper.

``python -m repro.experiments`` (or the ``usfq-experiments`` console
script) regenerates everything and prints paper-vs-measured claim checks.
See DESIGN.md section 4 for the experiment index.
"""
