"""Fig 14: processing-element latency and iso-throughput area.

(a) Individual-PE latency: binary wins, increasingly so at high
resolution.  (b) Equalise throughput by replicating the 126-JJ unary PE
and compare total area: the unary array saves 93-96 % below 12 bits,
shrinking to tens of percent at 16 bits, and ~28 % against the 48 GHz
bit-parallel design [37, 38] at 8 bits.

The per-``bits`` sweep is exposed as picklable work units
(:func:`sweep_points` / :func:`run_point` / :func:`assemble`) so the
experiment runner can fan the sweep out across worker processes.
"""

from __future__ import annotations

from typing import List

from repro.core.pe import PE_JJ
from repro.experiments.report import ExperimentResult
from repro.models import area, latency
from repro.units import to_ns

BITS_SWEEP = (4, 6, 8, 10, 12, 14, 16)


def sweep_points() -> List[int]:
    """One work unit per resolution in the bit sweep."""
    return list(BITS_SWEEP)


def run_point(bits: int) -> dict:
    """Evaluate one resolution: latency, iso-throughput array, savings."""
    n_pes = latency.pes_for_equal_throughput(bits)
    unary_area = area.pe_array_unary_jj(n_pes)
    binary_area = area.pe_binary_jj(bits)
    savings = (1.0 - unary_area / binary_area) * 100.0
    return {
        "bits": bits,
        "savings": savings,
        "row": (
            bits,
            to_ns(latency.pe_unary_latency_fs(bits)),
            to_ns(latency.pe_binary_latency_fs(bits)),
            n_pes,
            unary_area,
            round(binary_area),
            round(savings, 1),
        ),
    }


def assemble(partials: List[dict]) -> ExperimentResult:
    """Combine per-``bits`` partials (in sweep order) into the figure."""
    result = ExperimentResult(
        "fig14",
        "PE latency and iso-throughput area",
        [
            "bits",
            "unary lat (ns)",
            "binary lat (ns)",
            "unary PEs",
            "unary array JJs",
            "binary JJs",
            "savings %",
        ],
    )
    savings_by_bits = {}
    for partial in partials:
        savings_by_bits[partial["bits"]] = partial["savings"]
        result.add_row(*partial["row"])

    result.add_claim(
        "single U-SFQ PE area", "126 JJs, bit-independent", f"{PE_JJ} JJs",
        PE_JJ == 126,
    )
    pe_savings_8 = (1.0 - PE_JJ / area.pe_binary_jj(8)) * 100.0
    result.add_claim(
        "PE area savings vs 8-bit binary PE (9k-17k JJs)",
        "98-99 %",
        f"{pe_savings_8:.1f} %",
        97.5 <= pe_savings_8 <= 99.5,
    )
    low_bits = [savings_by_bits[b] for b in BITS_SWEEP if b < 12]
    result.add_claim(
        "iso-throughput savings vs WP binary below 12 bits",
        "93-96 %",
        f"{min(low_bits):.0f}-{max(low_bits):.0f} %",
        min(low_bits) >= 85,
    )
    result.add_claim(
        "savings shrink at 16 bits",
        "~30 %",
        f"{savings_by_bits[16]:.0f} %",
        0 < savings_by_bits[16] < 50,
    )

    n_bp = latency.pes_for_bp_throughput(8)
    bp_area = area.pe_binary_bp_jj(8)
    bp_savings = (1.0 - area.pe_array_unary_jj(n_bp) / bp_area) * 100.0
    result.add_claim(
        "savings vs the 48 GHz bit-parallel PE at 8 bits",
        "28 %",
        f"{bp_savings:.0f} % ({n_bp} PEs)",
        5 <= bp_savings <= 40,
    )
    result.notes.append(
        "unary PE cycles at t_BFF = 12 ps; one MAC per 2^B cycles"
    )
    return result


def run() -> ExperimentResult:
    return assemble([run_point(point) for point in sweep_points()])
