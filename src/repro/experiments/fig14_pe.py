"""Fig 14: processing-element latency and iso-throughput area.

(a) Individual-PE latency: binary wins, increasingly so at high
resolution.  (b) Equalise throughput by replicating the 126-JJ unary PE
and compare total area: the unary array saves 93-96 % below 12 bits,
shrinking to tens of percent at 16 bits, and ~28 % against the 48 GHz
bit-parallel design [37, 38] at 8 bits.
"""

from __future__ import annotations

from repro.core.pe import PE_JJ
from repro.experiments.report import ExperimentResult
from repro.models import area, latency
from repro.units import to_ns

BITS_SWEEP = (4, 6, 8, 10, 12, 14, 16)


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig14",
        "PE latency and iso-throughput area",
        [
            "bits",
            "unary lat (ns)",
            "binary lat (ns)",
            "unary PEs",
            "unary array JJs",
            "binary JJs",
            "savings %",
        ],
    )
    savings_by_bits = {}
    for bits in BITS_SWEEP:
        n_pes = latency.pes_for_equal_throughput(bits)
        unary_area = area.pe_array_unary_jj(n_pes)
        binary_area = area.pe_binary_jj(bits)
        savings = (1.0 - unary_area / binary_area) * 100.0
        savings_by_bits[bits] = savings
        result.add_row(
            bits,
            to_ns(latency.pe_unary_latency_fs(bits)),
            to_ns(latency.pe_binary_latency_fs(bits)),
            n_pes,
            unary_area,
            round(binary_area),
            round(savings, 1),
        )

    result.add_claim(
        "single U-SFQ PE area", "126 JJs, bit-independent", f"{PE_JJ} JJs",
        PE_JJ == 126,
    )
    pe_savings_8 = (1.0 - PE_JJ / area.pe_binary_jj(8)) * 100.0
    result.add_claim(
        "PE area savings vs 8-bit binary PE (9k-17k JJs)",
        "98-99 %",
        f"{pe_savings_8:.1f} %",
        97.5 <= pe_savings_8 <= 99.5,
    )
    low_bits = [savings_by_bits[b] for b in BITS_SWEEP if b < 12]
    result.add_claim(
        "iso-throughput savings vs WP binary below 12 bits",
        "93-96 %",
        f"{min(low_bits):.0f}-{max(low_bits):.0f} %",
        min(low_bits) >= 85,
    )
    result.add_claim(
        "savings shrink at 16 bits",
        "~30 %",
        f"{savings_by_bits[16]:.0f} %",
        0 < savings_by_bits[16] < 50,
    )

    n_bp = latency.pes_for_bp_throughput(8)
    bp_area = area.pe_binary_bp_jj(8)
    bp_savings = (1.0 - area.pe_array_unary_jj(n_bp) / bp_area) * 100.0
    result.add_claim(
        "savings vs the 48 GHz bit-parallel PE at 8 bits",
        "28 %",
        f"{bp_savings:.0f} % ({n_bp} PEs)",
        5 <= bp_savings <= 40,
    )
    result.notes.append(
        "unary PE cycles at t_BFF = 12 ps; one MAC per 2^B cycles"
    )
    return result
