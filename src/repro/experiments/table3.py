"""Table 3: power of a 32-lane DPU, by component.

Active power composes from the calibrated per-block models (multiplier
~9e-5 mW, balancer ~17e-5 mW at activity 0.5); passive power from the
paper-pinned bias figures.  Also reports the CMOS comparison and the
ERSFQ option.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.models import power
from repro.units import to_mw, to_uw

PAPER_ROWS = {
    "multiplier": (9e-5, 0.05),
    "balancer": (17e-5, 0.1),
    "dpu-32 w/o cooling": (84e-4, 4.8),
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        "table3",
        "DPU power (32 multipliers/adders, activity factor 0.5)",
        ["component", "active (mW)", "passive (mW)", "paper active (mW)", "paper passive (mW)"],
    )
    for row in power.table3_rows(length=32):
        paper_active, paper_passive = PAPER_ROWS[row.component]
        result.add_row(
            row.component,
            to_mw(row.active_w),
            to_mw(row.passive_w),
            paper_active,
            paper_passive,
        )
        result.add_claim(
            f"{row.component} active power",
            f"{paper_active:g} mW",
            f"{to_mw(row.active_w):.2g} mW",
            0.5 * paper_active <= to_mw(row.active_w) <= 1.5 * paper_active,
        )
        result.add_claim(
            f"{row.component} passive power",
            f"{paper_passive:g} mW",
            f"{to_mw(row.passive_w):.2g} mW",
            0.8 * paper_passive <= to_mw(row.passive_w) <= 1.2 * paper_passive,
        )

    dpu = power.table3_rows(length=32)[-1]
    ratio = power.CMOS_REFERENCE_ACTIVE_W / dpu.active_w
    result.add_claim(
        "active power vs CMOS (~1 mW)",
        "three orders of magnitude smaller",
        f"{ratio:.0f}x smaller",
        ratio > 100,
    )
    result.notes.append(
        f"PE (paper section 5.4.5): active {to_uw(power.PE_ACTIVE_W):.1f} uW, "
        f"passive {to_uw(power.PE_PASSIVE_W):.0f} uW; ERSFQ removes the "
        f"passive term at ~{1.4}x area"
    )
    return result


def run_measured() -> ExperimentResult:
    """Table 3 with *measured* switching activity next to the assumed 0.5.

    Runs the traced DPU workload (:func:`repro.trace.activity.
    measure_dpu_activity`), extracts per-component activity from the pulse
    counts, and re-evaluates the active-power rows with the measured
    numbers.  Selected by ``usfq-experiments table3 --measured-activity``;
    never part of the default suite, so default output stays byte-stable.
    """
    from repro.trace.activity import measure_dpu_activity
    from repro.trace.metrics import current_registry

    report = measure_dpu_activity()
    registry = current_registry()
    if registry is not None:
        registry.gauge("activity.multiplier.measured").set(
            report.multiplier_activity
        )
        registry.gauge("activity.balancer.measured").set(
            report.balancer_activity
        )

    result = ExperimentResult(
        "table3",
        "DPU power: assumed activity 0.5 vs measured switching activity",
        ["component", "activity", "active (mW)", "assumed active (mW)"],
    )
    assumed = {row.component: row for row in power.table3_rows(length=32)}
    measured_rows = power.table3_rows(
        length=32,
        multiplier_activity=report.multiplier_activity,
        balancer_activity=report.balancer_activity,
    )
    activities = {
        "multiplier": report.multiplier_activity,
        "balancer": report.balancer_activity,
        "dpu-32 w/o cooling": report.overall_activity,
    }
    for row in measured_rows:
        result.add_row(
            row.component,
            round(activities[row.component], 4),
            to_mw(row.active_w),
            to_mw(assumed[row.component].active_w),
        )
    for component in ("multiplier", "balancer"):
        measured = activities[component]
        result.add_claim(
            f"{component} measured activity is a physical rate",
            "in (0, 1]",
            f"{measured:.4f}",
            0.0 < measured <= 1.0,
        )
    dpu_measured = measured_rows[-1].active_w
    dpu_assumed = assumed["dpu-32 w/o cooling"].active_w
    result.add_claim(
        "assumed activity 0.5 bounds the measured workload's active power",
        "measured <= assumed",
        f"{to_mw(dpu_measured):.2g} mW vs {to_mw(dpu_assumed):.2g} mW",
        dpu_measured <= dpu_assumed,
    )
    result.notes.append(
        f"measured over {report.epochs} epochs of a {report.length}-lane, "
        f"{report.bits}-bit DPU on seeded uniform operands "
        f"({report.slots_per_port} slots/port)"
    )
    return result
