"""Fig 18: the full FIR comparison — latency, throughput, area, efficiency.

Unary FIR latency is PNM-bound (2^B * B * t_TFF2) and independent of the
tap count; the binary single-MAC FIR pays one fitted MAC per tap.
Headline claims: latency/throughput advantage below 9 bits at 32 taps and
below 12 bits at 256 taps; area savings from 9 bits at 32 taps and never
at 256 taps; efficiency advantage below ~12 bits, growing with taps.

The (taps, bits) sweep is exposed as picklable work units
(:func:`sweep_points` / :func:`run_point` / :func:`assemble`) so the
experiment runner can fan the sweep out across worker processes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.report import ExperimentResult
from repro.models import area, efficiency, latency
from repro.units import to_us

TAPS = (32, 256)
BITS_SWEEP = (4, 6, 8, 10, 12, 14, 16)


def sweep_points() -> List[Tuple[int, int]]:
    """One work unit per (taps, bits) grid cell."""
    return [(taps, bits) for taps in TAPS for bits in BITS_SWEEP]


def run_point(point: Tuple[int, int]) -> dict:
    """Evaluate one (taps, bits) cell of the comparison grid."""
    taps, bits = point
    u_lat = latency.fir_unary_latency_fs(bits)
    b_lat = latency.fir_binary_latency_fs(taps, bits)
    return {
        "row": (
            taps,
            bits,
            to_us(u_lat),
            to_us(b_lat),
            latency.throughput_gops(u_lat),
            latency.throughput_gops(b_lat),
            area.fir_unary_jj(taps, bits),
            round(area.fir_binary_jj(taps, bits)),
            efficiency.fir_unary_efficiency(taps, bits),
            efficiency.fir_binary_efficiency(taps, bits),
        )
    }


def assemble(partials: List[dict]) -> ExperimentResult:
    """Combine per-cell partials (in sweep order) into the figure."""
    result = ExperimentResult(
        "fig18",
        "FIR: latency, throughput, area, efficiency (unary vs WP binary)",
        [
            "taps",
            "bits",
            "U lat (us)",
            "B lat (us)",
            "U thr (GOPs)",
            "B thr (GOPs)",
            "U JJs",
            "B JJs",
            "U eff (kOPs/JJ)",
            "B eff (kOPs/JJ)",
        ],
    )
    for partial in partials:
        result.add_row(*partial["row"])

    def latency_crossover(taps: int):
        for bits in range(4, 17):
            if latency.fir_unary_latency_fs(bits) >= latency.fir_binary_latency_fs(taps, bits):
                return bits
        return None

    cross_32 = latency_crossover(32)
    cross_256 = latency_crossover(256)
    result.add_claim(
        "latency advantage below (32 taps)", "9 bits", f"{cross_32} bits",
        cross_32 == 9,
    )
    result.add_claim(
        "latency advantage below (256 taps)", "12 bits", f"{cross_256} bits",
        cross_256 == 12,
    )

    area_from_32 = next(
        (b for b in range(4, 17) if area.fir_unary_jj(32, b) < area.fir_binary_jj(32, b)),
        None,
    )
    result.add_claim(
        "area savings from (32 taps)", "9 bits", f"{area_from_32} bits",
        area_from_32 in (8, 9, 10),
    )
    never_256 = all(
        area.fir_unary_jj(256, b) >= area.fir_binary_jj(256, b) for b in range(4, 17)
    )
    result.add_claim(
        "256-tap unary always needs more area", "yes",
        "yes" if never_256 else "no", never_256,
    )

    # Bit-parallel comparison: the 48 GHz pipeline issues one MAC per
    # cycle, so its FIR latency is taps * ~20.8 ps.
    bp_beats_unary_32 = all(
        latency.fir_binary_bp_latency_fs(32) < latency.fir_unary_latency_fs(b)
        for b in range(4, 17)
    )
    unary_beats_bp_256 = any(
        latency.fir_unary_latency_fs(b) < latency.fir_binary_bp_latency_fs(256)
        for b in range(4, 17)
    )
    result.add_claim(
        "unary beats the BP binary FIR at 256 taps but not at 32",
        "yes (U-SFQ performance is set by the memory elements)",
        f"32 taps: {'BP wins' if bp_beats_unary_32 else 'unary wins'}; "
        f"256 taps: {'unary wins at low bits' if unary_beats_bp_256 else 'BP wins'}",
        bp_beats_unary_32 and unary_beats_bp_256,
    )

    def efficiency_limit(taps: int):
        """Highest bit count at which the unary FIR is still more efficient."""
        best = None
        for b in range(4, 17):
            if efficiency.fir_unary_efficiency(taps, b) > efficiency.fir_binary_efficiency(taps, b):
                best = b
        return best

    limit_32, limit_256 = efficiency_limit(32), efficiency_limit(256)
    result.add_claim(
        "efficiency advantage up to ~12 bits (taps-dependent)",
        "< 12 bits",
        f"up to {limit_32} bits @32 taps, {limit_256} bits @256 taps",
        limit_32 is not None and limit_256 is not None and 8 <= limit_256 <= 13,
    )
    gain_32 = efficiency.fir_unary_efficiency(32, 8) / efficiency.fir_binary_efficiency(32, 8)
    gain_256 = efficiency.fir_unary_efficiency(256, 8) / efficiency.fir_binary_efficiency(256, 8)
    result.add_claim(
        "efficiency gain grows with taps (8 bits)",
        "yes",
        f"{gain_32:.1f}x @32 -> {gain_256:.1f}x @256",
        gain_256 > gain_32,
    )
    result.notes.append(
        "unary latency = 2^B * B * t_TFF2 (20 ps): tap-independent; "
        "binary latency = taps * (fitted multiplier + adder)"
    )
    return result


def run() -> ExperimentResult:
    return assemble([run_point(point) for point in sweep_points()])
