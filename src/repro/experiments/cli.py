"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    usfq-experiments                 # run everything
    usfq-experiments fig18 fig19    # run a subset
    usfq-experiments --list         # show available experiment ids
    python -m repro.experiments     # same as usfq-experiments
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usfq-experiments",
        description="Regenerate the U-SFQ paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids"
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write one <experiment>.txt report per experiment to DIR",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0

    output_dir = None
    if args.output:
        import pathlib

        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    ids = args.experiments or list(EXPERIMENTS)
    failures = 0
    for experiment_id in ids:
        result = run_experiment(experiment_id)
        report = format_result(result)
        print(report)
        print()
        if output_dir is not None:
            (output_dir / f"{experiment_id}.txt").write_text(report + "\n")
        failures += len(result.claims) - result.claims_held
    total_note = "all claims hold" if failures == 0 else f"{failures} claim(s) differ"
    print(f"done: {len(ids)} experiment(s), {total_note}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
