"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    usfq-experiments                 # run everything
    usfq-experiments fig18 fig19    # run a subset
    usfq-experiments --jobs 4       # fan out across worker processes
    usfq-experiments --list         # show available experiment ids
    python -m repro.experiments     # same as usfq-experiments

Exit codes: 0 = every claim holds (or ``--fail-on never``), 1 = at least
one claim differs, 2 = unknown experiment id.  Results are cached under
``--cache-dir`` keyed by the source tree's content, so an unchanged tree
re-runs near-instantly; any edit under ``src/repro`` recomputes.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.report import format_result
from repro.pulsesim.kernel import KERNEL_ENV, KERNELS
from repro.runner import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    build_manifest,
    run_suite,
    write_manifest,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usfq-experiments",
        description="Regenerate the U-SFQ paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids"
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write one <experiment>.txt report per experiment to DIR",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N|auto",
        help="worker processes for experiments and sweep points; "
        "'auto' uses one per CPU (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=str(DEFAULT_CACHE_DIR),
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always recompute; neither read nor write the result cache",
    )
    parser.add_argument(
        "--manifest",
        metavar="FILE",
        help="write the JSON run manifest here "
        "(default: <output dir>/manifest.json when --output is given)",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNELS,
        help="simulator kernel for this run (default: the REPRO_KERNEL "
        "environment variable, then 'auto'); results are bit-identical "
        "across kernels, only wall time differs",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="coalesce Monte-Carlo sweep points into vectorized batch-kernel "
        "calls where an experiment supports it (results are bit-identical "
        "to the per-point path)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("never", "claims"),
        default="claims",
        help="exit nonzero when claims differ (default: claims)",
    )
    parser.add_argument(
        "--measured-activity",
        action="store_true",
        help="swap table3 for its traced variant (table3-measured), which "
        "measures switching activity from a traced DPU run and reports "
        "measured vs assumed-0.5 power side by side",
    )
    args = parser.parse_args(argv)

    if args.kernel is not None:
        # Exported (not passed down call-by-call) so ProcessPoolExecutor
        # workers inherit the choice with --jobs > 1.
        os.environ[KERNEL_ENV] = args.kernel

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0

    output_dir = None
    if args.output:
        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)

    ids = args.experiments or list(EXPERIMENTS)
    if args.measured_activity:
        ids = ["table3-measured" if eid == "table3" else eid for eid in ids]
    cache = None if args.no_cache else ResultCache(pathlib.Path(args.cache_dir))
    try:
        run = run_suite(ids, jobs=args.jobs, cache=cache, batch=args.batch)
    except ConfigurationError as error:
        print(f"usfq-experiments: {error}", file=sys.stderr)
        return 2

    failures = 0
    for experiment_id in ids:
        result = run.outcomes[experiment_id].result
        report = format_result(result)
        print(report)
        print()
        if output_dir is not None:
            (output_dir / f"{experiment_id}.txt").write_text(report + "\n")
        failures += len(result.claims) - result.claims_held
    total_note = "all claims hold" if failures == 0 else f"{failures} claim(s) differ"
    print(f"done: {len(ids)} experiment(s), {total_note}")

    manifest_path = args.manifest
    if manifest_path is None and output_dir is not None:
        manifest_path = output_dir / "manifest.json"
    if manifest_path is not None:
        write_manifest(pathlib.Path(manifest_path), build_manifest(run, ids))

    if failures and args.fail_on == "claims":
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
