"""Fig 3: U-SFQ data representation and the unipolar multiplication examples.

The paper's two worked examples: with 3-bit resolution (N_max = 8) the
product decodes to 0.125 = 1/8; with 4-bit resolution (N_max = 16) to
0.375 = 6/16.  Both run on the structural NDRO multiplier.
"""

from __future__ import annotations

from repro.core.multiplier import UnipolarMultiplier
from repro.encoding.epoch import EpochSpec
from repro.experiments.report import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig03",
        "U-SFQ encodings and unipolar multiplication examples",
        ["bits", "n_max", "stream A (pulses)", "RL B (slot)", "out pulses", "decoded"],
    )

    # Example 1 (Fig 3b top): 3-bit, A = 0.5 (4 pulses), B = slot 2 -> 1/8.
    epoch3 = EpochSpec(bits=3)
    mult3 = UnipolarMultiplier(epoch3)
    count = mult3.run_counts(4, 2)
    result.add_row(3, 8, 4, 2, count, count / 8)
    result.add_claim(
        "3-bit example decodes to 1/N_max", "0.125", str(count / 8), count / 8 == 0.125
    )

    # Example 2 (Fig 3b bottom): 4-bit, result 6/16 = 0.375
    # (A = 0.75 as 12 pulses, B = slot 8: ceil(12*8/16) = 6).
    epoch4 = EpochSpec(bits=4)
    mult4 = UnipolarMultiplier(epoch4)
    count = mult4.run_counts(12, 8)
    result.add_row(4, 16, 12, 8, count, count / 16)
    result.add_claim(
        "4-bit example decodes to 6/16", "0.375", str(count / 16), count / 16 == 0.375
    )

    # Bipolar rescaling sanity rows.
    from repro.encoding.racelogic import RaceLogicCodec

    race = RaceLogicCodec(epoch4)
    for value in (-1.0, 0.0, 0.5, 1.0):
        slot = race.slot_for_bipolar(value)
        result.add_row(4, 16, "-", slot, "-", race.bipolar_of_slot(slot))
    result.notes.append(
        "bipolar Race Logic uses Id_b = 2 Id_u - 1; the last rows show the "
        "slot mapping for -1, 0, 0.5, 1"
    )
    return result
