"""Fig 19: FIR accuracy under error injection.

Reproduces the section 5.4.1 methodology: the golden 16-tap / 1-7-8-9 kHz
workload, quantisation SNRs, SNR-versus-error-rate sweeps for the binary
(bit-flip) and unary (pulse-loss, RL-loss, RL-delay) filters, the binary
SNR distribution at 1 % errors, and the error-rate effect on the unary
filter's recovered spectrum.

This is the heaviest experiment in the registry, and it decomposes into
independent error-injection studies, so the sweep is exposed as picklable
work units (:func:`sweep_points` / :func:`run_point` / :func:`assemble`)
that the experiment runner fans out across worker processes.  Every study
is seeded, so the assembled figure is bit-identical however the points are
scheduled.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dsp import errorinjection as ei
from repro.dsp.golden import make_golden_reference
from repro.dsp.snr import tone_power_db
from repro.experiments.report import ExperimentResult

ERROR_RATES = (0.0, 0.01, 0.05, 0.1, 0.2, 0.3)
BITS = 16

#: The structural cross-check runs real pulse streams through a simulated
#: JTL -> DropChannel fabric under the batch kernel: 256 Monte-Carlo lanes
#: per error rate, all rates coalesced into one vectorized run.
STRUCTURAL_BITS = 8
STRUCTURAL_LANES = 256
STRUCTURAL_SEED = 97

# One point per independent error-injection study; the int is the trial
# count for the SNR sweeps (unused by the other kinds).
Point = Tuple[str, str, int]


def sweep_points(trials: int = 5) -> List[Point]:
    """The independent studies behind Fig 19, heaviest first."""
    return [
        ("sweep", "binary", trials),
        ("sweep", "pulse_loss", trials),
        ("sweep", "rl_delay", trials),
        ("sweep", "rl_loss", trials),
        ("distribution", "", 0),
        ("spectra", "", 0),
        ("quant", "6", 0),
        ("quant", "16", 0),
    ] + [("structural", str(rate), 0) for rate in ERROR_RATES]


_STRUCTURAL_CACHE: dict = {}


def _structural_counts() -> np.ndarray:
    """Retained-pulse counts of the coalesced structural study.

    One :class:`~repro.pulsesim.BatchSimulator` run carries every
    ``(error rate, Monte-Carlo lane)`` combination: lane ``i`` of rate
    ``r`` gets its own seeded drop stream via ``set_drop_rates``, and a
    full-scale uniform pulse stream is broadcast to all lanes.  Per-lane
    RNG streams depend only on ``(seed, lane)``, so the per-rate slices
    are identical however the sweep points are scheduled.  The result is
    memoized per process — ``run_point`` slices it per rate, and
    :func:`run_points_batch` reads all slices from the single run.
    """
    counts = _STRUCTURAL_CACHE.get("counts")
    if counts is None:
        from repro.cells.interconnect import Jtl
        from repro.pulsesim import BatchSimulator, Circuit, DropChannel
        from repro.pulsesim.schedule import uniform_stream_times

        n_max = 1 << STRUCTURAL_BITS
        circuit = Circuit("fig19-structural")
        jtl = circuit.add(Jtl("j"))
        channel = circuit.add(
            DropChannel("loss", drop_rate=0.0, seed=STRUCTURAL_SEED)
        )
        circuit.connect(jtl, "q", channel, "a", delay=100)
        circuit.probe(channel, "q")
        sim = BatchSimulator(circuit, batch=len(ERROR_RATES) * STRUCTURAL_LANES)
        sim.set_drop_rates(channel, np.repeat(ERROR_RATES, STRUCTURAL_LANES))
        sim.schedule_train(jtl, "a", uniform_stream_times(n_max, n_max, 1_000))
        sim.run()
        counts = sim.port_counts(channel, "q").reshape(
            len(ERROR_RATES), STRUCTURAL_LANES
        )
        _STRUCTURAL_CACHE["counts"] = counts
    return counts


def _structural_partial(rate_index: int) -> dict:
    retained = _structural_counts()[rate_index] / (1 << STRUCTURAL_BITS)
    return {
        "kind": "structural",
        "rate": ERROR_RATES[rate_index],
        "lanes": STRUCTURAL_LANES,
        "mean_retained": float(retained.mean()),
        "min_retained": float(retained.min()),
        "max_retained": float(retained.max()),
    }


def run_point(point: Point) -> dict:
    """Run one study; returns plain floats/lists so results pickle cheaply."""
    kind, arg, trials = point
    golden = make_golden_reference()
    if kind == "sweep":
        if arg == "binary":
            sweep = ei.sweep_binary_bit_flips(golden, BITS, ERROR_RATES, trials=trials)
        else:
            sweep = ei.sweep_unary_errors(golden, BITS, ERROR_RATES, arg, trials=trials)
        return {
            "kind": kind,
            "mode": sweep.mode,
            "rates": list(sweep.error_rates),
            "mean": list(sweep.mean_db),
            "min": list(sweep.min_db),
            "max": list(sweep.max_db),
        }
    if kind == "quant":
        # Quantisation-only SNRs ("for 16 bits, the calculated SNR is 24 dB
        # and for 6 bits is 15 dB").
        from repro.core.fir import UnaryFirFilter
        from repro.dsp.snr import snr_db
        from repro.encoding.epoch import EpochSpec

        bits = int(arg)
        fir = UnaryFirFilter(EpochSpec(bits), golden.h, exact_counting=False)
        return {
            "kind": kind,
            "bits": bits,
            "snr": float(snr_db(golden.target, fir.process(golden.x), skip=golden.skip)),
        }
    if kind == "distribution":
        # Fig 19b: binary SNR distribution at 1 % errors.  A short record
        # keeps the per-trial flip count low, so single flips dominate and
        # the SNR spread reflects which bit each flip hits.
        short_golden = make_golden_reference(n_samples=600)
        distribution = ei.binary_snr_distribution(short_golden, BITS, 0.01, trials=60)
        return {
            "kind": kind,
            "mean": float(np.mean(distribution)),
            "std": float(np.std(distribution)),
            "min": float(np.min(distribution)),
            "max": float(np.max(distribution)),
        }
    if kind == "spectra":
        # Fig 19c: unary output spectrum under error — the recovered 1 kHz
        # tone versus the filtered-out interferers, clean and at 50 % loss.
        spectra = ei.unary_spectra_under_error(golden, BITS, (0.0, 0.5))
        tones = []
        for tone in (1_000.0, 7_000.0, 8_000.0, 9_000.0):
            clean_db = tone_power_db(
                spectra[0.0][golden.skip:], golden.sample_rate_hz, tone
            )
            lossy_db = tone_power_db(
                spectra[0.5][golden.skip:], golden.sample_rate_hz, tone
            )
            tones.append((tone, float(clean_db), float(lossy_db)))
        return {"kind": kind, "tones": tones}
    if kind == "structural":
        return _structural_partial(ERROR_RATES.index(float(arg)))
    raise ValueError(f"unknown fig19 sweep point {point!r}")


def run_points_batch(points: List[Point]) -> List[dict]:
    """Run sweep points with Monte-Carlo coalescing.

    The per-rate structural points all read from one vectorized
    :class:`~repro.pulsesim.BatchSimulator` run instead of launching a
    simulation each; every other point delegates to :func:`run_point`.
    Partials are bit-identical to the per-point path, so cached results
    mix freely between the two modes.
    """
    partials = []
    for point in points:
        kind, arg, _trials = point
        if kind == "structural":
            _structural_counts()  # one shared run for all structural points
            partials.append(_structural_partial(ERROR_RATES.index(float(arg))))
        else:
            partials.append(run_point(point))
    return partials


def assemble(partials: List[dict]) -> ExperimentResult:
    """Combine study partials (in :func:`sweep_points` order) into Fig 19."""
    by_kind = {}
    for partial in partials:
        if partial["kind"] == "structural":
            key = ("structural", partial["rate"])
        else:
            key = (partial["kind"], partial.get("mode") or partial.get("bits", ""))
        by_kind[key] = partial
    sweeps = [
        by_kind[("sweep", "binary bit flips")],
        by_kind[("sweep", "unary pulse_loss")],
        by_kind[("sweep", "unary rl_delay")],
        by_kind[("sweep", "unary rl_loss")],
    ]

    result = ExperimentResult(
        "fig19",
        "FIR accuracy under errors (16 taps, 1/7/8/9 kHz workload)",
        ["error mode", "rate", "SNR mean (dB)", "SNR min (dB)", "SNR max (dB)"],
    )
    golden = make_golden_reference()

    for sweep in sweeps:
        for i, rate in enumerate(sweep["rates"]):
            result.add_row(
                sweep["mode"], rate,
                round(sweep["mean"][i], 1),
                round(sweep["min"][i], 1),
                round(sweep["max"][i], 1),
            )

    result.add_claim(
        "golden float FIR output SNR", "25.7 dB",
        f"{golden.golden_snr_db:.1f} dB",
        abs(golden.golden_snr_db - 25.7) < 1.0,
    )

    quantised = {bits: by_kind[("quant", bits)]["snr"] for bits in (6, 16)}
    for bits in (6, 16):
        result.add_row(f"unary quantisation only ({bits} bits)", 0.0,
                       round(quantised[bits], 1), "-", "-")
    result.add_claim(
        "quantisation SNR at 16 bits", "24 dB",
        f"{quantised[16]:.1f} dB", 22 <= quantised[16] <= 27,
    )
    result.add_claim(
        "quantisation degrades at 6 bits", "15 dB",
        f"{quantised[6]:.1f} dB",
        12 <= quantised[6] <= 26 and quantised[6] <= quantised[16] + 0.5,
    )

    binary, pulse_loss, rl_delay, rl_loss = sweeps
    binary_drop = binary["mean"][0] - binary["mean"][-1]
    unary_drop = pulse_loss["mean"][0] - pulse_loss["mean"][-1]
    result.add_claim(
        "binary SNR degradation at 30 % errors", "~30 dB",
        f"{binary_drop:.1f} dB", binary_drop > 15,
    )
    result.add_claim(
        "unary SNR degradation at 30 % pulse loss", "~4 dB",
        f"{unary_drop:.1f} dB", 1.0 <= unary_drop <= 7.0,
    )
    result.add_claim(
        "unary degrades far less than binary", "4 dB vs 30 dB",
        f"{unary_drop:.1f} dB vs {binary_drop:.1f} dB",
        unary_drop < binary_drop / 3.0,
    )
    rl_loss_drop = rl_loss["mean"][0] - rl_loss["mean"][1]
    result.add_claim(
        "a lost RL pulse is the damaging error mode",
        "large effect (all information in one pulse)",
        f"{rl_loss_drop:.1f} dB drop at 1 %",
        rl_loss_drop > 5.0,
    )
    delay_drop = rl_delay["mean"][0] - rl_delay["mean"][-1]
    result.add_claim(
        "RL delay errors behave like pulse loss (small)",
        "similar to error (i)",
        f"{delay_drop:.1f} dB drop at 30 %",
        delay_drop < 7.0,
    )

    distribution = by_kind[("distribution", "")]
    result.notes.append(
        "binary SNR distribution at 1 % bit flips: "
        f"mean {distribution['mean']:.1f} dB, std {distribution['std']:.1f} dB, "
        f"range [{distribution['min']:.1f}, {distribution['max']:.1f}] dB "
        "(damage depends on which bit flips)"
    )
    result.add_claim(
        "binary error damage varies wildly with bit significance",
        "large SNR variance",
        f"std {distribution['std']:.1f} dB",
        distribution["std"] > 2.0,
    )

    tones = by_kind[("spectra", "")]["tones"]
    for tone, clean_db, lossy_db in tones:
        result.add_row(
            f"spectrum @ {tone / 1000:.0f} kHz (dB re peak)", 0.5,
            round(clean_db, 1), round(lossy_db, 1), "-",
        )
    tone_clean, tone_noisy = tones[0][1], tones[0][2]
    result.add_claim(
        "the recovered tone survives 50 % pulse loss (Fig 19c)",
        "1 kHz peak intact, noise floor rises",
        f"{tone_clean:.1f} dB -> {tone_noisy:.1f} dB",
        tone_noisy > -3.0,
    )

    # Structural cross-check: the accuracy model above injects pulse loss
    # functionally; here real pulse streams traverse a simulated
    # JTL -> DropChannel fabric (batch kernel, 256 lanes per rate) and the
    # retained fraction must track 1 - rate.
    structural = [by_kind[("structural", rate)] for rate in ERROR_RATES]
    for part in structural:
        result.add_row(
            f"structural pulse loss ({part['lanes']} lanes)", part["rate"],
            round(part["mean_retained"], 3),
            round(part["min_retained"], 3),
            round(part["max_retained"], 3),
        )
    worst = max(
        abs(part["mean_retained"] - (1.0 - part["rate"])) for part in structural
    )
    result.add_claim(
        "structural DropChannel retains ~(1 - rate) of stream pulses",
        "retention tracks 1 - error rate",
        f"max |mean retained - (1 - rate)| = {worst:.4f}",
        worst < 0.02,
    )
    result.notes.append(
        "regenerated under the epoch-boundary codec fixes: the functional "
        "SNR rows are unchanged (the accuracy model quantises via np.rint, "
        "not the codecs); the structural rows are new (batch kernel)"
    )
    return result


def run(trials: int = 5) -> ExperimentResult:
    return assemble([run_point(point) for point in sweep_points(trials)])
