"""Fig 19: FIR accuracy under error injection.

Reproduces the section 5.4.1 methodology: the golden 16-tap / 1-7-8-9 kHz
workload, quantisation SNRs, SNR-versus-error-rate sweeps for the binary
(bit-flip) and unary (pulse-loss, RL-loss, RL-delay) filters, the binary
SNR distribution at 1 % errors, and the error-rate effect on the unary
filter's recovered spectrum.
"""

from __future__ import annotations

import numpy as np

from repro.dsp import errorinjection as ei
from repro.dsp.golden import make_golden_reference
from repro.dsp.snr import tone_power_db
from repro.experiments.report import ExperimentResult

ERROR_RATES = (0.0, 0.01, 0.05, 0.1, 0.2, 0.3)
BITS = 16


def run(trials: int = 5) -> ExperimentResult:
    result = ExperimentResult(
        "fig19",
        "FIR accuracy under errors (16 taps, 1/7/8/9 kHz workload)",
        ["error mode", "rate", "SNR mean (dB)", "SNR min (dB)", "SNR max (dB)"],
    )
    golden = make_golden_reference()

    sweeps = [
        ei.sweep_binary_bit_flips(golden, BITS, ERROR_RATES, trials=trials),
        ei.sweep_unary_errors(golden, BITS, ERROR_RATES, "pulse_loss", trials=trials),
        ei.sweep_unary_errors(golden, BITS, ERROR_RATES, "rl_delay", trials=trials),
        ei.sweep_unary_errors(golden, BITS, ERROR_RATES, "rl_loss", trials=trials),
    ]
    for sweep in sweeps:
        for i, rate in enumerate(sweep.error_rates):
            result.add_row(
                sweep.mode, rate,
                round(sweep.mean_db[i], 1),
                round(sweep.min_db[i], 1),
                round(sweep.max_db[i], 1),
            )

    result.add_claim(
        "golden float FIR output SNR", "25.7 dB",
        f"{golden.golden_snr_db:.1f} dB",
        abs(golden.golden_snr_db - 25.7) < 1.0,
    )

    # Quantisation-only SNRs ("for 16 bits, the calculated SNR is 24 dB and
    # for 6 bits is 15 dB").
    from repro.core.fir import UnaryFirFilter
    from repro.dsp.snr import snr_db
    from repro.encoding.epoch import EpochSpec

    quantised = {}
    for bits in (6, 16):
        fir = UnaryFirFilter(EpochSpec(bits), golden.h, exact_counting=False)
        quantised[bits] = snr_db(golden.target, fir.process(golden.x), skip=golden.skip)
        result.add_row(f"unary quantisation only ({bits} bits)", 0.0,
                       round(quantised[bits], 1), "-", "-")
    result.add_claim(
        "quantisation SNR at 16 bits", "24 dB",
        f"{quantised[16]:.1f} dB", 22 <= quantised[16] <= 27,
    )
    result.add_claim(
        "quantisation degrades at 6 bits", "15 dB",
        f"{quantised[6]:.1f} dB",
        12 <= quantised[6] <= 26 and quantised[6] <= quantised[16] + 0.5,
    )

    binary, pulse_loss, rl_delay, rl_loss = sweeps
    binary_drop = binary.mean_db[0] - binary.mean_db[-1]
    unary_drop = pulse_loss.mean_db[0] - pulse_loss.mean_db[-1]
    result.add_claim(
        "binary SNR degradation at 30 % errors", "~30 dB",
        f"{binary_drop:.1f} dB", binary_drop > 15,
    )
    result.add_claim(
        "unary SNR degradation at 30 % pulse loss", "~4 dB",
        f"{unary_drop:.1f} dB", 1.0 <= unary_drop <= 7.0,
    )
    result.add_claim(
        "unary degrades far less than binary", "4 dB vs 30 dB",
        f"{unary_drop:.1f} dB vs {binary_drop:.1f} dB",
        unary_drop < binary_drop / 3.0,
    )
    rl_loss_drop = rl_loss.mean_db[0] - rl_loss.mean_db[1]
    result.add_claim(
        "a lost RL pulse is the damaging error mode",
        "large effect (all information in one pulse)",
        f"{rl_loss_drop:.1f} dB drop at 1 %",
        rl_loss_drop > 5.0,
    )
    delay_drop = rl_delay.mean_db[0] - rl_delay.mean_db[-1]
    result.add_claim(
        "RL delay errors behave like pulse loss (small)",
        "similar to error (i)",
        f"{delay_drop:.1f} dB drop at 30 %",
        delay_drop < 7.0,
    )

    # Fig 19b: binary SNR distribution at 1 % errors.  A short record keeps
    # the per-trial flip count low, so single flips dominate and the SNR
    # spread reflects which bit each flip hits.
    short_golden = make_golden_reference(n_samples=600)
    distribution = ei.binary_snr_distribution(short_golden, BITS, 0.01, trials=60)
    result.notes.append(
        "binary SNR distribution at 1 % bit flips: "
        f"mean {np.mean(distribution):.1f} dB, std {np.std(distribution):.1f} dB, "
        f"range [{np.min(distribution):.1f}, {np.max(distribution):.1f}] dB "
        "(damage depends on which bit flips)"
    )
    result.add_claim(
        "binary error damage varies wildly with bit significance",
        "large SNR variance",
        f"std {np.std(distribution):.1f} dB",
        np.std(distribution) > 2.0,
    )

    # Fig 19c: unary output spectrum under error — the recovered 1 kHz tone
    # versus the filtered-out interferers, clean and at 50 % pulse loss.
    spectra = ei.unary_spectra_under_error(golden, BITS, (0.0, 0.5))
    for tone in (1_000.0, 7_000.0, 8_000.0, 9_000.0):
        clean_db = tone_power_db(
            spectra[0.0][golden.skip:], golden.sample_rate_hz, tone
        )
        lossy_db = tone_power_db(
            spectra[0.5][golden.skip:], golden.sample_rate_hz, tone
        )
        result.add_row(
            f"spectrum @ {tone / 1000:.0f} kHz (dB re peak)", 0.5,
            round(clean_db, 1), round(lossy_db, 1), "-",
        )
    tone_clean = tone_power_db(spectra[0.0][golden.skip:], golden.sample_rate_hz, 1_000.0)
    tone_noisy = tone_power_db(spectra[0.5][golden.skip:], golden.sample_rate_hz, 1_000.0)
    result.add_claim(
        "the recovered tone survives 50 % pulse loss (Fig 19c)",
        "1 kHz peak intact, noise floor rises",
        f"{tone_clean:.1f} dB -> {tone_noisy:.1f} dB",
        tone_noisy > -3.0,
    )
    return result
