"""Table 1: the RSFQ gate library, verified behaviourally.

Prints the cell catalogue (acronym, JJs, delay, summary) and runs a
one-line behavioural check of each gate's Table 1 semantics on the pulse
simulator.
"""

from __future__ import annotations

from repro.cells import (
    Dff,
    Dff2,
    FirstArrival,
    Merger,
    Ndro,
    Splitter,
    Tff2,
)
from repro.cells.library import CELL_SPECS
from repro.experiments.report import ExperimentResult
from repro.pulsesim import Circuit, Simulator
from repro.units import to_ps


def _one_shot(cell, stimulus, outputs):
    """Run one cell with (port, time) stimuli; return output pulse counts."""
    circuit = Circuit()
    circuit.add(cell)
    probes = {port: circuit.probe(cell, port) for port in outputs}
    sim = Simulator(circuit)
    for port, time in stimulus:
        sim.schedule_input(cell, port, time)
    sim.run()
    return {port: probe.count() for port, probe in probes.items()}


def run() -> ExperimentResult:
    result = ExperimentResult(
        "table1",
        "RSFQ gate library (behavioural checks of the Table 1 semantics)",
        ["cell", "JJs", "delay (ps)", "summary"],
    )
    for name, spec in CELL_SPECS.items():
        result.add_row(spec.acronym, spec.jj_count, to_ps(spec.delay_fs), spec.summary)

    checks = [
        (
            "splitter: a pulse at both outputs per input pulse",
            _one_shot(Splitter("s"), [("a", 0)], ("q1", "q2")),
            {"q1": 1, "q2": 1},
        ),
        (
            "merger: a pulse at the output for a pulse at either input",
            _one_shot(Merger("m"), [("a", 0), ("b", 50_000)], ("q",)),
            {"q": 2},
        ),
        (
            "FA: output at the first arriving input",
            _one_shot(FirstArrival("fa"), [("a", 10_000), ("b", 20_000)], ("q",)),
            {"q": 1},
        ),
        (
            "DFF: S sets, clock resets and emits",
            _one_shot(Dff("d"), [("d", 0), ("clk", 10_000), ("clk", 20_000)], ("q",)),
            {"q": 1},
        ),
        (
            "DFF2: A sets; C1/C2 reset and pulse Y1/Y2",
            _one_shot(
                Dff2("d"),
                [("a", 0), ("c1", 10_000), ("a", 20_000), ("c2", 30_000)],
                ("y1", "y2"),
            ),
            {"y1": 1, "y2": 1},
        ),
        (
            "TFF2: alternating output ports",
            _one_shot(Tff2("t"), [("a", 0), ("a", 10_000), ("a", 20_000)], ("q1", "q2")),
            {"q1": 2, "q2": 1},
        ),
        (
            "NDRO: CLK reads the state without altering it",
            _one_shot(
                Ndro("n"),
                [("set", 0), ("clk", 10_000), ("clk", 20_000), ("reset", 25_000), ("clk", 30_000)],
                ("q",),
            ),
            {"q": 2},
        ),
    ]
    for description, got, expected in checks:
        result.add_claim(description, str(expected), str(got), got == expected)

    result.notes.append(
        "full per-cell semantics (priorities, collisions, hazards) are "
        "covered by tests/cells/"
    )
    return result
