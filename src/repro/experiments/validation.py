"""Cross-validation matrix: structural netlists vs functional models.

Not a paper figure — the reproduction's own soundness check, runnable as
``usfq-experiments validation``.  Every U-SFQ building block exists twice
in this library (a pulse-level netlist and a closed-form model); this
experiment sweeps randomised operands through both and reports exact-match
rates.  Anything below 100 % would mean the quantisation semantics the
evaluation models rely on diverge from what the circuits actually do.
"""

from __future__ import annotations

import random

from repro.core.counting import CountingNetwork, counting_network_output_count
from repro.core.dpu import DotProductUnit, DpuModel
from repro.core.fir_structural import StructuralUnaryFir
from repro.core.multiplier import (
    BipolarMultiplier,
    UnipolarMultiplier,
    bipolar_product_count,
    unipolar_product_count,
)
from repro.core.pe import PEModel, ProcessingElement
from repro.encoding.epoch import EpochSpec
from repro.experiments.report import ExperimentResult
from repro.pulsesim.schedule import uniform_stream_times
from repro.units import ps


def run(trials: int = 24, seed: int = 2022) -> ExperimentResult:
    rng = random.Random(seed)
    result = ExperimentResult(
        "validation",
        "Structural netlists vs functional models (exact-match rates)",
        ["block", "configuration", "trials", "exact matches"],
    )

    epoch4 = EpochSpec(bits=4)
    n_max = epoch4.n_max

    def record(block, config, matches, total):
        result.add_row(block, config, total, matches)
        result.add_claim(
            f"{block} matches its functional model",
            f"{total}/{total}",
            f"{matches}/{total}",
            matches == total,
        )

    # Unipolar multiplier.
    mult = UnipolarMultiplier(epoch4)
    matches = sum(
        mult.run_counts(a, b) == unipolar_product_count(a, b, n_max)
        for a, b in _pairs(rng, n_max, trials)
    )
    record("unipolar multiplier", "4 bits", matches, trials)

    # Bipolar multiplier.
    bip = BipolarMultiplier(epoch4)
    matches = sum(
        bip.run_counts(a, b) == bipolar_product_count(a, b, n_max)
        for a, b in _pairs(rng, n_max, trials)
    )
    record("bipolar multiplier", "4 bits", matches, trials)

    # Counting network.
    network = CountingNetwork(4)
    matches = 0
    for _ in range(trials):
        counts = [rng.randint(0, n_max) for _ in range(4)]
        times = [uniform_stream_times(n, n_max, epoch4.slot_fs) for n in counts]
        matches += network.run(times) == counting_network_output_count(counts)
    record("counting network", "4:1, aligned streams", matches, trials)

    # Processing element.
    pe = ProcessingElement(epoch4)
    pe_model = PEModel(epoch4)
    matches = 0
    for _ in range(trials):
        operands = [rng.randint(0, n_max) for _ in range(3)]
        matches += pe.run_mac(*operands) == pe_model.mac_counts(*operands)
    record("processing element", "4 bits, MAC", matches, trials)

    # Unipolar DPU (single epoch).
    dpu = DotProductUnit(epoch4, 4)
    dpu_model = DpuModel(epoch4, 4)
    matches = 0
    for _ in range(trials):
        slots = [rng.randint(0, n_max) for _ in range(4)]
        counts = [rng.randint(0, n_max) for _ in range(4)]
        matches += dpu.run_counts(slots, counts) == dpu_model.output_count(
            slots, counts
        )
    record("dot-product unit", "4 lanes, 4 bits", matches, trials)

    # Bipolar DPU (wider slots clear the complement-path alignment).
    epoch_wide = EpochSpec(bits=4, slot_fs=ps(30))
    dpu_b = DotProductUnit(epoch_wide, 4, bipolar=True)
    dpu_b_model = DpuModel(epoch_wide, 4, bipolar=True)
    matches = 0
    for _ in range(trials):
        slots = [rng.randint(0, n_max) for _ in range(4)]
        counts = [rng.randint(0, n_max) for _ in range(4)]
        matches += dpu_b.run_counts(slots, counts) == dpu_b_model.output_count(
            slots, counts
        )
    record("bipolar dot-product unit", "4 lanes, 4 bits", matches, trials)

    # Structural FIR: multi-epoch streaming against the stateful reference.
    fir = StructuralUnaryFir(epoch4, [3, 7, 7, 3])
    fir_trials = max(4, trials // 4)
    matches = 0
    for _ in range(fir_trials):
        slots = [rng.randint(0, n_max) for _ in range(6)]
        matches += fir.process_slots(slots) == fir.reference_counts(slots)
    record("structural FIR", "4 taps, 4 bits, 6 epochs", matches, fir_trials)

    result.notes.append(
        "the structural layer runs every pulse through behavioural cell "
        "state machines; the functional layer is closed-form — exact "
        "agreement is what licenses the evaluation-scale sweeps"
    )
    return result


def _pairs(rng: random.Random, n_max: int, trials: int):
    return [(rng.randint(0, n_max), rng.randint(0, n_max)) for _ in range(trials)]
