"""Fig 11: integrator-buffer waveforms.

Buffers a Race-Logic pulse through the inductor-integrator model and
renders the six Fig 11 signals; checks the architectural contract (the
output pulse reappears exactly one epoch later, i.e. the RL value is
preserved) and the analog shape (current peaks at I_c half an epoch after
the input).
"""

from __future__ import annotations

from repro.analog.integrator import IntegratorBuffer
from repro.encoding.epoch import EpochSpec
from repro.encoding.racelogic import RaceLogicCodec
from repro.experiments.report import ExperimentResult
from repro.units import to_ns


def run() -> ExperimentResult:
    result = ExperimentResult(
        "fig11",
        "Integrator-based RL buffer waveforms",
        ["signal", "events (ns)", "sparkline"],
    )

    epoch = EpochSpec(bits=5)
    race = RaceLogicCodec(epoch)
    slot = 11
    input_time = epoch.slot_time(slot)
    buffer = IntegratorBuffer(epoch.duration_fs)
    traces = buffer.simulate(input_time)

    for trace in traces.all_traces():
        events = ", ".join(f"{to_ns(int(t)):.2f}" for t in trace.peak_times())
        result.add_row(trace.label, events or "-", f"|{trace.ascii_sparkline(56)}|")

    out_time = buffer.output_time(input_time)
    out_slot = race.decode_time(out_time, epoch_index=1)
    result.add_claim(
        "output delayed by exactly one epoch",
        f"{to_ns(input_time + epoch.duration_fs):.2f} ns",
        f"{to_ns(out_time):.2f} ns",
        out_time == input_time + epoch.duration_fs,
    )
    result.add_claim(
        "RL value preserved across the buffer",
        f"slot {slot}",
        f"slot {out_slot}",
        out_slot == slot,
    )
    peak = max(
        buffer.current_ua(t, input_time)
        for t in range(0, 2 * epoch.duration_fs, epoch.slot_fs)
    )
    result.add_claim(
        "inductor current peaks at I_c after half an epoch",
        f"{buffer.critical_current_ua:.0f} uA",
        f"{peak:.0f} uA",
        abs(peak - buffer.critical_current_ua) < 1.0,
    )
    result.notes.append(
        "charging ramp reaches I_c in half an epoch, discharge completes the "
        "other half: the pulse's slot (its value) is time-shifted unchanged"
    )
    return result
