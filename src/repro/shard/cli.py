"""Command-line interface for multi-fabric sharding over the temporal NoC.

Usage::

    usfq-shard partition pnm --shards 4       # emit the ShardPlan JSON
    usfq-shard plan pnm --shards 4            # human-readable plan summary
    usfq-shard run pnm --shards 4 --jobs auto # partitioned run + equivalence
    python -m repro.shard ...                 # same as usfq-shard

``partition`` cuts a shipped block (the ``usfq-lint`` registry) into K
fabric shards and prints the plan as JSON — the archivable artifact.
``plan`` prints the same decision as a summary: per-shard JJ balance,
every cut with its static traffic bound, and the conservative-sync
lookahead.  ``run`` drives the partitioned system with a synthetic pulse
train and checks the probed ports bit-identical against a monolithic
sealed run of the same NoC-augmented circuit.

Exit codes: 0 = success (for ``run``: partitioned == monolithic), 1 =
``run`` divergence, 2 = bad arguments or unknown block.  Blocks built
from tie-order-sensitive cells (BFF/DFF2 routing) may legitimately
diverge when two pulses tie to the femtosecond; stagger the stimulus
(``--stagger-fs``) or pick another block.  Blocks containing composite
cells outside the export registry (``Balancer``, ``PulseIntegrator``)
cannot be sharded — shard workers rebuild their piece via
``import_netlist`` — and exit 2 with the importer's diagnostic.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.lint.blocks import SHIPPED_BLOCKS, BuiltBlock, build_shipped_block
from repro.pulsesim.simulator import Simulator
from repro.shard.engine import ShardSimulator
from repro.shard.partition import (
    LinkSpec,
    ShardPlan,
    build_noc_circuit,
    plan_partition,
)


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("block", metavar="BLOCK",
                     help="shipped block name (see --list-blocks)")
    sub.add_argument("--shards", "-k", type=int, default=2, metavar="K",
                     help="number of fabric shards (default: 2)")
    sub.add_argument("--serialization-fs", type=int, default=None,
                     metavar="FS", help="NoC link serialization delay")
    sub.add_argument("--hop-latency-fs", type=int, default=None,
                     metavar="FS", help="NoC per-hop latency")
    sub.add_argument("--fifo-depth", type=int, default=None, metavar="N",
                     help="NoC link FIFO depth")


def _link_spec(args: argparse.Namespace) -> Optional[LinkSpec]:
    overrides = {
        key: value
        for key, value in (
            ("serialization_fs", args.serialization_fs),
            ("hop_latency_fs", args.hop_latency_fs),
            ("fifo_depth", args.fifo_depth),
        )
        if value is not None
    }
    return LinkSpec(**overrides) if overrides else None


def _plan_for(args: argparse.Namespace) -> "tuple[BuiltBlock, ShardPlan]":
    built = build_shipped_block(args.block)
    for element, port in built.observed_outputs:
        if not built.circuit._taps.get((id(element), port)):
            built.circuit.probe(element, port)
    plan = plan_partition(
        built.circuit,
        args.shards,
        link=_link_spec(args),
        entry_points=built.entry_points,
    )
    return built, plan


def _plan_summary(plan: ShardPlan) -> Dict[str, Any]:
    return {
        "circuit": plan.circuit_name,
        "num_shards": plan.num_shards,
        "cells_per_shard": [
            len(plan.cells_of(shard)) for shard in range(plan.num_shards)
        ],
        "jj_per_shard": list(plan.jj_by_shard),
        "cuts": len(plan.cuts),
        "cut_traffic_hi": plan.cut_traffic_hi,
        "lookahead_fs": plan.lookahead_fs,
        "link": {
            "serialization_fs": plan.link.serialization_fs,
            "hop_latency_fs": plan.link.hop_latency_fs,
            "fifo_depth": plan.link.fifo_depth,
        },
    }


def _cmd_partition(args: argparse.Namespace) -> int:
    _built, plan = _plan_for(args)
    text = plan.dumps()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote plan to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    _built, plan = _plan_for(args)
    summary = _plan_summary(plan)
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"{plan.circuit_name}: {plan.num_shards} shard(s)")
    for shard in range(plan.num_shards):
        print(f"  shard {shard}: {len(plan.cells_of(shard)):4d} cell(s), "
              f"{plan.jj_by_shard[shard]:6d} JJ")
    print(f"  cuts: {len(plan.cuts)} "
          f"(static traffic bound {plan.cut_traffic_hi} pulse(s))")
    for cut in plan.cuts:
        print(f"    {cut.link}: {cut.source} -> {cut.sink} "
              f"[shard {cut.source_shard} -> {cut.sink_shard}, "
              f"{cut.hops} hop(s), <= {cut.traffic_hi} pulse(s)]")
    if plan.lookahead_fs is None:
        print("  lookahead: n/a (no cuts; shards are independent)")
    else:
        print(f"  lookahead: {plan.lookahead_fs} fs per sync window")
    return 0


def _stimulus(built: BuiltBlock, pulses: int, gap_fs: int,
              stagger_fs: int) -> List["tuple[str, str, List[int]]"]:
    trains = []
    for index, (element, port) in enumerate(built.entry_points):
        offset = index * stagger_fs
        trains.append(
            (element.name, port,
             [offset + k * gap_fs for k in range(pulses)])
        )
    return trains


def _cmd_run(args: argparse.Namespace) -> int:
    built, plan = _plan_for(args)
    trains = _stimulus(built, args.pulses, args.gap_fs, args.stagger_fs)

    report: Dict[str, Any] = {"plan": _plan_summary(plan), "check": not args.no_check}

    mono_side: Optional[Dict[str, Any]] = None
    if not args.no_check:
        mono = build_noc_circuit(built.circuit, plan)
        sim = Simulator(mono, kernel="sealed")
        for cell, port, times in trains:
            sim.schedule_train(mono[cell], port, times)
        start = perf_counter()
        stats = sim.run()
        mono_side = {
            "events": stats.events_processed,
            "pulses": stats.pulses_emitted,
            "now": sim.now,
            "wall_s": round(perf_counter() - start, 6),
        }
        mono_recordings = {
            tap.probe.label: list(tap.probe.times)
            for taps in mono._taps.values()
            for tap in taps
        }
        report["monolithic"] = mono_side

    with ShardSimulator(built.circuit, plan, jobs=args.jobs) as sharded:
        for cell, port, times in trains:
            sharded.schedule_train(cell, port, times)
        merged = sharded.run()
        shard_side = {
            "events": merged.events_processed,
            "pulses": merged.pulses_emitted,
            "now": sharded.now,
            "windows": sharded.windows,
            "jobs": sharded.jobs,
            "wall_s": round(merged.wall_s, 6),
            "noc_drops": sharded.noc_drops(),
        }
        recordings = sharded.recordings()
    report["sharded"] = shard_side

    ok = True
    if mono_side is not None:
        ok = (
            recordings == mono_recordings
            and mono_side["events"] == shard_side["events"]
            and mono_side["pulses"] == shard_side["pulses"]
            and mono_side["now"] == shard_side["now"]
        )
        report["identical"] = ok

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"{plan.circuit_name}: {plan.num_shards} shard(s), "
              f"{len(plan.cuts)} cut(s), {shard_side['windows']} window(s), "
              f"jobs={shard_side['jobs']}")
        print(f"  sharded:    {shard_side['events']} events, "
              f"{shard_side['pulses']} pulses, now={shard_side['now']} fs, "
              f"{shard_side['wall_s']} s")
        if mono_side is not None:
            print(f"  monolithic: {mono_side['events']} events, "
                  f"{mono_side['pulses']} pulses, now={mono_side['now']} fs, "
                  f"{mono_side['wall_s']} s")
            print(f"  probed ports {'IDENTICAL' if ok else 'DIVERGED'}")
        drops = sum(shard_side["noc_drops"].values())
        if drops:
            print(f"  WARNING: {drops} pulse(s) dropped at NoC link FIFOs")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usfq-shard",
        description=(
            "Partition a shipped U-SFQ block into fabric shards joined by "
            "temporal NoC links, and run the shards as synchronized worker "
            "processes."
        ),
    )
    parser.add_argument("--list-blocks", action="store_true",
                        help="list partitionable block names and exit")
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")

    partition = commands.add_parser(
        "partition", help="emit a ShardPlan as JSON")
    _add_common(partition)
    partition.add_argument("--output", metavar="FILE",
                           help="write the plan JSON here instead of stdout")

    plan = commands.add_parser(
        "plan", help="summarize the partition decision")
    _add_common(plan)
    plan.add_argument("--json", action="store_true",
                      help="emit the summary as JSON")

    run = commands.add_parser(
        "run", help="run the partitioned system and check equivalence")
    _add_common(run)
    run.add_argument("--jobs", default="1", metavar="N|auto",
                     help="worker processes; 'auto' = one per CPU "
                     "(default: 1, in-process)")
    run.add_argument("--pulses", type=int, default=32, metavar="N",
                     help="stimulus pulses per entry point (default: 32)")
    run.add_argument("--gap-fs", type=int, default=50_000, metavar="FS",
                     help="stimulus inter-pulse gap (default: 50000)")
    run.add_argument("--stagger-fs", type=int, default=137, metavar="FS",
                     help="per-entry-point stimulus offset (default: 137)")
    run.add_argument("--no-check", action="store_true",
                     help="skip the monolithic reference run")
    run.add_argument("--json", action="store_true",
                     help="emit the run report as JSON")

    args = parser.parse_args(argv)
    if args.list_blocks:
        for entry in SHIPPED_BLOCKS.values():
            print(f"{entry.name:20s} {entry.description}")
        return 0
    if args.command is None:
        parser.error("pass a command: partition, plan, or run")

    handler = {
        "partition": _cmd_partition,
        "plan": _cmd_plan,
        "run": _cmd_run,
    }[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print(f"usfq-shard: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
