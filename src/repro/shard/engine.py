"""Conservative parallel execution of a sharded NoC circuit.

:class:`ShardSimulator` runs every shard of a
:class:`~repro.shard.partition.ShardPlan` in its own worker process (one
:class:`~repro.parallel.ProcessActor` per shard) and synchronizes them
with a windowed Chandy–Misra–Bryant scheme:

* the **lookahead** ``L`` is the plan's compile-time minimum cross-shard
  latency — ``min(NocLink latency + cut-wire delay)`` over all cuts, every
  term proven positive at construction (the same ``element.delay +
  wire.delay > 0`` argument behind the sealed kernel's monotonic fast
  path);
* each round, the coordinator takes ``tmin`` = the earliest pending event
  across all shards (including undelivered cross-shard pulses) and lets
  every shard run to the horizon ``tmin + L - 1``.  Any pulse a shard has
  not yet heard about originates from a link input at or after ``tmin``
  and therefore arrives at ``tmin + L`` or later — strictly beyond the
  horizon — so no shard ever processes an event out of order.  The
  horizon broadcast *is* the null message: one implicit "nothing earlier
  is coming" promise per shard per window.

Cross-shard pulses are observed on each link's output by a private
boundary recorder, shipped to the coordinator with the window result, and
re-injected into the destination shard (original wire delay applied)
before its next window.  Because every link's minimum latency exceeds the
window width, injections always land strictly after the horizon already
simulated — the destination kernel never rewinds.

On all probed ports the partitioned run is bit-identical to a monolithic
run of the same NoC-augmented circuit (the ``shard-differential`` oracle
in :mod:`repro.verify` enforces this continuously); merged event/pulse
totals and the end time match too.  ``max_queue_depth`` is the one
deliberately incomparable counter — per-shard queues cannot reproduce the
monolithic high-water mark — and is merged as a max over shards.

With ``jobs <= 1`` the same windowed algorithm runs in-process (no worker
processes, bit-identical results) — the cheap mode property tests use.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import (
    AbstractSet,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, SimulationError
from repro.parallel import ProcessActor, resolve_jobs
from repro.pulsesim import simulator as simulator_module
from repro.pulsesim.element import CellRole
from repro.pulsesim.export import import_netlist
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.probe import PulseRecorder
from repro.pulsesim.simulator import SimulationStats, Simulator
from repro.shard.partition import (
    CutWire,
    ShardPlan,
    build_noc_description,
    shard_description,
)

#: Label prefix of the engine's private boundary recorders; excluded from
#: :meth:`ShardSimulator.recordings`.
BOUNDARY_PREFIX = "__shard_boundary__:"


@contextmanager
def _quiet_stats() -> Iterator[None]:
    """Silence :func:`~repro.pulsesim.simulator.capture_stats` collectors.

    Shard windows run inside this context so an enclosing collector (e.g.
    the experiment runner's) is not fed once per shard per window; the
    coordinator feeds the merged totals exactly once after the run.
    """
    with simulator_module.quiet_stats():
        yield


def _freeze(value: Any) -> Any:
    return tuple(sorted(value.items())) if isinstance(value, dict) else value


def _split_endpoint(endpoint: str, names: AbstractSet[str]) -> Tuple[str, str]:
    """Split ``"cell.port"`` on the rightmost dot that names a known cell
    (cell names may themselves contain dots)."""
    index = len(endpoint)
    while True:
        index = endpoint.rfind(".", 0, index)
        if index < 0:
            raise ConfigurationError(
                f"endpoint {endpoint!r} does not name a known cell"
            )
        name, port = endpoint[:index], endpoint[index + 1:]
        if name in names:
            return name, port


class _ShardHost:
    """One shard's kernel, living wherever the coordinator put it.

    Instantiated by :class:`~repro.parallel.ProcessActor` inside a worker
    process (or by :class:`_LocalHost` in-process); serves the command
    protocol the coordinator speaks: ``stimulus``, ``advance``,
    ``finish``, ``state``.
    """

    def __init__(
        self,
        description: Dict[str, Any],
        boundary_links: Sequence[str],
        kernel: Optional[str] = None,
        max_events: int = 50_000_000,
    ):
        self.circuit = import_netlist(description)
        self._boundary: Dict[str, PulseRecorder] = {}
        self._consumed: Dict[str, int] = {}
        for link in boundary_links:
            recorder = PulseRecorder(BOUNDARY_PREFIX + link)
            self.circuit.probe(self.circuit[link], "q", probe=recorder)
            self._boundary[link] = recorder
            self._consumed[link] = 0
        self.circuit.seal()
        self.sim = Simulator(self.circuit, max_events=max_events, kernel=kernel)

    def __call__(self, command: str, payload: Any) -> Any:
        return getattr(self, "_cmd_" + command)(payload)

    def _cmd_stimulus(
        self, payload: Sequence[Tuple[str, str, Sequence[int]]]
    ) -> Optional[int]:
        for cell, port, times in payload:
            self.sim.schedule_train(self.circuit[cell], port, times)
        return self.sim._next_event_time()

    def _cmd_advance(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        for cell, port, time in payload["inject"]:
            self.sim.schedule_input(self.circuit[cell], port, time)
        with _quiet_stats():
            self.sim.run(until=payload["until"])
        emissions: Dict[str, List[int]] = {}
        for link, recorder in self._boundary.items():
            consumed = self._consumed[link]
            if len(recorder.times) > consumed:
                emissions[link] = list(recorder.times[consumed:])
                self._consumed[link] = len(recorder.times)
        return {"next": self.sim._next_event_time(), "emissions": emissions}

    def _cmd_finish(self, payload: Any) -> Dict[str, Any]:
        stats = self.sim.stats
        recordings: Dict[str, List[int]] = {}
        for taps in self.circuit._taps.values():
            for tap in taps:
                label = getattr(tap.probe, "label", "") or ""
                times = getattr(tap.probe, "times", None)
                if times is None or label.startswith(BOUNDARY_PREFIX):
                    continue
                recordings[label] = list(times)
        drops = {
            element.name: int(getattr(element, "drops", 0))
            for element in self.circuit.elements
            if CellRole.NOC in getattr(element, "ROLES", frozenset())
        }
        return {
            "recordings": recordings,
            "events": stats.events_processed,
            "pulses": stats.pulses_emitted,
            "max_queue_depth": stats.max_queue_depth,
            "wall_s": stats.wall_s,
            "now": self.sim.now,
            "drops": drops,
        }

    def _cmd_state(self, payload: Sequence[str]) -> Dict[str, tuple]:
        attrs = tuple(payload)
        return {
            element.name: tuple(
                _freeze(getattr(element, attr, None)) for attr in attrs
            )
            for element in self.circuit.elements
        }


class _LocalHost:
    """In-process stand-in for :class:`~repro.parallel.ProcessActor`.

    Same submit/result surface, lazy FIFO execution — the ``jobs <= 1``
    mode runs the identical windowed algorithm with zero process cost
    (and bit-identical results, since the algorithm never depends on
    where a shard's kernel lives).
    """

    def __init__(self, host: _ShardHost):
        self._host = host
        self._queue: List[Tuple[str, Any]] = []

    def submit(self, command: str, payload: Any = None) -> None:
        self._queue.append((command, payload))

    def result(self) -> Any:
        command, payload = self._queue.pop(0)
        return self._host(command, payload)

    def call(self, command: str, payload: Any = None) -> Any:
        self.submit(command, payload)
        return self.result()

    def close(self) -> None:
        self._queue.clear()


_Host = Union[ProcessActor, _LocalHost]


class ShardSimulator:
    """Partitioned, conservatively synchronized run of a sharded circuit.

    Args:
        circuit: The *original* (pre-NoC) circuit the plan was made for.
        plan: A :class:`~repro.shard.partition.ShardPlan` for ``circuit``.
        jobs: Worker budget — ``"auto"``/``None`` resolve through
            :func:`repro.parallel.resolve_jobs`.  With the resolved value
            above 1 every shard gets its own worker process; at 1 the
            same algorithm runs in-process.
        kernel: Per-shard kernel choice, as for
            :class:`~repro.pulsesim.simulator.Simulator`.
        max_events: Per-window event budget for each shard kernel.

    The engine is single-shot: build, optionally ``schedule_input`` /
    ``schedule_train``, ``run()`` once, then read ``stats`` /
    :meth:`recordings` / :meth:`state` / :meth:`noc_drops`.  Use as a
    context manager (or call :meth:`close`) to reap worker processes.
    """

    def __init__(
        self,
        circuit: Circuit,
        plan: ShardPlan,
        jobs: Union[int, str, None] = None,
        kernel: Optional[str] = None,
        max_events: int = 50_000_000,
    ):
        self.plan = plan
        self.jobs = resolve_jobs(jobs)
        description = build_noc_description(circuit, plan)
        self._inputs: Dict[str, AbstractSet[str]] = {
            cell["name"]: frozenset(cell["inputs"])
            for cell in description["cells"]
        }
        self._owner: Dict[str, int] = dict(plan.assignment)
        self._cut_by_link: Dict[str, CutWire] = {}
        self._sink_of: Dict[str, Tuple[str, str]] = {}
        cell_names = frozenset(plan.assignment)
        boundary: List[List[str]] = [[] for _ in range(plan.num_shards)]
        for cut in plan.cuts:
            self._owner[cut.link] = cut.source_shard
            self._cut_by_link[cut.link] = cut
            self._sink_of[cut.link] = _split_endpoint(cut.sink, cell_names)
            boundary[cut.source_shard].append(cut.link)
        self._stimulus: List[List[Tuple[str, str, List[int]]]] = [
            [] for _ in range(plan.num_shards)
        ]
        self._hosts: List[_Host] = []
        for shard in range(plan.num_shards):
            piece = shard_description(description, plan, shard)
            if self.jobs > 1:
                self._hosts.append(
                    ProcessActor(
                        _ShardHost, piece, boundary[shard], kernel, max_events
                    )
                )
            else:
                self._hosts.append(
                    _LocalHost(
                        _ShardHost(piece, boundary[shard], kernel, max_events)
                    )
                )
        self._ran = False
        self._closed = False
        self.stats: Optional[SimulationStats] = None
        self.now = 0
        #: Synchronization windows executed by :meth:`run`.
        self.windows = 0
        self._recordings: Dict[str, List[int]] = {}
        self._drops: Dict[str, int] = {}

    # -- scheduling ----------------------------------------------------------
    def schedule_input(self, cell: str, port: str, time: int) -> None:
        """Buffer one external stimulus pulse for ``cell.port``."""
        self.schedule_train(cell, port, (time,))

    def schedule_train(
        self, cell: str, port: str, times: Sequence[int]
    ) -> None:
        """Buffer a stimulus train; delivered to the owning shard at
        :meth:`run`."""
        if self._ran:
            raise SimulationError(
                "ShardSimulator is single-shot; cannot schedule after run()"
            )
        shard = self._owner.get(cell)
        if shard is None:
            raise ConfigurationError(
                f"no cell named {cell!r} in plan for "
                f"{self.plan.circuit_name!r}"
            )
        if port not in self._inputs[cell]:
            raise ConfigurationError(
                f"cell {cell!r} has no input port {port!r}"
            )
        times = list(times)
        for time in times:
            if time < 0:
                raise SimulationError(
                    f"cannot schedule pulse at negative time {time}"
                )
        self._stimulus[shard].append((cell, port, times))

    # -- execution -----------------------------------------------------------
    def _broadcast(
        self, command: str, payloads: Optional[Sequence[Any]] = None
    ) -> List[Any]:
        if payloads is None:
            payloads = [None] * len(self._hosts)
        for host, payload in zip(self._hosts, payloads):
            host.submit(command, payload)
        return [host.result() for host in self._hosts]

    def run(self, until: Optional[int] = None) -> SimulationStats:
        """Run the partitioned system to completion (or through ``until``).

        Returns the merged :class:`SimulationStats`: summed event/pulse
        totals, ``end_time`` = the latest shard event time (so it matches
        a monolithic unbounded run), ``max_queue_depth`` = max over shard
        queues (not comparable to the monolithic value), ``wall_s`` =
        coordinator wall-clock including synchronization.  Cross-shard
        pulses arriving strictly after ``until`` are discarded rather
        than left queued (the engine is single-shot).
        """
        if self._ran:
            raise SimulationError("ShardSimulator.run() is single-shot")
        self._ran = True
        wall_start = perf_counter()
        shards = self.plan.num_shards
        lookahead = self.plan.lookahead_fs
        nexts: List[Optional[int]] = self._broadcast("stimulus", self._stimulus)
        pending: List[List[Tuple[str, str, int]]] = [[] for _ in range(shards)]
        while True:
            candidates = [time for time in nexts if time is not None]
            candidates.extend(
                time for batch in pending for (_c, _p, time) in batch
            )
            if not candidates:
                break
            tmin = min(candidates)
            if until is not None and tmin > until:
                break
            if lookahead is None:
                horizon = until
            else:
                horizon = tmin + lookahead - 1
                if until is not None:
                    horizon = min(horizon, until)
            payloads = [
                {"until": horizon, "inject": pending[k]} for k in range(shards)
            ]
            pending = [[] for _ in range(shards)]
            self.windows += 1
            for k, reply in enumerate(self._broadcast("advance", payloads)):
                nexts[k] = reply["next"]
                for link, times in reply["emissions"].items():
                    cut = self._cut_by_link[link]
                    cell, port = self._sink_of[link]
                    pending[cut.sink_shard].extend(
                        (cell, port, time + cut.delay_fs) for time in times
                    )
        finals = self._broadcast("finish")
        merged = SimulationStats()
        for final in finals:
            merged.events_processed += final["events"]
            merged.pulses_emitted += final["pulses"]
            merged.max_queue_depth = max(
                merged.max_queue_depth, final["max_queue_depth"]
            )
            merged.end_time = max(merged.end_time, final["now"])
            for label, times in final["recordings"].items():
                if label in self._recordings:
                    raise ConfigurationError(
                        f"probe label {label!r} appears on more than one "
                        "shard; give the recorders distinct labels"
                    )
                self._recordings[label] = times
            self._drops.update(final["drops"])
        self.now = merged.end_time
        if until is not None:
            merged.end_time = max(merged.end_time, until)
        merged.wall_s = perf_counter() - wall_start
        for collector in simulator_module.active_collectors():
            collector.events_processed += merged.events_processed
            collector.pulses_emitted += merged.pulses_emitted
            collector.end_time = max(collector.end_time, merged.end_time)
            collector.max_queue_depth = max(
                collector.max_queue_depth, merged.max_queue_depth
            )
            collector.wall_s += merged.wall_s
        self.stats = merged
        return merged

    # -- results -------------------------------------------------------------
    def recordings(self) -> Dict[str, List[int]]:
        """Pulse timelines of every user probe, keyed by recorder label
        (the engine's boundary recorders are excluded)."""
        self._require_ran("recordings")
        return {label: list(times) for label, times in self._recordings.items()}

    def noc_drops(self) -> Dict[str, int]:
        """FIFO-overflow drop count per NoC link."""
        self._require_ran("noc_drops")
        return dict(self._drops)

    def state(self, attrs: Sequence[str]) -> Dict[str, tuple]:
        """Internal cell state keyed by element name, merged over shards
        (same shape as the verify harness's ``state_snapshot``)."""
        self._require_ran("state")
        if self._closed:
            raise SimulationError("ShardSimulator is closed")
        merged: Dict[str, tuple] = {}
        for piece in self._broadcast("state", [list(attrs)] * len(self._hosts)):
            merged.update(piece)
        return merged

    def _require_ran(self, what: str) -> None:
        if not self._ran:
            raise SimulationError(f"call run() before {what}()")

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Reap worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for host in self._hosts:
            host.close()

    def __enter__(self) -> "ShardSimulator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
