"""Netlist partitioning into fabric shards joined by temporal NoC links.

The partitioner is a deterministic min-cut-ish heuristic:

1. **levelize** — order cells by a cycle-tolerant Kahn traversal so wire
   locality in the netlist becomes locality in the order;
2. **chunk** — split the order into K contiguous, JJ-area-balanced
   groups (every shard non-empty);
3. **refine** — one boundary-improvement pass moves individual cells to
   a neighbouring shard when that strictly lowers the total traffic
   crossing the cut (weights are :mod:`repro.analyze` pulse-count upper
   bounds, so the heuristic prefers cutting provably quiet wires) while
   keeping shards non-empty and area within tolerance.

The resulting :class:`ShardPlan` is pure data (JSON round-trippable):
which cell lives on which shard, which wires are cut, the NoC link
inserted on each cut, and the conservative-sync lookahead — the minimum
over cut wires of ``link minimum latency + wire delay``, every term of
which is proven positive at construction (the same ``element.delay +
wire.delay > 0`` argument behind the sealed kernel's monotonic fast
path).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import (
    AbstractSet,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.element import Element
from repro.pulsesim.export import import_netlist, netlist_description
from repro.pulsesim.netlist import Circuit, Wire

#: Stand-in weight for wires whose static pulse bound is unbounded.
_INF_TRAFFIC = 1_000_000


@dataclass(frozen=True)
class LinkSpec:
    """NoC link parameters applied to every cut wire.

    ``hops`` per link is the shard distance ``abs(src_shard -
    sink_shard)`` (shards laid out as a linear tile chain), so the spec
    only fixes the per-hop and per-flit constants.
    """

    serialization_fs: int = tech.T_NOC_SERIALIZATION_FS
    hop_latency_fs: int = tech.T_NOC_HOP_FS
    fifo_depth: int = tech.NOC_FIFO_DEPTH

    def min_latency_fs(self, hops: int) -> int:
        return self.serialization_fs + hops * self.hop_latency_fs


@dataclass(frozen=True)
class CutWire:
    """One wire replaced by a NoC link in the sharded system."""

    #: Index into the export-sorted wire list of the original circuit.
    wire_index: int
    #: Name of the inserted :class:`~repro.cells.noc.NocLink` cell.
    link: str
    source: str  #: ``"cell.port"`` driving the cut.
    sink: str  #: ``"cell.port"`` receiving across the cut.
    delay_fs: int  #: Original wire delay, kept on the link->sink wire.
    source_shard: int
    sink_shard: int
    hops: int  #: Shard distance the flit travels.
    #: Static upper bound on pulses crossing this cut (INF clamped).
    traffic_hi: int


@dataclass
class ShardPlan:
    """A complete K-way partition of one netlist."""

    circuit_name: str
    num_shards: int
    #: Cell name -> shard index (NoC links live on their source shard).
    assignment: Dict[str, int]
    cuts: List[CutWire]
    link: LinkSpec = field(default_factory=LinkSpec)
    #: JJ area per shard (original cells only, before link overhead).
    jj_by_shard: List[int] = field(default_factory=list)

    @property
    def lookahead_fs(self) -> Optional[int]:
        """Conservative-sync window: ``min(link latency + wire delay)``
        over all cuts, or ``None`` when nothing is cut (shards are
        independent and need no synchronization at all)."""
        if not self.cuts:
            return None
        return min(
            self.link.min_latency_fs(cut.hops) + cut.delay_fs
            for cut in self.cuts
        )

    @property
    def cut_traffic_hi(self) -> int:
        """Total static pulse-count bound over every cut wire."""
        return sum(cut.traffic_hi for cut in self.cuts)

    def shard_of(self, name: str) -> int:
        try:
            return self.assignment[name]
        except KeyError:
            raise ConfigurationError(
                f"plan for {self.circuit_name!r} does not place cell {name!r}"
            ) from None

    def cells_of(self, shard: int) -> List[str]:
        return sorted(
            name for name, owner in self.assignment.items() if owner == shard
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit_name,
            "num_shards": self.num_shards,
            "assignment": dict(sorted(self.assignment.items())),
            "cuts": [asdict(cut) for cut in self.cuts],
            "link": asdict(self.link),
            "jj_by_shard": list(self.jj_by_shard),
            "lookahead_fs": self.lookahead_fs,
            "cut_traffic_hi": self.cut_traffic_hi,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ShardPlan":
        return cls(
            circuit_name=data["circuit"],
            num_shards=data["num_shards"],
            assignment=dict(data["assignment"]),
            cuts=[CutWire(**cut) for cut in data["cuts"]],
            link=LinkSpec(**data["link"]),
            jj_by_shard=list(data.get("jj_by_shard", [])),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2) + "\n"


# -- ordering ------------------------------------------------------------------
def _levelize(circuit: Circuit) -> List[Element]:
    """Cycle-tolerant Kahn order, deterministic for a given circuit.

    Ready cells are taken in insertion order; cells still blocked when
    the ready set drains (feedback loops) follow in insertion order.
    """
    order: List[Element] = []
    indegree: Dict[int, int] = {id(e): 0 for e in circuit.elements}
    for wire in circuit.iter_wires():
        if wire.source is not wire.sink:
            indegree[id(wire.sink)] += 1
    placed: Set[int] = set()
    remaining = list(circuit.elements)
    while remaining:
        ready = [e for e in remaining if indegree[id(e)] == 0]
        if not ready:
            ready = [remaining[0]]  # break the cycle deterministically
        for element in ready:
            order.append(element)
            placed.add(id(element))
        remaining = [e for e in remaining if id(e) not in placed]
        for element in ready:
            for port in element.output_names:
                for wire in circuit.fanout(element, port):
                    if id(wire.sink) not in placed:
                        indegree[id(wire.sink)] = max(
                            0, indegree[id(wire.sink)] - 1
                        )
    return order


def _chunk(order: Sequence[Element], num_shards: int) -> Dict[str, int]:
    """Contiguous JJ-balanced chunks; every shard gets >= 1 cell."""
    weights = [max(1, element.jj_count) for element in order]
    total = sum(weights)
    assignment: Dict[str, int] = {}
    index = 0
    remaining_weight = total
    for shard in range(num_shards):
        shards_left = num_shards - shard
        target = remaining_weight / shards_left
        chunk_weight = 0
        # Must leave at least one cell per remaining shard.
        max_index = len(order) - (shards_left - 1)
        start = index
        while index < max_index:
            if index > start and chunk_weight + weights[index] / 2 > target:
                break
            chunk_weight += weights[index]
            assignment[order[index].name] = shard
            index += 1
        remaining_weight -= chunk_weight
    return assignment


# -- traffic weights -----------------------------------------------------------
def _default_entries(circuit: Circuit) -> List[Tuple[Element, str]]:
    """Every input port with no fan-in: the externally driven surface."""
    return [
        (element, port)
        for element in circuit.elements
        for port in element.input_names
        if not circuit.wires_into(element, port)
    ]


def _traffic_weights(
    circuit: Circuit,
    entry_points: Optional[Sequence[Tuple[Element, str]]],
) -> Dict[Tuple[int, str], int]:
    """Static pulse-count upper bound per output port (uniform on failure)."""
    from repro.analyze import analyze_circuit
    from repro.analyze.domain import INF

    entries = (
        list(entry_points) if entry_points else _default_entries(circuit)
    )
    weights: Dict[Tuple[int, str], int] = {}
    try:
        analysis = analyze_circuit(circuit, entry_points=entries)
    except Exception:
        # Analysis is a heuristic input here, never a correctness input:
        # an unanalyzable circuit just gets uniform cut weights.
        return weights
    for element in circuit.elements:
        for port in element.output_names:
            bound = analysis.output_bounds(element, port)
            n_hi = bound.n_hi
            weights[(id(element), port)] = (
                _INF_TRAFFIC if n_hi >= INF else max(1, n_hi)
            )
    return weights


def _wire_weight(
    wire: Wire, weights: Mapping[Tuple[int, str], int]
) -> int:
    return weights.get((id(wire.source), wire.source_port), 1)


def _cut_cost(
    circuit: Circuit,
    assignment: Mapping[str, int],
    weights: Mapping[Tuple[int, str], int],
) -> int:
    return sum(
        _wire_weight(wire, weights)
        for wire in circuit.iter_wires()
        if assignment[wire.source.name] != assignment[wire.sink.name]
    )


def _refine(
    circuit: Circuit,
    assignment: Dict[str, int],
    weights: Mapping[Tuple[int, str], int],
    num_shards: int,
) -> None:
    """One KL-lite pass: move single cells across the cut when that
    strictly reduces crossing traffic (non-emptiness and a loose area
    balance are preserved)."""
    jj_by_shard = [0] * num_shards
    members = [0] * num_shards
    for element in circuit.elements:
        shard = assignment[element.name]
        jj_by_shard[shard] += max(1, element.jj_count)
        members[shard] += 1
    total = sum(jj_by_shard)
    limit = (total / num_shards) * 1.5 + 1

    def local_cost(element: Element) -> int:
        cost = 0
        for port in element.output_names:
            for wire in circuit.fanout(element, port):
                if assignment[wire.source.name] != assignment[wire.sink.name]:
                    cost += _wire_weight(wire, weights)
        for port in element.input_names:
            for wire in circuit.wires_into(element, port):
                if wire.source is element:
                    continue  # self-loop counted once above
                if assignment[wire.source.name] != assignment[wire.sink.name]:
                    cost += _wire_weight(wire, weights)
        return cost

    for element in circuit.elements:
        home = assignment[element.name]
        if members[home] <= 1:
            continue
        neighbours: Set[int] = set()
        for port in element.output_names:
            for wire in circuit.fanout(element, port):
                neighbours.add(assignment[wire.sink.name])
        for port in element.input_names:
            for wire in circuit.wires_into(element, port):
                neighbours.add(assignment[wire.source.name])
        neighbours.discard(home)
        weight = max(1, element.jj_count)
        best_shard, best_cost = home, local_cost(element)
        for shard in sorted(neighbours):
            if jj_by_shard[shard] + weight > limit:
                continue
            assignment[element.name] = shard
            cost = local_cost(element)
            assignment[element.name] = home
            if cost < best_cost:
                best_shard, best_cost = shard, cost
        if best_shard != home:
            assignment[element.name] = best_shard
            members[home] -= 1
            members[best_shard] += 1
            jj_by_shard[home] -= weight
            jj_by_shard[best_shard] += weight


# -- the planner ---------------------------------------------------------------
def _sorted_wire_list(circuit: Circuit) -> List[Wire]:
    """The export-canonical wire order (same key as netlist export)."""
    wires = list(circuit.iter_wires())
    wires.sort(
        key=lambda w: (
            w.source.name, w.source_port, w.sink.name, w.sink_port, w.delay
        )
    )
    return wires


def _fresh_name(base: str, taken: AbstractSet[str]) -> str:
    name = base
    while name in taken:
        name = "_" + name
    return name


def plan_partition(
    circuit: Circuit,
    num_shards: int,
    link: Optional[LinkSpec] = None,
    entry_points: Optional[Sequence[Tuple[Element, str]]] = None,
) -> ShardPlan:
    """Cut ``circuit`` into ``num_shards`` fabric shards.

    ``entry_points`` feeds the :mod:`repro.analyze` traffic estimate
    (defaults to every undriven input port); analysis failures degrade
    to uniform cut weights, never to an error.  Raises
    :class:`~repro.errors.ConfigurationError` when the shard count does
    not fit the circuit.
    """
    link = link if link is not None else LinkSpec()
    cells = len(circuit.elements)
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > cells:
        raise ConfigurationError(
            f"cannot cut {cells} cell(s) into {num_shards} shards; "
            "every shard needs at least one cell"
        )
    weights = (
        _traffic_weights(circuit, entry_points) if num_shards > 1 else {}
    )
    order = _levelize(circuit)
    assignment = _chunk(order, num_shards)
    if num_shards > 1:
        _refine(circuit, assignment, weights, num_shards)

    cuts: List[CutWire] = []
    taken = set(circuit._names)
    for index, wire in enumerate(_sorted_wire_list(circuit)):
        source_shard = assignment[wire.source.name]
        sink_shard = assignment[wire.sink.name]
        if source_shard == sink_shard:
            continue
        name = _fresh_name(f"noc{len(cuts)}", taken)
        taken.add(name)
        cuts.append(
            CutWire(
                wire_index=index,
                link=name,
                source=f"{wire.source.name}.{wire.source_port}",
                sink=f"{wire.sink.name}.{wire.sink_port}",
                delay_fs=wire.delay,
                source_shard=source_shard,
                sink_shard=sink_shard,
                hops=abs(source_shard - sink_shard),
                traffic_hi=_wire_weight(wire, weights),
            )
        )
    jj_by_shard = [0] * num_shards
    for element in circuit.elements:
        jj_by_shard[assignment[element.name]] += element.jj_count
    return ShardPlan(
        circuit_name=circuit.name,
        num_shards=num_shards,
        assignment=assignment,
        cuts=cuts,
        link=link,
        jj_by_shard=jj_by_shard,
    )


# -- materialization -----------------------------------------------------------
def _raw_noc_description(circuit: Circuit, plan: ShardPlan) -> Dict[str, Any]:
    """NoC-augmented description before canonicalisation (import input)."""
    description = netlist_description(circuit)
    by_index = {cut.wire_index: cut for cut in plan.cuts}
    if len(by_index) != len(plan.cuts):
        raise ConfigurationError("plan contains duplicate cut wire indices")
    out_of_range = [i for i in by_index if not 0 <= i < len(description["wires"])]
    if out_of_range:
        raise ConfigurationError(
            f"plan cuts wires {sorted(out_of_range)} beyond the circuit's "
            f"{len(description['wires'])} wires"
        )
    wires: List[Dict[str, Any]] = []
    for index, wire in enumerate(description["wires"]):
        cut = by_index.get(index)
        if cut is None:
            wires.append(wire)
            continue
        if wire["from"] != cut.source or wire["to"] != cut.sink:
            raise ConfigurationError(
                f"plan does not match circuit {circuit.name!r}: cut "
                f"{cut.link} expects wire {cut.source} -> {cut.sink} at "
                f"index {cut.wire_index}, found "
                f"{wire['from']} -> {wire['to']}"
            )
        wires.append({"from": cut.source, "to": f"{cut.link}.a",
                      "delay_fs": 0})
        wires.append({"from": f"{cut.link}.q", "to": cut.sink,
                      "delay_fs": cut.delay_fs})
    cells = list(description["cells"])
    for cut in plan.cuts:
        cells.append(
            {
                "name": cut.link,
                "type": "NocLink",
                "jj_count": 0,  # recomputed by the constructor on import
                "inputs": ["a"],
                "outputs": ["q"],
                "params": {
                    "serialization_fs": plan.link.serialization_fs,
                    "hops": cut.hops,
                    "hop_latency_fs": plan.link.hop_latency_fs,
                    "fifo_depth": plan.link.fifo_depth,
                },
            }
        )
    description["cells"] = cells
    description["wires"] = wires
    return description


def build_noc_circuit(circuit: Circuit, plan: ShardPlan) -> Circuit:
    """Materialize the plan as a runnable NoC-augmented circuit.

    Every cut wire ``src.p -> dst.q`` becomes ``src.p -> link.a`` (zero
    delay), a :class:`~repro.cells.noc.NocLink` cell on the cut's source
    shard, and ``link.q -> dst.q`` carrying the original wire delay.
    """
    return import_netlist(_raw_noc_description(circuit, plan))


def build_noc_description(circuit: Circuit, plan: ShardPlan) -> Dict[str, Any]:
    """The NoC-augmented netlist as a canonical exported description.

    Produced by re-exporting the materialised circuit, so ordering and
    totals are exactly :func:`~repro.pulsesim.export.netlist_description`
    canonical (byte-stable under re-import).
    """
    return netlist_description(build_noc_circuit(circuit, plan))


def shard_description(
    noc_description: Mapping[str, Any], plan: ShardPlan, shard: int
) -> Dict[str, Any]:
    """One shard's slice of the NoC-augmented description.

    The slice keeps every cell assigned to ``shard`` (NoC links live on
    their cut's *source* shard), every wire internal to the shard, and
    every probe on a shard cell.  Cross-shard wires (``link.q -> sink``)
    are omitted — the shard engine carries those pulses between kernels.
    """
    if not 0 <= shard < plan.num_shards:
        raise ConfigurationError(
            f"shard index {shard} out of range for a "
            f"{plan.num_shards}-way plan"
        )
    owners = dict(plan.assignment)
    for cut in plan.cuts:
        owners[cut.link] = cut.source_shard
    mine = {name for name, owner in owners.items() if owner == shard}

    def cell_name(endpoint: str) -> str:
        known = sorted(owners, key=len, reverse=True)
        for name in known:
            if endpoint.startswith(name + "."):
                return name
        raise ConfigurationError(
            f"endpoint {endpoint!r} does not name a planned cell"
        )

    cells = [c for c in noc_description["cells"] if c["name"] in mine]
    wires = [
        w
        for w in noc_description["wires"]
        if cell_name(w["from"]) in mine and cell_name(w["to"]) in mine
    ]
    probes = [
        p for p in noc_description["probes"] if cell_name(p["port"]) in mine
    ]
    return {
        "name": f"{noc_description['name']}/shard{shard}",
        "cells": cells,
        "wires": wires,
        "probes": probes,
        "cell_count": len(cells),
        "wire_count": len(wires),
        "probe_count": len(probes),
        "jj_count": sum(c["jj_count"] for c in cells),
    }
