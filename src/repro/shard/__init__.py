"""Multi-fabric sharding over a temporal NoC + partitioned parallel runs.

The paper's fabrics are deliberately small; scaling to wide workloads
means many fabrics stitched together by a temporal NoC (the system the
same authors sketch in PaST-NoC).  This package provides that system
view for any netlist built here, in three layers:

* :func:`~repro.shard.partition.plan_partition` — cut a lint-clean
  netlist into K fabric shards along wire boundaries (balanced JJ area,
  low-traffic cuts picked with :mod:`repro.analyze` pulse bounds);
* :func:`~repro.shard.partition.build_noc_circuit` — materialize the
  plan as a *monolithic* NoC-augmented netlist in which every cut wire
  runs through an explicit :class:`~repro.cells.noc.NocLink` cell, so
  the sharded system is itself a valid, lintable, analyzable circuit;
* :class:`~repro.shard.engine.ShardSimulator` — run each shard's sealed
  kernel in its own process (via :mod:`repro.parallel`), conservatively
  synchronized in time windows bounded by the compile-time minimum link
  latency, with probed-port outputs bit-identical to a monolithic run
  of the same NoC-augmented circuit (enforced by the ``shard-
  differential`` oracle in :mod:`repro.verify`).
"""

from repro.cells.noc import NocLink
from repro.shard.engine import ShardSimulator
from repro.shard.partition import (
    CutWire,
    LinkSpec,
    ShardPlan,
    build_noc_circuit,
    build_noc_description,
    plan_partition,
    shard_description,
)

__all__ = [
    "CutWire",
    "LinkSpec",
    "NocLink",
    "ShardPlan",
    "ShardSimulator",
    "build_noc_circuit",
    "build_noc_description",
    "plan_partition",
    "shard_description",
]
