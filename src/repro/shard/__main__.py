"""``python -m repro.shard`` — same as the ``usfq-shard`` console script."""

import sys

from repro.shard.cli import main

if __name__ == "__main__":
    sys.exit(main())
