"""Sound per-cell transfer functions over :class:`PulseBounds`.

Each function maps the abstract input streams of one cell instance to
abstract output streams.  Soundness contract: for any concrete input
streams inside the input bounds, the cell's simulated output streams lie
inside the returned output bounds — counts, timestamps, and spacings.
The ``static-soundness`` oracle in :mod:`repro.verify` fuzzes exactly
this contract against the event kernel.

Two recurring arguments make most bounds easy:

* every cell emits at ``triggering-arrival + fixed delay``, so an output
  window is some driving port's window shifted by the cell delay; and
* emissions triggered by a subset of one port's pulses inherit at least
  that port's spacing guarantee (a subsequence is never closer-spaced
  than the full sequence).

Cells without a registered function get :func:`transfer_unknown`: counts
``[0, INF]``, window ``[earliest driven input, INF]`` (the kernel's
causality check forbids emitting into the past), no spacing guarantee —
always sound, never precise.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.analyze.domain import (
    INF,
    NONE,
    PulseBounds,
    sat_add,
    superpose,
)
from repro.pulsesim.element import Element

#: One cell's abstract input streams, keyed by input port name.
Inputs = Mapping[str, PulseBounds]
#: One cell's abstract output streams, keyed by output port name.
Outputs = Dict[str, PulseBounds]
TransferFn = Callable[[Element, Inputs], Outputs]

TRANSFER: Dict[str, TransferFn] = {}


def register(*kinds: str) -> Callable[[TransferFn], TransferFn]:
    def wrap(fn: TransferFn) -> TransferFn:
        for kind in kinds:
            TRANSFER[kind] = fn
        return fn

    return wrap


def transfer(element: Element, inputs: Inputs) -> Outputs:
    """Dispatch on the cell class name; unknown kinds degrade safely."""
    fn = TRANSFER.get(type(element).__name__, transfer_unknown)
    return fn(element, inputs)


def _delay(element: Element) -> int:
    # Same value as Element.propagation_delay_fs, without the property
    # hop — transfer functions sit on the analyzer's hot path.
    return getattr(element, "delay", 0)


def _in(inputs: Inputs, port: str) -> PulseBounds:
    return inputs.get(port, NONE)


def _stretch(bounds: PulseBounds, extra_max: int) -> PulseBounds:
    """Extend the late edge of a window by up to ``extra_max`` fs."""
    if bounds.is_none or extra_max == 0:
        return bounds
    return PulseBounds(bounds.n_lo, bounds.n_hi, bounds.t_min,
                       sat_add(bounds.t_max, extra_max), bounds.gap)


def transfer_unknown(element: Element, inputs: Inputs) -> Outputs:
    driven = [b for b in inputs.values() if not b.is_none]
    if not driven:
        return {port: NONE for port in element.output_names}
    t_min = min(b.t_min for b in driven)
    top = PulseBounds(0, INF, t_min, INF, 0)
    return {port: top for port in element.output_names}


# -- interconnect --------------------------------------------------------------
@register("Jtl")
def transfer_jtl(element: Element, inputs: Inputs) -> Outputs:
    return {"q": _in(inputs, "a").shift(_delay(element))}


@register("Splitter")
def transfer_splitter(element: Element, inputs: Inputs) -> Outputs:
    out = _in(inputs, "a").shift(_delay(element))
    return {"q1": out, "q2": out}


@register("Merger", "IdealMerger")
def transfer_merger(element: Element, inputs: Inputs) -> Outputs:
    """Confluence with dead time: the first arrival is always accepted;
    arrivals spaced >= dead_time are all accepted; accepted pulses are
    themselves spaced >= dead_time."""
    combined = superpose(_in(inputs, "a"), _in(inputs, "b"))
    if combined.is_none:
        return {"q": NONE}
    dead_time = int(getattr(element, "dead_time", 0))
    if dead_time > 0 and combined.gap < dead_time:
        # Collisions possible: only the first arrival is guaranteed through.
        n_lo = min(1, combined.n_lo)
    else:
        n_lo = combined.n_lo
    gap = max(combined.gap, dead_time) if combined.n_hi > 1 else combined.gap
    out = PulseBounds(n_lo, combined.n_hi, combined.t_min, combined.t_max,
                      gap)
    return {"q": out.shift(_delay(element))}


@register("DropChannel")
def transfer_drop(element: Element, inputs: Inputs) -> Outputs:
    a = _in(inputs, "a")
    drop_rate = float(getattr(element, "drop_rate", 0.0))
    n_lo = a.n_lo if drop_rate == 0.0 else 0
    return {"q": a.with_count(n_lo, a.n_hi)}


@register("JitterChannel")
def transfer_jitter(element: Element, inputs: Inputs) -> Outputs:
    a = _in(inputs, "a")
    if a.is_none:
        return {"q": NONE}
    std = int(getattr(element, "std_fs", 0))
    mean = int(getattr(element, "mean_fs", 0))
    if std == 0:
        return {"q": a.shift(mean)}
    # Gaussian displacement is unbounded above (delay clamps at zero
    # below), and reordering destroys the spacing guarantee.
    return {"q": PulseBounds(a.n_lo, a.n_hi, a.t_min, INF, 0)}


@register("NocLink")
def transfer_noclink(element: Element, inputs: Inputs) -> Outputs:
    """Temporal NoC link: shift by the minimum latency, serialize flits.

    Departures obey ``depart_i+1 >= depart_i + serialization``, so the
    output inherits at least the serialization slot as spacing.  When the
    input spacing already beats the slot, flits never queue (every flit
    departs at arrival + min latency) and at most ``delay // gap + 1``
    are in flight at once; otherwise a backlog can defer the last flit by
    one slot per queued flit and the FIFO bound may drop pulses.
    """
    a = _in(inputs, "a")
    if a.is_none:
        return {"q": NONE}
    delay = _delay(element)
    slot = int(getattr(element, "serialization_fs", 1))
    fifo = int(getattr(element, "fifo_depth", 1))
    if a.gap >= slot:
        extra = 0
        in_flight = delay // a.gap + 1 if a.gap > 0 else INF
    else:
        extra = INF if a.n_hi >= INF else (a.n_hi - 1) * slot
        in_flight = INF
    no_drops = a.n_hi <= fifo or in_flight <= fifo
    n_lo = a.n_lo if no_drops else 0
    gap = max(a.gap, slot) if a.n_hi > 1 else a.gap
    out = PulseBounds(n_lo, a.n_hi, a.t_min, sat_add(a.t_max, extra), gap)
    return {"q": out.shift(delay)}


# -- toggles -------------------------------------------------------------------
def _double_gap(gap: int) -> int:
    return INF if gap >= INF else min(2 * gap, INF)


@register("Tff")
def transfer_tff(element: Element, inputs: Inputs) -> Outputs:
    a = _in(inputs, "a")
    out = a.scale_count(2, 2)
    if out.is_none:
        return {"q": NONE}
    out = PulseBounds(out.n_lo, out.n_hi, out.t_min, out.t_max,
                      _double_gap(a.gap))
    return {"q": out.shift(_delay(element))}


@register("Tff2")
def transfer_tff2(element: Element, inputs: Inputs) -> Outputs:
    a = _in(inputs, "a")
    delay = _delay(element)
    gap = _double_gap(a.gap)
    # Pulses alternate q1, q2, q1, ... starting at q1.
    q1_hi = (a.n_hi + 1) // 2 if a.n_hi < INF else INF
    q2_hi = a.n_hi // 2 if a.n_hi < INF else INF

    def port(n_lo: int, n_hi: int) -> PulseBounds:
        if n_hi == 0:
            return NONE
        return PulseBounds(n_lo, n_hi, a.t_min, a.t_max, gap).shift(delay)

    return {
        "q1": port((a.n_lo + 1) // 2, q1_hi),
        "q2": port(a.n_lo // 2, q2_hi),
    }


# -- storage -------------------------------------------------------------------
@register("Dff")
def transfer_dff(element: Element, inputs: Inputs) -> Outputs:
    d, clk = _in(inputs, "d"), _in(inputs, "clk")
    n_hi = min(d.n_hi, clk.n_hi)
    if n_hi == 0:
        return {"q": NONE}
    out = PulseBounds(0, n_hi, clk.t_min, clk.t_max, clk.gap)
    return {"q": out.shift(_delay(element))}


@register("Dff2")
def transfer_dff2(element: Element, inputs: Inputs) -> Outputs:
    a = _in(inputs, "a")
    delay = _delay(element)

    def readout(control: PulseBounds) -> PulseBounds:
        n_hi = min(a.n_hi, control.n_hi)
        if n_hi == 0:
            return NONE
        return PulseBounds(0, n_hi, control.t_min, control.t_max,
                           control.gap).shift(delay)

    return {"y1": readout(_in(inputs, "c1")),
            "y2": readout(_in(inputs, "c2"))}


@register("Ndro")
def transfer_ndro(element: Element, inputs: Inputs) -> Outputs:
    set_, clk = _in(inputs, "set"), _in(inputs, "clk")
    if set_.is_none or clk.is_none:
        return {"q": NONE}
    out = PulseBounds(0, clk.n_hi, clk.t_min, clk.t_max, clk.gap)
    return {"q": out.shift(_delay(element))}


@register("Bff")
def transfer_bff(element: Element, inputs: Inputs) -> Outputs:
    delay = _delay(element)

    def write(port: str) -> PulseBounds:
        drive = _in(inputs, port)
        if drive.is_none:
            return NONE
        return PulseBounds(0, drive.n_hi, drive.t_min, drive.t_max,
                           drive.gap).shift(delay)

    return {"q1": write("s1"), "q2": write("s2"),
            "nq1": write("r1"), "nq2": write("r2")}


# -- logic ---------------------------------------------------------------------
@register("Inverter")
def transfer_inverter(element: Element, inputs: Inputs) -> Outputs:
    a, clk = _in(inputs, "a"), _in(inputs, "clk")
    if clk.is_none:
        return {"q": NONE}
    # Each data pulse suppresses at most one clock emission.
    n_lo = max(0, clk.n_lo - a.n_hi) if a.n_hi < INF else 0
    out = PulseBounds(n_lo, clk.n_hi, clk.t_min, clk.t_max, clk.gap)
    return {"q": out.shift(_delay(element))}


@register("FirstArrival")
def transfer_first_arrival(element: Element, inputs: Inputs) -> Outputs:
    reset = _in(inputs, "reset")
    data = superpose(_in(inputs, "a"), _in(inputs, "b"))
    if data.is_none:
        return {"q": NONE}
    n_hi = min(data.n_hi, sat_add(1, reset.n_hi))
    n_lo = min(1, data.n_lo)  # the gate starts armed
    out = PulseBounds(n_lo, n_hi, data.t_min, data.t_max, data.gap)
    return {"q": out.shift(_delay(element))}


@register("LastArrival")
def transfer_last_arrival(element: Element, inputs: Inputs) -> Outputs:
    reset = _in(inputs, "reset")
    a, b = _in(inputs, "a"), _in(inputs, "b")
    n_hi = min(a.n_hi, b.n_hi, sat_add(1, reset.n_hi))
    if n_hi == 0:
        return {"q": NONE}
    union = superpose(a, b)
    out = PulseBounds(0, n_hi, union.t_min, union.t_max, union.gap)
    return {"q": out.shift(_delay(element))}


@register("Inhibit")
def transfer_inhibit(element: Element, inputs: Inputs) -> Outputs:
    reset = _in(inputs, "reset")
    a, b = _in(inputs, "a"), _in(inputs, "b")
    if a.is_none:
        return {"q": NONE}
    n_hi = min(a.n_hi, sat_add(1, reset.n_hi))
    n_lo = min(1, a.n_lo) if b.is_none else 0
    out = PulseBounds(n_lo, n_hi, a.t_min, a.t_max, a.gap)
    return {"q": out.shift(_delay(element))}


def _clocked_gate(element: Element, inputs: Inputs, data_hi: int) -> Outputs:
    clk = _in(inputs, "clk")
    n_hi = min(clk.n_hi, data_hi)
    if n_hi == 0:
        return {"q": NONE}
    out = PulseBounds(0, n_hi, clk.t_min, clk.t_max, clk.gap)
    return {"q": out.shift(_delay(element))}


@register("ClockedAnd")
def transfer_clocked_and(element: Element, inputs: Inputs) -> Outputs:
    data_hi = min(_in(inputs, "a").n_hi, _in(inputs, "b").n_hi)
    return _clocked_gate(element, inputs, data_hi)


@register("ClockedOr", "ClockedXor")
def transfer_clocked_or_xor(element: Element, inputs: Inputs) -> Outputs:
    data_hi = sat_add(_in(inputs, "a").n_hi, _in(inputs, "b").n_hi)
    return _clocked_gate(element, inputs, data_hi)


# -- mux / demux ---------------------------------------------------------------
@register("Mux")
def transfer_mux(element: Element, inputs: Inputs) -> Outputs:
    a0, a1 = _in(inputs, "a0"), _in(inputs, "a1")
    sel1 = _in(inputs, "sel1")
    union = superpose(a0, a1)
    if union.is_none:
        return {"q": NONE}
    if sel1.is_none and a1.is_none:
        # select stays 0 forever: channel 0 passes exactly.
        n_lo = a0.n_lo
    else:
        n_lo = 0
    out = PulseBounds(n_lo, union.n_hi, union.t_min, union.t_max, union.gap)
    return {"q": out.shift(_delay(element))}


@register("Demux")
def transfer_demux(element: Element, inputs: Inputs) -> Outputs:
    a = _in(inputs, "a")
    sel1 = _in(inputs, "sel1")
    delay = _delay(element)
    if a.is_none:
        return {"q0": NONE, "q1": NONE}
    q0_lo = a.n_lo if sel1.is_none else 0
    q0 = PulseBounds(q0_lo, a.n_hi, a.t_min, a.t_max, a.gap).shift(delay)
    if sel1.is_none:
        q1 = NONE
    else:
        q1 = PulseBounds(0, a.n_hi, a.t_min, a.t_max, a.gap).shift(delay)
    return {"q0": q0, "q1": q1}


# -- structural datapath cells -------------------------------------------------
@register("Balancer")
def transfer_balancer(element: Element, inputs: Inputs) -> Outputs:
    union = superpose(_in(inputs, "a"), _in(inputs, "b"))
    delay = _delay(element)
    if union.is_none:
        return {"y1": NONE, "y2": NONE}
    out = PulseBounds(0, union.n_hi, union.t_min, union.t_max,
                      union.gap).shift(delay)
    return {"y1": out, "y2": out}


@register("BffRoutingUnit")
def transfer_bff_routing(element: Element, inputs: Inputs) -> Outputs:
    delay = _delay(element)

    def steered(port: str) -> PulseBounds:
        drive = _in(inputs, port)
        if drive.is_none:
            return NONE
        return PulseBounds(0, drive.n_hi, drive.t_min, drive.t_max,
                           drive.gap).shift(delay)

    return {"c1_a": steered("a"), "c2_a": steered("a"),
            "c1_b": steered("b"), "c2_b": steered("b")}


@register("PulseIntegrator")
def transfer_integrator(element: Element, inputs: Inputs) -> Outputs:
    epoch = _in(inputs, "epoch")
    if epoch.is_none:
        return {"out": NONE}
    slot_fs = int(getattr(element, "slot_fs", 0))
    n_max = int(getattr(element, "n_max", 0))
    spread = slot_fs * n_max
    # Every epoch marker emits exactly one readout pulse, offset by the
    # accumulated count (0..n_max slots).
    gap = max(0, epoch.gap - spread) if epoch.gap < INF else INF
    out = PulseBounds(epoch.n_lo, epoch.n_hi, epoch.t_min,
                      sat_add(epoch.t_max, spread), gap)
    return {"out": out}


@register("RlBuffer", "RlMemoryCell")
def transfer_rl_buffer(element: Element, inputs: Inputs) -> Outputs:
    epoch_fs = int(getattr(element, "epoch_fs", 0))
    return {"out": _in(inputs, "in").shift(epoch_fs)}


@register("RlShiftRegister")
def transfer_rl_shiftreg(element: Element, inputs: Inputs) -> Outputs:
    epoch_fs = int(getattr(element, "epoch_fs", 0))
    depth = int(getattr(element, "depth", 1))
    return {"out": _in(inputs, "in").shift(depth * epoch_fs)}


@register("BurstPnm")
def transfer_burst_pnm(element: Element, inputs: Inputs) -> Outputs:
    trigger = _in(inputs, "trigger")
    if trigger.is_none:
        return {"out": NONE}
    count = int(getattr(element, "count", 0))
    spacing = int(getattr(element, "spacing_fs", 0))
    if count == 0:
        return {"out": NONE}
    n_lo = trigger.n_lo * count
    n_hi = trigger.n_hi * count if trigger.n_hi < INF else INF
    if trigger.n_hi <= 1:
        gap = spacing
    else:
        gap = 0  # bursts from distinct triggers may interleave
    out = PulseBounds(min(n_lo, n_hi), n_hi,
                      sat_add(trigger.t_min, spacing),
                      sat_add(trigger.t_max, spacing * count), gap)
    return {"out": out}


# -- epoch-relative timing -----------------------------------------------------
def epoch_latency_fs(element: Element) -> int:
    """Whole-epoch latency a cell adds *by design* (0 for everything else).

    RL storage cells hold a pulse for one (or ``depth``) full epochs and
    replay it in a later epoch; when proving paths against the computing
    epoch, that latency belongs to the epoch boundary, not the path, so
    the epoch-relative analysis subtracts it (this is also the linter's
    longest-path convention: these cells expose no ``delay`` attribute).
    """
    kind = type(element).__name__
    if kind in ("RlBuffer", "RlMemoryCell"):
        return int(getattr(element, "epoch_fs", 0))
    if kind == "RlShiftRegister":
        epoch_fs = int(getattr(element, "epoch_fs", 0))
        return int(getattr(element, "depth", 1)) * epoch_fs
    return 0


def epoch_relative_transfer(element: Element, inputs: Inputs) -> Outputs:
    """:func:`transfer` with whole-epoch storage latencies re-anchored.

    Used by the epoch-overflow check only; the plain :func:`transfer`
    windows (real simulated timestamps) remain the soundness-oracle
    contract.
    """
    outputs = transfer(element, inputs)
    latency = epoch_latency_fs(element)
    if not latency:
        return outputs
    rebased: Outputs = {}
    for port, bounds in outputs.items():
        if bounds.is_none:
            rebased[port] = bounds
            continue
        t_max = bounds.t_max if bounds.t_max >= INF else max(
            0, bounds.t_max - latency)
        rebased[port] = PulseBounds(bounds.n_lo, bounds.n_hi,
                                    max(0, bounds.t_min - latency),
                                    t_max, bounds.gap)
    return rebased
