"""The abstract domain: pulse-count / arrival-window / spacing bounds.

One :class:`PulseBounds` value abstracts every pulse stream an (element,
port) endpoint can carry under the declared stimulus:

* ``[n_lo, n_hi]`` — how many pulses the stream delivers, inclusive;
* ``[t_min, t_max]`` — every delivered pulse's timestamp lies inside
  this window (meaningful only when ``n_hi > 0``);
* ``gap`` — a lower bound on the spacing between any two consecutive
  pulses of the stream (``INF`` when at most one pulse can occur).

Unbounded quantities use the integer sentinel :data:`INF` rather than
floats so the whole analysis stays in exact femtosecond arithmetic, the
same integer timeline the event kernel runs on.  All operations are
*sound over-approximations*: the concrete stream set described by the
result always contains every stream described by the operands.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, Optional, Sequence, Tuple

#: "Unbounded" sentinel for counts, times, and gaps.  Far beyond any
#: physical horizon (10^15 fs = 1 microsecond of simulated time; counts
#: never approach it either) yet safe under repeated clamped addition.
INF: int = 10**15


def clamp(value: int) -> int:
    """Clamp a count/time to the ``[0, INF]`` sentinel range."""
    if value >= INF:
        return INF
    if value <= 0:
        return 0
    return value


def sat_add(left: int, right: int) -> int:
    """Saturating addition: anything involving :data:`INF` stays INF."""
    if left >= INF or right >= INF:
        return INF
    return min(left + right, INF)


class PulseBounds(Tuple[int, int, int, int, int]):
    """Sound bounds on one pulse stream (see module docstring).

    Implemented as a validated tuple subclass rather than a dataclass:
    the fixpoint engine constructs and compares these by the thousand,
    and a single tuple allocation (plus three range checks) is several
    times cheaper than frozen-dataclass ``__init__``.  Field order is
    ``(n_lo, n_hi, t_min, t_max, gap)``; instances stay immutable and
    hashable, and equality is plain tuple equality.
    """

    __slots__ = ()

    def __new__(cls, n_lo: int, n_hi: int, t_min: int,
                t_max: int, gap: int) -> "PulseBounds":
        if not 0 <= n_lo <= n_hi:
            raise ValueError(
                f"count interval [{n_lo}, {n_hi}] is malformed"
            )
        if n_hi > 0 and t_min > t_max:
            raise ValueError(
                f"time window [{t_min}, {t_max}] is malformed"
            )
        if gap < 0:
            raise ValueError(f"gap must be >= 0, got {gap}")
        return tuple.__new__(cls, (n_lo, n_hi, t_min, t_max, gap))

    n_lo: int = property(itemgetter(0))  # type: ignore[assignment]
    n_hi: int = property(itemgetter(1))  # type: ignore[assignment]
    t_min: int = property(itemgetter(2))  # type: ignore[assignment]
    t_max: int = property(itemgetter(3))  # type: ignore[assignment]
    gap: int = property(itemgetter(4))  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"PulseBounds(n_lo={self[0]}, n_hi={self[1]}, "
            f"t_min={self[2]}, t_max={self[3]}, gap={self[4]})"
        )

    # -- queries -------------------------------------------------------------
    @property
    def is_none(self) -> bool:
        """True when the stream provably carries zero pulses."""
        return self.n_hi == 0

    def contains_count(self, count: int) -> bool:
        return self.n_lo <= count <= self.n_hi

    def contains_time(self, time: int) -> bool:
        return self.n_hi > 0 and self.t_min <= time <= self.t_max

    def admits_spacing(self, delta: int) -> bool:
        """Whether two consecutive pulses may be ``delta`` fs apart."""
        return delta >= self.gap

    # -- transformers --------------------------------------------------------
    def shift(self, delay: int) -> "PulseBounds":
        """The same stream displaced by a fixed non-negative delay."""
        if delay == 0 or not self[1]:
            return self
        t_min = self[2] + delay
        t_max = self[3] + delay
        return _unchecked(self[0], self[1],
                          t_min if t_min < INF else INF,
                          t_max if t_max < INF else INF, self[4])

    def scale_count(self, lo_div: int = 1, hi_div: int = 1) -> "PulseBounds":
        """Counts divided (floor) — e.g. a TFF halves its stream."""
        n_lo = self.n_lo // lo_div
        n_hi = self.n_hi // hi_div if self.n_hi < INF else INF
        if n_hi == 0:
            return NONE
        return PulseBounds(n_lo, n_hi, self.t_min, self.t_max, self.gap)

    def with_count(self, n_lo: int, n_hi: int) -> "PulseBounds":
        """Same window/gap, different count interval (clamped sane)."""
        n_hi = clamp(n_hi)
        n_lo = min(clamp(n_lo), n_hi)
        if n_hi == 0:
            return NONE
        return PulseBounds(n_lo, n_hi, self.t_min, self.t_max, self.gap)


def _unchecked(n_lo: int, n_hi: int, t_min: int,
               t_max: int, gap: int) -> PulseBounds:
    """Construct without re-validating — for internal operators whose
    results satisfy the invariants by construction (hot path)."""
    return tuple.__new__(PulseBounds, (n_lo, n_hi, t_min, t_max, gap))


#: Bottom: the provably empty stream (canonical window/gap).
NONE = PulseBounds(0, 0, 0, 0, INF)

#: Top: any number of pulses, anywhere, arbitrarily close together.
TOP = PulseBounds(0, INF, 0, INF, 0)


def join(left: PulseBounds, right: PulseBounds) -> PulseBounds:
    """Least upper bound: a stream behaving like *either* operand.

    Counts take the union interval, windows the union hull, gaps the
    weaker (smaller) guarantee.
    """
    if left.is_none:
        if right.is_none:
            return NONE
        return PulseBounds(0, right.n_hi, right.t_min, right.t_max, right.gap)
    if right.is_none:
        return PulseBounds(0, left.n_hi, left.t_min, left.t_max, left.gap)
    return PulseBounds(
        min(left.n_lo, right.n_lo),
        max(left.n_hi, right.n_hi),
        min(left.t_min, right.t_min),
        max(left.t_max, right.t_max),
        min(left.gap, right.gap),
    )


def _cross_gap(left: PulseBounds, right: PulseBounds) -> int:
    """Guaranteed spacing between a pulse of ``left`` and one of ``right``.

    Only disjoint windows guarantee anything; overlapping windows admit
    coincident pulses (spacing 0).
    """
    if left.t_max < right.t_min:
        return right.t_min - left.t_max
    if right.t_max < left.t_min:
        return left.t_min - right.t_max
    return 0


def superpose(left: PulseBounds, right: PulseBounds) -> PulseBounds:
    """The union of two streams arriving at the *same* endpoint.

    Counts add; the window is the union hull; the spacing guarantee is
    the weakest of each stream's own gap and the cross-stream separation
    (zero unless the windows are provably disjoint).
    """
    if not left[1]:
        return right
    if not right[1]:
        return left
    gap = min(left[4], right[4], _cross_gap(left, right))
    return _unchecked(
        sat_add(left[0], right[0]),
        sat_add(left[1], right[1]),
        min(left[2], right[2]),
        max(left[3], right[3]),
        gap,
    )


def superpose_all(streams: Iterable[PulseBounds]) -> PulseBounds:
    result = NONE
    for stream in streams:
        result = superpose(result, stream)
    return result


def widen(old: PulseBounds, new: PulseBounds) -> PulseBounds:
    """Widening operator for feedback loops.

    Any field still growing after the widening threshold jumps straight
    to its absorbing value (``0`` or :data:`INF`), so every endpoint
    stabilises after at most one widening step per field — the classic
    interval-domain widening, applied per component.  The result
    over-approximates both operands.
    """
    if new.is_none:
        return old
    if old.is_none:
        # First non-empty value past the threshold: give up on counts
        # and windows immediately (the loop manufactures pulses).
        return PulseBounds(0, INF, min(0, new.t_min), INF, 0)
    return PulseBounds(
        old.n_lo if new.n_lo >= old.n_lo else 0,
        old.n_hi if new.n_hi <= old.n_hi else INF,
        old.t_min if new.t_min >= old.t_min else 0,
        old.t_max if new.t_max <= old.t_max else INF,
        old.gap if new.gap >= old.gap else 0,
    )


def contains(outer: PulseBounds, inner: PulseBounds) -> bool:
    """Whether every stream admitted by ``inner`` is admitted by ``outer``."""
    if inner.is_none:
        return outer.n_lo == 0
    return (
        outer.n_lo <= inner.n_lo
        and inner.n_hi <= outer.n_hi
        and outer.t_min <= inner.t_min
        and inner.t_max <= outer.t_max
        and outer.gap <= inner.gap
    )


def stimulus_bounds(times: Sequence[int]) -> PulseBounds:
    """The *exact* abstraction of a concrete stimulus train."""
    if not times:
        return NONE
    ordered = sorted(times)
    gap: int = INF
    for earlier, later in zip(ordered, ordered[1:]):
        gap = min(gap, later - earlier)
    return PulseBounds(len(ordered), len(ordered),
                       ordered[0], ordered[-1], gap)


def single_pulse_bounds(time: int = 0) -> PulseBounds:
    """At most one pulse at exactly ``time`` — the entry abstraction that
    reproduces the linter's worst-case path semantics (a pulse enters
    each stimulus port at t = 0)."""
    return PulseBounds(0, 1, time, time, INF)


def describe(bounds: PulseBounds) -> str:
    """Compact human-readable rendering for reports and witnesses."""
    if bounds.is_none:
        return "none"

    def fmt(value: int) -> str:
        return "inf" if value >= INF else str(value)

    return (
        f"n=[{fmt(bounds.n_lo)},{fmt(bounds.n_hi)}] "
        f"t=[{fmt(bounds.t_min)},{fmt(bounds.t_max)}]fs "
        f"gap>={fmt(bounds.gap)}"
    )


def bounds_to_dict(bounds: PulseBounds) -> "dict[str, Optional[int]]":
    """JSON form (INF encoded as ``None`` for portability)."""

    def enc(value: int) -> Optional[int]:
        return None if value >= INF else value

    return {
        "n_lo": bounds.n_lo,
        "n_hi": enc(bounds.n_hi),
        "t_min": bounds.t_min,
        "t_max": enc(bounds.t_max),
        "gap": enc(bounds.gap),
    }
