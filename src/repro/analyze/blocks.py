"""Shipped-block front end: abstract-interpret the lint registry.

Reuses :mod:`repro.lint.blocks`' :class:`BuiltBlock` builders — the same
netlists, entry points, epoch geometry, and waiver policy the linter
runs — so ``usfq-analyze`` and ``usfq-lint`` always agree on what a
block *is* and disagree only in how deeply they reason about it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyze.api import CHECKS, Analysis, AnalyzeConfig, analyze_circuit
from repro.lint.blocks import SHIPPED_BLOCKS, BuiltBlock, build_shipped_block

__all__ = [
    "SHIPPED_BLOCKS",
    "analyze_built_block",
    "analyze_shipped_block",
    "analyze_all_blocks",
]


def config_for_block(built: BuiltBlock) -> AnalyzeConfig:
    """Map a block's lint policy onto the analyzer's.

    The epoch geometry carries over directly; lint rule suppressions
    that name an analyzer check (e.g. the merger-tree adder's
    ``merger-collision`` waiver — collisions there are the paper's
    documented failure mode, cured by scheduling) become waivers.
    """
    return AnalyzeConfig(
        epoch=built.config.epoch,
        waive=frozenset(built.config.suppress) & frozenset(CHECKS),
    )


def analyze_built_block(built: BuiltBlock,
                        config: Optional[AnalyzeConfig] = None) -> Analysis:
    return analyze_circuit(
        built.circuit,
        entry_points=built.entry_points,
        observed_outputs=built.observed_outputs,
        config=config or config_for_block(built),
        target=built.target,
    )


def analyze_shipped_block(name: str) -> Analysis:
    """Abstract-interpret one registry entry by name (proof mode)."""
    return analyze_built_block(build_shipped_block(name))


def analyze_all_blocks() -> List[Analysis]:
    """Analyze every shipped block, in registry order."""
    return [
        analyze_built_block(entry.build())
        for entry in SHIPPED_BLOCKS.values()
    ]
