"""``python -m repro.analyze`` — the pulse-flow analyzer CLI."""

import sys

from repro.analyze.cli import main

sys.exit(main())
