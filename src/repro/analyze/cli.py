"""Command-line interface for the pulse-flow abstract interpreter.

Usage::

    python -m repro.analyze --all-blocks           # analyze every block
    python -m repro.analyze pnm dpu                # a subset by name
    python -m repro.analyze --list-blocks          # show analyzable blocks
    python -m repro.analyze --all-blocks --json    # machine-readable output
    python -m repro.analyze --all-blocks --fail-on warning
    python -m repro.analyze dpu --output results/analyze/dpu.json
    usfq-analyze --all-blocks                      # console-script alias

The exit code is 0 when no live finding reaches the ``--fail-on``
severity (default ``error``) and 1 otherwise, so CI can gate on it
directly.  ``--bounds`` adds the full per-port bounds table to JSON
output (verbose; meant for debugging transfer functions).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analyze.api import Analysis
from repro.analyze.blocks import (
    SHIPPED_BLOCKS,
    analyze_shipped_block,
)
from repro.lint.report import Severity


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usfq-analyze",
        description=(
            "Abstract-interpretation pulse-flow analysis for the shipped "
            "U-SFQ netlists: pulse-count/arrival-window bounds, epoch and "
            "merger-collision proofs, queue-depth and switching-energy "
            "envelopes."
        ),
    )
    parser.add_argument(
        "blocks",
        nargs="*",
        metavar="BLOCK",
        help="shipped block names to analyze (see --list-blocks)",
    )
    parser.add_argument(
        "--all-blocks",
        action="store_true",
        help="analyze every shipped structural block",
    )
    parser.add_argument(
        "--list-blocks",
        action="store_true",
        help="list analyzable block names",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of text",
    )
    parser.add_argument(
        "--bounds",
        action="store_true",
        help="include the full per-port bounds table in JSON output",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print waived findings in text output",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the JSON document to PATH instead of stdout",
    )
    parser.add_argument(
        "--fail-on",
        default="error",
        choices=["info", "warning", "error", "never"],
        help="lowest severity that makes the exit code non-zero "
             "(default: error)",
    )
    args = parser.parse_args(argv)

    if args.list_blocks:
        for entry in SHIPPED_BLOCKS.values():
            print(f"{entry.name:20s} {entry.description}")
        return 0

    names = list(SHIPPED_BLOCKS) if args.all_blocks else args.blocks
    if not names:
        parser.error("nothing to analyze: pass block names or --all-blocks")
    unknown = [name for name in names if name not in SHIPPED_BLOCKS]
    if unknown:
        parser.error(
            f"unknown block(s) {', '.join(unknown)}; see --list-blocks"
        )

    analyses: List[Analysis] = [analyze_shipped_block(name) for name in names]

    if args.json or args.output:
        targets = []
        for analysis in analyses:
            entry = analysis.report.to_dict()
            if args.bounds:
                entry["bounds"] = analysis.bounds_table()
            targets.append(entry)
        document = {
            "targets": targets,
            "ok": all(a.report.ok for a in analyses),
        }
        text = json.dumps(document, indent=2)
        if args.output:
            path = Path(args.output)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
        else:
            print(text)
    else:
        for analysis in analyses:
            print(analysis.report.format_text(verbose=args.verbose))
            print()
        counts = [a.report.counts() for a in analyses]
        print(
            f"analyzed {len(analyses)} block(s): "
            f"{sum(c['error'] for c in counts)} error(s), "
            f"{sum(c['warning'] for c in counts)} warning(s)"
        )

    if args.fail_on == "never":
        return 0
    level = Severity.parse(args.fail_on)
    return 1 if any(a.report.fails_at(level) for a in analyses) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
