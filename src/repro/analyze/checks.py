"""Derived checks over a converged :class:`FixpointResult`.

Each check turns the abstract per-port bounds into findings or derived
whole-circuit quantities:

* ``epoch-overflow`` — an observed/fanned-out emission window extends
  past the computing epoch (sharpens the linter's longest-path sum with
  per-path witness chains);
* ``merger-collision`` — a merger's combined input stream cannot be
  proven to keep pulses a dead-time apart (and conversely: a proof of
  collision-freedom when it can);
* ``dead-path`` — a wired input or an observed output that provably
  never carries a pulse under the declared stimulus;
* peak scheduler queue-depth bound — every scheduled event is either a
  stimulus pulse or one emission travelling one fan-out wire, so the
  total over all wires bounds the bucket queue's live population;
* switching-energy envelope — ``E_switch x JJ x pulse-count`` summed
  per cell, bracketing the measured-activity numbers from repro.trace.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analyze.domain import (
    INF,
    PulseBounds,
    describe,
    superpose_all,
)
from repro.analyze.engine import FixpointResult
from repro.analyze.report import Finding
from repro.encoding.epoch import EpochSpec
from repro.lint.report import Severity
from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element

#: Witness chains stop after this many hops (enough for every shipped
#: block; keeps pathological graphs from flooding the report).
WITNESS_LIMIT = 16


def _fmt(value: int) -> str:
    return "inf" if value >= INF else str(value)


def witness_chain(fx: FixpointResult, element: Element,
                  port: str) -> Tuple[str, ...]:
    """Greedy worst-path reconstruction ending at ``element.port``.

    From the flagged emission, repeatedly steps to the driven input port
    with the latest possible arrival, then across the fan-in wire whose
    contribution realises it, until a stimulus entry (or a loop/limit)
    is reached.  The chain reads stimulus-first.
    """
    chain: List[str] = []
    visited = set()
    current, out_port = element, port
    while len(chain) < WITNESS_LIMIT:
        bounds = fx.output_bounds(current, out_port)
        chain.append(f"{current.name}.{out_port}  {describe(bounds)}")
        if id(current) in visited:
            chain.append("(feedback loop)")
            break
        visited.add(id(current))
        inputs = fx.inputs.get(id(current), {})
        driven = [(p, b) for p, b in inputs.items() if not b.is_none]
        if not driven:
            break
        in_port, _ = max(driven, key=lambda kv: kv[1].t_max)
        entry = fx.entry_bounds.get((id(current), in_port))
        best_wire = None
        best_t = -1
        for wire in fx.graph.fan_in(current, in_port):
            contrib = fx.output_bounds(
                wire.source, wire.source_port).shift(wire.delay)
            if not contrib.is_none and contrib.t_max > best_t:
                best_wire, best_t = wire, contrib.t_max
        if best_wire is None or (
            entry is not None and not entry.is_none and entry.t_max >= best_t
        ):
            chain.append(
                f"{current.name}.{in_port}  stimulus "
                f"{describe(entry) if entry is not None else 'none'}"
            )
            break
        current, out_port = best_wire.source, best_wire.source_port
    chain.reverse()
    return tuple(chain)


# -- fused output scan ---------------------------------------------------------
class OutputScan:
    """Everything one pass over the converged outputs yields.

    Attributes:
        overflow: Epoch-overflow findings (empty when ``epoch`` is None).
        slack_fs: Epoch budget minus the latest checked emission
            (negative = overflow; ``None`` when nothing is observed, a
            window is unbounded, or no epoch was given).
        queue_bound: Static peak-queue-depth bound (:data:`INF` if
            unbounded).
        events_lo / events_hi: JJ switching-event envelope.
    """

    __slots__ = ("overflow", "slack_fs", "queue_bound",
                 "events_lo", "events_hi")

    def __init__(self, overflow: List[Finding], slack_fs: Optional[int],
                 queue_bound: int, events_lo: int, events_hi: int) -> None:
        self.overflow = overflow
        self.slack_fs = slack_fs
        self.queue_bound = queue_bound
        self.events_lo = events_lo
        self.events_hi = events_hi


def scan_outputs(fx: FixpointResult,
                 epoch: Optional[EpochSpec] = None) -> OutputScan:
    """Derive every per-output quantity in a single sweep.

    *Epoch overflow* — an emission window whose upper edge exceeds the
    computing epoch, on any *checked* port (observed or fanning out).

    *Queue depth* — every event the kernel ever holds is either an
    injected stimulus pulse or one emission travelling one fan-out wire,
    so the stimulus count plus the sum over wires of the driving port's
    count bound the peak live population (and, a fortiori, the
    instantaneous queue depth the stats report).

    *Switching events* — convention matches repro.trace's
    measured-activity accounting: each pulse emitted by a cell switches
    that cell's ``jj_count`` junctions once.  Stimulus entry pulses are
    charged to the receiving cell by its own emissions, so no separate
    entry term is needed.

    Plain integer accumulation with one clamp at the end: INF is 10^15,
    so any sum touching an INF term lands at or above INF and clamps
    back to the sentinel (Python ints do not overflow).
    """
    budget = epoch.duration_fs if epoch is not None else None
    findings: List[Finding] = []
    seen = set()
    latest: Optional[int] = None
    unbounded = False
    queue = 0
    for bounds in fx.entry_bounds.values():
        queue += bounds.n_hi
    events_lo = 0
    events_hi = 0
    observed = fx.graph.observed
    out_wires = fx.graph.out_wires
    outputs = fx.outputs
    for element in fx.circuit.elements:
        eid = id(element)
        out = outputs.get(eid)
        if not out:
            continue
        jj = getattr(element, "jj_count", 0)
        for port, bounds in out.items():
            n_hi = bounds.n_hi
            if not n_hi:
                continue
            if jj:
                events_lo += jj * bounds.n_lo
                events_hi += jj * n_hi
            wires = out_wires.get((eid, port))
            if wires:
                queue += len(wires) * n_hi
            if budget is None or (wires is None and (eid, port) not in observed):
                continue
            t_max = bounds.t_max
            if t_max >= INF:
                unbounded = True
            elif latest is None or t_max > latest:
                latest = t_max
            if t_max <= budget or eid in seen:
                continue
            seen.add(eid)
            assert epoch is not None
            findings.append(
                Finding(
                    check="epoch-overflow",
                    severity=Severity.ERROR,
                    message=(
                        f"emission window closes at {_fmt(t_max)} fs, "
                        f"past the {epoch.bits}-bit epoch ({budget} fs = "
                        f"2^{epoch.bits} x {epoch.slot_fs} fs); up to "
                        f"{_fmt(n_hi)} pulse(s) spill into the next "
                        "epoch"
                    ),
                    element=element.name,
                    port=port,
                    witness=witness_chain(fx, element, port),
                )
            )
    slack = (None if budget is None or unbounded or latest is None
             else budget - latest)
    return OutputScan(
        findings,
        slack,
        INF if queue >= INF else queue,
        INF if events_lo >= INF else events_lo,
        INF if events_hi >= INF else events_hi,
    )


def epoch_check(fx: FixpointResult,
                epoch: EpochSpec) -> Tuple[List[Finding], Optional[int]]:
    """Overflow findings plus slack (see :func:`scan_outputs`)."""
    scan = scan_outputs(fx, epoch)
    return scan.overflow, scan.slack_fs


def epoch_overflow_findings(fx: FixpointResult,
                            epoch: EpochSpec) -> List[Finding]:
    """Emission windows whose upper edge exceeds the computing epoch."""
    return epoch_check(fx, epoch)[0]


def epoch_slack_fs(fx: FixpointResult, epoch: EpochSpec) -> Optional[int]:
    """Epoch budget minus the latest checked emission (negative = overflow;
    ``None`` when nothing is observed or a window is unbounded)."""
    return epoch_check(fx, epoch)[1]


# -- merger collisions ---------------------------------------------------------
def merger_collision_findings(
    fx: FixpointResult,
) -> Tuple[List[Finding], int, int]:
    """Per merger: prove collision-freedom or flag the offending streams.

    Returns ``(findings, proved, checked)`` where ``checked`` counts
    mergers with a nonzero dead time and at least one live input.
    """
    findings: List[Finding] = []
    proved = 0
    checked = 0
    for element in fx.circuit.elements:
        if not element.has_role(CellRole.MERGER):
            continue
        dead_time = int(getattr(element, "dead_time", tech.T_MERGER_DEAD_FS))
        if dead_time <= 0:
            continue
        inputs = fx.inputs.get(id(element), {})
        live = [(p, b) for p, b in sorted(inputs.items()) if not b.is_none]
        if not live:
            continue
        checked += 1
        combined = superpose_all(b for _, b in live)
        if combined.n_hi <= 1 or combined.gap >= dead_time:
            proved += 1
            continue
        findings.append(
            Finding(
                check="merger-collision",
                severity=Severity.WARNING,
                message=_collision_message(live, dead_time),
                element=element.name,
                port=live[-1][0],
                witness=tuple(
                    f"{element.name}.{p}  {describe(b)}" for p, b in live
                ),
            )
        )
    return findings, proved, checked


def _collision_message(live: List[Tuple[str, PulseBounds]],
                       dead_time: int) -> str:
    for port, bounds in live:
        if bounds.n_hi > 1 and bounds.gap < dead_time:
            return (
                f"stream on input {port} may space pulses "
                f"{_fmt(bounds.gap)} fs apart (< dead time {dead_time} fs); "
                "back-to-back pulses collide inside the merger"
            )
    for i, (port_a, a) in enumerate(live):
        for port_b, b in live[i + 1:]:
            separation = _window_separation(a, b)
            if separation < dead_time:
                return (
                    f"inputs {port_a} and {port_b} may arrive "
                    f"{separation} fs apart (< dead time {dead_time} fs); "
                    "coincident pulses collide and one is lost "
                    "(paper Fig 5b)"
                )
    return (
        f"combined input stream cannot be proven to keep pulses "
        f"{dead_time} fs apart"
    )


def _window_separation(a: PulseBounds, b: PulseBounds) -> int:
    if a.t_max < b.t_min:
        return b.t_min - a.t_max
    if b.t_max < a.t_min:
        return a.t_min - b.t_max
    return 0


# -- dead paths ----------------------------------------------------------------
def dead_path_findings(fx: FixpointResult) -> List[Finding]:
    """Wired inputs and observed outputs that provably never pulse."""
    findings: List[Finding] = []
    for element in fx.circuit.elements:
        for port in element.input_names:
            if not fx.graph.fan_in(element, port):
                continue
            if not fx.input_bounds(element, port).is_none:
                continue
            findings.append(
                Finding(
                    check="dead-path",
                    severity=Severity.WARNING,
                    message=(
                        "wired input can never receive a pulse under the "
                        "declared stimulus; dead logic or missing drive"
                    ),
                    element=element.name,
                    port=port,
                )
            )
        for port in element.output_names:
            if not fx.graph.is_observed(element, port):
                continue
            if not fx.output_bounds(element, port).is_none:
                continue
            findings.append(
                Finding(
                    check="dead-path",
                    severity=Severity.WARNING,
                    message=(
                        "observed output can never emit under the declared "
                        "stimulus"
                    ),
                    element=element.name,
                    port=port,
                )
            )
    return findings


# -- scheduler queue bound -----------------------------------------------------
def queue_depth_bound(fx: FixpointResult) -> int:
    """Static upper bound on the event kernel's peak queue depth."""
    return scan_outputs(fx).queue_bound


# -- switching-energy envelope -------------------------------------------------
def switching_event_envelope(fx: FixpointResult) -> Tuple[int, int]:
    """``[lo, hi]`` bound on JJ switching events for one run."""
    scan = scan_outputs(fx)
    return scan.events_lo, scan.events_hi


def energy_from_events(
    events_lo: int, events_hi: int,
) -> Tuple[float, Optional[float]]:
    """Convert an event envelope to joules (``None`` hi = unbounded)."""
    lo = events_lo * tech.E_SWITCH_J
    hi = None if events_hi >= INF else events_hi * tech.E_SWITCH_J
    return lo, hi


def switching_energy_envelope_j(
    fx: FixpointResult,
) -> Tuple[float, Optional[float]]:
    """``[lo, hi]`` switching energy in joules (``None`` = unbounded)."""
    return energy_from_events(*switching_event_envelope(fx))
