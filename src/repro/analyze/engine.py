"""Worklist fixpoint over per-port pulse bounds.

The engine propagates :class:`~repro.analyze.domain.PulseBounds` from the
entry-point abstractions through the netlist:

* an input port's state is the *superposition* of its entry abstraction
  (if externally driven) and one contribution per in-wire — the driving
  output's bounds shifted by the wire delay;
* an element's output bounds are its registered transfer function applied
  to its input states;
* every change to an output propagates to the sinks of its fan-out wires,
  which re-enter the worklist.

The worklist is seeded in topological order (cyclic residue last, in
insertion order), so on acyclic netlists — the common case; storage
cells break feedback in real U-SFQ datapaths — every element is
evaluated exactly once and the result is the exact least fixpoint of the
transfer functions.  On cyclic netlists, per-element *widening* kicks in
after :data:`WIDEN_AFTER` revisits: any still-growing field jumps to its
absorbing value, so the loop converges in a bounded number of steps
while remaining a sound over-approximation.

This module is on the ``usfq-analyze`` fast path (the committed
benchmark pits it against a traced simulated epoch), hence the slightly
denser style: per-element wiring is flattened into tuples once and the
hot loop avoids re-deriving it from the graph on every visit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Set, Tuple

from repro.analyze.domain import NONE, PulseBounds, superpose, widen
from repro.analyze.transfer import TRANSFER, TransferFn, transfer, transfer_unknown
from repro.errors import SimulationError
from repro.lint.graph import CircuitGraph
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit

#: Element revisits before widening engages (loops only; DAG elements
#: converge in at most a handful of visits).
WIDEN_AFTER = 4

#: Hard iteration ceiling per element — a backstop, not a tuning knob;
#: widening guarantees convergence far below it.
MAX_VISITS = 64

#: An (element-id, port) endpoint key.
PortKey = Tuple[int, str]


class FixpointResult:
    """The converged abstract state of one circuit.

    Attributes:
        circuit: The analysed netlist.
        graph: The :class:`CircuitGraph` used for fan-in/fan-out indexes.
        entry_bounds: External stimulus abstraction per entry port.
        inputs: Per element id, the abstract stream at each input port.
        outputs: Per element id, the abstract stream at each output port
            (emission-side: cell delay included, wire delay not).
        iterations: Total element evaluations performed.
        widened: Element ids whose outputs were widened (feedback loops).
    """

    def __init__(self, circuit: Circuit, graph: CircuitGraph,
                 entry_bounds: Mapping[PortKey, PulseBounds]) -> None:
        self.circuit = circuit
        self.graph = graph
        self.entry_bounds: Dict[PortKey, PulseBounds] = dict(entry_bounds)
        self.inputs: Dict[int, Dict[str, PulseBounds]] = {}
        self.outputs: Dict[int, Dict[str, PulseBounds]] = {}
        self._elements: Optional[Dict[int, Element]] = None
        self.iterations = 0
        self.widened: Set[int] = set()

    @property
    def elements(self) -> Dict[int, Element]:
        """Element-id lookup, materialised on first use."""
        if self._elements is None:
            self._elements = {
                id(element): element for element in self.circuit.elements
            }
        return self._elements

    # -- lookups -------------------------------------------------------------
    def input_bounds(self, element: Element, port: str) -> PulseBounds:
        """Abstract arrival stream at one input port."""
        return self.inputs.get(id(element), {}).get(port, NONE)

    def output_bounds(self, element: Element, port: str) -> PulseBounds:
        """Abstract emission stream at one output port."""
        return self.outputs.get(id(element), {}).get(port, NONE)


#: Per-element evaluation record: ``(eid, element, transfer, in_ports,
#: out_ports)`` with ``in_ports`` = ((port, entry_key, wires), ...) where
#: ``wires`` = ((source_id, source_port, delay), ...), and ``out_ports``
#: = ((port, sink_ids), ...).
_PlanRecord = Tuple[
    int,
    Element,
    TransferFn,
    Tuple[Tuple[str, PortKey, Tuple[Tuple[int, str, int], ...]], ...],
    Tuple[Tuple[str, Tuple[int, ...]], ...],
]


#: Cached plan: record per element id (topological insertion order) plus
#: whether the netlist is acyclic (enables the straight-line sweep).
_Plan = Tuple[Dict[int, _PlanRecord], bool]


def _build_plan(circuit: Circuit, graph: CircuitGraph) -> _Plan:
    """Flatten per-element wiring into tuples, in topological order."""
    in_index = graph.in_wires
    out_index = graph.out_wires
    records: Dict[int, _PlanRecord] = {}
    transfer_cache: Dict[type, TransferFn] = {}
    ordered, acyclic = _topological_elements(circuit, graph)
    for element in ordered:
        eid = id(element)
        kind = type(element)
        tfn = transfer_cache.get(kind)
        if tfn is None:
            tfn = TRANSFER.get(kind.__name__, transfer_unknown)
            transfer_cache[kind] = tfn
        in_ports = []
        for port in element.input_names:
            wires = in_index.get((eid, port))
            flat = (
                tuple((id(w.source), w.source_port, w.delay) for w in wires)
                if wires else ()
            )
            in_ports.append((port, (eid, port), flat))
        out_ports = []
        for port in element.output_names:
            wires = out_index.get((eid, port))
            sinks = tuple(id(w.sink) for w in wires) if wires else ()
            out_ports.append((port, sinks))
        records[eid] = (eid, element, tfn, tuple(in_ports), tuple(out_ports))
    return records, acyclic


def _plan_for(circuit: Circuit, graph: CircuitGraph) -> _Plan:
    """Plan for ``circuit``, cached on the circuit by topology version.

    The plan depends only on the wiring (not on entry points, observed
    outputs, or stimulus), so it follows the compiled-kernel idiom: tag
    with ``Circuit._version`` — bumped on every structural change — and
    rebuild lazily on mismatch.  Lint, analyze, and the verify soundness
    oracle can then analyse the same netlist repeatedly for the cost of
    one flattening.
    """
    version = circuit._version
    cached = getattr(circuit, "_pulseflow_plan", None)
    if cached is not None and cached[0] == version:
        plan: _Plan = cached[1]
        return plan
    plan = _build_plan(circuit, graph)
    circuit._pulseflow_plan = (version, plan)  # type: ignore[attr-defined]
    return plan


def _topological_elements(
        circuit: Circuit,
        graph: CircuitGraph) -> Tuple[List[Element], bool]:
    """Elements, dependencies-first; cyclic residue appended in order.

    Also reports whether the netlist is acyclic (the residue is empty).
    """
    elements = list(circuit.elements)
    indegree: Dict[int, int] = {id(e): 0 for e in elements}
    for wire in circuit.iter_wires():
        indegree[id(wire.sink)] += 1
    by_id = {id(e): e for e in elements}
    ready = deque(e for e in elements if not indegree[id(e)])
    order: List[Element] = []
    while ready:
        element = ready.popleft()
        order.append(element)
        for wire in graph.successors[id(element)]:
            sid = id(wire.sink)
            indegree[sid] -= 1
            if indegree[sid] == 0:
                ready.append(by_id[sid])
    acyclic = len(order) == len(elements)
    if not acyclic:  # feedback: append the cyclic residue
        placed = {id(e) for e in order}
        order.extend(e for e in elements if id(e) not in placed)
    return order, acyclic


def fixpoint(circuit: Circuit, graph: CircuitGraph,
             entry_bounds: Mapping[PortKey, PulseBounds],
             widen_after: int = WIDEN_AFTER,
             transfer_fn: TransferFn = transfer) -> FixpointResult:
    """Run the worklist iteration to convergence and return the state.

    ``transfer_fn`` defaults to the sound real-time transfer; the epoch
    check passes :func:`~repro.analyze.transfer.epoch_relative_transfer`
    to re-anchor whole-epoch storage latencies.
    """
    result = FixpointResult(circuit, graph, entry_bounds)
    entries = result.entry_bounds
    all_inputs = result.inputs
    all_outputs = result.outputs
    widened = result.widened
    plan, acyclic = _plan_for(circuit, graph)
    dispatch_direct = transfer_fn is transfer
    entries_get = entries.get
    outputs_get = all_outputs.get
    none = NONE

    if acyclic:
        # Straight-line sweep: the plan is in topological order, so one
        # evaluation per element reaches the exact least fixpoint — no
        # worklist, visit counting, widening, or change tracking needed.
        for eid, element, tfn, in_ports, out_ports in plan.values():
            inputs: Dict[str, PulseBounds] = {}
            for port, entry_key, wires in in_ports:
                state = entries_get(entry_key, none)
                for source_id, source_port, delay in wires:
                    contrib = outputs_get(source_id)
                    if contrib is None:
                        continue
                    bounds = contrib.get(source_port)
                    if bounds is None or not bounds[1]:
                        continue
                    shifted = bounds.shift(delay) if delay else bounds
                    state = (shifted if not state[1]
                             else superpose(state, shifted))
                inputs[port] = state
            all_inputs[eid] = inputs
            computed = (tfn if dispatch_direct else transfer_fn)(
                element, inputs)
            if len(computed) == len(out_ports):
                # Transfer functions key their (fresh) result dict by the
                # cell's output names, so matching sizes means matching
                # key sets — adopt the dict instead of rebuilding it.
                all_outputs[eid] = computed
            else:
                all_outputs[eid] = {
                    port: computed.get(port, none) for port, _ in out_ports
                }
        result.iterations = len(plan)
        return result

    visits: Dict[int, int] = {}
    queued: Set[int] = set(plan)
    worklist: Deque[int] = deque(plan)
    iterations = 0

    while worklist:
        eid = worklist.popleft()
        queued.discard(eid)
        eid, element, tfn, in_ports, out_ports = plan[eid]
        count = visits.get(eid, 0) + 1
        visits[eid] = count
        iterations += 1
        if count > MAX_VISITS:  # pragma: no cover - widening backstop
            raise SimulationError(
                f"pulse-flow fixpoint failed to converge at {element!r} "
                f"after {MAX_VISITS} visits"
            )

        inputs = {}
        for port, entry_key, wires in in_ports:
            state = entries_get(entry_key, none)
            for source_id, source_port, delay in wires:
                contrib = outputs_get(source_id)
                if contrib is None:
                    continue
                bounds = contrib.get(source_port)
                if bounds is None or not bounds[1]:
                    continue
                shifted = bounds.shift(delay) if delay else bounds
                state = shifted if not state[1] else superpose(state, shifted)
            inputs[port] = state
        all_inputs[eid] = inputs
        computed = (tfn if dispatch_direct else transfer_fn)(element, inputs)
        old = outputs_get(eid)
        if old is None:
            old = {}
        new: Dict[str, PulseBounds] = {}
        changed: List[Tuple[int, ...]] = []
        for port, sinks in out_ports:
            fresh = computed.get(port, none)
            previous = old.get(port, none)
            if fresh != previous:
                if count > widen_after:
                    fresh = widen(previous, fresh)
                    if fresh != previous:
                        widened.add(eid)
                if fresh != previous and sinks:
                    changed.append(sinks)
            new[port] = fresh
        all_outputs[eid] = new

        for sinks in changed:
            for sink_id in sinks:
                if sink_id not in queued:
                    worklist.append(sink_id)
                    queued.add(sink_id)
    result.iterations = iterations
    return result
