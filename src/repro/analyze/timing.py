"""The shared worst-case timing engine behind lint *and* analyze.

Historically the ``epoch-overflow`` and ``merger-collision`` rule bodies
lived in :mod:`repro.lint.rules`; they are hoisted here so the linter and
the abstract interpreter consume one timing engine.  The scalar layer
(this module) runs longest-path worst-case arrivals over a
:class:`~repro.lint.graph.CircuitGraph`; the interval layer
(:mod:`repro.analyze.engine`) sharpens the same questions with
per-(element, port) arrival *windows* and pulse-count intervals.

The diagnostic producers here are byte-compatible with the historical
lint rules: same messages, same locations, same dedup policy — locked by
the existing lint test suite.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.encoding.epoch import EpochSpec
from repro.lint.graph import CircuitGraph
from repro.lint.report import Diagnostic, Severity
from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element
from repro.pulsesim.netlist import Circuit
from repro.synth.builder import collision_pairs


def worst_case_output_arrival(graph: CircuitGraph, element: Element,
                              port: str) -> Optional[int]:
    """Worst-case time a pulse leaves ``element.port`` (longest path)."""
    return graph.output_arrival(element, port)


def worst_case_port_arrivals(graph: CircuitGraph,
                             element: Element) -> List[Tuple[str, int]]:
    """Per driven input port, the worst-case arrival time of any pulse.

    Entry-point drives count as arriving at t = 0 (the linter's stimulus
    convention).  Ports with no computable arrival are omitted.
    """
    arrivals: List[Tuple[str, int]] = []
    for port in element.input_names:
        port_arrivals = [
            a
            for a in (
                graph.wire_arrival(w) for w in graph.fan_in(element, port)
            )
            if a is not None
        ]
        if graph.is_entry(element, port):
            port_arrivals.append(0)
        if port_arrivals:
            arrivals.append((port, max(port_arrivals)))
    return arrivals


def epoch_overflow_diagnostics(
    circuit: Circuit,
    graph: CircuitGraph,
    epoch: EpochSpec,
    severity: Severity = Severity.ERROR,
    rule: str = "epoch-overflow",
) -> List[Diagnostic]:
    """Worst-case paths longer than the computing epoch, one per element."""
    budget = epoch.duration_fs
    diagnostics: List[Diagnostic] = []
    seen: Set[int] = set()
    for element in circuit.elements:
        for port in element.output_names:
            if not (
                graph.is_observed(element, port)
                or graph.fan_out(element, port)
            ):
                continue
            arrival = graph.output_arrival(element, port)
            if arrival is None or arrival <= budget:
                continue
            if id(element) in seen:
                continue
            seen.add(id(element))
            diagnostics.append(
                Diagnostic(
                    rule=rule,
                    severity=severity,
                    message=(
                        f"worst-case arrival {arrival} fs exceeds the "
                        f"{epoch.bits}-bit epoch ({budget} fs = "
                        f"2^{epoch.bits} x {epoch.slot_fs} fs); pulses "
                        "spill into the next epoch"
                    ),
                    element=element.name,
                    port=port,
                )
            )
    return diagnostics


def merger_collision_diagnostics(
    circuit: Circuit,
    graph: CircuitGraph,
    severity: Severity = Severity.WARNING,
    rule: str = "merger-collision",
) -> List[Diagnostic]:
    """Merger input pairs whose worst-case arrivals fall inside the dead
    time (paper Fig 5b)."""
    diagnostics: List[Diagnostic] = []
    for element in circuit.elements:
        if not element.has_role(CellRole.MERGER):
            continue
        dead_time = int(getattr(element, "dead_time", tech.T_MERGER_DEAD_FS))
        if dead_time <= 0:
            continue
        arrivals = worst_case_port_arrivals(graph, element)
        # The shared legality helper is the detection half of the merger
        # spacing discipline the verify generator and the synthesis
        # builder construct against (repro.synth.builder).
        for (port_a, _t_a), (port_b, _t_b), skew in collision_pairs(
            arrivals, dead_time
        ):
            diagnostics.append(
                Diagnostic(
                    rule=rule,
                    severity=severity,
                    message=(
                        f"inputs {port_a} and {port_b} arrive {skew} fs "
                        f"apart (< dead time {dead_time} fs); coincident "
                        "pulses collide and one is lost (paper Fig 5b) — "
                        "stagger the paths or accept the documented loss"
                    ),
                    element=element.name,
                    port=port_b,
                )
            )
    return diagnostics
