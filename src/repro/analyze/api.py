"""The analyzer front door: :func:`analyze_circuit`.

Two entry abstractions cover the two use cases:

* **proof mode** (no ``stimulus``): every entry port carries *at most
  one* pulse at t = 0 — the linter's worst-case-path convention — so
  epoch/collision conclusions are proofs over the block's single-wave
  operating regime;
* **stimulus mode** (``stimulus`` maps entry ports to concrete pulse
  trains): every entry carries the *exact* abstraction of its train, so
  the bounds are directly comparable to one simulation — the contract
  the repro.verify soundness oracle enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.analyze import checks
from repro.analyze.domain import (
    INF,
    PulseBounds,
    bounds_to_dict,
    single_pulse_bounds,
    stimulus_bounds,
)
from repro.analyze.engine import WIDEN_AFTER, FixpointResult, fixpoint
from repro.analyze.transfer import epoch_latency_fs, epoch_relative_transfer
from repro.analyze.report import AnalysisReport, Finding
from repro.encoding.epoch import EpochSpec
from repro.lint.graph import CircuitGraph, Endpoint
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit

#: Check names accepted by :attr:`AnalyzeConfig.waive`.
CHECKS: Tuple[str, ...] = ("epoch-overflow", "merger-collision", "dead-path")


@dataclass(frozen=True)
class AnalyzeConfig:
    """Analysis policy knobs."""

    #: Computing epoch to prove emission windows against (optional).
    epoch: Optional[EpochSpec] = None
    #: Check names whose findings are recorded but not counted.
    waive: FrozenSet[str] = frozenset()
    #: Element revisits before widening engages (feedback loops only).
    widen_after: int = WIDEN_AFTER


@dataclass
class Analysis:
    """Converged abstract state plus the derived report."""

    fixpoint: FixpointResult
    report: AnalysisReport
    config: AnalyzeConfig = field(default_factory=AnalyzeConfig)

    # -- bound lookups (the soundness-oracle surface) -----------------------
    def input_bounds(self, element: Element, port: str) -> PulseBounds:
        return self.fixpoint.input_bounds(element, port)

    def output_bounds(self, element: Element, port: str) -> PulseBounds:
        return self.fixpoint.output_bounds(element, port)

    @property
    def queue_depth_bound(self) -> int:
        """Static peak-queue-depth bound (:data:`INF` when unbounded)."""
        return checks.queue_depth_bound(self.fixpoint)

    @property
    def switching_events(self) -> Tuple[int, int]:
        """``[lo, hi]`` JJ switching-event envelope for one run."""
        return checks.switching_event_envelope(self.fixpoint)

    def bounds_table(self) -> List[Dict[str, object]]:
        """Every (element, port) bound, JSON-ready (for --json output)."""
        rows: List[Dict[str, object]] = []
        for element in self.fixpoint.circuit.elements:
            for port in element.input_names:
                rows.append({
                    "element": element.name, "port": port, "dir": "in",
                    "bounds": bounds_to_dict(
                        self.fixpoint.input_bounds(element, port)),
                })
            for port in element.output_names:
                rows.append({
                    "element": element.name, "port": port, "dir": "out",
                    "bounds": bounds_to_dict(
                        self.fixpoint.output_bounds(element, port)),
                })
        return rows


#: Proof-mode entry abstraction (shared immutable value).
_SINGLE_PULSE_AT_0 = single_pulse_bounds(0)


def _entry_abstraction(
    graph: CircuitGraph,
    entry_points: Sequence[Endpoint],
    stimulus: Optional[Mapping[Endpoint, Sequence[int]]],
) -> Dict[Tuple[int, str], PulseBounds]:
    entry_bounds: Dict[Tuple[int, str], PulseBounds] = {}
    for element, port in entry_points:
        entry_bounds[(id(element), port)] = _SINGLE_PULSE_AT_0
    if stimulus is not None:
        for (element, port), times in stimulus.items():
            entry_bounds[(id(element), port)] = stimulus_bounds(list(times))
        # Entry ports with no declared train provably stay silent.
        for element, port in entry_points:
            key = (id(element), port)
            if stimulus_key_missing(stimulus, element, port):
                entry_bounds[key] = stimulus_bounds([])
    return entry_bounds


def _has_epoch_latent_cells(circuit: Circuit) -> bool:
    """Whether any cell carries whole-epoch latency (cached by topology
    version, same idiom as the engine's evaluation plan)."""
    version = circuit._version
    cached = getattr(circuit, "_pulseflow_latent", None)
    if cached is not None and cached[0] == version:
        latent: bool = cached[1]
        return latent
    latent = any(epoch_latency_fs(e) for e in circuit.elements)
    circuit._pulseflow_latent = (version, latent)  # type: ignore[attr-defined]
    return latent


def stimulus_key_missing(stimulus: Mapping[Endpoint, Sequence[int]],
                         element: Element, port: str) -> bool:
    return not any(
        id(se) == id(element) and sp == port for se, sp in stimulus
    )


def analyze_circuit(
    circuit: Circuit,
    entry_points: Iterable[Endpoint] = (),
    observed_outputs: Iterable[Endpoint] = (),
    config: Optional[AnalyzeConfig] = None,
    stimulus: Optional[Mapping[Endpoint, Sequence[int]]] = None,
    target: Optional[str] = None,
    graph: Optional[CircuitGraph] = None,
    epoch: Optional[EpochSpec] = None,
) -> Analysis:
    """Abstract-interpret ``circuit`` and derive the static checks.

    Args:
        circuit: The netlist to analyse (never mutated).
        entry_points: ``(element, input_port)`` pairs driven externally.
        observed_outputs: ``(element, output_port)`` block outputs;
            probed ports are always observed.
        config: Policy (epoch to prove, waivers, widening threshold).
        stimulus: Optional exact pulse trains per entry endpoint; keys
            not in ``entry_points`` are added as entries.
        target: Report label (defaults to the circuit name).
        graph: Pre-built :class:`CircuitGraph` to reuse, if the caller
            (e.g. the linter) already paid for one.
        epoch: Shorthand for ``config.epoch`` when no other policy is
            needed (ignored if ``config`` already carries an epoch).
    """
    config = config or AnalyzeConfig()
    if epoch is not None and config.epoch is None:
        config = replace(config, epoch=epoch)
    entries: List[Endpoint] = list(entry_points)
    if stimulus is not None:
        known = {(id(e), p) for e, p in entries}
        for element, port in stimulus:
            if (id(element), port) not in known:
                entries.append((element, port))
    if graph is None:
        graph = CircuitGraph(circuit, entries, observed_outputs)
    entry_bounds = _entry_abstraction(graph, entries, stimulus)

    fx = fixpoint(circuit, graph, entry_bounds,
                  widen_after=config.widen_after)

    report = AnalysisReport(target=target or circuit.name)
    stats = report.stats
    findings: List[Finding] = []
    if config.epoch is not None and _has_epoch_latent_cells(circuit):
        # Whole-epoch storage (RL buffers / memory cells) belongs to the
        # epoch boundary, not the path: prove against the epoch-relative
        # fixpoint when any such cell is present.
        epoch_fx = fixpoint(circuit, graph, entry_bounds,
                            widen_after=config.widen_after,
                            transfer_fn=epoch_relative_transfer)
        scan = checks.scan_outputs(fx)
        epoch_scan: Optional[checks.OutputScan] = checks.scan_outputs(
            epoch_fx, config.epoch)
    else:
        # The common case: one sweep yields overflow findings, slack,
        # the queue bound, and the switching envelope together.
        scan = checks.scan_outputs(fx, config.epoch)
        epoch_scan = scan if config.epoch is not None else None
    if config.epoch is not None and epoch_scan is not None:
        findings.extend(epoch_scan.overflow)
        stats["epoch_budget_fs"] = config.epoch.duration_fs
        stats["epoch_slack_fs"] = epoch_scan.slack_fs
    collision_findings, proved, checked = checks.merger_collision_findings(fx)
    findings.extend(collision_findings)
    stats["mergers_checked"] = checked
    stats["mergers_proved"] = proved
    if stimulus is not None:
        # Liveness needs a concrete stimulus: proof mode's one-pulse wave
        # deliberately under-drives toggling storage (TFF chains), so
        # "never pulses" would be an artefact there, not a defect.
        findings.extend(checks.dead_path_findings(fx))

    if config.waive and findings:
        for finding in findings:
            if finding.check in config.waive:
                report.waived.append(finding)
            else:
                report.findings.append(finding)
    else:
        report.findings.extend(findings)

    bound = scan.queue_bound
    events_lo = scan.events_lo
    events_hi = scan.events_hi
    stats["queue_depth_bound"] = None if bound >= INF else bound
    energy_lo, energy_hi = checks.energy_from_events(events_lo, events_hi)
    stats["switching_events_lo"] = events_lo
    stats["switching_events_hi"] = (
        None if events_hi >= INF else events_hi
    )
    stats["switching_energy_lo_j"] = energy_lo
    stats["switching_energy_hi_j"] = energy_hi
    stats["fixpoint_iterations"] = fx.iterations
    stats["widened_elements"] = len(fx.widened)
    return Analysis(fixpoint=fx, report=report, config=config)
