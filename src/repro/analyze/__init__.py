"""Abstract-interpretation pulse-flow analysis for U-SFQ netlists.

Where :mod:`repro.lint` checks single-number worst-case path sums and
:mod:`repro.pulsesim` observes one concrete execution, this package
computes *guaranteed bounds* over every execution compatible with a
stimulus specification: per (element, port) pulse-count intervals
``[n_lo, n_hi]``, arrival-time windows ``[t_min, t_max]``, and minimum
inter-pulse spacing, propagated through the full cell library by sound
per-cell transfer functions with widening on feedback loops.

On top of the fixpoint sit derived static checks: epoch-overflow and
merger-collision proofs with per-path witness chains, dead-path
detection, a static peak-queue-depth bound for the event kernel, and a
switching-energy envelope bracketing measured-activity numbers.

Quickstart::

    from repro.analyze import analyze_circuit
    analysis = analyze_circuit(circuit, entry_points=[(src, "a")],
                               epoch=EpochSpec(bits=8, slot_fs=5_000))
    assert analysis.report.ok, analysis.report.format_text()

CLI: ``python -m repro.analyze --all-blocks`` or the ``usfq-analyze``
script.  The soundness contract (simulation never escapes the static
bounds) is fuzzed continuously by the ``static-soundness`` oracle in
:mod:`repro.verify`.
"""

from repro.analyze.api import AnalyzeConfig, Analysis, analyze_circuit
from repro.analyze.domain import INF, NONE, PulseBounds, stimulus_bounds
from repro.analyze.report import AnalysisReport, Finding

__all__ = [
    "Analysis",
    "AnalysisReport",
    "AnalyzeConfig",
    "Finding",
    "INF",
    "NONE",
    "PulseBounds",
    "analyze_circuit",
    "stimulus_bounds",
]
