"""Findings and the analysis report container.

Mirrors the shape of :mod:`repro.lint.report` (severity scale, fail-on
semantics, text/JSON rendering) so CLI users see one consistent idiom,
but adds the analyzer-specific payload: per-finding *witness chains* —
the abstract pulse path that substantiates a bound — and a ``stats``
block carrying whole-circuit derived quantities (peak queue-depth bound,
switching-energy envelope, fixpoint effort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.report import Severity


@dataclass(frozen=True)
class Finding:
    """One analyzer conclusion worth reporting."""

    check: str
    severity: Severity
    message: str
    element: Optional[str] = None
    port: Optional[str] = None
    #: Innermost-last chain of ``"cell.port  bounds"`` lines tracing the
    #: abstract pulse flow that produced the bound.
    witness: Tuple[str, ...] = ()

    @property
    def location(self) -> str:
        if self.element is None:
            return "<circuit>"
        if self.port is None:
            return self.element
        return f"{self.element}.{self.port}"

    def render(self) -> str:
        lines = [f"{self.severity.name.lower():8s} {self.check:18s} "
                 f"{self.location}: {self.message}"]
        for step in self.witness:
            lines.append(f"         | {step}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "element": self.element,
            "port": self.port,
            "witness": list(self.witness),
        }


@dataclass
class AnalysisReport:
    """All findings for one analysis target plus derived statistics."""

    target: str
    findings: List[Finding] = field(default_factory=list)
    #: Findings suppressed by the caller's waiver set (kept for the record).
    waived: List[Finding] = field(default_factory=list)
    #: Derived whole-circuit quantities (queue bound, energy envelope, ...).
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.severity >= Severity.ERROR for f in self.findings)

    def by_check(self, check: str) -> List[Finding]:
        return [f for f in self.findings if f.check == check]

    def counts(self) -> Dict[str, int]:
        tally = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            tally[finding.severity.name.lower()] += 1
        return tally

    def fails_at(self, threshold: Severity) -> bool:
        """Whether any live finding is at or above ``threshold``."""
        return any(f.severity >= threshold for f in self.findings)

    def format_text(self, verbose: bool = False) -> str:
        lines = [f"== {self.target} =="]
        for finding in self.findings:
            lines.append(finding.render())
        if verbose and self.waived:
            lines.append(f"-- waived ({len(self.waived)}) --")
            for finding in self.waived:
                lines.append(finding.render())
        if self.stats:
            lines.append("-- stats --")
            for key in sorted(self.stats):
                lines.append(f"{key}: {self.stats[key]}")
        tally = self.counts()
        lines.append(
            f"{tally['error']} error(s), {tally['warning']} warning(s), "
            f"{tally['info']} info ({len(self.waived)} waived)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "waived": [f.to_dict() for f in self.waived],
            "stats": dict(self.stats),
        }


def merge_reports(reports: Sequence[AnalysisReport]) -> Dict[str, object]:
    """Multi-target JSON envelope (the ``--all-blocks --json`` shape)."""
    return {
        "targets": [report.to_dict() for report in reports],
        "ok": all(report.ok for report in reports),
    }
