"""The PE grid and its Race-Logic interconnect.

A :class:`Fabric` is a ``rows x cols`` array of 126-JJ PEs (Fig 13b).
Inter-PE communication uses the PEs' natural Race-Logic interface: a
producer's RL pulse rides a chain of integrator memory cells to the
consumer, costing **one epoch per grid hop** (each buffer delays exactly
one epoch) and one memory cell of area per hop.  External inputs enter at
the fabric edge at no hop cost (the usual CGRA I/O assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.buffer import MEMORY_CELL_JJ
from repro.core.pe import PE_JJ
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.models import latency as latency_model


@dataclass(frozen=True)
class Site:
    """One grid position."""

    row: int
    col: int

    def distance(self, other: "Site") -> int:
        """Manhattan hop count."""
        return abs(self.row - other.row) + abs(self.col - other.col)


class Fabric:
    """A grid of U-SFQ PEs with buffered Race-Logic links."""

    def __init__(self, rows: int, cols: int, epoch: EpochSpec):
        if rows < 1 or cols < 1:
            raise ConfigurationError(f"fabric must be >= 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.epoch = epoch

    @property
    def n_pes(self) -> int:
        return self.rows * self.cols

    @property
    def sites(self) -> List[Site]:
        return [Site(r, c) for r in range(self.rows) for c in range(self.cols)]

    def contains(self, site: Site) -> bool:
        return 0 <= site.row < self.rows and 0 <= site.col < self.cols

    def hop_epochs(self, producer: Site, consumer: Site) -> int:
        """Epochs a value spends in transit between two sites.

        Co-located or adjacent PEs hand off within the natural one-epoch
        pipeline stage; each additional Manhattan hop adds a buffered
        epoch.
        """
        for site in (producer, consumer):
            if not self.contains(site):
                raise ConfigurationError(f"site {site} outside the fabric")
        return max(0, producer.distance(consumer) - 1)

    def link_jj(self, producer: Site, consumer: Site) -> int:
        """Interconnect area: one memory cell per buffered hop."""
        return self.hop_epochs(producer, consumer) * MEMORY_CELL_JJ

    def pe_epoch_fs(self) -> int:
        """One PE pipeline stage: a full computing epoch."""
        return self.epoch.duration_fs

    @property
    def pe_array_jj(self) -> int:
        return self.n_pes * PE_JJ

    def epochs_to_fs(self, epochs: int) -> int:
        return epochs * self.pe_epoch_fs()

    def describe(self) -> str:
        ghz = 1e6 / self.epoch.slot_fs
        return (
            f"{self.rows}x{self.cols} U-SFQ fabric, {self.epoch.bits}-bit "
            f"epochs ({self.epoch.n_max} slots @ {ghz:.0f} GHz pulse rate), "
            f"{self.pe_array_jj:,} JJs of PEs"
        )


def build_fabric_netlist(circuit, fabric: "Fabric"):
    """Instantiate every PE of ``fabric`` as a pulse-level netlist.

    Returns the per-site PE :class:`~repro.pulsesim.block.Block` objects in
    row-major order.  Inter-PE routing is Race-Logic over buffered memory
    cells and is modelled analytically (:meth:`Fabric.link_jj`); the
    netlist view exists so the static analyzer (:mod:`repro.lint`) can
    check the full PE array the same way it checks single blocks.
    """
    from repro.core.pe import build_processing_element

    return [
        build_processing_element(circuit, f"pe_r{site.row}c{site.col}", fabric.epoch)
        for site in fabric.sites
    ]


def equivalent_binary_fabric_jj(n_pes: int, bits: int) -> float:
    """What the same PE count costs in binary SFQ (for area comparisons)."""
    from repro.models import area

    if n_pes < 1:
        raise ConfigurationError(f"need >= 1 PE, got {n_pes}")
    return n_pes * area.pe_binary_jj(bits)


def fabric_throughput_gops(fabric: Fabric, active_pes: int) -> float:
    """Aggregate MACs per second with ``active_pes`` busy every epoch."""
    if not 0 <= active_pes <= fabric.n_pes:
        raise ConfigurationError(
            f"active_pes must be in [0, {fabric.n_pes}], got {active_pes}"
        )
    if active_pes == 0:
        return 0.0
    per_pe = latency_model.throughput_gops(fabric.pe_epoch_fs())
    return per_pe * active_pes
