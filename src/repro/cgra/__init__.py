"""A coarse-grained reconfigurable array (CGRA) built from U-SFQ PEs.

Section 5.2 positions the 126-JJ processing element as the core of
"CGRAs or Spatial Architectures (SpA) for CNNs" (Fig 13b).  This package
supplies the fabric around the PE:

* :mod:`repro.cgra.kernel` — dataflow kernels: DAGs of the operations the
  PE natively supports (multiply, add, multiply-accumulate);
* :mod:`repro.cgra.fabric` — the PE grid with Race-Logic interconnect
  (inter-PE hops ride integrator buffers, costing one epoch per hop);
* :mod:`repro.cgra.mapper` — greedy placement minimising wire length;
* :mod:`repro.cgra.executor` — epoch-accurate functional execution with
  the PE's unary quantisation semantics, plus latency/area reports.

Typical usage::

    from repro.cgra import Kernel, Fabric, map_kernel, execute

    k = Kernel("saxpy")
    k.input("x"); k.input("y"); k.const("a", 0.5)
    k.node("scaled", "mul", ["a", "x"])
    k.node("out", "add", ["scaled", "y"], output=True)

    fabric = Fabric(rows=2, cols=2, epoch=EpochSpec(bits=8))
    mapping = map_kernel(k, fabric)
    result = execute(k, fabric, mapping, {"x": 0.5, "y": 0.25})
"""

from repro.cgra.executor import ExecutionReport, execute
from repro.cgra.fabric import Fabric
from repro.cgra.kernel import Kernel
from repro.cgra.mapper import Mapping, map_kernel

__all__ = [
    "ExecutionReport",
    "Fabric",
    "Kernel",
    "Mapping",
    "execute",
    "map_kernel",
]
