"""Dataflow kernels: DAGs of PE-native operations.

The U-SFQ PE natively computes, per epoch (section 5.2):

* ``mul`` — In1 (RL) x In2 (stream),
* ``add`` — (In2 + In3) / 2 with In1 pinned to one (the balancer halves;
  the executor's decode compensates the factor),
* ``mac`` — (In1 x In2 + In3) / 2.

A :class:`Kernel` is a named DAG over these; sources are external inputs
or compile-time constants, and any node may be marked an output.  Values
are unipolar ([0, 1]) — the PE array of Fig 13 is a unipolar fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError

OPERATIONS = {"mul": 2, "add": 2, "mac": 3}


@dataclass(frozen=True)
class Node:
    """One PE-mapped operation."""

    name: str
    op: str
    inputs: tuple
    output: bool = False


class Kernel:
    """A dataflow DAG in construction order (which must be topological)."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.inputs: List[str] = []
        self.constants: Dict[str, float] = {}
        self._order: List[str] = []

    # -- construction ------------------------------------------------------
    def input(self, name: str) -> str:
        """Declare an external input."""
        self._check_fresh(name)
        self.inputs.append(name)
        return name

    def const(self, name: str, value: float) -> str:
        """Declare a compile-time constant (unipolar)."""
        self._check_fresh(name)
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"constants must be unipolar in [0, 1], got {value}"
            )
        self.constants[name] = value
        return name

    def node(
        self,
        name: str,
        op: str,
        inputs: Sequence[str],
        output: bool = False,
    ) -> str:
        """Add an operation node reading declared names."""
        self._check_fresh(name)
        if op not in OPERATIONS:
            raise ConfigurationError(
                f"op must be one of {sorted(OPERATIONS)}, got {op!r}"
            )
        if len(inputs) != OPERATIONS[op]:
            raise ConfigurationError(
                f"{op} takes {OPERATIONS[op]} inputs, got {len(inputs)}"
            )
        for source in inputs:
            if not self.is_declared(source):
                raise ConfigurationError(
                    f"node {name!r} reads undeclared source {source!r} "
                    "(construction order must be topological)"
                )
        self.nodes[name] = Node(name, op, tuple(inputs), output)
        self._order.append(name)
        return name

    def _check_fresh(self, name: str) -> None:
        if self.is_declared(name):
            raise ConfigurationError(f"name {name!r} already declared")

    # -- queries -----------------------------------------------------------
    def is_declared(self, name: str) -> bool:
        return (
            name in self.nodes or name in self.inputs or name in self.constants
        )

    @property
    def order(self) -> List[str]:
        """Node names in (topological) construction order."""
        return list(self._order)

    @property
    def outputs(self) -> List[str]:
        return [n.name for n in self.nodes.values() if n.output]

    def validate(self) -> None:
        """A runnable kernel has at least one node and one output."""
        if not self.nodes:
            raise ConfigurationError(f"kernel {self.name!r} has no nodes")
        if not self.outputs:
            raise ConfigurationError(f"kernel {self.name!r} marks no outputs")

    def reference(self, values: Dict[str, float]) -> Dict[str, float]:
        """Float (unquantised) evaluation, for accuracy comparisons.

        Mirrors the PE semantics including the balancer's halving, which
        the executor's decode undoes; here we return the *logical* values
        (mul = a*b, add = a+b, mac = a*b+c), saturated to 1.
        """
        self.validate()
        env = dict(self.constants)
        for name in self.inputs:
            if name not in values:
                raise ConfigurationError(f"missing input {name!r}")
            env[name] = values[name]
        for name in self._order:
            node = self.nodes[name]
            operands = [env[s] for s in node.inputs]
            if node.op == "mul":
                result = operands[0] * operands[1]
            elif node.op == "add":
                result = operands[0] + operands[1]
            else:  # mac
                result = operands[0] * operands[1] + operands[2]
            env[name] = min(1.0, result)
        return {name: env[name] for name in self.outputs}
