"""Epoch-accurate functional execution of a mapped kernel.

Every node occupies one PE and evaluates with the PE's unary quantisation
(:class:`~repro.core.pe.PEModel`): Race-Logic and stream operands on a
``2**bits`` grid, balancer halving compensated at decode.  Scheduling is
dataflow-driven: a node fires one epoch after its latest operand arrives
(its PE pipeline stage), and values spend
:meth:`~repro.cgra.fabric.Fabric.hop_epochs` extra epochs in the buffered
interconnect.

The report carries the figures a designer wants: result values, critical-
path latency in epochs and wall-clock, PE/interconnect JJ budgets, and
the error against the float reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cgra.fabric import Fabric
from repro.cgra.kernel import Kernel
from repro.cgra.mapper import Mapping
from repro.core.pe import PEModel
from repro.encoding.pulsestream import PulseStreamCodec
from repro.encoding.racelogic import RaceLogicCodec
from repro.errors import ConfigurationError
from repro.units import to_ns


@dataclass
class ExecutionReport:
    """Results and costs of one kernel execution."""

    kernel_name: str
    outputs: Dict[str, float] = field(default_factory=dict)
    reference: Dict[str, float] = field(default_factory=dict)
    node_ready_epoch: Dict[str, int] = field(default_factory=dict)
    latency_epochs: int = 0
    latency_fs: int = 0
    pes_used: int = 0
    pe_jj: int = 0
    interconnect_jj: int = 0

    @property
    def total_jj(self) -> int:
        return self.pe_jj + self.interconnect_jj

    @property
    def max_abs_error(self) -> float:
        return max(
            (abs(self.outputs[k] - self.reference[k]) for k in self.outputs),
            default=0.0,
        )

    def render(self) -> str:
        lines = [f"== kernel {self.kernel_name!r} =="]
        for name, value in self.outputs.items():
            lines.append(
                f"  {name:<16} = {value:.4f} (float {self.reference[name]:.4f})"
            )
        lines.append(
            f"  latency: {self.latency_epochs} epochs = "
            f"{to_ns(self.latency_fs):.2f} ns"
        )
        lines.append(
            f"  area: {self.pes_used} PEs ({self.pe_jj:,} JJ) + "
            f"{self.interconnect_jj:,} JJ interconnect"
        )
        return "\n".join(lines)


def execute(
    kernel: Kernel,
    fabric: Fabric,
    mapping: Mapping,
    inputs: Dict[str, float],
) -> ExecutionReport:
    """Run a mapped kernel on the fabric with unary quantisation."""
    kernel.validate()
    model = PEModel(fabric.epoch)
    race = RaceLogicCodec(fabric.epoch)
    streams = PulseStreamCodec(fabric.epoch)
    n_max = fabric.epoch.n_max

    env: Dict[str, float] = dict(kernel.constants)
    ready: Dict[str, int] = {name: 0 for name in kernel.constants}
    for name in kernel.inputs:
        if name not in inputs:
            raise ConfigurationError(f"missing input {name!r}")
        value = inputs[name]
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"input {name!r} must be unipolar in [0, 1], got {value}"
            )
        env[name] = value
        ready[name] = 0

    report = ExecutionReport(kernel.name)
    for name in kernel.order:
        node = kernel.nodes[name]
        site = mapping.site_of(name)
        arrival = 0
        for source in node.inputs:
            transit = 0
            if source in kernel.nodes:
                transit = fabric.hop_epochs(mapping.site_of(source), site)
            arrival = max(arrival, ready[source] + transit)

        operands = [env[s] for s in node.inputs]
        if node.op == "mul":
            # (In1 x In2 + 0) / 2, decoded x2.
            count = model.mac_counts(
                race.slot_for_unipolar(operands[0]),
                streams.count_for_unipolar(operands[1]),
                0,
            )
            value = min(1.0, 2.0 * count / n_max)
        elif node.op == "add":
            # In1 pinned to 1: (In2 + In3) / 2, decoded x2.
            count = model.mac_counts(
                n_max,
                streams.count_for_unipolar(operands[0]),
                streams.count_for_unipolar(operands[1]),
            )
            value = min(1.0, 2.0 * count / n_max)
        else:  # mac
            count = model.mac_counts(
                race.slot_for_unipolar(operands[0]),
                streams.count_for_unipolar(operands[1]),
                streams.count_for_unipolar(operands[2]),
            )
            value = min(1.0, 2.0 * count / n_max)

        env[name] = value
        ready[name] = arrival + 1  # the PE's own pipeline stage
        report.node_ready_epoch[name] = ready[name]

    report.outputs = {name: env[name] for name in kernel.outputs}
    report.reference = kernel.reference(inputs)
    report.latency_epochs = max(
        report.node_ready_epoch[name] for name in kernel.outputs
    )
    report.latency_fs = fabric.epochs_to_fs(report.latency_epochs)
    report.pes_used = mapping.pes_used
    report.pe_jj = mapping.pes_used * 126
    report.interconnect_jj = mapping.interconnect_jj(kernel, fabric)
    return report
