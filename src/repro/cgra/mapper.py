"""Greedy placement of kernel nodes onto the fabric.

Nodes are placed in topological order; each takes the free site with the
lowest total Manhattan distance to its already-placed producers (external
inputs and constants are free — they stream in from the edge).  Greedy
nearest-producer placement is the classic CGRA baseline heuristic; it
keeps buffered hops (one epoch + one memory cell each) low without an
expensive search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cgra.fabric import Fabric, Site
from repro.cgra.kernel import Kernel
from repro.errors import ConfigurationError


@dataclass
class Mapping:
    """A placement of kernel nodes on fabric sites."""

    kernel_name: str
    placement: Dict[str, Site] = field(default_factory=dict)

    def site_of(self, node: str) -> Site:
        try:
            return self.placement[node]
        except KeyError:
            raise ConfigurationError(f"node {node!r} is not placed") from None

    @property
    def pes_used(self) -> int:
        return len(self.placement)

    def total_wire_hops(self, kernel: Kernel, fabric: Fabric) -> int:
        """Total buffered hops across all node-to-node edges."""
        hops = 0
        for node in kernel.nodes.values():
            for source in node.inputs:
                if source in kernel.nodes:
                    hops += fabric.hop_epochs(
                        self.site_of(source), self.site_of(node.name)
                    )
        return hops

    def interconnect_jj(self, kernel: Kernel, fabric: Fabric) -> int:
        """Memory-cell area of all buffered links."""
        from repro.core.buffer import MEMORY_CELL_JJ

        return self.total_wire_hops(kernel, fabric) * MEMORY_CELL_JJ


def map_kernel(kernel: Kernel, fabric: Fabric) -> Mapping:
    """Place every node; raises if the kernel outgrows the fabric."""
    kernel.validate()
    if len(kernel.nodes) > fabric.n_pes:
        raise ConfigurationError(
            f"kernel {kernel.name!r} has {len(kernel.nodes)} nodes but the "
            f"fabric offers {fabric.n_pes} PEs"
        )
    mapping = Mapping(kernel.name)
    free: List[Site] = list(fabric.sites)

    for name in kernel.order:
        node = kernel.nodes[name]
        producers = [
            mapping.placement[source]
            for source in node.inputs
            if source in mapping.placement
        ]
        if producers:
            best = min(
                free,
                key=lambda site: (
                    sum(site.distance(p) for p in producers),
                    site.row,
                    site.col,
                ),
            )
        else:
            best = free[0]  # edge-fed node: first free site (row-major)
        mapping.placement[name] = best
        free.remove(best)
    return mapping
