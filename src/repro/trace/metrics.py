"""A small metrics registry: counters, gauges, histograms.

The observability subsystem needs a uniform way to hand numbers to the
experiment runner (which folds them into the run manifest), the trace CLI
(which writes them as a JSON artifact), and tests.  This module provides
the three classic instrument kinds plus an *active registry* stack mirroring
:func:`repro.pulsesim.simulator.capture_stats`: code anywhere below a
``capture_metrics()`` block can record into the ambient registry without
threading it through every call.

Everything is deliberately dependency-free (no pulsesim imports) so hot
modules like :mod:`repro.pulsesim.faults` can publish counters without an
import cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, Optional, Tuple

#: Histogram bucket upper bounds: powers of two cover event cohorts and
#: queue depths over many orders of magnitude with a handful of buckets.
DEFAULT_BUCKETS = tuple(1 << i for i in range(0, 21, 2))  # 1 .. 1M


class Counter:
    """A monotonically increasing count (events seen, pulses dropped...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, events/sec)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the maximum of all observations (high-water-mark gauges)."""
        if value > self.value:
            self.value = value


class Histogram:
    """A bucketed distribution (same-time cohort sizes, chunk walls)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds=DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments, created on first use, exported deterministically."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bounds)
        return instrument

    def to_dict(self) -> dict:
        """JSON-ready snapshot with deterministically sorted keys."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "count": hist.count,
                    "total": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "bounds": list(hist.bounds),
                    "bucket_counts": list(hist.bucket_counts),
                }
                for name, hist in sorted(self._histograms.items())
            },
        }


def empty_metrics() -> dict:
    """The shape :meth:`MetricsRegistry.to_dict` produces, with nothing in it."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_metric_dicts(into: dict, other: dict) -> dict:
    """Fold one :meth:`~MetricsRegistry.to_dict` snapshot into another.

    Counters add, gauges keep the maximum (they are high-water marks by the
    time they reach a manifest), histograms merge bucket-wise when their
    bounds agree (and add their scalar summaries regardless).  Returns
    ``into`` for chaining.
    """
    for name, value in other.get("counters", {}).items():
        into.setdefault("counters", {})
        into["counters"][name] = into["counters"].get(name, 0) + value
    for name, value in other.get("gauges", {}).items():
        into.setdefault("gauges", {})
        if name not in into["gauges"] or value > into["gauges"][name]:
            into["gauges"][name] = value
    into.setdefault("histograms", {})
    for name, hist in other.get("histograms", {}).items():
        mine = into["histograms"].get(name)
        if mine is None:
            into["histograms"][name] = {
                "count": hist["count"],
                "total": hist["total"],
                "min": hist["min"],
                "max": hist["max"],
                "bounds": list(hist["bounds"]),
                "bucket_counts": list(hist["bucket_counts"]),
            }
            continue
        mine["count"] += hist["count"]
        mine["total"] += hist["total"]
        for key, pick in (("min", min), ("max", max)):
            if hist[key] is not None:
                mine[key] = (
                    hist[key]
                    if mine[key] is None
                    else pick(mine[key], hist[key])
                )
        if mine["bounds"] == list(hist["bounds"]):
            mine["bucket_counts"] = [
                a + b
                for a, b in zip(mine["bucket_counts"], hist["bucket_counts"])
            ]
    return into


#: Active registries, innermost last (mirrors ``pulsesim._collectors``).
#: A :class:`~contextvars.ContextVar` holding an immutable tuple, not a
#: module-global list: every asyncio task (and every ``contextvars.copy_
#: context()`` thread) sees its own stack, so two concurrent request
#: handlers under ``capture_metrics()`` cannot interleave each other's
#: counters.  Synchronous callers are unaffected — within one context the
#: set/reset pairs below behave exactly like push/pop.
_active: ContextVar[Tuple[MetricsRegistry, ...]] = ContextVar(
    "repro_trace_metrics_active", default=()
)


def current_registry() -> Optional[MetricsRegistry]:
    """The innermost active registry, or None outside any capture block."""
    stack = _active.get()
    return stack[-1] if stack else None


@contextmanager
def capture_metrics(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Make ``registry`` (or a fresh one) the ambient registry for the block."""
    registry = registry if registry is not None else MetricsRegistry()
    token = _active.set(_active.get() + (registry,))
    try:
        yield registry
    finally:
        _active.reset(token)
