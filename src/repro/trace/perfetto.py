"""Chrome/Perfetto trace-event JSON export of traced runs.

Produces the legacy ``traceEvents`` JSON format, which both
``chrome://tracing`` and https://ui.perfetto.dev open directly:

* one *thread* (track) per traced port, named ``cell.port``, carrying an
  instant event (``"ph": "i"``) per pulse;
* a ``queue_depth`` counter track (``"ph": "C"``) from the scheduler
  health samples, plus a ``cohort`` series with the number of events
  executed at each distinct timestamp.

Timestamps are microseconds in the trace-event spec, but SFQ dynamics
live at femtoseconds; we export ``ts`` in *picoseconds* and declare
``displayTimeUnit`` so viewers show sensible numbers.  Output is fully
deterministic (sorted ports, stable event order, sorted JSON keys).
"""

from __future__ import annotations

import json
from typing import List, TextIO, Union

from repro.trace.session import TraceSession, sorted_ports

#: Exported ts unit: 1 ts tick = 1 ps = 1000 fs.
TS_FS = 1_000

PROCESS_ID = 1
COUNTER_THREAD_ID = 0


def _ts(time_fs: int) -> float:
    return time_fs / TS_FS


def trace_events(session: TraceSession) -> List[dict]:
    """The ``traceEvents`` array for ``session``."""
    ports = sorted_ports(session.ports)
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PROCESS_ID,
            "tid": 0,
            "args": {"name": session.name},
        }
    ]
    for tid, tap in enumerate(ports, start=1):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PROCESS_ID,
                "tid": tid,
                "args": {"name": tap.name},
            }
        )
    for tid, tap in enumerate(ports, start=1):
        for time in tap.times():
            events.append(
                {
                    "name": "pulse",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "pid": PROCESS_ID,
                    "tid": tid,
                    "ts": _ts(time),
                }
            )
    for sample in session.health:
        events.append(
            {
                "name": "queue_depth",
                "ph": "C",
                "pid": PROCESS_ID,
                "tid": COUNTER_THREAD_ID,
                "ts": _ts(sample.time_fs),
                "args": {"pending": sample.queue_depth},
            }
        )
        events.append(
            {
                "name": "cohort",
                "ph": "C",
                "pid": PROCESS_ID,
                "tid": COUNTER_THREAD_ID,
                "ts": _ts(sample.time_fs),
                "args": {"events": sample.cohort},
            }
        )
    return events


def trace_document(session: TraceSession) -> dict:
    """The complete JSON document (``traceEvents`` + display metadata)."""
    return {
        "traceEvents": trace_events(session),
        "displayTimeUnit": "ns",
        "otherData": {
            "exporter": "repro.trace",
            "session": session.name,
            "ports": len(session.ports),
        },
    }


def write_perfetto(
    session: TraceSession, destination: Union[str, TextIO]
) -> None:
    """Write the session's Perfetto/Chrome trace JSON to a path or file."""
    text = json.dumps(trace_document(session), sort_keys=True, indent=1)
    if hasattr(destination, "write"):
        destination.write(text + "\n")
    else:
        with open(destination, "w") as handle:
            handle.write(text + "\n")


def validate_trace(document: dict) -> dict:
    """Structurally check a trace document; raise ``ValueError`` if invalid.

    Returns ``{"event_count", "tracks" (sorted thread names),
    "counter_series" (sorted counter names), "pulse_count"}``.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a trace document: missing 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    tracks = []
    counters = set()
    pulse_count = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in ("M", "i", "C"):
            raise ValueError(f"event {index} has unexpected ph {phase!r}")
        if phase in ("i", "C") and not isinstance(
            event.get("ts"), (int, float)
        ):
            raise ValueError(f"event {index} missing numeric ts")
        if phase == "M" and event.get("name") == "thread_name":
            tracks.append(event["args"]["name"])
        elif phase == "C":
            counters.add(event.get("name"))
        elif phase == "i":
            pulse_count += 1
    return {
        "event_count": len(events),
        "tracks": sorted(tracks),
        "counter_series": sorted(counters),
        "pulse_count": pulse_count,
    }
