"""IEEE-1364 VCD export of traced pulse timelines.

SFQ pulses are ~ps-wide events, not levels, so a faithful VCD renders each
pulse as a fixed-width high interval on a 1-bit wire (default 2000 fs,
matching :class:`~repro.pulsesim.probe.WaveformProbe`'s FWHM); overlapping
pulses merge into one interval.  Scheduler health rides along as an
integer ``queue_depth`` variable.  The output is deterministic: ports are
sorted by signal name, id codes assigned in that order, and no wall-clock
timestamps are embedded — two runs of the same workload produce identical
files.

:func:`parse_vcd` is a deliberately strict structural parser used by the
golden-file tests and ``usfq-trace validate``; it is not a general VCD
reader.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, TextIO, Tuple, Union

from repro.trace.session import TraceSession, sorted_ports

#: Rendered width of one SFQ pulse, femtoseconds.
DEFAULT_PULSE_WIDTH_FS = 2_000

#: Name of the scheduler-health integer variable.
QUEUE_DEPTH_VAR = "queue_depth"

_ID_FIRST, _ID_LAST = 33, 126  # printable VCD id-code alphabet: '!'..'~'


def _id_codes() -> Iterator[str]:
    """Deterministic short id codes: ``!``, ``"``, ... then two chars."""
    span = _ID_LAST - _ID_FIRST + 1
    width = 1
    while True:
        for index in range(span**width):
            code = ""
            value = index
            for _ in range(width):
                code = chr(_ID_FIRST + value % span) + code
                value //= span
            yield code
        width += 1


def pulse_intervals(times: List[int], width_fs: int) -> List[Tuple[int, int]]:
    """Merge pulse times into high intervals ``[start, end)``."""
    intervals: List[Tuple[int, int]] = []
    for time in sorted(times):
        end = time + width_fs
        if intervals and time <= intervals[-1][1]:
            start, previous_end = intervals[-1]
            intervals[-1] = (start, max(previous_end, end))
        else:
            intervals.append((time, end))
    return intervals


def vcd_lines(
    session: TraceSession,
    pulse_width_fs: int = DEFAULT_PULSE_WIDTH_FS,
    queue_depth: bool = True,
) -> List[str]:
    """The full VCD document as a list of lines."""
    ports = sorted_ports(session.ports)
    codes = _id_codes()
    lines = [
        "$comment repro.trace VCD export $end",
        "$timescale 1 fs $end",
        f"$scope module {session.name.replace(' ', '_')} $end",
    ]
    port_codes: List[Tuple[str, object]] = []
    for tap in ports:
        code = next(codes)
        port_codes.append((code, tap))
        lines.append(f"$var wire 1 {code} {tap.name} $end")
    depth_code = None
    if queue_depth:
        depth_code = next(codes)
        lines.append(f"$var integer 32 {depth_code} {QUEUE_DEPTH_VAR} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # (time, declaration order, change text): the declaration-order key
    # makes simultaneous changes deterministic.
    changes: List[Tuple[int, int, str]] = []
    for order, (code, tap) in enumerate(port_codes):
        for start, end in pulse_intervals(tap.times(), pulse_width_fs):
            changes.append((start, order, f"1{code}"))
            changes.append((end, order, f"0{code}"))
    if depth_code is not None:
        depth_order = len(port_codes)
        for sample in session.health:
            changes.append(
                (
                    sample.time_fs,
                    depth_order,
                    f"b{sample.queue_depth:b} {depth_code}",
                )
            )
    changes.sort()

    lines.append("$dumpvars")
    for code, _tap in port_codes:
        lines.append(f"0{code}")
    if depth_code is not None:
        lines.append(f"b0 {depth_code}")
    lines.append("$end")
    current_time = None
    for time, _order, text in changes:
        if time != current_time:
            lines.append(f"#{time}")
            current_time = time
        lines.append(text)
    return lines


def write_vcd(
    session: TraceSession,
    destination: Union[str, TextIO],
    pulse_width_fs: int = DEFAULT_PULSE_WIDTH_FS,
    queue_depth: bool = True,
) -> None:
    """Write the session's VCD to a path or text file object."""
    text = "\n".join(vcd_lines(session, pulse_width_fs, queue_depth)) + "\n"
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w") as handle:
            handle.write(text)


def parse_vcd(text: str) -> dict:
    """Structurally parse a VCD document; raise ``ValueError`` if invalid.

    Returns ``{"timescale", "vars" (id -> name), "change_count",
    "times" (sorted distinct timestamps)}``.
    """
    timescale = None
    variables: Dict[str, str] = {}
    change_count = 0
    times: List[int] = []
    in_definitions = True
    in_dump = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$timescale"):
                timescale = " ".join(line.split()[1:-1])
            elif line.startswith("$var"):
                fields = line.split()
                if len(fields) != 6 or fields[-1] != "$end":
                    raise ValueError(f"line {lineno}: malformed $var: {raw!r}")
                _var, _kind, _width, code, name, _end = fields
                if code in variables:
                    raise ValueError(f"line {lineno}: duplicate id code {code!r}")
                variables[code] = name
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line == "$dumpvars":
            in_dump = True
            continue
        if line == "$end" and in_dump:
            in_dump = False
            continue
        if line.startswith("#"):
            time = int(line[1:])
            if times and time < times[-1]:
                raise ValueError(f"line {lineno}: time goes backwards: {raw!r}")
            if not times or time != times[-1]:
                times.append(time)
            continue
        if line[0] in "01":
            code = line[1:]
        elif line[0] == "b":
            value, _, code = line.partition(" ")
            if not code or set(value[1:]) - set("01"):
                raise ValueError(f"line {lineno}: malformed vector: {raw!r}")
        else:
            raise ValueError(f"line {lineno}: unrecognised change: {raw!r}")
        if code not in variables:
            raise ValueError(f"line {lineno}: change to undeclared id {code!r}")
        change_count += 1
    if timescale is None:
        raise ValueError("missing $timescale")
    if in_definitions:
        raise ValueError("missing $enddefinitions")
    return {
        "timescale": timescale,
        "vars": variables,
        "change_count": change_count,
        "times": times,
    }
