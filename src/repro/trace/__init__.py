"""repro.trace — observability for the SFQ pulse simulator.

Zero-cost-when-off tracing of both pulsesim kernels: per-cell activity
counts and pulse timelines (:class:`TraceSession` / :class:`TracePort`),
scheduler-health sampling, a metrics registry the experiment runner folds
into its manifest, exporters to IEEE-1364 VCD and Chrome/Perfetto
trace-event JSON, and measured-switching-activity extraction for the
power model.  ``usfq-trace`` (:mod:`repro.trace.cli`) is the command-line
front end.

Layering: :mod:`repro.pulsesim` never imports this package — a simulator
only ever sees the ``trace`` object it was handed (or ``None``).
"""

from repro.trace.activity import ActivityReport, measure_dpu_activity
from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    capture_metrics,
    current_registry,
    empty_metrics,
    merge_metric_dicts,
)
from repro.trace.perfetto import trace_events, validate_trace, write_perfetto
from repro.trace.session import (
    RingBuffer,
    SchedulerSample,
    TracePort,
    TraceSession,
    sorted_ports,
)
from repro.trace.vcd import parse_vcd, write_vcd

__all__ = [
    "ActivityReport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingBuffer",
    "SchedulerSample",
    "TracePort",
    "TraceSession",
    "capture_metrics",
    "current_registry",
    "empty_metrics",
    "measure_dpu_activity",
    "merge_metric_dicts",
    "parse_vcd",
    "sorted_ports",
    "trace_events",
    "validate_trace",
    "write_perfetto",
    "write_vcd",
]
