"""Trace sessions: bounded capture of pulse timelines and scheduler health.

A :class:`TraceSession` is the front door of the observability subsystem.
It owns

* a set of :class:`TracePort` taps — probe-compatible recorders attached to
  cell output ports, each keeping a bounded ring of pulse times plus a
  cumulative total (activity measurement needs totals even after the ring
  wraps or the circuit is reset between runs);
* a ring of :class:`SchedulerSample` health records — queue depth and
  same-time cohort size at every distinct simulated timestamp; and
* a :class:`~repro.trace.metrics.MetricsRegistry` the scheduler-health
  counters/gauges/histograms land in.

Pass the session to ``Simulator(circuit, trace=session)`` (or assign it to
a core wrapper's ``trace`` attribute).  A traced ``run()`` is *chunked*:
the session repeatedly asks the kernel for its next distinct event time
and calls the kernel's own ``_run(until=that_time)``, so each chunk is
executed by the exact untraced hot loop — reference or sealed — and the
event order, stats, recordings, and error behaviour are bit-identical to
an untraced run.  The only divergence is ``stats.wall_s`` (wall clock) and
the extra observability data collected between chunks.

With ``trace=None`` (the default everywhere) none of this module is even
imported by the simulator; tracing off costs one attribute check per
``run()`` call.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.trace.metrics import MetricsRegistry, current_registry

#: Default ring capacities: large enough for every figure-sized netlist in
#: this repo, bounded so a runaway workload cannot exhaust memory.
DEFAULT_TIMELINE_CAPACITY = 65_536
DEFAULT_HEALTH_CAPACITY = 65_536


class RingBuffer:
    """A bounded append-only buffer that counts what it had to drop."""

    __slots__ = ("capacity", "_items", "dropped")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, item) -> None:
        if len(self._items) == self.capacity:
            self.dropped += 1
        self._items.append(item)

    def items(self) -> list:
        """Retained items, oldest first."""
        return list(self._items)

    def clear(self) -> None:
        self._items.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator:
        return iter(self._items)


class TracePort:
    """A probe-compatible pulse tap on one cell output port.

    Quacks like :class:`~repro.pulsesim.probe.PulseRecorder` (``label``,
    ``record``, ``reset``) so both kernels notify it through the existing
    probe machinery — the sealed kernel compiles the bound ``record``
    method into its tap tuples exactly as for any other probe.
    ``reset()`` (called by ``Circuit.reset`` between runs) clears the
    bounded timeline but keeps ``total``: switching-activity measurement
    spans multi-run workloads.
    """

    __slots__ = ("cell", "port", "timeline", "total")

    def __init__(self, cell: str, port: str, capacity: int):
        self.cell = cell
        self.port = port
        self.timeline = RingBuffer(capacity)
        self.total = 0

    @property
    def label(self) -> str:
        return f"trace:{self.cell}.{self.port}"

    @property
    def name(self) -> str:
        """The signal name exporters use: ``cell.port``."""
        return f"{self.cell}.{self.port}"

    def record(self, time: int) -> None:
        self.total += 1
        self.timeline.append(time)

    def reset(self) -> None:
        self.timeline.clear()

    def times(self) -> List[int]:
        """Retained pulse times, sorted (jittery cells can emit out of
        arrival order)."""
        return sorted(self.timeline)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TracePort {self.name}: {self.total} pulses>"


@dataclass(frozen=True)
class SchedulerSample:
    """Scheduler health at one distinct simulated timestamp."""

    time_fs: int
    queue_depth: int  # pending events after this timestamp was drained
    cohort: int  # events processed at exactly this timestamp


class TraceSession:
    """Collects timelines, per-cell counts, and scheduler health for runs.

    Args:
        circuit: Attach to every output port of this circuit right away
            (or a subset via ``ports``).  ``None`` builds a detached
            session; call :meth:`attach` later.
        ports: Optional ``(element, output_port)`` pairs restricting which
            ports get taps.
        name: Session name used by the exporters (default: circuit name).
        timeline_capacity: Ring size per port.
        health_capacity: Ring size of the scheduler-health samples.
        metrics: Use an existing registry.  Default: the ambient
            :func:`~repro.trace.metrics.capture_metrics` registry when one
            is active (so traced experiments surface their scheduler
            metrics in run manifests), else a fresh one.
    """

    def __init__(
        self,
        circuit=None,
        *,
        ports: Optional[Sequence[Tuple[object, str]]] = None,
        name: Optional[str] = None,
        timeline_capacity: int = DEFAULT_TIMELINE_CAPACITY,
        health_capacity: int = DEFAULT_HEALTH_CAPACITY,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.name = name or (circuit.name if circuit is not None else "trace")
        self.timeline_capacity = timeline_capacity
        if metrics is None:
            metrics = current_registry()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ports: List[TracePort] = []
        self.health = RingBuffer(health_capacity)
        self._attached: List[Tuple[object, TracePort]] = []  # (circuit, tap)
        if circuit is not None:
            self.attach(circuit, ports=ports)

    # -- tap management ------------------------------------------------------
    def attach(self, circuit, ports=None) -> "TraceSession":
        """Tap output ports of ``circuit`` (default: all of them).

        Legal on sealed circuits — probes are observability, not topology —
        and triggers a lazy kernel recompile exactly like any probe.
        Returns ``self`` for fluent use.
        """
        if ports is None:
            ports = [
                (element, port)
                for element in circuit.elements
                for port in element.output_names
            ]
        for element, port in ports:
            tap = TracePort(element.name, port, self.timeline_capacity)
            circuit.probe(element, port, probe=tap)
            self.ports.append(tap)
            self._attached.append((circuit, tap))
        return self

    def detach(self) -> None:
        """Remove every tap this session attached (circuits recompile
        lazily on their next run)."""
        for circuit, tap in self._attached:
            circuit.detach_probe(tap)
        self._attached.clear()
        self.ports.clear()

    def port(self, name: str) -> TracePort:
        """Look up a tap by its ``cell.port`` signal name."""
        for tap in self.ports:
            if tap.name == name:
                return tap
        raise KeyError(f"no traced port named {name!r}")

    # -- traced execution ----------------------------------------------------
    def run_traced(self, sim, until: Optional[int] = None):
        """Run ``sim`` to completion (or ``until``), sampling per distinct
        timestamp.  Called by ``Simulator.run`` when a trace is installed.

        Chunking preserves the untraced contract exactly: ``max_events``
        stays a per-``run()`` budget (each chunk gets the remaining
        allowance, and a budget violation re-raises with the original
        limit in the message), and a final bounded ``_run`` reproduces the
        horizon/collector bookkeeping of the untraced call.
        """
        stats = sim.stats
        budget = sim.max_events
        start_events = stats.events_processed
        start_pulses = stats.pulses_emitted
        start_wall = stats.wall_s
        depth_gauge = self.metrics.gauge("sim.max_queue_depth")
        cohorts = self.metrics.histogram("sim.same_time_cohort")
        try:
            while True:
                next_time = sim._next_event_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                sim.max_events = budget - (stats.events_processed - start_events)
                before = stats.events_processed
                try:
                    sim._run(until=next_time)
                except SimulationError as error:
                    if str(error).startswith("exceeded max_events="):
                        raise SimulationError(
                            f"exceeded max_events={budget}; "
                            "likely an oscillating netlist"
                        ) from None
                    raise
                cohort = stats.events_processed - before
                depth = sim._pending()
                self.health.append(SchedulerSample(next_time, depth, cohort))
                cohorts.observe(cohort)
                depth_gauge.set_max(depth)
        finally:
            sim.max_events = budget
        # Nothing left at or before the horizon: one empty bounded run
        # applies the untraced end_time/collector bookkeeping verbatim.
        sim._run(until=until)
        events_done = stats.events_processed - start_events
        self.metrics.counter("sim.events_processed").inc(events_done)
        self.metrics.counter("sim.pulses_emitted").inc(
            stats.pulses_emitted - start_pulses
        )
        wall = stats.wall_s - start_wall
        if wall > 0.0 and events_done:
            self.metrics.gauge("sim.events_per_sec").set_max(events_done / wall)
        return stats

    # -- summaries -----------------------------------------------------------
    def port_totals(self) -> Dict[str, int]:
        """Cumulative pulse count per traced port, by signal name."""
        return {tap.name: tap.total for tap in sorted_ports(self.ports)}

    def cell_totals(self) -> Dict[str, int]:
        """Cumulative pulse count per cell (all its traced outputs)."""
        totals: Dict[str, int] = {}
        for tap in self.ports:
            totals[tap.cell] = totals.get(tap.cell, 0) + tap.total
        return {cell: totals[cell] for cell in sorted(totals)}

    def metrics_dict(self) -> dict:
        """The registry snapshot plus per-port pulse counters."""
        doc = self.metrics.to_dict()
        counters = dict(doc["counters"])
        for name, total in self.port_totals().items():
            counters[f"trace.pulses.{name}"] = total
        doc["counters"] = {key: counters[key] for key in sorted(counters)}
        return doc

    def clear(self) -> None:
        """Drop collected data (timelines, health); keep taps and totals."""
        for tap in self.ports:
            tap.timeline.clear()
        self.health.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TraceSession {self.name!r}: {len(self.ports)} ports, "
            f"{len(self.health)} health samples>"
        )


def sorted_ports(ports: Sequence[TracePort]) -> List[TracePort]:
    """Ports in deterministic (cell, port) order — exporters rely on it."""
    return sorted(ports, key=lambda tap: (tap.cell, tap.port))
