"""``usfq-trace``: run a traced workload and export observability artifacts.

Some paper figures are analytic (fig16's area curves run no simulation),
so the CLI maps each name to a *representative traced workload* of the
hardware unit that figure is about — e.g. ``fig16`` traces a DPU running
back-to-back dot-product epochs.  Artifacts:

* ``--vcd PATH``       IEEE-1364 VCD (one wire per traced cell output,
                       plus a ``queue_depth`` integer variable);
* ``--perfetto PATH``  Chrome/Perfetto trace-event JSON (one track per
                       port, ``queue_depth``/``cohort`` counter tracks);
* ``--metrics PATH``   metrics-registry snapshot as JSON.

``usfq-trace validate --vcd f --perfetto f`` structurally checks
previously written artifacts (used by CI on the uploaded files).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.trace.session import TraceSession

#: workload name -> (aliases, description)
WORKLOADS = {
    "multiplier": (
        ("fig04",),
        "unipolar multiplier: one epoch of a half-scale product",
    ),
    "counting": (
        ("fig07",),
        "8:1 counting network fed staggered pulse trains",
    ),
    "dpu": (
        ("fig14", "fig16"),
        "DPU running back-to-back dot-product epochs (the "
        "measured-activity workload)",
    ),
}


def resolve_workload(name: str) -> str:
    for workload, (aliases, _descr) in WORKLOADS.items():
        if name == workload or name in aliases:
            return workload
    known = sorted(
        list(WORKLOADS) + [a for aliases, _ in WORKLOADS.values() for a in aliases]
    )
    raise SystemExit(f"usfq-trace: unknown workload {name!r}; known: {known}")


def _run_multiplier(args, session: TraceSession) -> List[str]:
    from repro.core.multiplier import UnipolarMultiplier
    from repro.encoding.epoch import EpochSpec

    epoch = EpochSpec(bits=args.bits)
    unit = UnipolarMultiplier(epoch, kernel=args.kernel)
    session.attach(unit.circuit)
    unit.trace = session
    half = epoch.n_max // 2
    count = unit.run_counts(half, half)
    return [f"multiplier: {half} x slot {half} -> {count} pulses"]


def _run_counting(args, session: TraceSession) -> List[str]:
    from repro.core.counting import CountingNetwork

    network = CountingNetwork(8, kernel=args.kernel)
    session.attach(network.circuit)
    network.trace = session
    slot = 20_000
    trains = [
        [slot * (lane + 1) * (i + 1) for i in range(lane + 1)]
        for lane in range(8)
    ]
    count = network.run(trains)
    total_in = sum(len(train) for train in trains)
    return [f"counting 8:1: {total_in} input pulses -> {count} output pulses"]


def _run_dpu(args, session: TraceSession) -> List[str]:
    from repro.trace.activity import measure_dpu_activity

    report = measure_dpu_activity(
        length=args.length,
        bits=args.bits,
        epochs=args.epochs,
        seed=args.seed,
        kernel=args.kernel,
        session=session,
    )
    return [
        f"dpu length={report.length} bits={report.bits} epochs={report.epochs}",
        f"measured multiplier activity: {report.multiplier_activity:.4f}",
        f"measured balancer activity:   {report.balancer_activity:.4f}",
        "assumed activity (table 3):   0.5000",
    ]


_RUNNERS = {
    "multiplier": _run_multiplier,
    "counting": _run_counting,
    "dpu": _run_dpu,
}


def _validate(args) -> int:
    from repro.trace.perfetto import validate_trace
    from repro.trace.vcd import parse_vcd

    failures = 0
    if args.vcd:
        try:
            with open(args.vcd) as handle:
                info = parse_vcd(handle.read())
        except (OSError, ValueError) as error:
            print(f"usfq-trace: VCD invalid: {error}", file=sys.stderr)
            failures += 1
        else:
            print(
                f"vcd ok: {len(info['vars'])} vars, "
                f"{info['change_count']} changes, "
                f"{len(info['times'])} timestamps"
            )
    if args.perfetto:
        try:
            with open(args.perfetto) as handle:
                info = validate_trace(json.load(handle))
        except (OSError, ValueError) as error:
            print(f"usfq-trace: perfetto invalid: {error}", file=sys.stderr)
            failures += 1
        else:
            print(
                f"perfetto ok: {info['event_count']} events, "
                f"{len(info['tracks'])} tracks, "
                f"{info['pulse_count']} pulses, "
                f"counters {info['counter_series']}"
            )
    if not args.vcd and not args.perfetto:
        print("usfq-trace: validate needs --vcd and/or --perfetto", file=sys.stderr)
        return 2
    return 1 if failures else 0


def _build_parsers() -> Tuple[argparse.ArgumentParser, argparse.ArgumentParser]:
    trace = argparse.ArgumentParser(
        prog="usfq-trace",
        description="Run a traced U-SFQ workload and export VCD / Perfetto "
        "/ metrics artifacts.",
    )
    trace.add_argument("workload", nargs="?", help="workload name or figure alias")
    trace.add_argument("--list", action="store_true", help="list workloads")
    trace.add_argument("--vcd", metavar="PATH", help="write IEEE-1364 VCD here")
    trace.add_argument(
        "--perfetto", metavar="PATH", help="write Chrome/Perfetto JSON here"
    )
    trace.add_argument(
        "--metrics", metavar="PATH", help="write metrics-registry JSON here"
    )
    trace.add_argument(
        "--kernel",
        choices=["auto", "reference", "sealed"],
        default=None,
        help="simulator kernel (default: auto)",
    )
    trace.add_argument("--length", type=int, default=8, help="DPU vector length")
    trace.add_argument("--bits", type=int, default=4, help="epoch resolution")
    trace.add_argument("--epochs", type=int, default=4, help="DPU epochs to run")
    trace.add_argument("--seed", type=int, default=None, help="workload RNG seed")
    trace.add_argument(
        "--pulse-width",
        type=int,
        default=None,
        metavar="FS",
        help="VCD pulse rendering width in femtoseconds",
    )

    validate = argparse.ArgumentParser(
        prog="usfq-trace validate",
        description="Structurally validate previously exported artifacts.",
    )
    validate.add_argument("--vcd", metavar="PATH")
    validate.add_argument("--perfetto", metavar="PATH")
    return trace, validate


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    trace_parser, validate_parser = _build_parsers()
    if argv and argv[0] == "validate":
        return _validate(validate_parser.parse_args(argv[1:]))
    args = trace_parser.parse_args(argv)
    if args.list:
        for workload, (aliases, descr) in sorted(WORKLOADS.items()):
            names = ", ".join([workload, *aliases])
            print(f"{names}: {descr}")
        return 0
    if not args.workload:
        trace_parser.print_usage(sys.stderr)
        print("usfq-trace: name a workload or pass --list", file=sys.stderr)
        return 2
    workload = resolve_workload(args.workload)
    if args.seed is None:
        from repro.trace.activity import DEFAULT_SEED

        args.seed = DEFAULT_SEED

    session = TraceSession(name=f"usfq-trace:{workload}")
    summary = _RUNNERS[workload](args, session)
    for line in summary:
        print(line)
    print(
        f"traced {len(session.ports)} ports, "
        f"{sum(tap.total for tap in session.ports)} pulses, "
        f"{len(session.health)} scheduler samples"
    )

    if args.vcd:
        from repro.trace.vcd import DEFAULT_PULSE_WIDTH_FS, write_vcd

        width = args.pulse_width or DEFAULT_PULSE_WIDTH_FS
        write_vcd(session, args.vcd, pulse_width_fs=width)
        print(f"wrote VCD: {args.vcd}")
    if args.perfetto:
        from repro.trace.perfetto import write_perfetto

        write_perfetto(session, args.perfetto)
        print(f"wrote Perfetto trace: {args.perfetto}")
    if args.metrics:
        with open(args.metrics, "w") as handle:
            json.dump(session.metrics_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics: {args.metrics}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via usfq-trace
    sys.exit(main())
