"""Measured switching activity from traced runs.

The Table-3 power model (:mod:`repro.models.power`) assumes a switching
activity of 0.5 — every JJ on the datapath fires in half the slots.  That
is an *assumption* about the workload; this module measures the real
number by running a DPU with trace taps on every cell output and counting
how many pulses each port actually carried.

Activity of a port = pulses observed / slots offered, where slots offered
is ``epochs x n_max`` (an epoch has ``n_max`` slots and a port can carry
at most one SFQ pulse per slot).  A component's activity averages its
ports.  Multipliers and balancers are told apart by cell-name prefix:
``build_dpu`` names lanes ``dpu.mul{i}...`` and the counting network
``dpu.cn...``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.encoding.epoch import EpochSpec
from repro.trace.session import TraceSession

#: Deterministic workload seed (the measurement must be reproducible).
DEFAULT_SEED = 20220301  # U-SFQ paper's publication month


@dataclass
class ActivityReport:
    """Measured switching activity of a traced DPU workload."""

    length: int
    bits: int
    epochs: int
    multiplier_activity: float
    balancer_activity: float
    overall_activity: float
    cell_group_pulses: Dict[str, int] = field(default_factory=dict)
    slots_per_port: int = 0


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def measure_dpu_activity(
    length: int = 8,
    bits: int = 4,
    epochs: int = 4,
    seed: int = DEFAULT_SEED,
    kernel: Optional[str] = None,
    session: Optional[TraceSession] = None,
) -> ActivityReport:
    """Run a traced DPU workload and measure per-component activity.

    The workload is ``epochs`` back-to-back dot products with operands
    drawn uniformly from the full encoding range by a seeded RNG, i.e. the
    "average operand" regime the 0.5 assumption describes.  Pass
    ``session`` to keep the raw trace (timelines, health) for export;
    otherwise a private session is used and discarded.
    """
    from repro.core.dpu import DotProductUnit

    epoch = EpochSpec(bits=bits)
    dpu = DotProductUnit(epoch, length, kernel=kernel)
    trace = session if session is not None else TraceSession()
    trace.attach(dpu.circuit)
    dpu.trace = trace

    rng = random.Random(seed)
    n_max = epoch.n_max
    a_frames = [
        [rng.randrange(n_max + 1) for _ in range(length)] for _ in range(epochs)
    ]
    b_frames = [
        [rng.randrange(n_max + 1) for _ in range(length)] for _ in range(epochs)
    ]
    dpu.run_epochs(a_frames, b_frames)

    slots = epochs * n_max
    multiplier_ports = []
    balancer_ports = []
    groups: Dict[str, int] = {"multiplier": 0, "balancer": 0, "other": 0}
    for tap in trace.ports:
        share = tap.total / slots
        if tap.cell.startswith("dpu.mul"):
            multiplier_ports.append(share)
            groups["multiplier"] += tap.total
        elif tap.cell.startswith("dpu.cn"):
            balancer_ports.append(share)
            groups["balancer"] += tap.total
        else:
            groups["other"] += tap.total

    report = ActivityReport(
        length=length,
        bits=bits,
        epochs=epochs,
        multiplier_activity=_mean(multiplier_ports),
        balancer_activity=_mean(balancer_ports),
        overall_activity=_mean(multiplier_ports + balancer_ports),
        cell_group_pulses=groups,
        slots_per_port=slots,
    )
    if session is None:
        trace.detach()
    return report
