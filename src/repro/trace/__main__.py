"""``python -m repro.trace`` — same entry point as ``usfq-trace``."""

import sys

from repro.trace.cli import main

if __name__ == "__main__":
    sys.exit(main())
