"""Replayable counterexample corpus.

Every discrepancy the harness finds is persisted as one JSON file — the
shrunk spec, the oracle it failed, and enough provenance (seed, example
index, profile, original spec digest) to regenerate the unshrunk case.
Corpus files are a *regression suite*: replaying an entry re-runs exactly
the failing oracle on exactly the shrunk spec, so a fixed bug stays
fixed and an unfixed one reproduces without re-fuzzing.

Format (``"format": 1``)::

    {
      "format": 1,
      "oracle": "kernel-differential",
      "detail": "recordings: ... != ...",
      "profile": "ci", "seed": 0, "example": 17,
      "original_key": "a1b2c3d4e5f6",
      "spec": { "name": ..., "cells": [...], "stimulus": [...] }
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Tuple

from repro.errors import VerificationError
from repro.verify.oracles import OracleResult, run_oracle
from repro.verify.spec import NetlistSpec, spec_from_json

#: Version stamp of the on-disk entry layout.
FORMAT = 1

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS_DIR = Path("tests/verify/corpus")


def corpus_entry(oracle: str, detail: str, spec: NetlistSpec, *,
                 profile: str = "", seed: int = 0, example: int = 0,
                 original_key: str = "") -> Dict:
    """The JSON document for one counterexample."""
    return {
        "format": FORMAT,
        "oracle": oracle,
        "detail": detail,
        "profile": profile,
        "seed": seed,
        "example": example,
        "original_key": original_key or spec.key(),
        "spec": spec.to_json(),
    }


def entry_path(directory: Path, entry: Dict) -> Path:
    """Canonical filename: ``<oracle>-<spec digest>.json`` (dedups
    identical shrunk counterexamples across fuzzing runs)."""
    key = spec_from_json(entry["spec"]).key()
    return Path(directory) / f"{entry['oracle']}-{key}.json"


def save_entry(directory: Path, entry: Dict) -> Path:
    """Write one entry (creating the corpus directory) and return its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = entry_path(directory, entry)
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path: Path) -> Dict:
    """Read and structurally check one corpus file."""
    path = Path(path)
    try:
        entry = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise VerificationError(f"unreadable corpus entry {path}: {error}") \
            from error
    if not isinstance(entry, dict) or entry.get("format") != FORMAT:
        raise VerificationError(
            f"corpus entry {path} has unsupported format "
            f"{entry.get('format')!r} (expected {FORMAT})"
        )
    for field in ("oracle", "spec"):
        if field not in entry:
            raise VerificationError(f"corpus entry {path} lacks {field!r}")
    spec_from_json(entry["spec"])  # raises if the spec is malformed
    return entry


def iter_corpus(directory: Path) -> Iterator[Tuple[Path, Dict]]:
    """All entries under ``directory``, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, load_entry(path)


def replay_entry(entry: Dict) -> OracleResult:
    """Re-run the entry's failing oracle on its (shrunk) spec."""
    return run_oracle(entry["oracle"], spec_from_json(entry["spec"]))
