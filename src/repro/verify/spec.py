"""Declarative netlist specifications — the fuzzing harness's genome.

A :class:`NetlistSpec` is a compact, JSON-serialisable recipe for a legal
circuit: an entry splitter, a sequence of standard cells, and for every
cell input exactly one wire drawn from the *pool* of previously created
output ports.  The pool indexing makes the single-driver discipline (one
wire per input, at most one sink per output) checkable mechanically, which
is what lets the generator promise lint-clean circuits by construction and
the shrinker rewrite specs without ever producing an illegal netlist.

Pool layout: index 0 and 1 are the entry splitter's ``q1``/``q2``; each
cell then appends its output ports in declaration order.  A spec is built
into a fresh :class:`~repro.pulsesim.netlist.Circuit` by :func:`build`;
every pool output no wire consumes gets a
:class:`~repro.pulsesim.probe.PulseRecorder`, so nothing a generated
circuit does is unobserved (and the ``dangling-output`` design rule is
satisfied by construction).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Type

from repro.errors import VerificationError
from repro.pulsesim.element import Element
from repro.pulsesim.export import default_cell_registry
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.probe import PulseRecorder
from repro.synth.builder import probe_unconsumed

#: Name of the stimulus entry cell every built circuit starts with.
ENTRY_NAME = "entry"
#: Number of pool outputs the entry splitter contributes (``q1``, ``q2``).
ENTRY_OUTPUTS = 2


@dataclass(frozen=True)
class WireSpec:
    """One wire: the pool index of the driving output plus its delay."""

    source: int
    delay: int = 0


@dataclass(frozen=True)
class CellSpec:
    """One cell: its registry kind and one :class:`WireSpec` per input
    port, in the cell's declared input-port order.

    ``params`` holds constructor keyword arguments as sorted
    ``(name, value)`` pairs — empty for cells built with their defaults,
    required for kinds like ``DropChannel`` whose constructors have
    mandatory arguments.
    """

    kind: str
    inputs: Tuple[WireSpec, ...]
    params: Tuple[Tuple[str, object], ...] = ()


@dataclass(frozen=True)
class NetlistSpec:
    """A complete generated test case: topology plus stimulus train."""

    cells: Tuple[CellSpec, ...] = ()
    stimulus: Tuple[int, ...] = ()
    name: str = "verify"

    # -- serialisation -------------------------------------------------------
    def to_json(self) -> Dict:
        """A plain-dict form that round-trips through :func:`spec_from_json`."""
        cells = []
        for cell in self.cells:
            entry: Dict = {
                "kind": cell.kind,
                "inputs": [[wire.source, wire.delay] for wire in cell.inputs],
            }
            if cell.params:
                entry["params"] = dict(cell.params)
            cells.append(entry)
        return {
            "name": self.name,
            "cells": cells,
            "stimulus": list(self.stimulus),
        }

    def key(self) -> str:
        """A stable content digest (used for corpus filenames and dedup)."""
        canonical = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def spec_from_json(data: Dict) -> NetlistSpec:
    """Rebuild a :class:`NetlistSpec` from :meth:`NetlistSpec.to_json`."""
    try:
        cells = tuple(
            CellSpec(
                kind=cell["kind"],
                inputs=tuple(WireSpec(int(s), int(d)) for s, d in cell["inputs"]),
                params=tuple(sorted(cell.get("params", {}).items())),
            )
            for cell in data["cells"]
        )
        return NetlistSpec(
            cells=cells,
            stimulus=tuple(int(t) for t in data["stimulus"]),
            name=data.get("name", "verify"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise VerificationError(f"malformed netlist spec: {error}") from error


# -- cell metadata -------------------------------------------------------------
_REGISTRY: Optional[Dict[str, Type[Element]]] = None
_TEMPLATES: Dict[str, Element] = {}

#: Minimal constructor arguments for kinds whose constructors have no
#: defaults; used for throwaway template instances only.
_TEMPLATE_PARAMS: Dict[str, Dict[str, object]] = {
    "DropChannel": {"drop_rate": 0.0},
    "JitterChannel": {"std_fs": 0},
}


def cell_registry() -> Dict[str, Type[Element]]:
    """The cell classes specs may reference (the export registry)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = default_cell_registry()
    return _REGISTRY


def template(kind: str) -> Element:
    """A throwaway instance of ``kind`` for port/delay introspection."""
    if kind not in _TEMPLATES:
        try:
            cls = cell_registry()[kind]
        except KeyError:
            known = ", ".join(sorted(cell_registry()))
            raise VerificationError(
                f"unknown cell kind {kind!r}; known kinds: {known}"
            ) from None
        _TEMPLATES[kind] = cls("_template", **_TEMPLATE_PARAMS.get(kind, {}))
    return _TEMPLATES[kind]


def input_ports(kind: str) -> Tuple[str, ...]:
    return template(kind).input_names


def output_ports(kind: str) -> Tuple[str, ...]:
    return template(kind).output_names


# -- pool bookkeeping ----------------------------------------------------------
def pool_offsets(spec: NetlistSpec) -> List[int]:
    """Pool index of each cell's first output (entry occupies 0..1)."""
    offsets = []
    cursor = ENTRY_OUTPUTS
    for cell in spec.cells:
        offsets.append(cursor)
        cursor += len(output_ports(cell.kind))
    return offsets

def pool_size(spec: NetlistSpec) -> int:
    return ENTRY_OUTPUTS + sum(
        len(output_ports(cell.kind)) for cell in spec.cells
    )


def pool_outputs(spec: NetlistSpec) -> List[Tuple[int, str]]:
    """``(cell_index, port)`` per pool slot; cell index ``-1`` is the entry."""
    outputs: List[Tuple[int, str]] = [(-1, "q1"), (-1, "q2")]
    for index, cell in enumerate(spec.cells):
        outputs.extend((index, port) for port in output_ports(cell.kind))
    return outputs


def used_sources(spec: NetlistSpec) -> Dict[int, Tuple[int, int]]:
    """Pool index -> ``(cell_index, input_index)`` of the consuming wire."""
    used: Dict[int, Tuple[int, int]] = {}
    for cell_index, cell in enumerate(spec.cells):
        for input_index, wire in enumerate(cell.inputs):
            used[wire.source] = (cell_index, input_index)
    return used


def validate(spec: NetlistSpec) -> None:
    """Check structural legality; raises :class:`VerificationError`.

    Legality means: known kinds, one wire per input port, every wire
    drawn from an *earlier* pool output, no output driving two sinks, no
    negative delays or stimulus times.  (This is the single-driver DAG
    discipline; lint-cleanliness of the built circuit follows from it plus
    the builder probing every unconsumed output.)
    """
    offsets = pool_offsets(spec)
    seen: Dict[int, Tuple[int, int]] = {}
    for cell_index, cell in enumerate(spec.cells):
        ports = input_ports(cell.kind)  # raises for unknown kinds
        if len(cell.inputs) != len(ports):
            raise VerificationError(
                f"cell {cell_index} ({cell.kind}) declares {len(ports)} "
                f"input ports but the spec wires {len(cell.inputs)}"
            )
        for input_index, wire in enumerate(cell.inputs):
            if wire.delay < 0:
                raise VerificationError(
                    f"cell {cell_index} input {input_index}: negative "
                    f"wire delay {wire.delay}"
                )
            if not 0 <= wire.source < offsets[cell_index]:
                raise VerificationError(
                    f"cell {cell_index} input {input_index}: source "
                    f"{wire.source} is not an earlier pool output "
                    f"(valid range 0..{offsets[cell_index] - 1})"
                )
            if wire.source in seen:
                raise VerificationError(
                    f"pool output {wire.source} drives two sinks "
                    f"(cells {seen[wire.source][0]} and {cell_index}); "
                    "SFQ outputs are single-flux-quantum"
                )
            seen[wire.source] = (cell_index, input_index)
    for time in spec.stimulus:
        if time < 0:
            raise VerificationError(f"negative stimulus time {time}")


# -- building ------------------------------------------------------------------
@dataclass
class Built:
    """A spec realised as a runnable circuit."""

    circuit: Circuit
    entry: Element
    #: Recorders on every unconsumed pool output, in pool order.
    probes: List[PulseRecorder] = field(default_factory=list)
    #: ``(element, port)`` per pool slot, aligned with :func:`pool_outputs`.
    pool: List[Tuple[Element, str]] = field(default_factory=list)


def build(spec: NetlistSpec) -> Built:
    """Materialise a validated spec into a fresh circuit.

    Cells are named ``c0``, ``c1``, ... in spec order (the entry splitter
    is ``entry``), so structurally equal specs build circuits with
    byte-identical netlist exports.
    """
    validate(spec)
    from repro.cells.interconnect import Splitter

    registry = cell_registry()
    circuit = Circuit(spec.name)
    entry = circuit.add(Splitter(ENTRY_NAME))
    pool: List[Tuple[Element, str]] = [(entry, "q1"), (entry, "q2")]
    for index, cell_spec in enumerate(spec.cells):
        try:
            element = registry[cell_spec.kind](f"c{index}",
                                               **dict(cell_spec.params))
        except TypeError as error:
            raise VerificationError(
                f"cell {index} ({cell_spec.kind}): bad constructor "
                f"params {dict(cell_spec.params)!r}: {error}"
            ) from error
        circuit.add(element)
        for port, wire in zip(element.input_names, cell_spec.inputs):
            source, source_port = pool[wire.source]
            circuit.connect(source, source_port, element, port,
                            delay=wire.delay)
        pool.extend((element, port) for port in element.output_names)
    # Shared total-observability helper (repro.synth.builder): every
    # output no wire consumes gets a recorder, so the dangling-output
    # design rule holds by construction.
    probes = probe_unconsumed(circuit, pool, used_sources(spec))
    return Built(circuit=circuit, entry=entry, probes=probes, pool=pool)


# -- spec transforms (oracles and the shrinker build on these) -----------------
def shift_stimulus(spec: NetlistSpec, delta: int) -> NetlistSpec:
    """All stimulus times displaced by ``delta`` femtoseconds."""
    return replace(
        spec, stimulus=tuple(time + delta for time in spec.stimulus)
    )


def swap_cell_inputs(spec: NetlistSpec, cell_index: int,
                     first: int = 0, second: int = 1) -> NetlistSpec:
    """Exchange which sources feed two input ports of one cell."""
    cell = spec.cells[cell_index]
    inputs = list(cell.inputs)
    inputs[first], inputs[second] = inputs[second], inputs[first]
    cells = list(spec.cells)
    cells[cell_index] = replace(cell, inputs=tuple(inputs))
    return replace(spec, cells=tuple(cells))


def splice_cell(spec: NetlistSpec, cell_index: int, input_index: int,
                kind: str,
                params: Tuple[Tuple[str, object], ...] = ()) -> NetlistSpec:
    """Insert a single-input/single-output cell into one wire.

    The new cell lands immediately before ``cell_index``, takes over the
    spliced wire (source and delay), and feeds the original sink through a
    zero-delay wire.  Pool indices of every later output shift by one;
    sources referencing them are remapped.
    """
    if len(input_ports(kind)) != 1 or len(output_ports(kind)) != 1:
        raise VerificationError(
            f"can only splice 1-in/1-out cells, not {kind!r}"
        )
    offsets = pool_offsets(spec)
    insert_at = offsets[cell_index]  # pool slot of the new cell's output

    def remap(source: int) -> int:
        return source + 1 if source >= insert_at else source

    original = spec.cells[cell_index].inputs[input_index]
    new_cells: List[CellSpec] = list(spec.cells[:cell_index])
    new_cells.append(CellSpec(kind=kind, inputs=(original,),
                              params=tuple(sorted(params))))
    sink_inputs = [
        WireSpec(insert_at, 0) if index == input_index
        else replace(wire, source=remap(wire.source))
        for index, wire in enumerate(spec.cells[cell_index].inputs)
    ]
    new_cells.append(replace(spec.cells[cell_index],
                             inputs=tuple(sink_inputs)))
    for cell in spec.cells[cell_index + 1:]:
        new_cells.append(replace(cell, inputs=tuple(
            replace(wire, source=remap(wire.source)) for wire in cell.inputs
        )))
    return replace(spec, cells=tuple(new_cells))


def remove_cell(spec: NetlistSpec, cell_index: int) -> NetlistSpec:
    """Delete a *leaf* cell (none of its outputs consumed) and remap.

    Raises :class:`VerificationError` if the cell still drives anything.
    """
    offsets = pool_offsets(spec)
    start = offsets[cell_index]
    width = len(output_ports(spec.cells[cell_index].kind))
    consumed = used_sources(spec)
    for slot in range(start, start + width):
        if slot in consumed:
            raise VerificationError(
                f"cell {cell_index} output (pool {slot}) still drives "
                f"cell {consumed[slot][0]}; only leaf cells are removable"
            )

    def remap(source: int) -> int:
        return source - width if source >= start + width else source

    new_cells = [
        replace(cell, inputs=tuple(
            replace(wire, source=remap(wire.source)) for wire in cell.inputs
        ))
        for index, cell in enumerate(spec.cells)
        if index != cell_index
    ]
    return replace(spec, cells=tuple(new_cells))
