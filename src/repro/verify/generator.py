"""Random *legal* netlist generation.

The generator enumerates circuits the design-rule checker
(:mod:`repro.lint`) accepts with **zero** diagnostics, by turning each DRC
rule into a construction constraint instead of a post-hoc filter:

===================  =========================================================
Rule                 Constraint
===================  =========================================================
implicit-fanout      every pool output is consumed by at most one wire;
                     fanout only ever comes from explicit ``Splitter`` cells
unmerged-fanin       every input port gets exactly one wire
floating-input       every input port gets exactly one wire (same invariant)
dead-element         wires only reference earlier pool outputs, all of which
                     descend from the declared ``entry`` stimulus splitter
dangling-output      the builder probes every unconsumed output
combinational-loop   pool indexing is topological: the netlist is a DAG
no-clock-driver      clocked cells have *all* inputs wired, clocks included
merger-collision     static worst-case input arrivals at merger cells are
                     spaced at least one dead time apart (wire delays are
                     bumped using the same longest-path arrival model
                     :mod:`repro.lint.graph` computes)
===================  =========================================================

The harness still lints every generated circuit — not as a filter but as a
cross-check that couples the generator to the rule catalogue: a rule
change that invalidates these constraints fails the ``lint-clean`` oracle
immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import VerificationError
from repro.pulsesim.element import CellRole
from repro.synth.builder import space_arrivals, splitters_needed
from repro.verify.spec import (
    ENTRY_OUTPUTS,
    CellSpec,
    NetlistSpec,
    WireSpec,
    input_ports,
    output_ports,
    template,
)

#: Draw weights over the standard-cell library.  Interconnect and storage
#: cells dominate (they dominate real U-SFQ datapaths); every kind keeps a
#: non-zero weight so the full library is continuously exercised.
KIND_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("Jtl", 3),
    ("Splitter", 3),
    ("Merger", 2),
    ("IdealMerger", 2),
    ("Tff", 2),
    ("Tff2", 2),
    ("Dff", 2),
    ("Ndro", 2),
    ("Dff2", 1),
    ("Inverter", 1),
    ("Bff", 1),
    ("Mux", 1),
    ("Demux", 1),
    ("FirstArrival", 1),
    ("LastArrival", 1),
    ("ClockedAnd", 1),
    ("ClockedOr", 1),
    ("ClockedXor", 1),
)


@dataclass(frozen=True)
class Profile:
    """Size envelope for one verification depth."""

    name: str
    examples: int
    min_cells: int
    max_cells: int
    max_stimulus: int
    max_slot: int
    time_scale: int = 1_000
    delay_choices: Tuple[int, ...] = (0, 0, 500, 1_000, 1_500, 2_500)


PROFILES: Dict[str, Profile] = {
    "smoke": Profile("smoke", examples=25, min_cells=1, max_cells=5,
                     max_stimulus=12, max_slot=20),
    "ci": Profile("ci", examples=200, min_cells=1, max_cells=8,
                  max_stimulus=25, max_slot=40),
    "nightly": Profile("nightly", examples=2_000, min_cells=2, max_cells=14,
                       max_stimulus=60, max_slot=80),
}


def profile(name: str) -> Profile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise VerificationError(
            f"unknown profile {name!r}; known profiles: {known}"
        ) from None


def example_rng(seed: int, example: int) -> random.Random:
    """The deterministic RNG substream for one example index."""
    return random.Random(f"usfq-verify/{seed}/{example}")


class _PoolState:
    """Arrival-annotated pool bookkeeping during generation."""

    def __init__(self) -> None:
        entry_departure = template("Splitter").propagation_delay_fs
        #: pool slot -> static worst-case departure time of its driver
        #: (arrival at the driving cell + its propagation delay), the
        #: longest-path model of :meth:`repro.lint.graph.CircuitGraph.
        #: arrival_times`.
        self.departures: List[int] = [entry_departure] * ENTRY_OUTPUTS
        self.available: List[int] = list(range(ENTRY_OUTPUTS))

    def consume(self, slot: int) -> None:
        self.available.remove(slot)

    def extend(self, departure: int, count: int) -> None:
        for _ in range(count):
            self.available.append(len(self.departures))
            self.departures.append(departure)


def _draw_kind(rng: random.Random) -> str:
    total = sum(weight for _, weight in KIND_WEIGHTS)
    pick = rng.randrange(total)
    for kind, weight in KIND_WEIGHTS:
        pick -= weight
        if pick < 0:
            return kind
    raise AssertionError("unreachable")  # pragma: no cover


def _add_cell(kind: str, rng: random.Random, prof: Profile,
              pool: _PoolState, cells: List[CellSpec]) -> None:
    """Wire one cell from the available pool, honouring merger spacing."""
    ports = input_ports(kind)
    sources = rng.sample(pool.available, len(ports))
    delays = [rng.choice(prof.delay_choices) for _ in ports]
    arrivals = [pool.departures[s] + d for s, d in zip(sources, delays)]
    cell = template(kind)
    dead_time = getattr(cell, "dead_time", 0)
    if cell.has_role(CellRole.MERGER) and dead_time > 0:
        # Space static worst-case arrivals >= one dead time apart so the
        # merger-collision timing rule cannot fire (shared legality
        # helper, also used by the synthesis builder and the DRC rule).
        for index, bump in enumerate(space_arrivals(arrivals, dead_time)):
            delays[index] += bump
            arrivals[index] += bump
    for slot in sources:
        pool.consume(slot)
    departure = max(arrivals) + cell.propagation_delay_fs
    pool.extend(departure, len(output_ports(kind)))
    cells.append(CellSpec(kind=kind, inputs=tuple(
        WireSpec(s, d) for s, d in zip(sources, delays)
    )))


def generate_spec(rng: random.Random, prof: Profile) -> NetlistSpec:
    """One random legal :class:`NetlistSpec` drawn from ``rng``."""
    cells: List[CellSpec] = []
    pool = _PoolState()
    target = rng.randint(prof.min_cells, prof.max_cells)
    while len(cells) < target:
        kind = _draw_kind(rng)
        # Grow the pool with explicit splitters until the cell's fan-in
        # can be served — the only legal fanout mechanism in RSFQ.
        for _ in range(
            splitters_needed(len(pool.available), len(input_ports(kind)))
        ):
            _add_cell("Splitter", rng, prof, pool, cells)
        _add_cell(kind, rng, prof, pool, cells)
    count = rng.randint(1, prof.max_stimulus)
    stimulus = tuple(
        rng.randint(0, prof.max_slot) * prof.time_scale for _ in range(count)
    )
    return NetlistSpec(cells=tuple(cells), stimulus=stimulus)
