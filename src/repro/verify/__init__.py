"""Randomized conformance verification of the pulse-simulator stack.

The unit suites pin down what each cell and kernel *should* do on
hand-written circuits; this package asks the complementary question —
do all the execution paths agree on circuits *nobody wrote*?  It
generates random netlists that are lint-clean by construction (every
design rule in :mod:`repro.lint` is a generator constraint), then holds
them to a matrix of differential and metamorphic oracles:

* reference event loop vs the compiled sealed kernel,
* traced vs untraced, probed vs probe-free execution,
* global time-shift equivariance, merger input commutativity,
* zero-strength fault channels as exact identities,
* export → import → re-run determinism.

Failures are shrunk to minimal specs and persisted as replayable corpus
entries (``tests/verify/corpus/``) so every discrepancy ever found stays
a regression test.

Quickstart::

    from repro.verify import VerifyConfig, run_verify
    report = run_verify(VerifyConfig(profile="smoke", seed=0))
    assert report.ok, report.discrepancies

CLI: ``python -m repro.verify --profile ci`` or the ``usfq-verify``
script.
"""

from repro.verify.corpus import (
    corpus_entry,
    iter_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.verify.generator import PROFILES, example_rng, generate_spec, profile
from repro.verify.harness import (
    Discrepancy,
    VerifyConfig,
    VerifyReport,
    replay_corpus,
    run_verify,
)
from repro.verify.oracles import ORACLES, OracleResult, run_oracle
from repro.verify.shrink import ShrinkResult, shrink
from repro.verify.spec import (
    Built,
    CellSpec,
    NetlistSpec,
    WireSpec,
    build,
    spec_from_json,
    validate,
)

__all__ = [
    "Built",
    "CellSpec",
    "Discrepancy",
    "NetlistSpec",
    "ORACLES",
    "OracleResult",
    "PROFILES",
    "ShrinkResult",
    "VerifyConfig",
    "VerifyReport",
    "WireSpec",
    "build",
    "corpus_entry",
    "example_rng",
    "generate_spec",
    "iter_corpus",
    "load_entry",
    "profile",
    "replay_corpus",
    "replay_entry",
    "run_oracle",
    "run_verify",
    "save_entry",
    "shrink",
    "spec_from_json",
    "validate",
]
