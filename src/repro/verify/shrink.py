"""Greedy counterexample minimisation.

Given a failing spec and a predicate ("does this spec still exhibit the
failure?"), the shrinker repeatedly applies legality-preserving
reductions and keeps every one the predicate accepts, until a fixpoint or
the predicate-call budget runs out.  Reduction passes, in order of how
much they simplify the eventual corpus entry:

1. drop stimulus pulses (whole halves first, then single pulses),
2. remove leaf cells (cells whose outputs nothing consumes),
3. zero wire delays,
4. halve wire delays that resist zeroing,
5. zero then halve stimulus times.

Every candidate is structurally validated before the predicate runs, so
shrinking can never escape the legal-spec space — though a shrunk spec is
not guaranteed lint-*clean* (e.g. collapsing wire delays can introduce a
merger-collision timing diagnostic); the predicate, which replays the
original failing oracle, is the only arbiter of which reductions stick.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.errors import VerificationError
from repro.verify.spec import NetlistSpec, WireSpec, remove_cell, validate

#: Default cap on predicate invocations per shrink.
DEFAULT_BUDGET = 400


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal spec plus bookkeeping."""

    spec: NetlistSpec
    calls: int
    improved: bool


def _drop_stimulus(spec: NetlistSpec) -> Iterator[NetlistSpec]:
    count = len(spec.stimulus)
    if count > 1:
        half = count // 2
        yield replace(spec, stimulus=spec.stimulus[:half])
        yield replace(spec, stimulus=spec.stimulus[half:])
    for index in range(count):
        yield replace(
            spec,
            stimulus=spec.stimulus[:index] + spec.stimulus[index + 1:],
        )


def _drop_cells(spec: NetlistSpec) -> Iterator[NetlistSpec]:
    # Last-to-first: later cells are leaves more often, and removing one
    # can turn its drivers into leaves for the next round.
    for index in reversed(range(len(spec.cells))):
        try:
            yield remove_cell(spec, index)
        except VerificationError:
            continue  # not a leaf


def _rewire(spec: NetlistSpec, cell_index: int, input_index: int,
            delay: int) -> NetlistSpec:
    cell = spec.cells[cell_index]
    inputs = list(cell.inputs)
    inputs[input_index] = WireSpec(inputs[input_index].source, delay)
    cells = list(spec.cells)
    cells[cell_index] = replace(cell, inputs=tuple(inputs))
    return replace(spec, cells=tuple(cells))


def _zero_delays(spec: NetlistSpec) -> Iterator[NetlistSpec]:
    for cell_index, cell in enumerate(spec.cells):
        for input_index, wire in enumerate(cell.inputs):
            if wire.delay:
                yield _rewire(spec, cell_index, input_index, 0)


def _halve_delays(spec: NetlistSpec) -> Iterator[NetlistSpec]:
    for cell_index, cell in enumerate(spec.cells):
        for input_index, wire in enumerate(cell.inputs):
            if wire.delay > 1:
                yield _rewire(spec, cell_index, input_index, wire.delay // 2)


def _shrink_times(spec: NetlistSpec) -> Iterator[NetlistSpec]:
    for index, time in enumerate(spec.stimulus):
        for smaller in (0, time // 2):
            if smaller < time:
                yield replace(
                    spec,
                    stimulus=spec.stimulus[:index] + (smaller,)
                    + spec.stimulus[index + 1:],
                )


_PASSES = (_drop_stimulus, _drop_cells, _zero_delays, _halve_delays,
           _shrink_times)


def shrink(spec: NetlistSpec,
           predicate: Callable[[NetlistSpec], bool],
           budget: int = DEFAULT_BUDGET) -> ShrinkResult:
    """Minimise ``spec`` while ``predicate`` keeps returning True.

    ``predicate`` is only ever called with structurally valid specs; it
    must return True when the candidate still exhibits the failure being
    chased.  The original ``spec`` is assumed failing and never re-checked.
    """
    calls = 0

    def still_fails(candidate: NetlistSpec) -> bool:
        nonlocal calls
        if calls >= budget:
            return False
        try:
            validate(candidate)
        except VerificationError:
            return False
        calls += 1
        return bool(predicate(candidate))

    current = spec
    progress = True
    while progress and calls < budget:
        progress = False
        for reduction in _PASSES:
            accepted = True
            while accepted and calls < budget:
                accepted = False
                for candidate in reduction(current):
                    if still_fails(candidate):
                        current = candidate
                        accepted = progress = True
                        break
    return ShrinkResult(spec=current, calls=calls, improved=current != spec)
