"""Command-line interface for the conformance harness.

Usage::

    python -m repro.verify --profile ci --seed 0      # one CI campaign
    python -m repro.verify --profile smoke            # quick local check
    python -m repro.verify --max-examples 50          # cap the campaign
    python -m repro.verify --oracle kernel-differential --oracle time-shift
    python -m repro.verify --list-oracles             # show the matrix
    python -m repro.verify --replay tests/verify/corpus   # regression mode
    usfq-verify --profile ci --seed 0                 # console-script alias

Exit codes: 0 when every oracle held on every example (or every replayed
corpus entry passed), 1 when a discrepancy was found (shrunk
counterexamples are saved under ``--corpus-dir``), 2 for unusable
arguments.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import VerificationError
from repro.verify.corpus import DEFAULT_CORPUS_DIR
from repro.verify.generator import PROFILES
from repro.verify.harness import VerifyConfig, replay_corpus, run_verify
from repro.verify.oracles import ORACLES


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usfq-verify",
        description=(
            "Randomized netlist fuzzing with differential and metamorphic "
            "oracles over the U-SFQ pulse-simulator stack."
        ),
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="ci",
        help="campaign size envelope (default: ci)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; each example derives its own substream",
    )
    parser.add_argument(
        "--max-examples", type=int, default=None, metavar="N",
        help="override the profile's example count",
    )
    parser.add_argument(
        "--oracle", action="append", default=None, metavar="NAME",
        help="run only this oracle (repeatable; see --list-oracles)",
    )
    parser.add_argument(
        "--list-oracles", action="store_true",
        help="list the oracle matrix and exit",
    )
    parser.add_argument(
        "--corpus-dir", default=str(DEFAULT_CORPUS_DIR), metavar="DIR",
        help="where shrunk counterexamples are saved "
             f"(default: {DEFAULT_CORPUS_DIR})",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="keep counterexamples at generated size",
    )
    parser.add_argument(
        "--shrink-budget", type=int, default=400, metavar="CALLS",
        help="max oracle replays per shrink (default: 400)",
    )
    parser.add_argument(
        "--replay", metavar="DIR", default=None,
        help="replay every corpus entry under DIR instead of fuzzing",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of text",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    args = parser.parse_args(argv)

    if args.list_oracles:
        return _list_oracles(args.json)
    try:
        if args.replay is not None:
            return _replay(args)
        return _fuzz(args)
    except VerificationError as error:
        print(f"usfq-verify: {error}", file=sys.stderr)
        return 2


def _list_oracles(as_json: bool) -> int:
    if as_json:
        catalogue = {
            name: (oracle.__doc__ or "").strip().split("\n")[0]
            for name, oracle in ORACLES.items()
        }
        print(json.dumps(catalogue, indent=2))
        return 0
    for name, oracle in ORACLES.items():
        summary = (oracle.__doc__ or "").strip().split("\n")[0]
        print(f"{name:22} {summary}")
    return 0


def _fuzz(args: argparse.Namespace) -> int:
    config = VerifyConfig(
        seed=args.seed,
        profile=args.profile,
        max_examples=args.max_examples,
        oracles=args.oracle,
        shrink=not args.no_shrink,
        shrink_budget=args.shrink_budget,
        corpus_dir=args.corpus_dir,
    )

    def progress(done: int, total: int) -> None:
        if not args.quiet and (done % 50 == 0 or done == total):
            print(f"  {done}/{total} examples", file=sys.stderr)

    report = run_verify(config, progress=progress)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        status = "OK" if report.ok else "FAIL"
        print(
            f"{status}: {report.examples} examples x "
            f"{report.oracle_runs // max(report.examples, 1)} oracles "
            f"({report.oracle_runs} runs, "
            f"{sum(report.inapplicable.values())} inapplicable) "
            f"in {report.wall_s:.1f}s "
            f"[profile={report.profile} seed={report.seed}]"
        )
        for disc in report.discrepancies:
            print(
                f"  example {disc.example}: {disc.oracle} failed "
                f"({len(disc.spec.cells)} -> {len(disc.shrunk.cells)} cells "
                f"after {disc.shrink_calls} shrink calls)"
            )
            print(f"    {disc.detail}")
            if disc.corpus_path:
                print(f"    saved: {disc.corpus_path}")
    return 0 if report.ok else 1


def _replay(args: argparse.Namespace) -> int:
    outcomes = replay_corpus(args.replay)
    if args.json:
        print(json.dumps(outcomes, indent=2))
    else:
        if not outcomes:
            print(f"no corpus entries under {args.replay}")
        for outcome in outcomes:
            status = "pass" if outcome["ok"] else "FAIL"
            print(f"{status}  {outcome['path']}  [{outcome['oracle']}]")
            if not outcome["ok"]:
                print(f"      {outcome['detail']}")
    return 0 if all(outcome["ok"] for outcome in outcomes) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
