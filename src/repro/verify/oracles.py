"""The conformance oracle matrix.

Every oracle takes a :class:`~repro.verify.spec.NetlistSpec`, builds fresh
circuits from it, and checks one invariant that must hold for *any* legal
netlist.  Differential oracles compare two executions of the same circuit
(reference vs sealed kernel, traced vs untraced, probed vs probe-free);
metamorphic oracles compare executions of two *related* circuits whose
outputs are analytically linked (time-shifted stimulus, commuted merger
inputs, identity fault channels spliced into a wire, an export/import
round trip).

Oracles self-report applicability: a property that only holds in the
absence of tie-order-sensitive cells (see :data:`TIE_ORDER_SENSITIVE`)
declines circuits containing them rather than raising false alarms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.lint.api import lint_circuit
from repro.pulsesim.simulator import Simulator
from repro.verify.spec import Built, NetlistSpec, build
from repro.verify import spec as specmod

#: Internal cell state compared after runs (superset across the library;
#: missing attributes read as None).  Cell state is the sharpest oracle:
#: parity, dead-time filtering, and store/readout races are all
#: order-sensitive, so any divergence in the event total order shows up.
STATE_ATTRS: Tuple[str, ...] = (
    "state", "reads", "collisions", "select",
    "_armed", "_last_accept", "_a", "_b", "_seen", "_fired",
)

#: Cells for which equal-(time, priority) pulses on *different* input
#: ports steer observably different outputs depending on engine-assigned
#: sequence numbers.  Transformations that add or remove events (channel
#: splices) legitimately perturb that order, so order-sensitive circuits
#: are out of scope for those oracles.
TIE_ORDER_SENSITIVE = frozenset({"Bff", "Dff2", "Mux", "Demux"})

#: The time-shift applied by the shift-equivariance oracle (fs).
SHIFT_DELTA = 7_000

#: Lanes used by the batch-differential oracle.  Lane ``k`` replays the
#: stimulus minus its last ``k`` pulses, so lane masks diverge from the
#: first stateful cell onward — small enough to stay fast, varied enough
#: to exercise mask splitting.
BATCH_LANES = 4


@dataclass
class OracleResult:
    """Outcome of one oracle on one spec."""

    oracle: str
    applicable: bool
    ok: bool
    detail: str = ""


def state_snapshot(built: Built) -> Dict[str, tuple]:
    """Internal cell state keyed by element name (comparable by-name
    across transformed circuits that add or remove helper cells)."""
    return {
        element.name: tuple(
            _freeze(getattr(element, attr, None)) for attr in STATE_ATTRS
        )
        for element in built.circuit.elements
    }


def _freeze(value):
    return tuple(sorted(value.items())) if isinstance(value, dict) else value


def run_built(built: Built, stimulus, kernel: Optional[str] = None,
              trace=None) -> Dict:
    """Drive a built circuit and snapshot everything comparable.

    Mixes the single-pulse and batched scheduling paths exactly like the
    kernel differential suite, so both entry points stay covered.
    """
    sim = Simulator(built.circuit, kernel=kernel, trace=trace)
    for time in stimulus[:3]:
        sim.schedule_input(built.entry, "a", time)
    sim.schedule_train(built.entry, "a", stimulus[3:])
    stats = sim.run()
    return {
        "recordings": [list(probe.times) for probe in built.probes],
        "events": stats.events_processed,
        "pulses": stats.pulses_emitted,
        "end_time": stats.end_time,
        "max_queue_depth": stats.max_queue_depth,
        "now": sim.now,
        "state": state_snapshot(built),
    }


def _first_difference(left: Dict, right: Dict) -> str:
    for key in left:
        if left[key] != right[key]:
            return f"{key}: {left[key]!r} != {right[key]!r}"
    return "identical"


def _compare(name: str, left: Dict, right: Dict,
             keys: Optional[Tuple[str, ...]] = None) -> OracleResult:
    if keys is not None:
        left = {key: left[key] for key in keys}
        right = {key: right[key] for key in keys}
    if left == right:
        return OracleResult(name, True, True)
    return OracleResult(name, True, False,
                        detail=_first_difference(left, right))


# -- oracles -------------------------------------------------------------------
def oracle_lint_clean(spec: NetlistSpec) -> OracleResult:
    """Generated circuits must pass every lint rule with zero diagnostics."""
    built = build(spec)
    report = lint_circuit(built.circuit,
                          entry_points=[(built.entry, "a")])
    if not report.diagnostics:
        return OracleResult("lint-clean", True, True)
    worst = report.diagnostics[0]
    return OracleResult(
        "lint-clean", True, False,
        detail=f"{len(report.diagnostics)} diagnostics, first: "
               f"[{worst.rule}] {worst.message}",
    )


def oracle_kernel_differential(spec: NetlistSpec) -> OracleResult:
    """Reference heap loop and compiled sealed kernel agree exactly."""
    reference = run_built(build(spec), spec.stimulus, kernel="reference")
    sealed = run_built(build(spec), spec.stimulus, kernel="sealed")
    return _compare("kernel-differential", reference, sealed)


def oracle_trace_transparency(spec: NetlistSpec) -> OracleResult:
    """A fully-tapped traced run is bit-identical to an untraced run."""
    from repro.trace import TraceSession

    untraced = run_built(build(spec), spec.stimulus)
    traced_built = build(spec)
    session = TraceSession(traced_built.circuit)
    traced = run_built(traced_built, spec.stimulus, trace=session)
    return _compare("trace-transparency", untraced, traced)


def oracle_probe_transparency(spec: NetlistSpec) -> OracleResult:
    """Attaching one more recorder does not disturb existing observers."""
    baseline = run_built(build(spec), spec.stimulus)
    probed = build(spec)
    # Tap a *consumed* output (unconsumed ones already carry recorders):
    # the sink of the last cell's first input, or the entry's q1.
    if spec.cells:
        slot = spec.cells[-1].inputs[0].source
    else:
        slot = 0
    element, port = probed.pool[slot]
    from repro.pulsesim.probe import PulseRecorder

    probed.circuit.probe(element, port, probe=PulseRecorder("verify:extra"))
    extra = run_built(probed, spec.stimulus)
    return _compare("probe-transparency", baseline, extra)


def oracle_time_shift(spec: NetlistSpec) -> OracleResult:
    """Shifting all stimulus by Δ shifts every recording and the horizon
    by exactly Δ and changes nothing else (time-translation symmetry)."""
    base = run_built(build(spec), spec.stimulus)
    shifted_spec = specmod.shift_stimulus(spec, SHIFT_DELTA)
    shifted = run_built(build(shifted_spec), shifted_spec.stimulus)
    expected = dict(base)
    expected["recordings"] = [
        [time + SHIFT_DELTA for time in timeline]
        for timeline in base["recordings"]
    ]
    expected["end_time"] = base["end_time"] + SHIFT_DELTA
    expected["now"] = base["now"] + SHIFT_DELTA
    expected["state"] = _shift_state(base["state"], SHIFT_DELTA)
    return _compare("time-shift", expected, shifted)


def _shift_state(state: Dict[str, tuple], delta: int) -> Dict[str, tuple]:
    """Displace absolute-time state (a merger's last-accept timestamp)
    by ``delta``; everything else is time-translation invariant."""
    index = STATE_ATTRS.index("_last_accept")
    shifted = {}
    for name, values in state.items():
        values = list(values)
        if isinstance(values[index], int):
            values[index] += delta
        shifted[name] = tuple(values)
    return shifted


def _merger_indices(spec: NetlistSpec) -> List[int]:
    return [
        index for index, cell in enumerate(spec.cells)
        if cell.kind in ("Merger", "IdealMerger")
    ]


def oracle_merger_commutativity(spec: NetlistSpec) -> OracleResult:
    """Swapping which wires feed a merger's two inputs changes nothing."""
    mergers = _merger_indices(spec)
    if not mergers:
        return OracleResult("merger-commutativity", False, True,
                            detail="no merger cells")
    base = run_built(build(spec), spec.stimulus)
    for index in mergers:
        swapped_spec = specmod.swap_cell_inputs(spec, index)
        swapped = run_built(build(swapped_spec), swapped_spec.stimulus)
        result = _compare("merger-commutativity", base, swapped)
        if not result.ok:
            result.detail = f"merger c{index}: {result.detail}"
            return result
    return OracleResult("merger-commutativity", True, True)


def _identity_oracle(name: str, kind: str, params,
                     spec: NetlistSpec) -> OracleResult:
    if not spec.cells:
        return OracleResult(name, False, True, detail="no wires to splice")
    if any(cell.kind in TIE_ORDER_SENSITIVE for cell in spec.cells):
        return OracleResult(
            name, False, True,
            detail="circuit contains tie-order-sensitive cells",
        )
    base = run_built(build(spec), spec.stimulus)
    spliced_spec = specmod.splice_cell(spec, len(spec.cells) - 1, 0, kind,
                                       params=params)
    spliced = run_built(build(spliced_spec), spliced_spec.stimulus)
    # The channel adds events and its own element, so only the original
    # observers, cell states, and the time horizon are comparable.
    channel_name = f"c{len(spec.cells) - 1}"  # spliced before the last cell
    base_cmp = {"recordings": base["recordings"], "state": base["state"],
                "end_time": base["end_time"]}
    spliced_cmp = {
        "recordings": spliced["recordings"],
        "state": _renamed_without_channel(spliced["state"], channel_name,
                                          len(spec.cells)),
        "end_time": spliced["end_time"],
    }
    return _compare(name, base_cmp, spliced_cmp)


def _renamed_without_channel(state: Dict[str, tuple], channel: str,
                             original_cells: int) -> Dict[str, tuple]:
    """Map spliced-circuit cell names back to base-circuit names.

    The channel sits at index ``original_cells - 1``; the original last
    cell shifted to index ``original_cells``.  Every other name is stable.
    """
    renamed = {}
    for name, snapshot in state.items():
        if name == channel:
            continue  # the identity channel itself has no counterpart
        if name == f"c{original_cells}":
            renamed[f"c{original_cells - 1}"] = snapshot
        else:
            renamed[name] = snapshot
    return renamed


def oracle_drop_identity(spec: NetlistSpec) -> OracleResult:
    """``DropChannel(drop_rate=0)`` spliced into a wire is a no-op."""
    return _identity_oracle("drop-identity", "DropChannel",
                            (("drop_rate", 0.0),), spec)


def oracle_jitter_identity(spec: NetlistSpec) -> OracleResult:
    """``JitterChannel(std_fs=0)`` spliced into a wire is a no-op."""
    return _identity_oracle("jitter-identity", "JitterChannel",
                            (("std_fs", 0),), spec)


def oracle_export_import(spec: NetlistSpec) -> OracleResult:
    """describe → import → describe is byte-stable and the re-imported
    circuit replays the exact pulse timelines on the probed ports."""
    from repro.pulsesim.export import import_netlist, netlist_description

    built = build(spec)
    description = netlist_description(built.circuit)
    rebuilt_circuit = import_netlist(description)
    redescription = netlist_description(rebuilt_circuit)
    if redescription != description:
        return OracleResult(
            "export-import", True, False,
            detail="netlist description changed across import round trip",
        )
    base = run_built(built, spec.stimulus)
    # Align the re-imported recorders with the base circuit's pool-order
    # probes by label (default PulseRecorder labels are "<cell>.<port>").
    by_label = {
        tap.probe.label: tap.probe
        for taps in rebuilt_circuit._taps.values()
        for tap in taps
    }
    rebuilt = Built(
        circuit=rebuilt_circuit,
        entry=rebuilt_circuit[specmod.ENTRY_NAME],
        probes=[by_label[probe.label] for probe in built.probes],
        pool=[],
    )
    rerun = run_built(rebuilt, spec.stimulus)
    return _compare("export-import", base, rerun,
                    keys=("recordings", "events", "pulses", "end_time",
                          "max_queue_depth", "now"))


def oracle_static_soundness(spec: NetlistSpec) -> OracleResult:
    """Simulation must stay inside the abstract interpreter's bounds.

    The circuit is abstract-interpreted with the *exact* stimulus
    abstraction (repro.analyze stimulus mode), then simulated once; for
    every probed output the observed pulse count, every timestamp, and
    every consecutive spacing must respect the static bounds, and the
    kernel's peak queue depth must not exceed the static bound.  Any
    escape disproves a transfer function's soundness argument.
    """
    from repro.analyze import analyze_circuit
    from repro.analyze.domain import INF, describe

    built = build(spec)
    observed = run_built(built, spec.stimulus)

    # Fresh build for analysis: the analyzer only reads structure, but a
    # virgin circuit keeps the contract obvious (and the pools align —
    # builds are deterministic).
    fresh = build(spec)
    analysis = analyze_circuit(
        fresh.circuit,
        stimulus={(fresh.entry, "a"): list(spec.stimulus)},
    )
    consumed = specmod.used_sources(spec)
    probe_slots = [
        slot for slot in range(len(fresh.pool)) if slot not in consumed
    ]
    for slot, times in zip(probe_slots, observed["recordings"]):
        element, port = fresh.pool[slot]
        bounds = analysis.output_bounds(element, port)
        where = f"{element.name}.{port}"
        if not bounds.contains_count(len(times)):
            return OracleResult(
                "static-soundness", True, False,
                detail=(f"{where}: {len(times)} pulse(s) outside "
                        f"{describe(bounds)}"),
            )
        for time in times:
            if not bounds.contains_time(time):
                return OracleResult(
                    "static-soundness", True, False,
                    detail=(f"{where}: pulse at {time} fs outside "
                            f"{describe(bounds)}"),
                )
        for earlier, later in zip(times, times[1:]):
            if bounds.gap < INF and later - earlier < bounds.gap:
                return OracleResult(
                    "static-soundness", True, False,
                    detail=(f"{where}: spacing {later - earlier} fs below "
                            f"{describe(bounds)}"),
                )
    depth_bound = analysis.queue_depth_bound
    if observed["max_queue_depth"] > depth_bound:
        return OracleResult(
            "static-soundness", True, False,
            detail=(f"max_queue_depth {observed['max_queue_depth']} exceeds "
                    f"static bound {depth_bound}"),
        )
    return OracleResult("static-soundness", True, True)


def oracle_batch_differential(spec: NetlistSpec) -> OracleResult:
    """The vectorized batch kernel agrees with the scalar sealed kernel
    lane by lane.

    One :class:`~repro.pulsesim.batch.BatchSimulator` runs
    :data:`BATCH_LANES` lanes whose stimulus trains are distinct prefixes
    of the spec's stimulus; each lane is then compared against a fresh
    scalar sealed run of the same prefix on recordings (sorted — the
    batch kernel's analytic mode does not define an emission order within
    one lane), per-lane event/pulse/end-time stats, and the full internal
    cell-state snapshot.  Queue depth is excluded: the master queue's
    depth has no per-lane meaning.
    """
    from repro.pulsesim.batch import BatchSimulator

    built = build(spec)
    trains = [
        list(spec.stimulus[: max(0, len(spec.stimulus) - k)])
        for k in range(BATCH_LANES)
    ]
    sim = BatchSimulator(built.circuit, batch=BATCH_LANES)
    sim.schedule_lane_trains(built.entry, "a", trains)
    stats = sim.run()
    tap_ports = {
        id(tap.probe): (tap.source, port)
        for (_eid, port), taps in built.circuit._taps.items()
        for tap in taps
    }
    for lane, train in enumerate(trains):
        scalar = run_built(build(spec), train, kernel="sealed")
        scalar_side = {
            "recordings": [sorted(times) for times in scalar["recordings"]],
            "events": scalar["events"],
            "pulses": scalar["pulses"],
            "end_time": scalar["end_time"],
            "state": scalar["state"],
        }
        batch_side = {
            "recordings": [
                sim.port_times(*tap_ports[id(probe)], lane)
                for probe in built.probes
            ],
            "events": int(stats.events[lane]),
            "pulses": int(stats.pulses[lane]),
            "end_time": int(stats.end_time[lane]),
            "state": {
                element.name: tuple(
                    _freeze(sim.element_attr(element, attr, lane, None))
                    for attr in STATE_ATTRS
                )
                for element in built.circuit.elements
            },
        }
        result = _compare("batch-differential", scalar_side, batch_side)
        if not result.ok:
            result.detail = f"lane {lane} ({stats.mode}): {result.detail}"
            return result
    return OracleResult("batch-differential", True, True,
                        detail=f"mode={stats.mode}")


def oracle_shard_differential(spec: NetlistSpec) -> OracleResult:
    """The partitioned multi-process run is bit-identical to a monolithic
    sealed run of the same NoC-augmented circuit.

    The spec's circuit is cut into two fabric shards
    (:func:`repro.shard.partition.plan_partition`), every cut wire routed
    through an explicit NoC link; the monolithic sealed kernel then runs
    the augmented circuit whole while a
    :class:`~repro.shard.engine.ShardSimulator` runs it as two worker
    processes under conservative window synchronization.  Probed
    timelines, event/pulse totals, the time horizon, per-cell state, and
    per-link drop counters must all match exactly.  ``max_queue_depth``
    is excluded — per-shard queues cannot reproduce the monolithic
    high-water mark.  Declines tie-order-sensitive circuits (worker event
    sequence numbers legitimately differ) and jitter channels (their RNG
    draw order is the event order).
    """
    from repro.pulsesim.element import CellRole
    from repro.shard import ShardSimulator, build_noc_circuit, plan_partition

    if not spec.cells:
        return OracleResult("shard-differential", False, True,
                            detail="too few cells to cut")
    if any(cell.kind in TIE_ORDER_SENSITIVE or cell.kind == "JitterChannel"
           for cell in spec.cells):
        return OracleResult(
            "shard-differential", False, True,
            detail="circuit contains event-order-sensitive cells",
        )
    base = build(spec)
    plan = plan_partition(base.circuit, 2,
                          entry_points=[(base.entry, "a")])

    mono_circuit = build_noc_circuit(base.circuit, plan)
    mono = Simulator(mono_circuit, kernel="sealed")
    entry = mono_circuit[specmod.ENTRY_NAME]
    for time in spec.stimulus[:3]:
        mono.schedule_input(entry, "a", time)
    mono.schedule_train(entry, "a", spec.stimulus[3:])
    stats = mono.run()
    mono_side = {
        "recordings": {
            tap.probe.label: list(tap.probe.times)
            for taps in mono_circuit._taps.values()
            for tap in taps
        },
        "events": stats.events_processed,
        "pulses": stats.pulses_emitted,
        "end_time": stats.end_time,
        "now": mono.now,
        "state": {
            element.name: tuple(
                _freeze(getattr(element, attr, None)) for attr in STATE_ATTRS
            )
            for element in mono_circuit.elements
        },
        "drops": {
            element.name: int(getattr(element, "drops", 0))
            for element in mono_circuit.elements
            if CellRole.NOC in getattr(element, "ROLES", frozenset())
        },
    }

    with ShardSimulator(base.circuit, plan, jobs=2) as sharded:
        sharded.schedule_train(specmod.ENTRY_NAME, "a", list(spec.stimulus))
        merged = sharded.run()
        shard_side = {
            "recordings": sharded.recordings(),
            "events": merged.events_processed,
            "pulses": merged.pulses_emitted,
            "end_time": merged.end_time,
            "now": sharded.now,
            "state": sharded.state(STATE_ATTRS),
            "drops": sharded.noc_drops(),
        }
    result = _compare("shard-differential", mono_side, shard_side)
    if result.ok:
        result.detail = (f"{plan.num_shards} shards, {len(plan.cuts)} "
                         f"cut(s), lookahead {plan.lookahead_fs} fs")
    return result


def oracle_synth_differential(spec: NetlistSpec) -> OracleResult:
    """The synthesis frontend compiles a random dataflow spec to a
    lint-clean netlist whose simulation decodes to the NumPy reference
    evaluation of the spec.

    The dataflow spec is derived deterministically from the netlist
    spec's content hash, so the campaign's spec stream doubles as the
    synthesis fuzz stream and corpus replay reproduces the exact
    program.  Checks, in order: zero lint diagnostics (with the compiled
    entry points declared), decoded output levels equal to the reference
    evaluation on both kernels, and zero merger collisions (the delay
    balancer's no-pulse-loss guarantee).
    """
    import random as _random

    from repro.synth import compile_spec, lint_program, random_spec

    rng = _random.Random(f"usfq-synth-oracle/{spec.key()}")
    dataflow = random_spec(rng, name=f"synth_{spec.key()}")
    program = compile_spec(dataflow)
    report = lint_program(program)
    if report.diagnostics:
        worst = report.diagnostics[0]
        return OracleResult(
            "synth-differential", True, False,
            detail=f"lint: {len(report.diagnostics)} diagnostics, first: "
                   f"[{worst.rule}] {worst.message}",
        )
    expected = {o.ref: o.expected_level for o in program.outputs}
    for kernel in ("reference", "sealed"):
        outcome = program.simulate(kernel=kernel)
        if outcome.levels != expected:
            return OracleResult(
                "synth-differential", True, False,
                detail=f"{kernel}: decoded {outcome.levels}, reference "
                       f"evaluation expects {expected}",
            )
        if outcome.collisions:
            return OracleResult(
                "synth-differential", True, False,
                detail=f"{kernel}: {outcome.collisions} merger "
                       "collision(s) — balancing lost pulses",
            )
    return OracleResult(
        "synth-differential", True, True,
        detail=f"{len(dataflow.nodes)} nodes -> "
               f"{program.stats['cells']} cells, "
               f"{program.stats['jj']} JJ",
    )


#: The full matrix, in canonical execution order.
ORACLES: Dict[str, Callable[[NetlistSpec], OracleResult]] = {
    "lint-clean": oracle_lint_clean,
    "kernel-differential": oracle_kernel_differential,
    "batch-differential": oracle_batch_differential,
    "trace-transparency": oracle_trace_transparency,
    "probe-transparency": oracle_probe_transparency,
    "time-shift": oracle_time_shift,
    "merger-commutativity": oracle_merger_commutativity,
    "drop-identity": oracle_drop_identity,
    "jitter-identity": oracle_jitter_identity,
    "export-import": oracle_export_import,
    "synth-differential": oracle_synth_differential,
    "static-soundness": oracle_static_soundness,
    "shard-differential": oracle_shard_differential,
}


def run_oracle(name: str, spec: NetlistSpec) -> OracleResult:
    """Run one oracle by name (corpus replay uses this)."""
    try:
        oracle = ORACLES[name]
    except KeyError:
        from repro.errors import VerificationError

        known = ", ".join(ORACLES)
        raise VerificationError(
            f"unknown oracle {name!r}; known oracles: {known}"
        ) from None
    return oracle(spec)
