"""``python -m repro.verify`` — the conformance harness CLI."""

import sys

from repro.verify.cli import main

sys.exit(main())
