"""The fuzzing loop: generate → oracle matrix → shrink → corpus.

:func:`run_verify` is the engine behind the ``usfq-verify`` CLI and the
conformance tests: it streams deterministic random specs from the
per-example RNG substreams, runs every selected oracle on each, shrinks
whatever fails, and (optionally) persists shrunk counterexamples as
corpus entries.  An oracle that *raises* counts as a discrepancy too —
a generated legal netlist must never crash the simulator stack.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import VerificationError
from repro.verify import corpus as corpusmod
from repro.verify.generator import Profile, example_rng, generate_spec, profile
from repro.verify.oracles import ORACLES
from repro.verify.shrink import DEFAULT_BUDGET, shrink
from repro.verify.spec import NetlistSpec


@dataclass(frozen=True)
class VerifyConfig:
    """One fuzzing campaign's knobs."""

    seed: int = 0
    profile: str = "ci"
    #: Overrides the profile's example count when set.
    max_examples: Optional[int] = None
    #: Subset of oracle names; ``None`` means the full matrix.
    oracles: Optional[Sequence[str]] = None
    shrink: bool = True
    shrink_budget: int = DEFAULT_BUDGET
    #: Where to persist shrunk counterexamples; ``None`` disables saving.
    corpus_dir: Optional[str] = None


@dataclass
class Discrepancy:
    """One oracle failure, before and after shrinking."""

    example: int
    oracle: str
    detail: str
    spec: NetlistSpec
    shrunk: NetlistSpec
    shrink_calls: int = 0
    corpus_path: Optional[str] = None

    def to_json(self) -> Dict:
        return {
            "example": self.example,
            "oracle": self.oracle,
            "detail": self.detail,
            "original_cells": len(self.spec.cells),
            "shrunk_cells": len(self.shrunk.cells),
            "shrunk_spec": self.shrunk.to_json(),
            "corpus_path": self.corpus_path,
        }


@dataclass
class VerifyReport:
    """Campaign summary."""

    profile: str
    seed: int
    examples: int = 0
    oracle_runs: int = 0
    inapplicable: Dict[str, int] = field(default_factory=dict)
    discrepancies: List[Discrepancy] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def to_json(self) -> Dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "examples": self.examples,
            "oracle_runs": self.oracle_runs,
            "inapplicable": dict(self.inapplicable),
            "ok": self.ok,
            "discrepancies": [d.to_json() for d in self.discrepancies],
            "wall_s": round(self.wall_s, 3),
        }


def _select_oracles(names: Optional[Sequence[str]]) -> Dict[str, Callable]:
    if names is None:
        return dict(ORACLES)
    unknown = [name for name in names if name not in ORACLES]
    if unknown:
        known = ", ".join(ORACLES)
        raise VerificationError(
            f"unknown oracle(s) {', '.join(unknown)}; known oracles: {known}"
        )
    return {name: ORACLES[name] for name in names}


def _outcome(oracle: Callable, spec: NetlistSpec):
    """(ok, applicable, detail) — an exception is a failing outcome."""
    try:
        result = oracle(spec)
    except Exception as error:  # noqa: BLE001 - any crash is a finding
        return False, True, f"raised {type(error).__name__}: {error}"
    return result.ok, result.applicable, result.detail


def run_verify(config: VerifyConfig,
               progress: Optional[Callable[[int, int], None]] = None,
               ) -> VerifyReport:
    """Run one campaign and return its report.

    ``progress`` (if given) is called as ``progress(done, total)`` after
    every example.
    """
    prof: Profile = profile(config.profile)
    oracles = _select_oracles(config.oracles)
    total = config.max_examples if config.max_examples is not None \
        else prof.examples
    report = VerifyReport(profile=prof.name, seed=config.seed)
    started = _time.perf_counter()
    for example in range(total):
        spec = generate_spec(example_rng(config.seed, example), prof)
        report.examples += 1
        for name, oracle in oracles.items():
            ok, applicable, detail = _outcome(oracle, spec)
            report.oracle_runs += 1
            if not applicable:
                report.inapplicable[name] = \
                    report.inapplicable.get(name, 0) + 1
            if ok:
                continue
            report.discrepancies.append(
                _investigate(config, example, name, oracle, detail, spec)
            )
        if progress is not None:
            progress(example + 1, total)
    report.wall_s = _time.perf_counter() - started
    return report


def _investigate(config: VerifyConfig, example: int, name: str,
                 oracle: Callable, detail: str,
                 spec: NetlistSpec) -> Discrepancy:
    """Shrink one failure and persist it to the corpus."""
    shrunk, calls = spec, 0
    if config.shrink:
        result = shrink(
            spec,
            lambda candidate: not _outcome(oracle, candidate)[0],
            budget=config.shrink_budget,
        )
        shrunk, calls = result.spec, result.calls
    discrepancy = Discrepancy(example=example, oracle=name, detail=detail,
                              spec=spec, shrunk=shrunk, shrink_calls=calls)
    if config.corpus_dir:
        entry = corpusmod.corpus_entry(
            name, detail, shrunk, profile=config.profile,
            seed=config.seed, example=example, original_key=spec.key(),
        )
        path = corpusmod.save_entry(config.corpus_dir, entry)
        discrepancy.corpus_path = str(path)
    return discrepancy


def replay_corpus(directory: str) -> List[Dict]:
    """Replay every corpus entry; returns per-entry outcome dicts."""
    outcomes = []
    for path, entry in corpusmod.iter_corpus(directory):
        try:
            result = corpusmod.replay_entry(entry)
            ok, detail = result.ok, result.detail
        except Exception as error:  # noqa: BLE001 - crash == reproduction
            ok, detail = False, f"raised {type(error).__name__}: {error}"
        outcomes.append({
            "path": str(path),
            "oracle": entry["oracle"],
            "ok": ok,
            "detail": detail,
        })
    return outcomes
