"""Content-addressed on-disk cache of experiment results.

An entry's key is a digest of the experiment id, the serialisation format
version, and the full content of every Python source file under
``src/repro`` — so *any* edit to the reproduction's code invalidates every
cached result automatically, while re-running after an unrelated edit
(docs, tests, results) is a near-instant cache hit.  Entries are plain
JSON files, safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.digest import source_digest
from repro.experiments.report import ExperimentResult
from repro.pulsesim.simulator import SimulationStats
from repro.runner.serialize import FORMAT_VERSION, result_from_dict, result_to_dict
from repro.trace.metrics import empty_metrics

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".usfq-cache")

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheEntry",
    "ResultCache",
    "source_digest",  # hoisted to repro.digest; re-exported for callers
]


@dataclass
class CacheEntry:
    """A cached result plus the bookkeeping the manifest reports."""

    result: ExperimentResult
    stats: SimulationStats
    compute_time_s: float
    metrics: dict = field(default_factory=empty_metrics)


class ResultCache:
    """Loads and stores :class:`CacheEntry` objects under one directory."""

    def __init__(self, directory: Path, digest: Optional[str] = None):
        self.directory = Path(directory)
        self.digest = digest if digest is not None else source_digest()

    def key(self, experiment_id: str) -> str:
        payload = f"v{FORMAT_VERSION}:{experiment_id}:{self.digest}"
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def path(self, experiment_id: str) -> Path:
        return self.directory / f"{experiment_id}-{self.key(experiment_id)}.json"

    def load(self, experiment_id: str) -> Optional[CacheEntry]:
        """Return the cached entry, or None on a miss or unreadable file."""
        path = self.path(experiment_id)
        try:
            payload = json.loads(path.read_text())
            return CacheEntry(
                result=result_from_dict(payload["result"]),
                stats=SimulationStats(**payload["stats"]),
                compute_time_s=payload["compute_time_s"],
                metrics=payload.get("metrics", empty_metrics()),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(
        self,
        experiment_id: str,
        result: ExperimentResult,
        stats: SimulationStats,
        compute_time_s: float,
        metrics: Optional[dict] = None,
    ) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(experiment_id)
        payload = {
            "format": FORMAT_VERSION,
            "experiment_id": experiment_id,
            "created_at": time.time(),
            "compute_time_s": compute_time_s,
            "stats": {
                "events_processed": stats.events_processed,
                "pulses_emitted": stats.pulses_emitted,
                "end_time": stats.end_time,
                "max_queue_depth": stats.max_queue_depth,
            },
            "metrics": metrics if metrics is not None else empty_metrics(),
            "result": result_to_dict(result),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(path)
        return path
