"""Picklable work units executed by the runner's worker processes.

A :class:`WorkUnit` is either a whole experiment (``point_index is
None``) or one sweep point of an experiment listed in
:data:`repro.experiments.registry.SWEEPS`.  :func:`execute_unit` is a
module-level function so it pickles under every multiprocessing start
method; it captures the simulation counters accumulated while the unit
runs so the engine can total events/pulses per experiment, plus a
metrics-registry snapshot (anything the experiment recorded via
:func:`repro.trace.metrics.capture_metrics`, and the fault-channel
counter deltas) for the run manifest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.experiments.registry import SWEEPS, resolve_experiment
from repro.pulsesim import faults
from repro.pulsesim.simulator import SimulationStats, capture_stats
from repro.trace.metrics import capture_metrics, empty_metrics


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of work: an experiment or one sweep point.

    ``batched`` marks a whole-experiment unit that routes through the
    sweep module's ``run_points_batch`` hook, which coalesces Monte-Carlo
    points into vectorized batch-kernel calls instead of running them one
    by one.
    """

    experiment_id: str
    point_index: Optional[int] = None
    point: Any = None
    batched: bool = False


@dataclass
class UnitOutcome:
    """What a worker sends back: the payload plus its cost."""

    experiment_id: str
    point_index: Optional[int]
    payload: Any  # ExperimentResult for whole units, partial dict for points
    stats: SimulationStats
    duration_s: float
    metrics: dict = field(default_factory=empty_metrics)


def execute_unit(unit: WorkUnit) -> UnitOutcome:
    """Run one unit, timing it and capturing simulator counters."""
    started = time.perf_counter()
    fault_base = faults.fault_totals()
    with capture_stats() as stats, capture_metrics() as registry:
        if unit.batched:
            module = SWEEPS[unit.experiment_id]
            payload = module.assemble(
                module.run_points_batch(module.sweep_points())
            )
        elif unit.point_index is None:
            payload = resolve_experiment(unit.experiment_id)()
        else:
            payload = SWEEPS[unit.experiment_id].run_point(unit.point)
    metrics = registry.to_dict()
    # Fault channels count cumulatively per process (worker processes are
    # reused across units); the per-unit contribution is the delta.
    counters = metrics["counters"]
    for name, total in faults.fault_totals().items():
        delta = total - fault_base[name]
        if delta:
            counters[f"faults.{name}"] = counters.get(f"faults.{name}", 0) + delta
    metrics["counters"] = {name: counters[name] for name in sorted(counters)}
    return UnitOutcome(
        experiment_id=unit.experiment_id,
        point_index=unit.point_index,
        payload=payload,
        stats=stats,
        duration_s=time.perf_counter() - started,
        metrics=metrics,
    )
