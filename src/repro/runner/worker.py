"""Picklable work units executed by the runner's worker processes.

A :class:`WorkUnit` is either a whole experiment (``point_index is
None``) or one sweep point of an experiment listed in
:data:`repro.experiments.registry.SWEEPS`.  :func:`execute_unit` is a
module-level function so it pickles under every multiprocessing start
method; it captures the simulation counters accumulated while the unit
runs so the engine can total events/pulses per experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.experiments.registry import SWEEPS, resolve_experiment
from repro.pulsesim.simulator import SimulationStats, capture_stats


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of work: an experiment or one sweep point."""

    experiment_id: str
    point_index: Optional[int] = None
    point: Any = None


@dataclass
class UnitOutcome:
    """What a worker sends back: the payload plus its cost."""

    experiment_id: str
    point_index: Optional[int]
    payload: Any  # ExperimentResult for whole units, partial dict for points
    stats: SimulationStats
    duration_s: float


def execute_unit(unit: WorkUnit) -> UnitOutcome:
    """Run one unit, timing it and capturing simulator counters."""
    started = time.perf_counter()
    with capture_stats() as stats:
        if unit.point_index is None:
            payload = resolve_experiment(unit.experiment_id)()
        else:
            payload = SWEEPS[unit.experiment_id].run_point(unit.point)
    return UnitOutcome(
        experiment_id=unit.experiment_id,
        point_index=unit.point_index,
        payload=payload,
        stats=stats,
        duration_s=time.perf_counter() - started,
    )
