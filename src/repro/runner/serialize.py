"""JSON (de)serialisation for experiment results.

The cache stores :class:`~repro.experiments.report.ExperimentResult`
objects as JSON.  Round-tripping must preserve the *rendered* report
byte-for-byte: numpy scalars are converted to the Python types whose
``format_result`` rendering is identical (``np.float64`` is a ``float``
subclass, ``np.int64`` prints like ``int``), and row tuples come back as
lists, which render the same way.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.experiments.report import Claim, ExperimentResult

#: Bump when the serialised layout changes; embedded in every cache key.
#: 2: cache entries carry a metrics snapshot and stats.max_queue_depth.
FORMAT_VERSION = 2


def to_jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and tuples to JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: to_jsonable(v) for k, v in value.items()}
    return value


def result_to_dict(result: ExperimentResult) -> dict:
    """Serialise an ExperimentResult to a JSON-ready dict."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [to_jsonable(row) for row in result.rows],
        "notes": list(result.notes),
        "claims": [
            {
                "description": claim.description,
                "paper": claim.paper,
                "measured": claim.measured,
                "holds": bool(claim.holds),
            }
            for claim in result.claims
        ],
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Rebuild an ExperimentResult from :func:`result_to_dict` output."""
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        columns=payload["columns"],
        rows=[list(row) for row in payload["rows"]],
        notes=list(payload["notes"]),
        claims=[
            Claim(c["description"], c["paper"], c["measured"], c["holds"])
            for c in payload["claims"]
        ],
    )
