"""The execution engine: cache lookup, fan-out, deterministic assembly.

``run_suite`` is what the CLI, benchmarks, and tests route through.  It

1. validates every requested id up front (``ConfigurationError`` before
   any work is scheduled),
2. serves whatever it can from the :class:`~repro.runner.cache.ResultCache`,
3. fans the remaining work across a process pool — whole experiments,
   plus *within*-experiment sweep points for experiments registered in
   :data:`~repro.experiments.registry.SWEEPS` — and
4. assembles results in registry order, so the output is byte-identical
   for any ``jobs`` value: every work unit is deterministic and the
   assembly order never depends on completion order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.experiments.registry import (
    EXPERIMENTS,
    SWEEPS,
    VARIANTS,
    resolve_experiment,
)
from repro.experiments.report import ExperimentResult
from repro.parallel import pool_map, resolve_jobs
from repro.pulsesim.kernel import resolve_kernel
from repro.pulsesim.simulator import SimulationStats
from repro.runner.cache import ResultCache
from repro.runner.worker import UnitOutcome, WorkUnit, execute_unit
from repro.trace.metrics import empty_metrics, merge_metric_dicts


@dataclass
class ExperimentOutcome:
    """One experiment's result plus what it cost this invocation."""

    experiment_id: str
    result: ExperimentResult
    stats: SimulationStats
    compute_time_s: float
    cache_status: str  # "hit" | "miss" | "off"
    #: Merged metrics snapshot (counters/gauges/histograms) for the whole
    #: experiment, and — when the runner split it into sweep points — the
    #: per-point snapshots in sweep order.
    metrics: dict = field(default_factory=empty_metrics)
    metrics_points: Optional[List[dict]] = None

    @property
    def failures(self) -> int:
        return len(self.result.claims) - self.result.claims_held


@dataclass
class RunReport:
    """Everything one ``run_suite`` invocation produced."""

    outcomes: Dict[str, ExperimentOutcome] = field(default_factory=dict)
    wall_time_s: float = 0.0
    jobs: int = 1
    #: The ``jobs`` value as requested (e.g. ``"auto"``) before
    #: :func:`repro.parallel.resolve_jobs` pinned it to a worker count.
    jobs_requested: str = "1"
    cache_dir: Optional[str] = None
    source_digest: Optional[str] = None
    #: Effective simulator kernel ("auto", "reference", or "sealed") the
    #: run resolved to — recorded so manifests from the two kernels can be
    #: diffed for wall-time (the results themselves are bit-identical).
    kernel: str = "auto"
    #: Whether sweep experiments routed through their ``run_points_batch``
    #: hook (Monte-Carlo points coalesced into batch-kernel calls).
    batch: bool = False

    @property
    def failures(self) -> int:
        return sum(outcome.failures for outcome in self.outcomes.values())

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.cache_status == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.cache_status == "miss")


def _registry_ordered(ids: Iterable[str]) -> List[str]:
    requested = set(ids)
    ordered = list(EXPERIMENTS) + [v for v in VARIANTS if v not in EXPERIMENTS]
    return [eid for eid in ordered if eid in requested]


def _execute(units: Sequence[WorkUnit], jobs: int) -> List[UnitOutcome]:
    # One shared fan-out implementation (repro.parallel) serves both this
    # runner and the shard engine; submission order == result order, so
    # the assembly below stays deterministic for any jobs value.
    return pool_map(execute_unit, units, jobs)


def run_suite(
    ids: Sequence[str],
    jobs: Union[int, str, None] = 1,
    cache: Optional[ResultCache] = None,
    batch: bool = False,
) -> RunReport:
    """Run experiments (cache-aware, optionally parallel); registry order.

    ``jobs`` accepts an int, a numeric string, or ``"auto"``/``None``
    (one worker per CPU); anything else raises ``ConfigurationError``.
    The resolved worker count lands in ``RunReport.jobs`` and the raw
    request in ``RunReport.jobs_requested`` — results are byte-identical
    either way, so manifests stay diffable across hosts.

    With ``batch=True``, sweep experiments whose module defines
    ``run_points_batch`` execute as one unit through that hook, which
    coalesces Monte-Carlo sweep points into single vectorized batch-kernel
    calls.  Results are bit-identical to the per-point path (the hooks
    guarantee it), so cached entries are shared between the modes.
    """
    started = time.perf_counter()
    jobs_requested = "auto" if jobs is None else str(jobs)
    jobs = resolve_jobs(jobs)
    for experiment_id in ids:
        resolve_experiment(experiment_id)  # fail fast on unknown ids

    report = RunReport(
        jobs=jobs,
        jobs_requested=jobs_requested,
        cache_dir=str(cache.directory) if cache else None,
        source_digest=cache.digest if cache else None,
        kernel=resolve_kernel(None),
        batch=batch,
    )

    # Phase 1: serve cache hits.
    to_compute: List[str] = []
    for experiment_id in _registry_ordered(ids):
        entry = cache.load(experiment_id) if cache else None
        if entry is not None:
            report.outcomes[experiment_id] = ExperimentOutcome(
                experiment_id,
                entry.result,
                entry.stats,
                0.0,
                "hit",
                metrics=entry.metrics,
            )
        else:
            to_compute.append(experiment_id)

    # Phase 2: fan out the misses.  Sweep-capable experiments split into
    # per-point units when a pool is available.
    units: List[WorkUnit] = []
    for experiment_id in to_compute:
        module = SWEEPS.get(experiment_id)
        if batch and module is not None and hasattr(module, "run_points_batch"):
            units.append(WorkUnit(experiment_id, batched=True))
        elif jobs > 1 and experiment_id in SWEEPS:
            for index, point in enumerate(SWEEPS[experiment_id].sweep_points()):
                units.append(WorkUnit(experiment_id, index, point))
        else:
            units.append(WorkUnit(experiment_id))
    unit_outcomes = _execute(units, jobs)

    # Phase 3: deterministic assembly, in registry order.
    by_experiment: Dict[str, List[UnitOutcome]] = {}
    for outcome in unit_outcomes:
        by_experiment.setdefault(outcome.experiment_id, []).append(outcome)
    for experiment_id in to_compute:
        parts = by_experiment[experiment_id]
        stats = SimulationStats()
        for part in parts:
            stats.merge(part.stats)
        compute_time = sum(part.duration_s for part in parts)
        metrics_points = None
        if parts[0].point_index is None:
            result = parts[0].payload
        else:
            parts.sort(key=lambda p: p.point_index)
            result = SWEEPS[experiment_id].assemble([p.payload for p in parts])
            metrics_points = [part.metrics for part in parts]
        metrics = empty_metrics()
        for part in parts:  # after the point sort: deterministic merge order
            merge_metric_dicts(metrics, part.metrics)
        if cache is not None:
            cache.store(experiment_id, result, stats, compute_time, metrics)
        report.outcomes[experiment_id] = ExperimentOutcome(
            experiment_id,
            result,
            stats,
            compute_time,
            "miss" if cache else "off",
            metrics=metrics,
            metrics_points=metrics_points,
        )

    # Present outcomes in registry order regardless of compute order.
    report.outcomes = {
        eid: report.outcomes[eid] for eid in _registry_ordered(ids)
    }
    report.wall_time_s = time.perf_counter() - started
    return report
