"""Parallel, cached execution engine for the paper's experiments.

The runner turns the experiment registry into a restartable batch job:

* **fan-out** — ``run_suite(ids, jobs=N)`` spreads experiments (and, for
  the sweep-heavy figures, points *within* one experiment) across a
  process pool, then assembles results in registry order so output is
  byte-identical to a serial run;
* **result cache** — a content-addressed on-disk cache keyed by the
  experiment id and a digest of every source file under ``repro``, so an
  unchanged tree re-runs near-instantly and *any* source edit invalidates
  every entry;
* **run manifest** — a JSON record per invocation (wall time, simulation
  counters, cache hits, claims scoreboard) for CI artifacts and tooling.

Typical usage::

    from repro.runner import ResultCache, run_suite

    report = run_suite(["fig18", "fig19"], jobs=4, cache=ResultCache(".usfq-cache"))
    assert report.failures == 0
"""

from repro.runner.cache import DEFAULT_CACHE_DIR, CacheEntry, ResultCache, source_digest
from repro.runner.engine import ExperimentOutcome, RunReport, run_suite
from repro.runner.manifest import MANIFEST_SCHEMA, build_manifest, write_manifest
from repro.runner.serialize import result_from_dict, result_to_dict
from repro.runner.worker import UnitOutcome, WorkUnit, execute_unit

__all__ = [
    "DEFAULT_CACHE_DIR",
    "MANIFEST_SCHEMA",
    "CacheEntry",
    "ExperimentOutcome",
    "ResultCache",
    "RunReport",
    "UnitOutcome",
    "WorkUnit",
    "build_manifest",
    "execute_unit",
    "result_from_dict",
    "result_to_dict",
    "run_suite",
    "source_digest",
    "write_manifest",
]
