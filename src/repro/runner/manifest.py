"""The machine-readable run manifest.

One JSON document per CLI invocation, written alongside the text reports:
wall time, per-experiment simulation counters, cache hit/miss status, and
the claims scoreboard.  CI uploads it as a build artifact; tooling can
diff two manifests to spot regressions in cost or claims.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional

from repro.runner.engine import RunReport

#: Bump on any backwards-incompatible manifest layout change.
#: 2: added the top-level ``kernel`` field (simulator kernel of the run).
#: 3: per-experiment ``metrics`` (counters/gauges/histograms, including
#:    ``faults.*`` channel counters), ``metrics_points`` for sweeps the
#:    runner split across workers, and ``stats.max_queue_depth``.
#: 4: added the top-level ``batch`` field (whether sweep experiments ran
#:    through their Monte-Carlo-coalescing ``run_points_batch`` hook).
#: 5: ``jobs`` is now the *resolved* worker count (``--jobs auto`` pins
#:    to the host CPU count) and ``jobs_requested`` preserves the raw
#:    request, so manifests from different hosts stay explainable.
MANIFEST_SCHEMA = 5


def build_manifest(
    report: RunReport, requested: Optional[List[str]] = None
) -> dict:
    """Summarise one run as a JSON-ready dict (see docs/running.md)."""
    experiments = {}
    for experiment_id, outcome in report.outcomes.items():
        entry = {
            "wall_time_s": round(outcome.compute_time_s, 6),
            "cache": outcome.cache_status,
            "claims_held": outcome.result.claims_held,
            "claims_total": len(outcome.result.claims),
            "stats": {
                "events_processed": outcome.stats.events_processed,
                "pulses_emitted": outcome.stats.pulses_emitted,
                "max_queue_depth": outcome.stats.max_queue_depth,
            },
            "metrics": outcome.metrics,
        }
        if outcome.metrics_points is not None:
            entry["metrics_points"] = outcome.metrics_points
        experiments[experiment_id] = entry
    claims_total = sum(e["claims_total"] for e in experiments.values())
    claims_held = sum(e["claims_held"] for e in experiments.values())
    return {
        "schema": MANIFEST_SCHEMA,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "jobs": report.jobs,
        "jobs_requested": report.jobs_requested,
        "kernel": report.kernel,
        "batch": report.batch,
        "wall_time_s": round(report.wall_time_s, 6),
        "cache": {
            "dir": report.cache_dir,
            "source_digest": report.source_digest,
            "hits": report.cache_hits,
            "misses": report.cache_misses,
        },
        "requested": list(requested) if requested is not None else list(report.outcomes),
        "experiments": experiments,
        "totals": {
            "experiments": len(experiments),
            "claims_held": claims_held,
            "claims_total": claims_total,
            "failures": claims_total - claims_held,
        },
    }


def write_manifest(path: Path, manifest: dict) -> Path:
    """Write the manifest JSON (pretty-printed, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2) + "\n")
    return path
