"""Power models (Table 3, Fig 21, section 5.4.5).

RSFQ power splits into *active* switching power — per-JJ switching energy
(~I_c * Phi_0 ~ 2e-19 J) times the pulse rate times the number of junctions
a pulse traverses — and *passive* bias power from the resistive current
distribution network.  Active constants are calibrated against Table 3
(multiplier 9e-5 mW, balancer 17e-5 mW at activity 0.5) and the DPU row
composes from them; passive power is pinned per block where the paper
states it, with a per-JJ fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.models import technology as tech

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pulsesim.netlist import Circuit
    from repro.trace.session import TraceSession

#: Junction hops a pulse traverses through each block's datapath; together
#: with the cycle time these reproduce the Table 3 active-power rows.
MULTIPLIER_ACTIVE_HOPS = 8
BALANCER_ACTIVE_HOPS = 20

#: Paper-stated passive (bias) power per block, watts.
MULTIPLIER_PASSIVE_W = 0.05e-3
BALANCER_PASSIVE_W = 0.10e-3

#: Paper-stated unipolar PE power (section 5.4.5), watts.
PE_ACTIVE_W = 0.8e-6
PE_PASSIVE_W = 262e-6

#: CMOS reference the paper compares against ("three orders of magnitude
#: smaller than CMOS (~1 mW)").
CMOS_REFERENCE_ACTIVE_W = 1e-3


def _check_activity(activity: float) -> None:
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError(f"activity must be in [0, 1], got {activity}")


def active_power_w(hops: int, cycle_fs: int, activity: float) -> float:
    """Generic active power: E_sw * hops * (activity / cycle)."""
    _check_activity(activity)
    if hops < 1 or cycle_fs <= 0:
        raise ConfigurationError(
            f"need hops >= 1 and positive cycle, got {hops}, {cycle_fs}"
        )
    pulse_rate_hz = activity / (cycle_fs * 1e-15)
    return tech.E_SWITCH_J * hops * pulse_rate_hz


def multiplier_active_w(activity: float = 0.5) -> float:
    """Unary multiplier active power (Table 3: 9e-5 mW at activity 0.5)."""
    return active_power_w(MULTIPLIER_ACTIVE_HOPS, tech.T_INV_FS, activity)


def balancer_active_w(activity: float = 0.5) -> float:
    """Balancer active power (Table 3: 17e-5 mW at activity 0.5)."""
    return active_power_w(BALANCER_ACTIVE_HOPS, tech.T_BFF_FS, activity)


def dpu_active_w(
    length: int,
    activity: float = 0.5,
    *,
    multiplier_activity: float = None,
    balancer_activity: float = None,
) -> float:
    """DPU active power: L multipliers + (L - 1) counting-network balancers.

    ``multiplier_activity`` / ``balancer_activity`` override the shared
    ``activity`` per component — used to plug in *measured* switching
    activity from a traced run (:mod:`repro.trace.activity`).
    """
    if length < 2:
        raise ConfigurationError(f"length must be >= 2, got {length}")
    mult_act = activity if multiplier_activity is None else multiplier_activity
    bal_act = activity if balancer_activity is None else balancer_activity
    return length * multiplier_active_w(mult_act) + (length - 1) * balancer_active_w(
        bal_act
    )


def dpu_passive_w(length: int) -> float:
    """DPU passive power from the per-block Table 3 values."""
    if length < 2:
        raise ConfigurationError(f"length must be >= 2, got {length}")
    return length * MULTIPLIER_PASSIVE_W + (length - 1) * BALANCER_PASSIVE_W


def passive_power_w(jj_count: int) -> float:
    """Per-JJ fallback passive power for blocks the paper does not pin."""
    if jj_count < 0:
        raise ConfigurationError(f"jj_count must be >= 0, got {jj_count}")
    return jj_count * tech.P_PASSIVE_PER_JJ_W


def ersfq_power_w(active_w: float) -> float:
    """ERSFQ/eSFQ eliminate passive power (at ~1.4x area, section 5.4.5)."""
    return active_w


# -- event-counted switching energy (static envelope vs measured activity) -----
def switching_energy_j(events: int) -> float:
    """Total switching energy of ``events`` JJ switching events.

    The event convention — each pulse a cell emits switches that cell's
    ``jj_count`` junctions once — is shared by the static envelope
    (:func:`repro.analyze.checks.switching_event_envelope`) and the
    measured count below, so the two are directly comparable:
    ``lo <= switching_energy_j(measured) <= hi``.
    """
    if events < 0:
        raise ConfigurationError(f"events must be >= 0, got {events}")
    return events * tech.E_SWITCH_J


def measured_switching_events(session: "TraceSession",
                              circuit: "Circuit") -> int:
    """JJ switching events observed by a full-tap traced run.

    Sums ``jj_count x emitted pulses`` over every tapped output port;
    with a full-coverage tap set this is the measured counterpart of the
    analyzer's static ``[lo, hi]`` envelope.
    """
    jj_by_name = {element.name: element.jj_count
                  for element in circuit.elements}
    return sum(
        jj_by_name.get(tap.cell, 0) * tap.total for tap in session.ports
    )


# -- Fig 21: bipolar multiplier active power vs operands -------------------------
def bipolar_multiplier_activity(rl_bipolar: float, stream_bipolar: float) -> float:
    """Fraction of the epoch's slots that propagate a pulse to the output.

    ``rho = p_A * b + (1 - p_A) * (1 - b)`` in unipolar terms: the top NDRO
    passes A's pulses before the RL operand arrives, the bottom passes the
    complement after.  For a stream encoding 0 (half rate) rho is constant
    at 0.5 — the flat Fig 21 line.

    Note on sign convention: we use ``Id_b = 2 Id_u - 1`` (later pulse =
    larger value), so the +1-stream line *rises* with the RL operand and
    the -1-stream line falls — mirrored relative to Fig 21's labelling,
    which uses the opposite RL bipolar orientation (see EXPERIMENTS.md).
    """
    for value in (rl_bipolar, stream_bipolar):
        if not -1.0 <= value <= 1.0:
            raise ConfigurationError(f"bipolar values must be in [-1, 1], got {value}")
    b = (rl_bipolar + 1.0) / 2.0
    p_a = (stream_bipolar + 1.0) / 2.0
    return p_a * b + (1.0 - p_a) * (1.0 - b)


def bipolar_multiplier_active_w(rl_bipolar: float, stream_bipolar: float) -> float:
    """Active power interpolating the paper's 68-135 nW envelope."""
    rho = bipolar_multiplier_activity(rl_bipolar, stream_bipolar)
    span = tech.P_MULT_ACTIVE_MAX_W - tech.P_MULT_ACTIVE_MIN_W
    return tech.P_MULT_ACTIVE_MIN_W + span * rho


@dataclass(frozen=True)
class PowerReport:
    """Active/passive breakdown for one block (a Table 3 row)."""

    component: str
    active_w: float
    passive_w: float

    @property
    def total_w(self) -> float:
        return self.active_w + self.passive_w


def table3_rows(
    length: int = 32,
    activity: float = 0.5,
    *,
    multiplier_activity: float = None,
    balancer_activity: float = None,
):
    """The three Table 3 rows for a DPU of the given length.

    Per-component activity overrides behave as in :func:`dpu_active_w`.
    """
    mult_act = activity if multiplier_activity is None else multiplier_activity
    bal_act = activity if balancer_activity is None else balancer_activity
    return (
        PowerReport("multiplier", multiplier_active_w(mult_act), MULTIPLIER_PASSIVE_W),
        PowerReport("balancer", balancer_active_w(bal_act), BALANCER_PASSIVE_W),
        PowerReport(
            f"dpu-{length} w/o cooling",
            dpu_active_w(
                length,
                activity,
                multiplier_activity=multiplier_activity,
                balancer_activity=balancer_activity,
            ),
            dpu_passive_w(length),
        ),
    )
