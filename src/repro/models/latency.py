"""Latency and throughput models (Figs 4, 8, 14, 18a/b, 20a).

Unary latencies follow the paper's stated cycle limits: the multiplier
streams one pulse per t_INV = 9 ps, the balancer adder one per t_BFF =
12 ps, and the PNM-fed FIR one per t_TFF2 = 20 ps per chain stage — so a
B-bit computation takes ``2**B`` cycles of the binding element.  Binary
latencies come from the Table 2 fits (wave-pipelined) or the 48 GHz
bit-parallel pipeline period.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models import baselines
from repro.models import technology as tech
from repro.units import to_seconds


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 24:
        raise ConfigurationError(f"bits must be in [1, 24], got {bits}")


# -- building blocks -------------------------------------------------------------
def multiplier_unary_latency_fs(bits: int) -> int:
    """2**bits pulses at the inverter-limited 9 ps spacing (~111 GHz)."""
    _check_bits(bits)
    return (1 << bits) * tech.T_INV_FS


def multiplier_binary_latency_fs(bits: int) -> int:
    _check_bits(bits)
    return round(baselines.multiplier_binary_latency_ps(bits) * 1_000)


def adder_unary_balancer_latency_fs(bits: int) -> int:
    """2**bits pulses at the t_BFF = 12 ps spacing."""
    _check_bits(bits)
    return (1 << bits) * tech.T_BFF_FS


def adder_unary_merger_latency_fs(bits: int, m_inputs: int = 2) -> int:
    """Merger addition: slot width grows with the input count (Fig 5c)."""
    _check_bits(bits)
    if m_inputs < 2:
        raise ConfigurationError(f"m_inputs must be >= 2, got {m_inputs}")
    return (1 << bits) * m_inputs * tech.T_MERGER_DEAD_FS


def adder_binary_latency_fs(bits: int) -> int:
    _check_bits(bits)
    return round(baselines.adder_binary_latency_ps(bits) * 1_000)


# -- processing element (Fig 14a) -------------------------------------------------
def pe_unary_latency_fs(bits: int) -> int:
    """The PE cycles at the slowest stage, the t_BFF-limited balancer."""
    return adder_unary_balancer_latency_fs(bits)


def pe_binary_latency_fs(bits: int) -> int:
    """Binary MAC latency: fitted multiplier + adder."""
    return multiplier_binary_latency_fs(bits) + adder_binary_latency_fs(bits)


def pe_binary_bp_period_fs() -> int:
    """The 48 GHz bit-parallel pipeline issues one MAC per cycle."""
    return baselines.BP_PIPELINE_PERIOD_FS


def pes_for_equal_throughput(bits: int) -> int:
    """Unary PEs needed to match one wave-pipelined binary MAC (Fig 14b)."""
    unary = pe_unary_latency_fs(bits)
    binary = pe_binary_latency_fs(bits)
    return max(1, -(-unary // binary))  # ceil


def pes_for_bp_throughput(bits: int) -> int:
    """Unary PEs needed to match the 48 GHz bit-parallel pipeline."""
    unary = pe_unary_latency_fs(bits)
    return max(1, -(-unary // pe_binary_bp_period_fs()))


# -- FIR accelerator (Figs 18a/b, 20a) ----------------------------------------------
def fir_unary_latency_fs(bits: int) -> int:
    """PNM-bound epoch: T_CLK = bits * t_TFF2, total = 2**bits * T_CLK.

    Independent of the tap count — the defining property of Fig 18a.
    """
    _check_bits(bits)
    return (1 << bits) * bits * tech.T_TFF2_FS


def fir_binary_latency_fs(taps: int, bits: int) -> int:
    """Single-MAC binary FIR: taps sequential fitted MACs."""
    if taps < 1:
        raise ConfigurationError(f"taps must be >= 1, got {taps}")
    return taps * pe_binary_latency_fs(bits)


def fir_binary_bp_latency_fs(taps: int) -> int:
    """Bit-parallel binary FIR: taps pipeline cycles at 48 GHz."""
    if taps < 1:
        raise ConfigurationError(f"taps must be >= 1, got {taps}")
    return taps * pe_binary_bp_period_fs()


def throughput_gops(latency_fs: int) -> float:
    """Complete-computations per second in GOPs (the Fig 18b unit)."""
    if latency_fs <= 0:
        raise ConfigurationError(f"latency must be positive, got {latency_fs}")
    return 1.0 / to_seconds(latency_fs) / 1e9
