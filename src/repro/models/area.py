"""Area models (JJ counts) for every U-SFQ block and accelerator.

Unary block budgets come from the structural netlists / calibrated anchors
(DESIGN.md section 5); binary baselines come from the Table 2 fits.  These
functions regenerate the area panels of Figs 4, 8, 12, 14, 16, 18 and 20.
"""

from __future__ import annotations

from repro.core.balancer import BALANCER_JJ
from repro.core.buffer import MEMORY_CELL_JJ, RL_BUFFER_JJ
from repro.core.counting import counting_network_jj
from repro.core.membank import membank_jj
from repro.core.multiplier import (
    MULTIPLIER_BIPOLAR_JJ,
    MULTIPLIER_UNIPOLAR_JJ,
)
from repro.core.pe import PE_JJ
from repro.core.pnm import pnm_jj
from repro.errors import ConfigurationError
from repro.models import baselines
from repro.models import technology as tech

#: B2RC converter overhead factor (paper section 4.4.1: "up to 3.2x more
#: area than its binary counterpart due to the expensive converters").
B2RC_FACTOR = 3.2


# -- building blocks (Figs 4 and 8) --------------------------------------------
def multiplier_unary_jj(bipolar: bool = True) -> int:
    """Constant unary multiplier area (46 JJs bipolar, 16 unipolar)."""
    return MULTIPLIER_BIPOLAR_JJ if bipolar else MULTIPLIER_UNIPOLAR_JJ


def multiplier_binary_jj(bits: float) -> float:
    return baselines.multiplier_binary_jj(bits)


def adder_unary_balancer_jj() -> int:
    """Constant balancer-adder area."""
    return BALANCER_JJ


def adder_unary_merger_jj() -> int:
    """Constant 2:1 merger-adder area."""
    return tech.JJ_MERGER


def adder_binary_jj(bits: float) -> float:
    return baselines.adder_binary_jj(bits)


# -- shift registers (Fig 12) ---------------------------------------------------
def shift_register_binary_jj(bits: int) -> int:
    """One binary shift-register word: a DFF per bit."""
    _check_bits(bits)
    return bits * tech.JJ_DFF


def shift_register_b2rc_jj(bits: int) -> int:
    """Binary word + binary-to-RL converter: 3.2x the binary cost."""
    return round(B2RC_FACTOR * shift_register_binary_jj(bits))


def shift_register_dff_rl_jj(bits: int) -> int:
    """DFF-chain RL delay: one DFF per time slot -> exponential in bits."""
    _check_bits(bits)
    return (1 << bits) * tech.JJ_DFF


def shift_register_buffer_jj(bits: int) -> int:
    """Integrator-buffer delay stage: constant JJs (inductance scales
    instead, which is negligible in JJ count)."""
    _check_bits(bits)
    return RL_BUFFER_JJ


# -- processing element (Fig 14) ------------------------------------------------
def pe_unary_jj() -> int:
    """The 126-JJ unary PE (bit-independent)."""
    return PE_JJ


def pe_binary_jj(bits: float) -> float:
    """Binary PE: fitted multiplier + adder at the given resolution."""
    return multiplier_binary_jj(bits) + adder_binary_jj(bits)


def pe_binary_bp_jj(bits: float = 8) -> float:
    """Bit-parallel PE reference: the 17 kJJ multiplier [37] + adder fit."""
    return baselines.NAGAOKA_BP_MULTIPLIER.jj_count + adder_binary_jj(bits)


def pe_array_unary_jj(n_pes: int) -> int:
    if n_pes < 1:
        raise ConfigurationError(f"need >= 1 PE, got {n_pes}")
    return n_pes * PE_JJ


# -- dot-product unit (Fig 16) ---------------------------------------------------
def dpu_unary_jj(length: int, bipolar: bool = True) -> int:
    """Unary DPU datapath: L multipliers + (L-1)-balancer counting network.

    Bit-independent, linear in L — the Fig 16 flat lines.
    """
    _check_pow2(length)
    return length * multiplier_unary_jj(bipolar) + counting_network_jj(length)


def dpu_binary_jj(bits: float) -> float:
    """Binary DPU: a single multiply-accumulate unit (the practical limit
    the paper cites [21]); vector storage is accounted separately when
    comparing full accelerators."""
    return multiplier_binary_jj(bits) + adder_binary_jj(bits)


# -- FIR accelerator (Figs 18c and 20b) -------------------------------------------
def fir_unary_jj(taps: int, bits: int, rl_output: bool = False) -> int:
    """Unary FIR: DPU datapath + coefficient bank + PNM + RL delay line.

    ``rl_output`` adds the optional stream-to-RL integrator at the filter
    boundary (the paper's "area increases by 50-200 JJs").
    """
    _check_bits(bits)
    if taps < 1:
        raise ConfigurationError(f"taps must be >= 1, got {taps}")
    length = _next_pow2(max(2, taps))
    datapath = length * MULTIPLIER_BIPOLAR_JJ + counting_network_jj(length)
    memory = membank_jj(taps, bits) + pnm_jj(bits)
    delay_line = (taps - 1) * MEMORY_CELL_JJ
    total = datapath + memory + delay_line
    if rl_output:
        total += RL_BUFFER_JJ
    return total


def fir_binary_jj(taps: int, bits: int) -> float:
    """Binary FIR: one fitted MAC + DFF input delay line + NDRO coefficients."""
    _check_bits(bits)
    if taps < 1:
        raise ConfigurationError(f"taps must be >= 1, got {taps}")
    mac = multiplier_binary_jj(bits) + adder_binary_jj(bits)
    delay_line = taps * bits * tech.JJ_DFF
    coefficients = taps * bits * tech.JJ_NDRO
    return mac + delay_line + coefficients


# -- ERSFQ / eSFQ variant (section 5.4.5) -----------------------------------------
def ersfq_jj(rsfq_jj: float) -> float:
    """ERSFQ replaces bias resistors with JJ limiters: ~1.4x the area, in
    exchange for eliminating the passive bias power entirely."""
    if rsfq_jj < 0:
        raise ConfigurationError(f"jj count must be >= 0, got {rsfq_jj}")
    return rsfq_jj * tech.ERSFQ_AREA_FACTOR


def _next_pow2(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 24:
        raise ConfigurationError(f"bits must be in [1, 24], got {bits}")


def _check_pow2(value: int) -> None:
    if value < 2 or value & (value - 1):
        raise ConfigurationError(f"need a power of two >= 2, got {value}")
