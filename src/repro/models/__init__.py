"""Analytical models: technology constants, baselines, area/latency/power.

These models regenerate the paper's evaluation figures.  Structural circuit
simulations (``repro.pulsesim`` + ``repro.cells``) validate the building
blocks' behaviour; the models in this package extrapolate cost metrics
(JJ counts, latency, throughput, power, efficiency) across the parameter
sweeps the paper reports (bits, taps, vector lengths).

Submodules are imported directly (``from repro.models import area``) to
keep import costs low and avoid cycles with the structural packages.
"""
