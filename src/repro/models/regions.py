"""Design-space savings regions (Fig 20) and application anchors.

For each (taps, bits) point we compute the percentage the unary FIR saves
over the wave-pipelined binary FIR in latency, area, and efficiency; where
the binary design wins the cell is negative (the paper renders it white).
The module also pins the application regions the paper overlays — infrared
sensors (~30 taps, 6-8 bits [3, 24, 42, 47]) and software-defined radio
(200-900 taps, 7-14 bits [53, 56]) — plus the two commercial SDR reference
cards (RTL-2832U and an RSP-class receiver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.models import area, efficiency, latency

DEFAULT_TAPS: Tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512, 1024)
DEFAULT_BITS: Tuple[int, ...] = tuple(range(4, 17))


@dataclass(frozen=True)
class ApplicationRegion:
    """A rectangle in (taps, bits) design space."""

    name: str
    taps_min: int
    taps_max: int
    bits_min: int
    bits_max: int

    def contains(self, taps: int, bits: int) -> bool:
        return (
            self.taps_min <= taps <= self.taps_max
            and self.bits_min <= bits <= self.bits_max
        )


#: Operating regions the paper marks on Fig 20.
IR_SENSORS = ApplicationRegion("IR sensors", 16, 32, 6, 8)
SDR = ApplicationRegion("SDR", 200, 900, 7, 14)

#: Commercial SDR reference points (taps, bits) placed inside the SDR box.
RTL2832U_POINT = (256, 8)
RSP_POINT = (512, 12)


def _savings_percent(unary: float, binary: float) -> float:
    """Positive = unary saves; negative = binary wins (white region)."""
    if binary <= 0:
        raise ConfigurationError(f"binary metric must be positive, got {binary}")
    return (1.0 - unary / binary) * 100.0


def latency_savings(taps: int, bits: int) -> float:
    """Fig 20a cell: % latency the unary FIR saves over WP binary."""
    return _savings_percent(
        latency.fir_unary_latency_fs(bits),
        latency.fir_binary_latency_fs(taps, bits),
    )


def area_savings(taps: int, bits: int) -> float:
    """Fig 20b cell: % JJs saved."""
    return _savings_percent(
        area.fir_unary_jj(taps, bits), area.fir_binary_jj(taps, bits)
    )


def efficiency_gain(taps: int, bits: int) -> float:
    """Fig 20c cell: % efficiency (kOPs/JJ) gained by the unary FIR."""
    unary = efficiency.fir_unary_efficiency(taps, bits)
    binary = efficiency.fir_binary_efficiency(taps, bits)
    return (unary / binary - 1.0) * 100.0


def savings_grid(
    metric: str,
    taps_values: Sequence[int] = DEFAULT_TAPS,
    bits_values: Sequence[int] = DEFAULT_BITS,
) -> np.ndarray:
    """A (bits x taps) grid of savings percentages for one Fig 20 panel."""
    functions = {
        "latency": latency_savings,
        "area": area_savings,
        "efficiency": efficiency_gain,
    }
    try:
        fn = functions[metric]
    except KeyError:
        raise ConfigurationError(
            f"metric must be one of {sorted(functions)}, got {metric!r}"
        ) from None
    grid = np.zeros((len(bits_values), len(taps_values)))
    for i, bits in enumerate(bits_values):
        for j, taps in enumerate(taps_values):
            grid[i, j] = fn(taps, bits)
    return grid


def region_summary(region: ApplicationRegion) -> dict:
    """Min/max unary savings across a region (the paper's headline ranges)."""
    taps_values = [t for t in DEFAULT_TAPS if region.taps_min <= t <= region.taps_max]
    bits_values = [b for b in DEFAULT_BITS if region.bits_min <= b <= region.bits_max]
    if not taps_values or not bits_values:
        raise ConfigurationError(f"region {region.name!r} misses the default grid")
    cells = [
        (latency_savings(t, b), area_savings(t, b), efficiency_gain(t, b))
        for t in taps_values
        for b in bits_values
    ]
    lat, ar, eff = zip(*cells)
    return {
        "region": region.name,
        "latency_savings_pct": (min(lat), max(lat)),
        "area_savings_pct": (min(ar), max(ar)),
        "efficiency_gain_pct": (min(eff), max(eff)),
    }


def reference_point_summary(point: Tuple[int, int], label: str) -> dict:
    """Unary-vs-binary comparison at one commercial reference card."""
    taps, bits = point
    return {
        "label": label,
        "taps": taps,
        "bits": bits,
        "latency_savings_pct": latency_savings(taps, bits),
        "area_savings_pct": area_savings(taps, bits),
        "efficiency_gain_pct": efficiency_gain(taps, bits),
    }


def render_grid_ascii(
    grid: np.ndarray,
    taps_values: Sequence[int] = DEFAULT_TAPS,
    bits_values: Sequence[int] = DEFAULT_BITS,
) -> List[str]:
    """Terminal rendering: one row per bit width, '....' where binary wins."""
    lines = ["bits\\taps " + " ".join(f"{t:>6d}" for t in taps_values)]
    for i, bits in enumerate(bits_values):
        cells = []
        for j in range(len(taps_values)):
            value = grid[i, j]
            cells.append(f"{value:6.0f}" if value > 0 else "  ....")
        lines.append(f"{bits:>9d} " + " ".join(cells))
    return lines
