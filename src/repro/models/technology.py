"""Technology constants for the MIT-LL SFQ5ee-class RSFQ process.

All timing anchors come straight from the paper:

* ``T_INV`` = 9 ps — propagation + setup + hold of the clocked inverter,
  which bounds the U-SFQ multiplier's pulse spacing (section 4.1, "the
  simulated delay for our proposed multiplier is t_INV = 9 ps ... maximum
  frequency of ~111 GHz").
* ``T_BFF`` = 12 ps — the B-flip-flop transition time that bounds the
  balancer/counting-network adder's pulse spacing (section 4.2).
* ``T_TFF2`` = 20 ps — the TFF2 delay that bounds the pulse-number
  multiplier and therefore the U-SFQ FIR's epoch clock (section 5.4.2).

Per-cell JJ counts follow the RSFQ cell libraries the paper cites ([11],
[58]) and the counts the paper states explicitly (merger = 5 JJs in
Fig 5a, first-arrival = 8 JJs from [51]).  Derived block budgets are pinned
to the paper's anchors — see DESIGN.md section 5 (Calibration notes).

Power constants reproduce Table 3: switching energy per JJ event is the
physical ``I_c * Phi_0`` scale (~2e-19 J for a 100 uA junction), and the
passive bias power is calibrated per block against the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import ps

# -- timing anchors (paper-stated) -------------------------------------------
T_INV_FS = ps(9)  #: clocked inverter total delay; multiplier cycle time
T_BFF_FS = ps(12)  #: B-flip-flop transition; balancer/adder cycle time
T_TFF2_FS = ps(20)  #: TFF2 delay; PNM / FIR epoch clock cycle time

# -- propagation delays for the behavioural cells (typical RSFQ values) ------
T_JTL_FS = ps(2)
T_SPLITTER_FS = ps(3)
T_MERGER_FS = ps(5)
T_DFF_FS = ps(5)
T_DFF2_FS = ps(5)
T_NDRO_FS = ps(5)
T_TFF_FS = ps(5)
T_FA_FS = ps(4)
T_MUX_FS = ps(6)
T_BALANCER_OUT_FS = ps(5)  #: balancer input-to-output propagation

#: Merger dead time: two input pulses closer than this collide and only one
#: propagates (Fig 5b).  Set to the merger's intrinsic delay per section 4.2
#: ("the distance between input pulses is dictated by the intrinsic delay of
#: the merger cell").
T_MERGER_DEAD_FS = T_MERGER_FS

# -- cell JJ counts (Table 1 gates; [11], [58], and paper-stated values) -----
JJ_JTL = 2
JJ_SPLITTER = 3
JJ_MERGER = 5  # paper, Fig 5a
JJ_DFF = 6
JJ_DFF2 = 9
JJ_NDRO = 11
JJ_TFF = 8
JJ_TFF2 = 10
JJ_INVERTER = 10
JJ_FA = 8  # paper section 2.2.1, from [51]
JJ_BFF = 12  # Polonsky et al. [43]
JJ_MUX = 14  # Zheng et al. [57]
JJ_DEMUX = 12  # Zheng et al. [57]

# -- temporal NoC link model (PaST-NoC-style inter-fabric transport) ---------
#: Flit serialization time onto the link: one temporal packet slot.
T_NOC_SERIALIZATION_FS = ps(10)
#: Per-hop router traversal + PTL flight time between fabric tiles.
T_NOC_HOP_FS = ps(15)
#: Bounded link FIFO depth (flits buffered at the ejection port).
NOC_FIFO_DEPTH = 8
#: JJ budget per router hop (arbiter + switch stage estimate).
JJ_NOC_PER_HOP = 50
#: JJ budget per FIFO flit slot (DFF-chain buffer estimate).
JJ_NOC_PER_FLIT = 12

# -- power calibration (Table 3 and Fig 21) ----------------------------------
#: Energy dissipated per JJ switching event: ~ I_c * Phi_0 with I_c ~ 100 uA.
E_SWITCH_J = 2.0e-19

#: Passive bias power per JJ for plain (resistor-biased) RSFQ.  Calibrated so
#: a 46-JJ multiplier draws the 0.05 mW Table 3 reports.
P_PASSIVE_PER_JJ_W = 0.05e-3 / 46

#: ERSFQ/eSFQ remove passive power at ~1.4x area (section 5.5 of the paper).
ERSFQ_AREA_FACTOR = 1.4

#: Fig 21 anchors for the bipolar multiplier's active power envelope.
P_MULT_ACTIVE_MIN_W = 68e-9
P_MULT_ACTIVE_MAX_W = 135e-9


@dataclass(frozen=True)
class Process:
    """A named fabrication process (for provenance in reports)."""

    name: str
    critical_current_density_ka_cm2: float
    max_practical_jjs: int

    def describe(self) -> str:
        return (
            f"{self.name} ({self.critical_current_density_ka_cm2:g} kA/cm^2, "
            f"~{self.max_practical_jjs:,} JJs practical per die)"
        )


#: The process the paper simulates with WRspice.
MITLL_SFQ5EE = Process(
    name="MIT-LL SFQ5ee",
    critical_current_density_ka_cm2=10.0,
    max_practical_jjs=20_000,
)

#: Other processes appearing in Table 2, for design-budget comparisons.
AIST_STP2 = Process(
    name="AIST-STP2",
    critical_current_density_ka_cm2=2.5,
    max_practical_jjs=10_000,
)
ISTEC_10KA = Process(
    name="ISTEC 1.0um 10 kA/cm2",
    critical_current_density_ka_cm2=10.0,
    max_practical_jjs=20_000,
)

PROCESSES = (MITLL_SFQ5EE, AIST_STP2, ISTEC_10KA)
