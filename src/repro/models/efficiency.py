"""Efficiency models: throughput per JJ (Fig 18d, Fig 20c).

The paper's figure of merit for area-constrained superconducting design is
complete computations per second per junction, reported in kOPs/JJ.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models import area, latency


def kops_per_jj(latency_fs: int, jj_count: float) -> float:
    """Throughput (complete ops/s) per JJ, in kOPs/JJ."""
    if jj_count <= 0:
        raise ConfigurationError(f"jj_count must be positive, got {jj_count}")
    ops_per_second = 1.0 / (latency_fs * 1e-15)
    return ops_per_second / jj_count / 1e3


def fir_unary_efficiency(taps: int, bits: int) -> float:
    """Unary FIR kOPs/JJ."""
    return kops_per_jj(
        latency.fir_unary_latency_fs(bits), area.fir_unary_jj(taps, bits)
    )


def fir_binary_efficiency(taps: int, bits: int) -> float:
    """Wave-pipelined binary FIR kOPs/JJ."""
    return kops_per_jj(
        latency.fir_binary_latency_fs(taps, bits), area.fir_binary_jj(taps, bits)
    )


def pe_unary_efficiency(bits: int) -> float:
    """Unary PE kOPs/JJ (one MAC per epoch over 126 JJs)."""
    return kops_per_jj(latency.pe_unary_latency_fs(bits), area.pe_unary_jj())


def pe_binary_efficiency(bits: int) -> float:
    """Wave-pipelined binary PE kOPs/JJ."""
    return kops_per_jj(latency.pe_binary_latency_fs(bits), area.pe_binary_jj(bits))


def dpu_unary_efficiency(length: int, bits: int) -> float:
    """Unary DPU kOPs/JJ: one L-element dot product per balancer epoch."""
    return kops_per_jj(
        latency.adder_unary_balancer_latency_fs(bits), area.dpu_unary_jj(length)
    )


def dpu_binary_efficiency(length: int, bits: int) -> float:
    """Binary single-MAC DPU kOPs/JJ: L sequential MACs per dot product."""
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length}")
    return kops_per_jj(
        length * latency.pe_binary_latency_fs(bits), area.dpu_binary_jj(bits)
    )
