"""Binary SFQ baselines: the paper's Table 2 and the fits derived from it.

The paper compares every U-SFQ block against published RSFQ adders and
multipliers; the dashed baseline lines in Figs 4, 8, 14, 16 and 18 are
linear fits of this table.  We keep the dataset verbatim and expose
least-squares fits, with architecture-class filtering (the area fit for
multipliers excludes the bit-parallel outlier [37], which the paper treats
as a separate marker rather than part of the trend line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.units import ps

# Architecture classes (Table 2 abbreviations).
BIT_PARALLEL = "BP"
WAVE_PIPELINED = "WP"
SYSTOLIC_ARRAY = "SA"


@dataclass(frozen=True)
class BaselineEntry:
    """One published design from Table 2."""

    ref: str
    kind: str  # "adder" | "multiplier"
    bits: int
    jj_count: int
    latency_ps: float
    arch: str
    technology: str

    @property
    def latency_fs(self) -> int:
        return ps(self.latency_ps)


TABLE2: Tuple[BaselineEntry, ...] = (
    # Adders.
    BaselineEntry("kim2005", "adder", 4, 931, 50, BIT_PARALLEL,
                  "KOPTI 1.0 kA/cm2 Nb"),
    BaselineEntry("ozer2014", "adder", 8, 6581, 588, WAVE_PIPELINED,
                  "AIST-STP2"),
    BaselineEntry("dorojevets2009-8", "adder", 8, 4351, 222, WAVE_PIPELINED,
                  "Northrop Grumman (projected)"),
    BaselineEntry("dorojevets2009-16", "adder", 16, 16683, 255, WAVE_PIPELINED,
                  "Northrop Grumman"),
    BaselineEntry("dorojevets2012-sparse", "adder", 16, 9941, 352,
                  WAVE_PIPELINED, "ISTEC 1.0um 10 kA/cm2"),
    # Multipliers.
    BaselineEntry("obata2006-4", "multiplier", 4, 2308, 1250, SYSTOLIC_ARRAY,
                  "NEC 2.5 kA/cm2"),
    BaselineEntry("obata2006-8", "multiplier", 8, 4616, 2540, SYSTOLIC_ARRAY,
                  "projected from obata2006"),
    BaselineEntry("nagaoka2019", "multiplier", 8, 17000, 333, BIT_PARALLEL,
                  "1um Nb/AlOx/Nb"),
    BaselineEntry("dorojevets2012-csave", "multiplier", 8, 5948, 447,
                  WAVE_PIPELINED, "ISTEC 1.0um 10 kA/cm2"),
    BaselineEntry("obata2006-16", "multiplier", 16, 9232, 5120,
                  SYSTOLIC_ARRAY, "projected from obata2006"),
)


def entries(
    kind: str, archs: Optional[Sequence[str]] = None
) -> List[BaselineEntry]:
    """Table 2 rows of one kind, optionally restricted to architecture classes."""
    if kind not in ("adder", "multiplier"):
        raise ConfigurationError(f"kind must be 'adder' or 'multiplier', got {kind}")
    rows = [e for e in TABLE2 if e.kind == kind]
    if archs is not None:
        rows = [e for e in rows if e.arch in archs]
    if not rows:
        raise ConfigurationError(f"no Table 2 entries for {kind} with archs={archs}")
    return rows


@dataclass(frozen=True)
class LinearFit:
    """A least-squares line ``y = slope * bits + intercept`` with a floor."""

    slope: float
    intercept: float
    floor: float

    def __call__(self, bits: float) -> float:
        return max(self.floor, self.slope * bits + self.intercept)


def fit(points: Iterable[Tuple[float, float]], floor: float) -> LinearFit:
    """Ordinary least squares through ``(bits, value)`` points."""
    pts = list(points)
    if len(pts) < 2:
        raise ConfigurationError("need at least two points to fit a line")
    n = len(pts)
    mean_x = sum(x for x, _ in pts) / n
    mean_y = sum(y for _, y in pts) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in pts)
    if sxx == 0:
        raise ConfigurationError("all points share the same bit width; cannot fit")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in pts)
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    return LinearFit(slope, intercept, floor)


def _area_fit(kind: str, archs: Optional[Sequence[str]]) -> LinearFit:
    rows = entries(kind, archs)
    return fit(((e.bits, e.jj_count) for e in rows), floor=100.0)


def _latency_fit(kind: str, archs: Optional[Sequence[str]]) -> LinearFit:
    rows = entries(kind, archs)
    return fit(((e.bits, e.latency_ps) for e in rows), floor=20.0)


# Fits used by the figure models.  The multiplier *area* trend excludes the
# bit-parallel design (a 17 kJJ outlier the paper plots as its own marker);
# latency trends use the full table, mirroring the paper's dashed lines.
MULTIPLIER_AREA_FIT = _area_fit("multiplier", (WAVE_PIPELINED, SYSTOLIC_ARRAY))
MULTIPLIER_LATENCY_FIT = _latency_fit("multiplier", None)
ADDER_AREA_FIT = _area_fit("adder", None)
ADDER_LATENCY_FIT = _latency_fit("adder", None)


def multiplier_binary_jj(bits: float) -> float:
    """Fitted binary multiplier area (JJs) at a bit width."""
    return MULTIPLIER_AREA_FIT(bits)


def multiplier_binary_latency_ps(bits: float) -> float:
    """Fitted binary multiplier latency (ps) at a bit width."""
    return MULTIPLIER_LATENCY_FIT(bits)


def adder_binary_jj(bits: float) -> float:
    """Fitted binary adder area (JJs) at a bit width."""
    return ADDER_AREA_FIT(bits)


def adder_binary_latency_ps(bits: float) -> float:
    """Fitted binary adder latency (ps) at a bit width."""
    return ADDER_LATENCY_FIT(bits)


#: The bit-parallel reference points the paper calls out separately.
NAGAOKA_BP_MULTIPLIER = next(e for e in TABLE2 if e.ref == "nagaoka2019")
#: The BP multiplier is gate-level pipelined at 48 GHz: one result per cycle.
BP_PIPELINE_PERIOD_FS = ps(1e3 / 48.0)
