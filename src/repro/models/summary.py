"""Whole-accelerator design reports: block-by-block cost breakdowns.

Given an accelerator configuration (FIR taps/bits, DPU length, PE-array
geometry), produce an itemised JJ / latency / power budget — the view a
designer needs before committing a die's junction budget, and the summary
the ``design_space_explorer`` example prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.balancer import BALANCER_JJ
from repro.core.buffer import MEMORY_CELL_JJ
from repro.core.membank import membank_jj
from repro.core.multiplier import MULTIPLIER_BIPOLAR_JJ
from repro.core.pe import PE_JJ
from repro.core.pnm import pnm_jj
from repro.errors import ConfigurationError
from repro.models import area, latency, power, technology as tech
from repro.units import to_ns, to_uw


@dataclass
class BudgetLine:
    """One block class in a design budget."""

    block: str
    count: int
    jj_each: float

    @property
    def jj_total(self) -> float:
        return self.count * self.jj_each


@dataclass
class DesignReport:
    """An itemised accelerator budget."""

    name: str
    lines: List[BudgetLine] = field(default_factory=list)
    latency_fs: int = 0
    active_power_w: float = 0.0
    passive_power_w: float = 0.0

    @property
    def jj_total(self) -> float:
        return sum(line.jj_total for line in self.lines)

    def fits(self, process: tech.Process = tech.MITLL_SFQ5EE) -> bool:
        """Does the design fit a process's practical junction budget?"""
        return self.jj_total <= process.max_practical_jjs

    def render(self) -> str:
        lines = [f"== {self.name} =="]
        for line in self.lines:
            lines.append(
                f"  {line.block:<28} x{line.count:<5} "
                f"{line.jj_each:>8,.0f} JJ  -> {line.jj_total:>10,.0f} JJ"
            )
        lines.append(f"  {'total':<28} {'':>6} {'':>8}     {self.jj_total:>10,.0f} JJ")
        lines.append(f"  latency: {to_ns(self.latency_fs):,.2f} ns")
        lines.append(
            f"  power: {to_uw(self.active_power_w):,.2f} uW active + "
            f"{to_uw(self.passive_power_w):,.2f} uW passive (RSFQ bias)"
        )
        return "\n".join(lines)


def _next_pow2(value: int) -> int:
    p = 1
    while p < value:
        p *= 2
    return p


def fir_report(taps: int, bits: int, activity: float = 0.5) -> DesignReport:
    """Budget for a U-SFQ FIR accelerator."""
    if taps < 1:
        raise ConfigurationError(f"taps must be >= 1, got {taps}")
    length = _next_pow2(max(2, taps))
    report = DesignReport(f"U-SFQ FIR: {taps} taps, {bits} bits")
    report.lines = [
        BudgetLine("bipolar multiplier", length, MULTIPLIER_BIPOLAR_JJ),
        BudgetLine("counting-network balancer", length - 1, BALANCER_JJ),
        BudgetLine("RL memory cell (delay line)", taps - 1, MEMORY_CELL_JJ),
        BudgetLine("coefficient bank (NDRO)", 1, membank_jj(taps, bits)),
        BudgetLine("pulse-number multiplier", 1, pnm_jj(bits)),
    ]
    report.latency_fs = latency.fir_unary_latency_fs(bits)
    report.active_power_w = length * power.multiplier_active_w(activity) + (
        length - 1
    ) * power.balancer_active_w(activity)
    report.passive_power_w = length * power.MULTIPLIER_PASSIVE_W + (
        length - 1
    ) * power.BALANCER_PASSIVE_W
    assert abs(report.jj_total - area.fir_unary_jj(taps, bits)) < 1
    return report


def dpu_report(length: int, bits: int, activity: float = 0.5) -> DesignReport:
    """Budget for a U-SFQ dot-product unit (bipolar lanes)."""
    report = DesignReport(f"U-SFQ DPU: {length} lanes, {bits} bits")
    report.lines = [
        BudgetLine("bipolar multiplier", length, MULTIPLIER_BIPOLAR_JJ),
        BudgetLine("counting-network balancer", length - 1, BALANCER_JJ),
    ]
    report.latency_fs = latency.adder_unary_balancer_latency_fs(bits)
    report.active_power_w = power.dpu_active_w(length, activity)
    report.passive_power_w = power.dpu_passive_w(length)
    assert report.jj_total == area.dpu_unary_jj(length)
    return report


def pe_array_report(rows: int, cols: int, bits: int) -> DesignReport:
    """Budget for a PE array (CGRA / spatial architecture)."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(f"array must be >= 1x1, got {rows}x{cols}")
    n_pes = rows * cols
    report = DesignReport(f"U-SFQ PE array: {rows}x{cols}, {bits} bits")
    report.lines = [BudgetLine("processing element", n_pes, PE_JJ)]
    report.latency_fs = latency.pe_unary_latency_fs(bits)
    report.active_power_w = n_pes * power.PE_ACTIVE_W
    report.passive_power_w = n_pes * power.PE_PASSIVE_W
    return report
