"""The B flip-flop (Polonsky, Semenov, Kirichenko 1994 — paper ref [43]).

A single quantizing loop with two stationary states, four write ports and
complementary transition outputs.  Writes that change the state produce a
pulse on the corresponding direct output (``q1``/``q2``); writes that find
the loop already in the target state produce a pulse on the complementary
output (``nq1``/``nq2``) for reset ports, mirroring the kickback behaviour
the balancer routing unit exploits (Fig 6e/6f).

Semantics used here:

* ``s1``/``s2`` (set): if state is 0 -> state becomes 1 and ``q1``/``q2``
  pulses; if state is already 1 the write is absorbed silently.
* ``r1``/``r2`` (reset): if state is 1 -> state becomes 0 and ``nq1``/
  ``nq2`` pulses; if already 0 the write is absorbed.

Wiring input A to (``s1``, ``r2``) and B to (``s2``, ``r1``) and merging
``q1``+``nq1`` -> C1, ``q2``+``nq2`` -> C2 (as the paper describes) makes
every input pulse produce exactly one control pulse, alternating between
C1 and C2 — the balancer's Mealy machine (Fig 6c).
"""

from __future__ import annotations

from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element, PortSpec


class Bff(Element):
    """Four-input, single-loop B flip-flop."""

    INPUTS = (
        PortSpec("s1", priority=0),
        PortSpec("r1", priority=1),
        PortSpec("s2", priority=0),
        PortSpec("r2", priority=1),
    )
    OUTPUTS = ("q1", "nq1", "q2", "nq2")
    ROLES = frozenset({CellRole.STORAGE})
    jj_count = tech.JJ_BFF

    def __init__(self, name: str, delay: int = tech.T_DFF_FS):
        super().__init__(name)
        self.delay = delay
        self.state = 0

    def handle(self, sim, port, time):
        if port in ("s1", "s2"):
            if self.state == 0:
                self.state = 1
                self.emit(sim, "q1" if port == "s1" else "q2", time + self.delay)
        else:  # r1 / r2
            if self.state == 1:
                self.state = 0
                self.emit(sim, "nq1" if port == "r1" else "nq2", time + self.delay)

    def reset(self):
        self.state = 0
