"""Stateless interconnect cells: JTL, splitter, merger.

The merger is the one interconnect cell with interesting dynamics: two
pulses arriving within its dead time collide and only one propagates
(paper Fig 5b).  The cell counts collisions so experiments can report
pulse-loss statistics.
"""

from __future__ import annotations

from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element


class Jtl(Element):
    """Josephson transmission line segment: a pure delay buffer."""

    INPUTS = ("a",)
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.BUFFER})
    jj_count = tech.JJ_JTL

    def __init__(self, name: str, delay: int = tech.T_JTL_FS):
        super().__init__(name)
        self.delay = delay

    def handle(self, sim, port, time):
        self.emit(sim, "q", time + self.delay)


class Splitter(Element):
    """1:2 splitter: every input pulse appears at both outputs."""

    INPUTS = ("a",)
    OUTPUTS = ("q1", "q2")
    ROLES = frozenset({CellRole.SPLITTER})
    jj_count = tech.JJ_SPLITTER

    def __init__(self, name: str, delay: int = tech.T_SPLITTER_FS):
        super().__init__(name)
        self.delay = delay

    def handle(self, sim, port, time):
        self.emit(sim, "q1", time + self.delay)
        self.emit(sim, "q2", time + self.delay)


class Merger(Element):
    """2:1 confluence buffer with collision dead time.

    A pulse at either input normally produces one output pulse.  If a pulse
    arrives less than ``dead_time`` after the previously accepted pulse, it
    is absorbed (the SQUID has not yet recovered) and counted in
    :attr:`collisions` — the error mode of the merger-based unary adder
    (section 4.2-A).
    """

    INPUTS = ("a", "b")
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.MERGER})
    jj_count = tech.JJ_MERGER

    def __init__(
        self,
        name: str,
        delay: int = tech.T_MERGER_FS,
        dead_time: int = tech.T_MERGER_DEAD_FS,
    ):
        super().__init__(name)
        self.delay = delay
        self.dead_time = dead_time
        self._last_accept: int = None
        self.collisions = 0

    def handle(self, sim, port, time):
        if self._last_accept is not None and time - self._last_accept < self.dead_time:
            self.collisions += 1
            return
        self._last_accept = time
        self.emit(sim, "q", time + self.delay)

    def reset(self):
        self._last_accept = None
        self.collisions = 0


class IdealMerger(Merger):
    """Merger with zero dead time, for netlists where collision-freedom is
    guaranteed by construction and we want exact pulse conservation."""

    def __init__(self, name: str, delay: int = tech.T_MERGER_FS):
        super().__init__(name, delay=delay, dead_time=0)
