"""Behavioural RSFQ cell library (the gates of the paper's Table 1).

Each cell is a :class:`~repro.pulsesim.element.Element` whose state machine
matches the published gate semantics:

===========  ================================================================
Cell         Behaviour (paper Table 1)
===========  ================================================================
Splitter     Produces a pulse at both outputs per input pulse.
Merger       Produces a pulse at the output for a pulse at either input;
             near-simultaneous inputs collide and one pulse is lost (Fig 5).
Jtl          Acts as a buffer, sharpening (here: delaying) the pulse.
FirstArrival Output pulse the first time a pulse arrives at either input.
Dff          S sets the SQUID; the clock reads destructively.
Dff2         A sets; C1 (C2) resets and pulses Y1 (Y2).
Tff / Tff2   Distributes incoming pulses through alternating output ports.
Ndro         S/R set/reset; CLK reads the state non-destructively.
Inverter     Clocked inverter: pulses on CLK iff no data pulse since the
             previous clock.
Bff          Polonsky B flip-flop: single quantizing loop, four inputs,
             complementary transition outputs (the balancer's routing core).
Mux / Demux  RSFQ (de)multiplexer, select-controlled routing [57].
===========  ================================================================

JJ counts and delays come from :mod:`repro.models.technology`.
"""

from repro.cells.bff import Bff
from repro.cells.clocked import ClockedAnd, ClockedOr, ClockedXor
from repro.cells.interconnect import Jtl, Merger, Splitter
from repro.cells.library import CELL_SPECS, CellSpec, cell_spec
from repro.cells.logic import FirstArrival, Inverter, LastArrival
from repro.cells.mux import Demux, Mux
from repro.cells.noc import NocLink
from repro.cells.storage import Dff, Dff2, Ndro
from repro.cells.toggle import Tff, Tff2

__all__ = [
    "Bff",
    "CELL_SPECS",
    "CellSpec",
    "ClockedAnd",
    "ClockedOr",
    "ClockedXor",
    "Demux",
    "Dff",
    "Dff2",
    "FirstArrival",
    "Inverter",
    "Jtl",
    "LastArrival",
    "Merger",
    "Mux",
    "Ndro",
    "NocLink",
    "Splitter",
    "Tff",
    "Tff2",
    "cell_spec",
]
