"""Temporal NoC link cell: PaST-NoC-style inter-fabric pulse transport.

When a netlist is partitioned across several fabrics (:mod:`repro.shard`),
every cut wire is replaced by a :class:`NocLink`: an explicit cell that
models what a packet-switched superconducting temporal NoC does to the
pulse stream crossing the boundary —

* **serialization**: consecutive flits leave at least
  ``serialization_fs`` apart (one temporal packet slot each);
* **hop latency**: every flit pays ``hops * hop_latency_fs`` of router
  traversal + PTL flight on top of serialization; and
* **bounded buffering**: at most ``fifo_depth`` flits may be in flight in
  the link at once; arrivals beyond that are dropped and counted in
  :attr:`NocLink.drops` (the congestion-loss mode of a bufferless-leaning
  temporal NoC).

The minimum latency ``min_latency_fs = serialization_fs + hops *
hop_latency_fs`` is enforced strictly positive at construction.  That
constant is load-bearing: it is the compile-time lookahead the
partitioned parallel engine's conservative synchronization advances on
(the same ``element.delay + wire.delay > 0`` argument the sealed
kernel's monotonic fast path is built from), so a zero-latency link
would deadlock the time-window protocol and is rejected up front.

Same-time arrivals are order-insensitive by construction: the multiset
of departures (and the drop count) does not depend on the processing
order of equal-timestamp inputs, which is what lets the shard engine
guarantee bit-identical probed outputs against a monolithic run.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element


class NocLink(Element):
    """One-flit-per-pulse temporal NoC link between fabric partitions.

    A pulse arriving at ``a`` at time ``t`` ejects at ``q`` at::

        depart = max(t + min_latency_fs, previous_depart + serialization_fs)

    unless the link already holds ``fifo_depth`` undelivered flits at
    time ``t``, in which case the pulse is dropped (counted, not
    re-emitted).  ``self.delay`` is the minimum latency so static timing
    (:attr:`~repro.pulsesim.element.Element.propagation_delay_fs`) and
    the shard engine's lookahead read the same number.
    """

    INPUTS = ("a",)
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.BUFFER, CellRole.STORAGE, CellRole.NOC})

    def __init__(
        self,
        name: str,
        serialization_fs: int = tech.T_NOC_SERIALIZATION_FS,
        hops: int = 1,
        hop_latency_fs: int = tech.T_NOC_HOP_FS,
        fifo_depth: int = tech.NOC_FIFO_DEPTH,
    ):
        super().__init__(name)
        if serialization_fs < 1:
            raise ConfigurationError(
                f"NocLink {name!r}: serialization_fs must be >= 1 fs "
                f"(got {serialization_fs}); a zero-width flit slot would "
                "destroy the conservative-sync lookahead"
            )
        if hops < 1:
            raise ConfigurationError(
                f"NocLink {name!r}: hops must be >= 1, got {hops}"
            )
        if hop_latency_fs < 0:
            raise ConfigurationError(
                f"NocLink {name!r}: hop_latency_fs must be >= 0, "
                f"got {hop_latency_fs}"
            )
        if fifo_depth < 1:
            raise ConfigurationError(
                f"NocLink {name!r}: fifo_depth must be >= 1, got {fifo_depth}"
            )
        self.serialization_fs = serialization_fs
        self.hops = hops
        self.hop_latency_fs = hop_latency_fs
        self.fifo_depth = fifo_depth
        #: Minimum input-to-output latency; strictly positive by the
        #: checks above.  Stored as ``delay`` so timing analysis and the
        #: shard engine's lookahead proof both read it.
        self.delay = serialization_fs + hops * hop_latency_fs
        self.jj_count = (
            tech.JJ_NOC_PER_HOP * hops + tech.JJ_NOC_PER_FLIT * fifo_depth
        )
        #: Pulses lost to link-FIFO overflow since the last reset.
        self.drops = 0
        self._departures: List[int] = []  # pending ejection times, sorted

    @property
    def min_latency_fs(self) -> int:
        """The conservative-sync lookahead this link contributes."""
        return self.delay

    def handle(self, sim, port, time):
        departures = self._departures
        if departures:
            # Flits whose ejection time has passed have left the link.
            live = 0
            while live < len(departures) and departures[live] <= time:
                live += 1
            if live:
                del departures[:live]
        if len(departures) >= self.fifo_depth:
            self.drops += 1
            return
        depart = time + self.delay
        if departures and departures[-1] + self.serialization_fs > depart:
            depart = departures[-1] + self.serialization_fs
        departures.append(depart)
        self.emit(sim, "q", depart)

    def reset(self):
        self.drops = 0
        self._departures.clear()
