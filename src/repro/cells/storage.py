"""Storage cells: DFF, DFF2, NDRO.

Port priorities encode the conventions the U-SFQ datapath depends on when
pulses coincide exactly (see :mod:`repro.pulsesim.element`):

* ``Ndro``: ``reset`` < ``set`` < ``clk``.  A Race-Logic pulse landing on
  the reset port in the same time slot as a stream pulse on the clock port
  blocks that slot — slot ``d`` passes slots ``0..d-1``, the multiplication
  convention of Fig 3b.
* ``Dff``: ``d`` < ``clk`` so a set in the same instant as the read is
  observed (conservative capture).
"""

from __future__ import annotations

from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element, PortSpec


class Dff(Element):
    """Destructive-readout D flip-flop: ``d`` sets, ``clk`` reads & clears."""

    INPUTS = (PortSpec("d", priority=0), PortSpec("clk", priority=1))
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.STORAGE, CellRole.CLOCKED})
    CLOCK_PORTS = ("clk",)
    jj_count = tech.JJ_DFF

    def __init__(self, name: str, delay: int = tech.T_DFF_FS):
        super().__init__(name)
        self.delay = delay
        self.state = 0

    def handle(self, sim, port, time):
        if port == "d":
            self.state = 1
        else:  # clk
            if self.state:
                self.state = 0
                self.emit(sim, "q", time + self.delay)

    def reset(self):
        self.state = 0


class Dff2(Element):
    """Dual-readout DFF: ``a`` sets; ``c1``/``c2`` reset and pulse ``y1``/``y2``.

    This is the output-stage cell of the proposed balancer (Fig 6b): each
    incoming data pulse parks a flux quantum that either control line can
    later steer to its own output.
    """

    INPUTS = (
        PortSpec("a", priority=0),
        PortSpec("c1", priority=1),
        PortSpec("c2", priority=1),
    )
    OUTPUTS = ("y1", "y2")
    ROLES = frozenset({CellRole.STORAGE, CellRole.CLOCKED})
    CLOCK_PORTS = ("c1", "c2")
    jj_count = tech.JJ_DFF2

    def __init__(self, name: str, delay: int = tech.T_DFF2_FS):
        super().__init__(name)
        self.delay = delay
        self.state = 0

    def handle(self, sim, port, time):
        if port == "a":
            self.state = 1
        elif self.state:
            self.state = 0
            output = "y1" if port == "c1" else "y2"
            self.emit(sim, output, time + self.delay)

    def reset(self):
        self.state = 0


class Ndro(Element):
    """Non-destructive readout cell.

    ``set``/``reset`` write the SQUID; ``clk`` reads without altering the
    state, emitting a pulse at ``q`` iff the state is 1.  The cell is the
    U-SFQ multiplier (Fig 3c): ``set`` <- epoch start, ``reset`` <- the
    Race-Logic operand, ``clk`` <- the pulse-stream operand.
    """

    INPUTS = (
        PortSpec("reset", priority=0),
        PortSpec("set", priority=1),
        PortSpec("clk", priority=2),
    )
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.STORAGE, CellRole.CLOCKED})
    CLOCK_PORTS = ("clk",)
    jj_count = tech.JJ_NDRO

    def __init__(self, name: str, delay: int = tech.T_NDRO_FS):
        super().__init__(name)
        self.delay = delay
        self.state = 0
        self.reads = 0

    def handle(self, sim, port, time):
        if port == "set":
            self.state = 1
        elif port == "reset":
            self.state = 0
        else:  # clk
            self.reads += 1
            if self.state:
                self.emit(sim, "q", time + self.delay)

    def reset(self):
        self.state = 0
        self.reads = 0
