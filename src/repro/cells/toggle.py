"""Toggle cells: TFF (divide-by-two) and TFF2 (alternating dual output).

The TFF2 "works like a demultiplexer, splitting up a data stream into two
signal lines" (paper section 4.3); chained TFF2s form the proposed
pulse-number multiplier whose stream "resembles a train of pulses with a
uniform rate" (Fig 9b).
"""

from __future__ import annotations

from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element


class Tff(Element):
    """Toggle flip-flop used as a frequency divider.

    Emits one output pulse for every *second* input pulse (on the pulse
    that completes a full loop oscillation).
    """

    INPUTS = ("a",)
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.STORAGE})
    jj_count = tech.JJ_TFF

    def __init__(self, name: str, delay: int = tech.T_TFF_FS):
        super().__init__(name)
        self.delay = delay
        self.state = 0

    def handle(self, sim, port, time):
        self.state ^= 1
        if self.state == 0:
            self.emit(sim, "q", time + self.delay)

    def reset(self):
        self.state = 0


class Tff2(Element):
    """Dual-port toggle flip-flop: input pulses alternate between ``q1``
    and ``q2``, starting with ``q1``."""

    INPUTS = ("a",)
    OUTPUTS = ("q1", "q2")
    ROLES = frozenset({CellRole.STORAGE})
    jj_count = tech.JJ_TFF2

    def __init__(self, name: str, delay: int = tech.T_TFF_FS):
        super().__init__(name)
        self.delay = delay
        self.state = 0

    def handle(self, sim, port, time):
        output = "q1" if self.state == 0 else "q2"
        self.state ^= 1
        self.emit(sim, output, time + self.delay)

    def reset(self):
        self.state = 0
