"""Logic cells: the clocked inverter and the first-arrival (FA) gate.

The inverter produces the *complement* of a pulse stream against a
reference clock — the building block that turns the unipolar NDRO
multiplier into the bipolar (XNOR-style) multiplier of Fig 3c.  The FA
gate computes the Race-Logic ``min`` (Fig 2a) in 8 JJs.
"""

from __future__ import annotations

from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element, PortSpec


class Inverter(Element):
    """Clocked RSFQ inverter.

    Emits a pulse at ``q`` on each ``clk`` pulse iff no data pulse arrived
    at ``a`` since the previous clock.  With ``clk`` running at the epoch's
    maximum pulse rate, the output stream carries ``n_max - n`` pulses for
    an ``n``-pulse input stream: the stream complement ``1 - p``.
    """

    INPUTS = (PortSpec("a", priority=0), PortSpec("clk", priority=1))
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.STORAGE, CellRole.CLOCKED})
    CLOCK_PORTS = ("clk",)
    jj_count = tech.JJ_INVERTER

    def __init__(self, name: str, delay: int = tech.T_INV_FS):
        super().__init__(name)
        self.delay = delay
        self._armed = True  # True -> no data pulse seen since last clock

    def handle(self, sim, port, time):
        if port == "a":
            self._armed = False
        else:  # clk
            if self._armed:
                self.emit(sim, "q", time + self.delay)
            self._armed = True

    def reset(self):
        self._armed = True


class LastArrival(Element):
    """LA gate: one output pulse when *both* inputs have arrived.

    The Race-Logic ``max``: a Muller-C-style coincidence element that
    fires at the later of the two pulses; ``reset`` re-arms it for the
    next epoch.
    """

    INPUTS = (PortSpec("reset", priority=0), PortSpec("a", priority=1), PortSpec("b", priority=1))
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.STORAGE})
    jj_count = tech.JJ_FA  # same SQUID complexity class as the FA gate

    def __init__(self, name: str, delay: int = tech.T_FA_FS):
        super().__init__(name)
        self.delay = delay
        self._seen = {"a": False, "b": False}
        self._fired = False

    def handle(self, sim, port, time):
        if port == "reset":
            self._seen = {"a": False, "b": False}
            self._fired = False
            return
        self._seen[port] = True
        if self._seen["a"] and self._seen["b"] and not self._fired:
            self._fired = True
            self.emit(sim, "q", time + self.delay)

    def reset(self):
        self._seen = {"a": False, "b": False}
        self._fired = False


class FirstArrival(Element):
    """FA gate: one output pulse at the first input pulse after (re)arming.

    In Race Logic ``min(A, B)`` is simply the earlier of the two pulses
    (Fig 2a); ``reset`` re-arms the gate for the next epoch.
    """

    INPUTS = (PortSpec("reset", priority=0), PortSpec("a", priority=1), PortSpec("b", priority=1))
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.STORAGE})
    jj_count = tech.JJ_FA

    def __init__(self, name: str, delay: int = tech.T_FA_FS):
        super().__init__(name)
        self.delay = delay
        self._armed = True

    def handle(self, sim, port, time):
        if port == "reset":
            self._armed = True
        elif self._armed:
            self._armed = False
            self.emit(sim, "q", time + self.delay)

    def reset(self):
        self._armed = True
