"""Clocked Boolean gates — the binary-RSFQ way of computing.

In RSFQ, AND/OR/XOR are *synchronous*: input pulses park flux in input
latches and a clock pulse evaluates the function, emits the result, and
clears the latches.  This is the paper's motivating pain point (section
1): "almost every cell in the design must be synchronized with a global
clock", which is exactly what the U-SFQ datapath avoids.  These cells
power the gate-level binary adder in :mod:`repro.core.binary_adder`, the
substrate for structural unary-vs-binary comparisons.
"""

from __future__ import annotations

from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element, PortSpec

#: JJ budgets for clocked Boolean gates (RSFQ cell libraries [11, 58]).
JJ_AND = 11
JJ_OR = 9
JJ_XOR = 11


class _ClockedGate(Element):
    """Shared machinery: latch ``a``/``b`` pulses, evaluate on ``clk``."""

    INPUTS = (
        PortSpec("a", priority=0),
        PortSpec("b", priority=0),
        PortSpec("clk", priority=1),
    )
    OUTPUTS = ("q",)
    ROLES = frozenset({CellRole.STORAGE, CellRole.CLOCKED})
    CLOCK_PORTS = ("clk",)

    def __init__(self, name: str, delay: int = tech.T_DFF_FS):
        super().__init__(name)
        self.delay = delay
        self._a = False
        self._b = False

    def evaluate(self, a: bool, b: bool) -> bool:
        raise NotImplementedError

    def handle(self, sim, port, time):
        if port == "a":
            self._a = True
        elif port == "b":
            self._b = True
        else:  # clk: evaluate, emit, clear
            if self.evaluate(self._a, self._b):
                self.emit(sim, "q", time + self.delay)
            self._a = False
            self._b = False

    def reset(self):
        self._a = False
        self._b = False


class ClockedAnd(_ClockedGate):
    """Synchronous AND: pulses on q iff both inputs pulsed this cycle."""

    jj_count = JJ_AND

    def evaluate(self, a, b):
        return a and b


class ClockedOr(_ClockedGate):
    """Synchronous OR: pulses on q iff either input pulsed this cycle."""

    jj_count = JJ_OR

    def evaluate(self, a, b):
        return a or b


class ClockedXor(_ClockedGate):
    """Synchronous XOR: pulses on q iff exactly one input pulsed."""

    jj_count = JJ_XOR

    def evaluate(self, a, b):
        return a != b
