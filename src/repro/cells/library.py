"""Cell catalogue: JJ counts, delays, and short descriptions (Table 1).

This module gives experiments and documentation one queryable view of the
cell library; the behavioural classes themselves live in the sibling
modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.models import technology as tech


@dataclass(frozen=True)
class CellSpec:
    """Catalogue entry for one RSFQ cell."""

    acronym: str
    jj_count: int
    delay_fs: int
    summary: str


CELL_SPECS: Dict[str, CellSpec] = {
    "jtl": CellSpec("JTL", tech.JJ_JTL, tech.T_JTL_FS,
                    "Acts as a buffer, sharpening the output pulse."),
    "splitter": CellSpec("S", tech.JJ_SPLITTER, tech.T_SPLITTER_FS,
                         "Produces a pulse at both outputs per input pulse."),
    "merger": CellSpec("M", tech.JJ_MERGER, tech.T_MERGER_FS,
                       "Produces a pulse at the output for a pulse at either input."),
    "fa": CellSpec("FA", tech.JJ_FA, tech.T_FA_FS,
                   "Output pulse at the first input pulse on either input."),
    "la": CellSpec("LA", tech.JJ_FA, tech.T_FA_FS,
                   "Output pulse once both inputs have arrived (Race-Logic max)."),
    "dff": CellSpec("DFF", tech.JJ_DFF, tech.T_DFF_FS,
                    "S sets the SQUID; R (clock) resets and generates an output pulse."),
    "dff2": CellSpec("DFF2", tech.JJ_DFF2, tech.T_DFF2_FS,
                     "A sets the SQUID; C1 (C2) resets and pulses Y1 (Y2)."),
    "tff": CellSpec("TFF", tech.JJ_TFF, tech.T_TFF_FS,
                    "Divide-by-two toggle flip-flop."),
    "tff2": CellSpec("TFF2", tech.JJ_TFF2, tech.T_TFF_FS,
                     "Distributes incoming pulses through alternating output ports."),
    "ndro": CellSpec("NDRO", tech.JJ_NDRO, tech.T_NDRO_FS,
                     "S/R/Q resemble a DFF; CLK reads the state without altering it."),
    "inverter": CellSpec("INV", tech.JJ_INVERTER, tech.T_INV_FS,
                         "Clocked inverter: pulses on CLK iff no data pulse since last CLK."),
    "bff": CellSpec("BFF", tech.JJ_BFF, tech.T_DFF_FS,
                    "Single quantizing loop with four inputs and two stationary states."),
    "mux": CellSpec("MUX", tech.JJ_MUX, tech.T_MUX_FS,
                    "2:1 flux-state-selected multiplexer."),
    "demux": CellSpec("DEMUX", tech.JJ_DEMUX, tech.T_MUX_FS,
                      "1:2 flux-state-selected demultiplexer."),
    "and": CellSpec("AND", 11, tech.T_DFF_FS,
                    "Clocked AND: latches inputs, evaluates and clears on CLK."),
    "or": CellSpec("OR", 9, tech.T_DFF_FS,
                   "Clocked OR: latches inputs, evaluates and clears on CLK."),
    "xor": CellSpec("XOR", 11, tech.T_DFF_FS,
                    "Clocked XOR: latches inputs, evaluates and clears on CLK."),
}


def cell_spec(name: str) -> CellSpec:
    """Look up a cell's catalogue entry by lower-case name."""
    try:
        return CELL_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(CELL_SPECS))
        raise KeyError(f"unknown cell {name!r}; known cells: {known}") from None
