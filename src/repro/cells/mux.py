"""RSFQ multiplexer and demultiplexer (Zheng et al. 1999 — paper ref [57]).

Used by the integrator-based memory cell (Fig 10d) to interleave its two
buffers: while one buffer delays the previous epoch's pulse, the other
accepts the current epoch's input.  Selection is flux-state based: a pulse
on ``sel0``/``sel1`` steers subsequent data pulses to/from channel 0/1.
"""

from __future__ import annotations

from repro.models import technology as tech
from repro.pulsesim.element import Element, PortSpec


class Demux(Element):
    """1:2 demultiplexer: routes ``a`` pulses to ``q0`` or ``q1``."""

    INPUTS = (
        PortSpec("sel0", priority=0),
        PortSpec("sel1", priority=0),
        PortSpec("a", priority=1),
    )
    OUTPUTS = ("q0", "q1")
    jj_count = tech.JJ_DEMUX

    def __init__(self, name: str, delay: int = tech.T_MUX_FS):
        super().__init__(name)
        self.delay = delay
        self.select = 0

    def handle(self, sim, port, time):
        if port == "sel0":
            self.select = 0
        elif port == "sel1":
            self.select = 1
        else:
            self.emit(sim, "q0" if self.select == 0 else "q1", time + self.delay)

    def reset(self):
        self.select = 0


class Mux(Element):
    """2:1 multiplexer: passes the selected channel's pulses to ``q``."""

    INPUTS = (
        PortSpec("sel0", priority=0),
        PortSpec("sel1", priority=0),
        PortSpec("a0", priority=1),
        PortSpec("a1", priority=1),
    )
    OUTPUTS = ("q",)
    jj_count = tech.JJ_MUX

    def __init__(self, name: str, delay: int = tech.T_MUX_FS):
        super().__init__(name)
        self.delay = delay
        self.select = 0

    def handle(self, sim, port, time):
        if port == "sel0":
            self.select = 0
        elif port == "sel1":
            self.select = 1
        elif (port == "a0" and self.select == 0) or (port == "a1" and self.select == 1):
            self.emit(sim, "q", time + self.delay)

    def reset(self):
        self.select = 0
