"""Pulse-stream encoding: values as pulse rates (paper section 3.2).

A number ``p`` maps to the rate of a periodic SFQ pulse train:
``p = n / n_max`` where ``n`` is the pulse count per epoch.  Each pulse
carries weight ``1 / n_max`` — the property behind the paper's error
resilience result (Fig 19: losing 30 % of the pulses costs only ~4 dB of
SNR, because no pulse is a "most significant bit").  Bipolar values use
``p_b = 2 p_u - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.encoding.epoch import EpochSpec, quantise_level
from repro.errors import EncodingError
from repro.pulsesim.schedule import burst_stream_times, uniform_stream_times


def bipolar_from_unipolar(p_unipolar: float) -> float:
    """``p_b = 2 p_u - 1`` (paper eq. in section 3.2)."""
    return 2.0 * p_unipolar - 1.0


def unipolar_from_bipolar(p_bipolar: float) -> float:
    """Inverse of :func:`bipolar_from_unipolar`."""
    return (p_bipolar + 1.0) / 2.0


@dataclass(frozen=True)
class PulseStreamCodec:
    """Encode/decode values to/from pulse trains for one epoch."""

    epoch: EpochSpec

    # -- value <-> count -------------------------------------------------------
    def count_for_unipolar(self, value: float) -> int:
        """Quantise a unipolar value in [0, 1] to a pulse count."""
        if not 0.0 <= value <= 1.0:
            raise EncodingError(f"unipolar value must be in [0, 1], got {value}")
        return quantise_level(value, self.epoch.n_max)

    def count_for_bipolar(self, value: float) -> int:
        """Quantise a bipolar value in [-1, 1] to a pulse count."""
        if not -1.0 <= value <= 1.0:
            raise EncodingError(f"bipolar value must be in [-1, 1], got {value}")
        return self.count_for_unipolar(unipolar_from_bipolar(value))

    def unipolar_of_count(self, n_pulses: int) -> float:
        """``p = n / n_max``."""
        self._check_count(n_pulses)
        return n_pulses / self.epoch.n_max

    def bipolar_of_count(self, n_pulses: int) -> float:
        return bipolar_from_unipolar(self.unipolar_of_count(n_pulses))

    @property
    def pulse_weight(self) -> float:
        """Weight of one pulse: ``1 / n_max``."""
        return 1.0 / self.epoch.n_max

    # -- value <-> pulse times ------------------------------------------------
    def encode_unipolar(
        self, value: float, epoch_index: int = 0, uniform: bool = True
    ) -> List[int]:
        """Pulse times for a unipolar value (uniform rate by default)."""
        n = self.count_for_unipolar(value)
        return self.times_for_count(n, epoch_index, uniform=uniform)

    def encode_bipolar(
        self, value: float, epoch_index: int = 0, uniform: bool = True
    ) -> List[int]:
        """Pulse times for a bipolar value."""
        n = self.count_for_bipolar(value)
        return self.times_for_count(n, epoch_index, uniform=uniform)

    def times_for_count(
        self, n_pulses: int, epoch_index: int = 0, uniform: bool = True
    ) -> List[int]:
        """Pulse times for an explicit pulse count."""
        self._check_count(n_pulses)
        start = self.epoch.epoch_start(epoch_index)
        maker = uniform_stream_times if uniform else burst_stream_times
        return maker(n_pulses, self.epoch.n_max, self.epoch.slot_fs, start)

    def count_in_epoch(self, times: List[int], epoch_index: int = 0) -> int:
        """Number of pulses falling inside an epoch window."""
        start, end = self.epoch.epoch_window(epoch_index)
        return sum(1 for t in times if start <= t < end)

    def decode_unipolar(self, times: List[int], epoch_index: int = 0) -> float:
        """Recover the unipolar value: count pulses, divide by ``n_max``."""
        count = self.count_in_epoch(times, epoch_index)
        if count > self.epoch.n_max:
            raise EncodingError(
                f"{count} pulses exceed n_max={self.epoch.n_max} in epoch "
                f"{epoch_index}"
            )
        return self.unipolar_of_count(count)

    def decode_bipolar(self, times: List[int], epoch_index: int = 0) -> float:
        return bipolar_from_unipolar(self.decode_unipolar(times, epoch_index))

    # -- helpers ----------------------------------------------------------------
    def quantise_unipolar(self, value: float) -> float:
        """The representable unipolar value closest to ``value``."""
        return self.count_for_unipolar(value) / self.epoch.n_max

    def quantise_bipolar(self, value: float) -> float:
        return self.bipolar_of_count(self.count_for_bipolar(value))

    def complement_count(self, n_pulses: int) -> int:
        """Pulse count of the complement stream ``1 - p`` (inverter output)."""
        self._check_count(n_pulses)
        return self.epoch.n_max - n_pulses

    def _check_count(self, n_pulses: int) -> None:
        if not 0 <= n_pulses <= self.epoch.n_max:
            raise EncodingError(
                f"pulse count must be in [0, {self.epoch.n_max}], got {n_pulses}"
            )
