"""U-SFQ data representations (paper section 3).

Two unary encodings over a shared *computing epoch* of ``2**bits`` time
slots:

* :mod:`repro.encoding.racelogic` — a value is the arrival slot of a single
  pulse (``Id / n_max``), unipolar in [0, 1] or bipolar in [-1, 1];
* :mod:`repro.encoding.pulsestream` — a value is the rate of a periodic
  pulse train (``n / n_max`` pulses per epoch), unipolar or bipolar.

:mod:`repro.encoding.epoch` defines the epoch geometry and
:mod:`repro.encoding.conversion` models the binary <-> unary converters
(B2RC counters, pulse counters) used at accelerator boundaries.
"""

from repro.encoding.epoch import EpochSpec
from repro.encoding.pulsestream import (
    PulseStreamCodec,
    bipolar_from_unipolar,
    unipolar_from_bipolar,
)
from repro.encoding.racelogic import RaceLogicCodec
from repro.encoding.conversion import (
    binary_to_rl_slot,
    pulse_count_to_binary,
    rl_slot_to_binary,
)

__all__ = [
    "EpochSpec",
    "PulseStreamCodec",
    "RaceLogicCodec",
    "binary_to_rl_slot",
    "bipolar_from_unipolar",
    "pulse_count_to_binary",
    "rl_slot_to_binary",
    "unipolar_from_bipolar",
]
