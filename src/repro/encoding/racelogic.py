"""Race-Logic encoding: values as pulse arrival slots (paper section 3.1).

The paper extends classic Race Logic by *normalising* the arrival slot by
the epoch's maximum slot, giving a unipolar value ``Id / n_max`` in
[0, 1]; the bipolar representation is the stochastic-computing style
rescaling ``Id_b = 2 * Id_u - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.encoding.epoch import EpochSpec, quantise_level
from repro.errors import EncodingError


@dataclass(frozen=True)
class RaceLogicCodec:
    """Encode/decode values to/from Race-Logic pulse times for one epoch."""

    epoch: EpochSpec

    # -- value <-> slot -------------------------------------------------------
    def slot_for_unipolar(self, value: float) -> int:
        """Quantise a unipolar value in [0, 1] to its time slot."""
        if not 0.0 <= value <= 1.0:
            raise EncodingError(f"unipolar value must be in [0, 1], got {value}")
        return quantise_level(value, self.epoch.n_max)

    def slot_for_bipolar(self, value: float) -> int:
        """Quantise a bipolar value in [-1, 1] to its time slot."""
        if not -1.0 <= value <= 1.0:
            raise EncodingError(f"bipolar value must be in [-1, 1], got {value}")
        return self.slot_for_unipolar((value + 1.0) / 2.0)

    def unipolar_of_slot(self, slot_id: int) -> float:
        """The unipolar value encoded by a pulse in ``slot_id``."""
        self._check_slot(slot_id)
        return slot_id / self.epoch.n_max

    def bipolar_of_slot(self, slot_id: int) -> float:
        """The bipolar value encoded by a pulse in ``slot_id``."""
        return 2.0 * self.unipolar_of_slot(slot_id) - 1.0

    # -- value <-> pulse time ------------------------------------------------
    def pulse_time(self, slot_id: int, epoch_index: int = 0) -> int:
        """Absolute pulse time for ``slot_id``, kept inside the epoch window.

        Slot ``n_max`` (full scale) would start exactly at the window's
        half-open end — which every window predicate assigns to the *next*
        epoch — so it is encoded one femtosecond early, at ``end - 1``.
        That sentinel needs ``slot_fs > 1`` to stay distinguishable from
        the start of slot ``n_max - 1``.
        """
        self._check_slot(slot_id)
        if slot_id == self.epoch.n_max:
            if self.epoch.slot_fs == 1:
                raise EncodingError(
                    "slot n_max is not encodable with slot_fs=1: the epoch "
                    "window has no room for the full-scale sentinel"
                )
            return self.epoch.epoch_window(epoch_index)[1] - 1
        return self.epoch.slot_time(slot_id, epoch_index)

    def encode_unipolar(self, value: float, epoch_index: int = 0) -> int:
        """Absolute pulse time encoding a unipolar value."""
        return self.pulse_time(self.slot_for_unipolar(value), epoch_index)

    def encode_bipolar(self, value: float, epoch_index: int = 0) -> int:
        """Absolute pulse time encoding a bipolar value."""
        return self.pulse_time(self.slot_for_bipolar(value), epoch_index)

    def decode_time(self, time_fs: int, epoch_index: int = 0) -> int:
        """Slot id of a pulse observed at ``time_fs`` in ``epoch_index``.

        The epoch window is half-open — a pulse at exactly ``end`` belongs
        to the next epoch — and times inside a slot (e.g. after cell
        propagation delays smaller than a slot) round down.  ``end - 1``
        is the full-scale sentinel written by :meth:`pulse_time` and
        decodes to slot ``n_max`` (when ``slot_fs > 1``).
        """
        start, end = self.epoch.epoch_window(epoch_index)
        if not start <= time_fs < end:
            raise EncodingError(
                f"pulse at {time_fs} fs is outside epoch {epoch_index} "
                f"[{start}, {end})"
            )
        if time_fs == end - 1 and self.epoch.slot_fs > 1:
            return self.epoch.n_max
        return (time_fs - start) // self.epoch.slot_fs

    def decode_unipolar(self, time_fs: int, epoch_index: int = 0) -> float:
        return self.unipolar_of_slot(self.decode_time(time_fs, epoch_index))

    def decode_bipolar(self, time_fs: int, epoch_index: int = 0) -> float:
        return self.bipolar_of_slot(self.decode_time(time_fs, epoch_index))

    def decode_pulse_train(
        self, times: List[int], epoch_index: int = 0
    ) -> Optional[int]:
        """Slot of the single RL pulse in an epoch; None when no pulse arrived.

        More than one pulse in the window is a protocol violation (an RL
        lane carries exactly one pulse per epoch).
        """
        start, end = self.epoch.epoch_window(epoch_index)
        window = [t for t in times if start <= t < end]
        if not window:
            return None
        if len(window) > 1:
            raise EncodingError(
                f"Race-Logic lane saw {len(window)} pulses in epoch {epoch_index}"
            )
        return self.decode_time(window[0], epoch_index)

    # -- helpers ---------------------------------------------------------------
    def quantise_unipolar(self, value: float) -> float:
        """The representable unipolar value closest to ``value``."""
        return self.slot_for_unipolar(value) / self.epoch.n_max

    def quantise_bipolar(self, value: float) -> float:
        return self.bipolar_of_slot(self.slot_for_bipolar(value))

    def _check_slot(self, slot_id: int) -> None:
        if not 0 <= slot_id <= self.epoch.n_max:
            raise EncodingError(
                f"slot id must be in [0, {self.epoch.n_max}], got {slot_id}"
            )
