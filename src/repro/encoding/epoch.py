"""Computing-epoch geometry.

An epoch is the unit of U-SFQ computation: a window of ``n_max = 2**bits``
time slots of equal width.  A Race-Logic operand is one pulse in some slot;
a pulse-stream operand is up to ``n_max`` pulses spread across the slots.
The slot width is set by the slowest cell the datapath must clock through
(t_INV for multipliers, t_BFF for balancer adders, t_TFF2 for PNM-fed
memory — see :mod:`repro.models.technology`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models import technology as tech


def quantise_level(value: float, n_max: int) -> int:
    """Quantise ``value`` in [0, 1] to an integer level in [0, n_max].

    Ties round half-away-from-zero on the *bipolar* axis: a level maps to
    bipolar via ``b = 2 * level / n_max - 1``, so a tie at ``k + 0.5``
    rounds up exactly when the midpoint lies at or above the bipolar
    origin (``k >= n_max // 2``).  Python's built-in ``round``
    (half-to-even) would leave midpoints asymmetric, breaking
    ``quantise_bipolar(v) == -quantise_bipolar(-v)``.
    """
    scaled = value * n_max
    level = math.floor(scaled)
    fraction = scaled - level
    if fraction > 0.5 or (fraction == 0.5 and level >= n_max // 2):
        level += 1
    return min(n_max, max(0, level))


@dataclass(frozen=True)
class EpochSpec:
    """Geometry of a computing epoch.

    Attributes:
        bits: Resolution; the epoch has ``2**bits`` slots.
        slot_fs: Slot width in femtoseconds (minimum pulse spacing).
    """

    bits: int
    slot_fs: int = tech.T_BFF_FS

    def __post_init__(self):
        if not 1 <= self.bits <= 24:
            raise ConfigurationError(f"bits must be in [1, 24], got {self.bits}")
        if self.slot_fs <= 0:
            raise ConfigurationError(f"slot_fs must be positive, got {self.slot_fs}")

    @property
    def n_max(self) -> int:
        """Number of slots (and maximum pulses) per epoch."""
        return 1 << self.bits

    @property
    def duration_fs(self) -> int:
        """Epoch length in femtoseconds."""
        return self.n_max * self.slot_fs

    def slot_time(self, slot_id: int, epoch_index: int = 0) -> int:
        """Absolute time of the start of ``slot_id`` in epoch ``epoch_index``."""
        if not 0 <= slot_id <= self.n_max:
            raise ConfigurationError(
                f"slot id must be in [0, {self.n_max}], got {slot_id}"
            )
        return epoch_index * self.duration_fs + slot_id * self.slot_fs

    def epoch_start(self, epoch_index: int) -> int:
        """Absolute start time of epoch ``epoch_index``."""
        return epoch_index * self.duration_fs

    def epoch_window(self, epoch_index: int):
        """``(start, end)`` absolute times of epoch ``epoch_index``.

        Windows are half-open: a pulse at exactly ``end`` belongs to
        epoch ``epoch_index + 1``.  Every decode predicate in the
        encoding layer uses ``start <= t < end``.
        """
        start = self.epoch_start(epoch_index)
        return start, start + self.duration_fs

    def with_slot(self, slot_fs: int) -> "EpochSpec":
        """A copy of this spec with a different slot width."""
        return EpochSpec(self.bits, slot_fs)

    def __str__(self) -> str:
        return (
            f"EpochSpec(bits={self.bits}, n_max={self.n_max}, "
            f"slot={self.slot_fs} fs, duration={self.duration_fs} fs)"
        )
