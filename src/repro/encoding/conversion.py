"""Binary <-> unary conversion models (paper sections 4.4.1 and 5.4).

At accelerator boundaries, values may need converting between fixed-point
binary and the unary encodings:

* **B2RC** (binary-to-Race-Logic converter): a programmable counter built
  as an interleaved chain of TFFs and DFFs [22]; its JJ cost is what makes
  the naive binary-shift-register-plus-converter memory 3.2x larger than a
  binary one (Fig 12).
* **Pulse counter** (stream -> binary): a chain of TFFs accumulating the
  stream, read out as a binary word.

The functions here are the *functional* conversions; the area/latency cost
models live in :mod:`repro.models.area`.
"""

from __future__ import annotations

from repro.errors import EncodingError


def binary_to_rl_slot(word: int, bits: int) -> int:
    """Map a ``bits``-wide unsigned binary word to its Race-Logic slot.

    The B2RC counter delays a reference pulse by ``word`` slots, so the
    mapping is the identity on [0, 2**bits).
    """
    _check_word(word, bits)
    return word


def rl_slot_to_binary(slot_id: int, bits: int) -> int:
    """Map a Race-Logic slot back to the binary word it encodes."""
    n_max = 1 << bits
    if not 0 <= slot_id <= n_max:
        raise EncodingError(f"slot must be in [0, {n_max}], got {slot_id}")
    # Slot n_max (a pulse exactly at the epoch boundary) saturates.
    return min(slot_id, n_max - 1)


def pulse_count_to_binary(count: int, bits: int) -> int:
    """Read a TFF-chain pulse counter: the count saturated to ``bits`` wide."""
    if count < 0:
        raise EncodingError(f"pulse count must be >= 0, got {count}")
    return min(count, (1 << bits) - 1)


def _check_word(word: int, bits: int) -> None:
    if not 1 <= bits <= 24:
        raise EncodingError(f"bits must be in [1, 24], got {bits}")
    if not 0 <= word < (1 << bits):
        raise EncodingError(f"word must fit in {bits} bits, got {word}")
