"""Race-Logic buffering and memory (paper section 4.4, Figs 10-12).

The U-SFQ FIR needs a shift register for RL-encoded samples.  The paper
examines three designs and proposes the third:

1. binary DFF bank + binary-to-RL converters (B2RC) — 3.2x binary area;
2. a DFF delay chain per time slot — exponential in bits;
3. the **integrator-based buffer**: an inductor integrates a clock current
   from the RL pulse's arrival until a comparator JJ kicks back half an
   epoch later, then discharges for the other half; the output pulse
   reappears exactly one epoch after the input (Fig 11).

Behavioural elements here implement the architectural contracts (exact
one-epoch delay, one-pulse-per-epoch occupancy); the analog charge and
discharge ramps are modelled in :mod:`repro.analog.integrator`; the JJ
area comparison of the four shift-register designs is in
:mod:`repro.models.area` (Fig 12).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, SimulationError
from repro.models import technology as tech
from repro.pulsesim.element import CellRole, Element, PortSpec

#: JJ budgets (DESIGN.md section 5).  The PE's integrator stage (integration
#: loop, comparator JJs, readout) completes the 126-JJ PE.  A standalone RL
#: buffer adds charge/discharge switching and epoch clock gating; its budget
#: is calibrated to the paper's Fig 12 anchors — a buffer-based register
#: costs 2.5x a binary shift-register word at 8 bits (2.5 * 8 DFFs = 120 JJs)
#: and 1.3x at 16 bits (125 JJs) — and lies inside the 50-200 JJ range the
#: paper quotes for a stream-to-RL integrator.  The memory cell interleaves
#: two buffers behind a mux/demux pair (Fig 10d).
INTEGRATOR_STAGE_JJ = 24
RL_BUFFER_JJ = 122
MEMORY_CELL_JJ = 2 * RL_BUFFER_JJ + tech.JJ_MUX + tech.JJ_DEMUX


class PulseIntegrator(Element):
    """Accumulates stream pulses and reads out the count as Race Logic.

    The PE's MAC back-end (Fig 13a): every pulse arriving at ``a`` during
    an epoch raises the inductor current by one step; the ``epoch`` marker
    closes the window and the accumulated count is emitted as a single RL
    pulse ``count`` slots into the *next* epoch.
    """

    INPUTS = (PortSpec("a", priority=1), PortSpec("epoch", priority=0))
    OUTPUTS = ("out",)
    ROLES = frozenset({CellRole.STORAGE, CellRole.CLOCKED})
    CLOCK_PORTS = ("epoch",)
    jj_count = INTEGRATOR_STAGE_JJ

    def __init__(self, name: str, slot_fs: int, n_max: int):
        super().__init__(name)
        if slot_fs <= 0 or n_max < 1:
            raise ConfigurationError(
                f"need positive slot ({slot_fs}) and n_max ({n_max})"
            )
        self.slot_fs = slot_fs
        self.n_max = n_max
        self.count = 0
        self.saturations = 0

    def handle(self, sim, port, time):
        if port == "a":
            if self.count < self.n_max:
                self.count += 1
            else:
                self.saturations += 1
        else:  # epoch marker: read out and restart the accumulation
            self.emit(sim, "out", time + self.count * self.slot_fs)
            self.count = 0

    def reset(self):
        self.count = 0
        self.saturations = 0


class RlBuffer(Element):
    """Integrator-based RL buffer: delays a pulse by exactly one epoch.

    A single buffer is *occupied* for a full epoch (half charging, half
    discharging); a second input pulse while occupied is a protocol
    violation and raises, which is why the memory cell interleaves two
    buffers (Fig 10d).
    """

    INPUTS = (PortSpec("in"),)
    OUTPUTS = ("out",)
    ROLES = frozenset({CellRole.STORAGE})
    jj_count = RL_BUFFER_JJ

    def __init__(self, name: str, epoch_fs: int):
        super().__init__(name)
        if epoch_fs <= 0:
            raise ConfigurationError(f"epoch must be positive, got {epoch_fs}")
        self.epoch_fs = epoch_fs
        self._busy_until: Optional[int] = None

    def handle(self, sim, port, time):
        if self._busy_until is not None and time < self._busy_until:
            raise SimulationError(
                f"RL buffer {self.name!r} received a pulse at {time} fs while "
                f"occupied until {self._busy_until} fs; interleave two buffers "
                "(RlMemoryCell) for back-to-back epochs"
            )
        self._busy_until = time + self.epoch_fs
        self.emit(sim, "out", time + self.epoch_fs)

    def reset(self):
        self._busy_until = None


class RlMemoryCell(Element):
    """Two interleaved RL buffers behind a demux/mux pair (Fig 10d).

    Presents the same one-epoch-delay contract as :class:`RlBuffer` but
    sustains one pulse per epoch indefinitely: the demux steers odd/even
    epochs to alternate buffers while the mux recombines their outputs.
    """

    INPUTS = (PortSpec("in"),)
    OUTPUTS = ("out",)
    ROLES = frozenset({CellRole.STORAGE})
    jj_count = MEMORY_CELL_JJ

    def __init__(self, name: str, epoch_fs: int):
        super().__init__(name)
        if epoch_fs <= 0:
            raise ConfigurationError(f"epoch must be positive, got {epoch_fs}")
        self.epoch_fs = epoch_fs
        self._buffer_busy_until = [None, None]
        self._select = 0

    def handle(self, sim, port, time):
        busy = self._buffer_busy_until[self._select]
        if busy is not None and time < busy:
            other = 1 - self._select
            other_busy = self._buffer_busy_until[other]
            if other_busy is not None and time < other_busy:
                raise SimulationError(
                    f"memory cell {self.name!r}: both buffers occupied at "
                    f"{time} fs (inputs faster than one pulse per epoch)"
                )
            self._select = other
        self._buffer_busy_until[self._select] = time + self.epoch_fs
        self._select = 1 - self._select
        self.emit(sim, "out", time + self.epoch_fs)

    def reset(self):
        self._buffer_busy_until = [None, None]
        self._select = 0


class RlShiftRegister(Element):
    """A chain of ``depth`` memory cells: delays RL pulses by ``depth`` epochs.

    This is the FIR's ``z^-1`` line (section 5.4); modelling the chain as a
    single element keeps large-tap simulations cheap while preserving the
    occupancy protocol (at most one pulse per epoch per stage).
    """

    INPUTS = (PortSpec("in"),)
    OUTPUTS = ("out",)
    ROLES = frozenset({CellRole.STORAGE})

    def __init__(self, name: str, epoch_fs: int, depth: int):
        super().__init__(name)
        if epoch_fs <= 0:
            raise ConfigurationError(f"epoch must be positive, got {epoch_fs}")
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.epoch_fs = epoch_fs
        self.depth = depth
        self.jj_count = depth * MEMORY_CELL_JJ
        self._last_input: Optional[int] = None

    def handle(self, sim, port, time):
        if self._last_input is not None and time - self._last_input < self.epoch_fs:
            raise SimulationError(
                f"shift register {self.name!r}: inputs closer than one epoch "
                f"({time - self._last_input} fs apart)"
            )
        self._last_input = time
        self.emit(sim, "out", time + self.depth * self.epoch_fs)

    def reset(self):
        self._last_input = None
