"""U-SFQ building blocks and accelerators (paper sections 4 and 5).

Structural netlist builders (running on :mod:`repro.pulsesim`) live next to
fast *functional* models with identical quantisation semantics; tests
cross-validate the two.  The accelerators compose the blocks:

* :mod:`repro.core.pe` — processing element for CGRAs/spatial arrays,
* :mod:`repro.core.dpu` — dot-product unit,
* :mod:`repro.core.fir` — programmable FIR filter accelerator.
"""

from repro.core.adder import MergerAdder, merger_tree_output_count, staggered_offsets
from repro.core.balancer import Balancer, build_structural_balancer
from repro.core.counting import (
    CountingNetwork,
    counting_network_output_count,
    build_counting_network,
)
from repro.core.multiplier import (
    BipolarMultiplier,
    UnipolarMultiplier,
    bipolar_product_count,
    build_bipolar_multiplier,
    build_unipolar_multiplier,
    unipolar_product_count,
)
from repro.core.pnm import BurstPnm, build_tff2_pnm, pnm_tick_pattern
from repro.core.membank import CoefficientBank
from repro.core.buffer import (
    PulseIntegrator,
    RlBuffer,
    RlMemoryCell,
    RlShiftRegister,
)
from repro.core.pe import PEModel, ProcessingElement, PEArray
from repro.core.dpu import DotProductUnit, DpuModel
from repro.core.fir import UnaryFirFilter, BinaryFirFilter
from repro.core.fir_structural import StructuralUnaryFir
from repro.core.binary_adder import RippleCarryAdder
from repro.core.binary_multiplier import ShiftAddMultiplier
from repro.core.racelogic_ops import (
    RaceLogicAlu,
    add_constant,
    inhibit_slots,
    max_slots,
    min_slots,
)

__all__ = [
    "Balancer",
    "BinaryFirFilter",
    "BipolarMultiplier",
    "BurstPnm",
    "CoefficientBank",
    "CountingNetwork",
    "DotProductUnit",
    "DpuModel",
    "MergerAdder",
    "PEArray",
    "PEModel",
    "ProcessingElement",
    "PulseIntegrator",
    "RaceLogicAlu",
    "RippleCarryAdder",
    "RlBuffer",
    "RlMemoryCell",
    "RlShiftRegister",
    "ShiftAddMultiplier",
    "StructuralUnaryFir",
    "UnaryFirFilter",
    "UnipolarMultiplier",
    "add_constant",
    "inhibit_slots",
    "max_slots",
    "min_slots",
    "bipolar_product_count",
    "build_bipolar_multiplier",
    "build_counting_network",
    "build_structural_balancer",
    "build_tff2_pnm",
    "build_unipolar_multiplier",
    "counting_network_output_count",
    "merger_tree_output_count",
    "pnm_tick_pattern",
    "staggered_offsets",
    "unipolar_product_count",
]
