"""Race-Logic temporal operators (the substrate of [29, 51] the paper
extends in section 3.1).

Race Logic computes with pulse *arrival times*, so a handful of cells
cover a surprising amount of algebra:

* ``min(a, b)``  — a first-arrival (FA) gate: the earlier pulse wins;
* ``max(a, b)``  — a last-arrival (LA) coincidence gate;
* ``a + c``      — a delay chain of ``c`` slots (add-constant; general
  addition is what the paper's pulse streams are for);
* ``inhibit``    — pass ``a`` only if it beats ``b`` (the conditional
  primitive of dynamic-programming accelerators).

Both functional helpers (slot arithmetic) and structural netlist builders
(running on the pulse simulator) are provided, plus a composite
``RaceLogicAlu`` convenience wrapper.  These operators are what make the
integrator-buffered RL lanes of the FIR a *general* temporal datapath,
not just a delay line.
"""

from __future__ import annotations

from typing import Optional

from repro.cells.interconnect import Jtl
from repro.cells.logic import FirstArrival, LastArrival
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.element import Element, PortSpec
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator


# -- functional slot arithmetic --------------------------------------------------
def min_slots(a: int, b: int) -> int:
    """Race-Logic minimum: the earlier arrival."""
    _check(a, b)
    return min(a, b)


def max_slots(a: int, b: int) -> int:
    """Race-Logic maximum: the later arrival."""
    _check(a, b)
    return max(a, b)


def add_constant(a: int, constant: int, n_max: int) -> int:
    """Race-Logic add-constant: delay by ``constant`` slots (saturating)."""
    _check(a)
    if constant < 0:
        raise ConfigurationError(f"constant must be >= 0, got {constant}")
    return min(a + constant, n_max)


def inhibit_slots(a: int, b: int) -> Optional[int]:
    """Pass ``a`` iff it strictly precedes ``b``; None otherwise."""
    _check(a, b)
    return a if a < b else None


def _check(*slots: int) -> None:
    for slot in slots:
        if slot < 0:
            raise ConfigurationError(f"Race-Logic slots must be >= 0, got {slot}")


# -- structural cells -----------------------------------------------------------
class Inhibit(Element):
    """Inhibit gate: output = A if A arrives strictly before B.

    A pulse on ``b`` poisons the gate for the rest of the epoch; ``reset``
    re-arms it.  (Built in RSFQ from an NDRO with the inverter-style
    blocking input; modelled behaviourally at the same JJ scale.)
    """

    INPUTS = (
        PortSpec("reset", priority=0),
        PortSpec("b", priority=1),
        PortSpec("a", priority=2),
    )
    OUTPUTS = ("q",)
    jj_count = tech.JJ_NDRO

    def __init__(self, name: str, delay: int = tech.T_NDRO_FS):
        super().__init__(name)
        self.delay = delay
        self._blocked = False
        self._fired = False

    def handle(self, sim, port, time):
        if port == "reset":
            self._blocked = False
            self._fired = False
        elif port == "b":
            self._blocked = True
        elif not self._blocked and not self._fired:
            self._fired = True
            self.emit(sim, "q", time + self.delay)

    def reset(self):
        self._blocked = False
        self._fired = False


def build_delay_chain(circuit: Circuit, name: str, n_slots: int, slot_fs: int) -> Block:
    """An add-constant operator: a JTL chain delaying by ``n_slots`` slots.

    Exposed ports: input ``a``, output ``q``.  One JTL per slot keeps the
    JJ model honest (this is why add-constant is cheap but general RL
    addition is not — the cost the paper's pulse streams remove).
    """
    if n_slots < 1:
        raise ConfigurationError(f"n_slots must be >= 1, got {n_slots}")
    block = Block(circuit, name)
    stages = [
        block.add(Jtl(block.subname(f"jtl{i}"), delay=slot_fs))
        for i in range(n_slots)
    ]
    for first, second in zip(stages, stages[1:]):
        circuit.connect(first, "q", second, "a")
    block.expose_input("a", stages[0], "a")
    block.expose_output("q", stages[-1], "q")
    return block


def max_pool2d_slots(slots, window: int = 2):
    """Race-Logic max pooling over a 2-D grid of arrival slots.

    CNN max pooling is *free* in Race Logic: the pooled value is simply
    the last pulse of the window, one LA gate per reduction (compare a
    binary comparator tree).  Non-overlapping ``window x window`` pooling,
    truncating ragged edges, matching the usual CNN convention.

    Returns the pooled grid (nested lists of slots).
    """
    import numpy as np

    grid = np.asarray(slots, dtype=np.int64)
    if grid.ndim != 2:
        raise ConfigurationError("max_pool2d_slots expects a 2-D grid")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if np.any(grid < 0):
        raise ConfigurationError("Race-Logic slots must be >= 0")
    rows = grid.shape[0] // window
    cols = grid.shape[1] // window
    if rows < 1 or cols < 1:
        raise ConfigurationError("grid smaller than the pooling window")
    pooled = np.zeros((rows, cols), dtype=np.int64)
    for i in range(rows):
        for j in range(cols):
            tile = grid[i * window : (i + 1) * window, j * window : (j + 1) * window]
            pooled[i, j] = int(tile.max())
    return pooled.tolist()


def max_pool_jj(window: int = 2) -> int:
    """JJ cost of one pooled output: an LA-gate reduction tree."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    return (window * window - 1) * tech.JJ_FA


class RaceLogicAlu:
    """A one-operation temporal ALU over an epoch: min / max / inhibit.

    Encodes two unipolar operands, runs the corresponding gate on the
    pulse simulator, and decodes the output slot.
    """

    OPERATIONS = ("min", "max", "inhibit")

    def __init__(
        self, epoch: EpochSpec, operation: str, kernel: Optional[str] = None
    ):
        if operation not in self.OPERATIONS:
            raise ConfigurationError(
                f"operation must be one of {self.OPERATIONS}, got {operation!r}"
            )
        self.epoch = epoch
        self.operation = operation
        self.kernel = kernel
        self.circuit = Circuit(f"rl_{operation}")
        if operation == "min":
            self.gate = self.circuit.add(FirstArrival("gate"))
        elif operation == "max":
            self.gate = self.circuit.add(LastArrival("gate"))
        else:
            self.gate = self.circuit.add(Inhibit("gate"))
        self.probe = self.circuit.probe(self.gate, "q")
        self.circuit.seal()

    @property
    def jj_count(self) -> int:
        return self.gate.jj_count

    def run_slots(self, slot_a: int, slot_b: int) -> Optional[int]:
        """Apply the operation; returns the output slot (None = no pulse)."""
        n_max = self.epoch.n_max
        for slot in (slot_a, slot_b):
            if not 0 <= slot <= n_max:
                raise ConfigurationError(f"slots must be in [0, {n_max}], got {slot}")
        sim = Simulator(self.circuit, kernel=self.kernel)
        sim.reset()
        if slot_a < n_max:
            sim.schedule_input(self.gate, "a", self.epoch.slot_time(slot_a))
        if slot_b < n_max:
            sim.schedule_input(self.gate, "b", self.epoch.slot_time(slot_b))
        sim.run()
        if not self.probe.times:
            return None
        return (self.probe.times[0] - self.gate.delay) // self.epoch.slot_fs
