"""Merger-based unary addition (paper section 4.2-A, Fig 5).

Merging two pulse streams adds their counts — as long as no two pulses
arrive within the merger's dead time, in which case one pulse is silently
lost (Fig 5b).  Collision freedom is bought with latency: the architecture
staggers the M input lanes inside each time slot by the merger's intrinsic
delay, so the minimum slot width (and therefore the computation latency)
grows linearly with M (Fig 5c).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cells.interconnect import Merger
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator


def merger_tree_jj(m_inputs: int) -> int:
    """JJ budget of an M:1 merger tree: (M - 1) 2:1 mergers."""
    _check_m(m_inputs)
    return (m_inputs - 1) * tech.JJ_MERGER


def merger_tree_output_count(counts: Sequence[int]) -> int:
    """Collision-free output count: the plain sum of the input counts."""
    if any(c < 0 for c in counts):
        raise ConfigurationError(f"pulse counts must be >= 0, got {counts}")
    return sum(int(c) for c in counts)


def staggered_offsets(
    m_inputs: int, spacing_fs: int = tech.T_MERGER_DEAD_FS
) -> List[int]:
    """Per-lane time offsets that keep an M:1 merger tree collision-free.

    Lane ``i`` is delayed by ``i * spacing_fs`` so that even if every lane
    pulses in the same time slot, arrivals at each merger stay at least one
    dead time apart.  The required slot width follows:
    ``min_slot_fs = m_inputs * spacing_fs`` (Fig 5c).
    """
    _check_m(m_inputs)
    return [i * spacing_fs for i in range(m_inputs)]


def min_slot_fs(m_inputs: int, spacing_fs: int = tech.T_MERGER_DEAD_FS) -> int:
    """Minimum slot width for collision-free M:1 merger addition."""
    _check_m(m_inputs)
    return m_inputs * spacing_fs


def build_merger_tree(circuit: Circuit, name: str, m_inputs: int) -> Block:
    """Assemble an M:1 merger tree (M a power of two).

    Exposed ports: inputs ``a0`` .. ``a{M-1}``; output ``y``.
    """
    _check_m(m_inputs)
    block = Block(circuit, name)

    frontier = []
    for i in range(m_inputs // 2):
        node = block.add(Merger(block.subname(f"l0_m{i}")))
        block.expose_input(f"a{2 * i}", node, "a")
        block.expose_input(f"a{2 * i + 1}", node, "b")
        frontier.append(node)

    level = 1
    while len(frontier) > 1:
        next_frontier = []
        for i in range(0, len(frontier), 2):
            node = block.add(Merger(block.subname(f"l{level}_m{i // 2}")))
            circuit.connect(frontier[i], "q", node, "a")
            circuit.connect(frontier[i + 1], "q", node, "b")
            next_frontier.append(node)
        frontier = next_frontier
        level += 1

    block.expose_output("y", frontier[0], "q")
    return block


class MergerAdder:
    """Convenience wrapper: an M:1 merger tree with drive/measure helpers."""

    def __init__(self, m_inputs: int, kernel: Optional[str] = None):
        self.m_inputs = _check_m(m_inputs)
        self.kernel = kernel
        self.circuit = Circuit(f"merger_{m_inputs}to1")
        self.block = build_merger_tree(self.circuit, "ma", m_inputs)
        self.output = self.block.probe_output("y")
        self.circuit.seal()

    @property
    def jj_count(self) -> int:
        return self.block.jj_count

    @property
    def collisions(self) -> int:
        """Total pulses lost to collisions across the tree in the last run."""
        return sum(
            element.collisions
            for element in self.block.elements
            if isinstance(element, Merger)
        )

    def run(self, input_times: Sequence[Sequence[int]], stagger: bool = False) -> int:
        """Simulate; optionally apply the collision-avoiding lane stagger."""
        if len(input_times) != self.m_inputs:
            raise ConfigurationError(
                f"expected {self.m_inputs} input trains, got {len(input_times)}"
            )
        offsets = (
            staggered_offsets(self.m_inputs) if stagger else [0] * self.m_inputs
        )
        sim = Simulator(self.circuit, kernel=self.kernel)
        sim.reset()
        for index, times in enumerate(input_times):
            self.block.drive(sim, f"a{index}", [t + offsets[index] for t in times])
        sim.run()
        return self.output.count()


def _check_m(m_inputs: int) -> int:
    if m_inputs < 2 or m_inputs & (m_inputs - 1):
        raise ConfigurationError(
            f"merger tree needs a power-of-two input count >= 2, got {m_inputs}"
        )
    return m_inputs
