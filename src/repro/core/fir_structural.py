"""A fully structural U-SFQ FIR running on the pulse simulator.

This is the integration piece that exercises *every* substrate at pulse
level, epoch after epoch (Fig 17 mapped to the paper's blocks):

* input samples arrive as Race-Logic pulses, one per epoch;
* the tapped delay line is a chain of interleaved-buffer memory cells
  (:class:`~repro.core.buffer.RlMemoryCell`), delaying each sample by one
  epoch per tap;
* coefficients live in the NDRO :class:`~repro.core.membank.CoefficientBank`
  and are read out every epoch as TFF2-chain PNM pulse streams;
* each tap is a single-NDRO unipolar multiplier;
* tap products are summed by a balancer counting network, and the output
  stream's per-epoch pulse count is the filter output.

Configurations are intentionally small (the paper's own WRspice testbench
is a "small DPU netlist"); the vectorised :class:`~repro.core.fir.UnaryFirFilter`
covers evaluation-scale sweeps.  :meth:`StructuralUnaryFir.reference_counts`
computes the exact expected counts so tests can assert pulse-for-pulse
agreement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cells.interconnect import Splitter
from repro.core.buffer import RlMemoryCell
from repro.core.counting import build_counting_network
from repro.core.membank import CoefficientBank
from repro.core.multiplier import SETUP_FS, build_unipolar_multiplier
from repro.core.pnm import pnm_pass_counts
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator


class StructuralUnaryFir:
    """A taps-wide unipolar FIR netlist with per-epoch streaming operation.

    Args:
        epoch: Epoch geometry (keep ``bits`` <= 6 for tractable runs).
        coefficient_words: Unsigned coefficient words, one per tap
            (tap ``k`` multiplies ``x[n - k]``).  The tap count must be a
            power of two between 2 and 8.
    """

    MAX_BITS = 6
    MAX_TAPS = 8

    def __init__(
        self,
        epoch: EpochSpec,
        coefficient_words: Sequence[int],
        kernel: Optional[str] = None,
    ):
        taps = len(coefficient_words)
        if taps < 2 or taps & (taps - 1) or taps > self.MAX_TAPS:
            raise ConfigurationError(
                f"taps must be a power of two in [2, {self.MAX_TAPS}], got {taps}"
            )
        if epoch.bits > self.MAX_BITS:
            raise ConfigurationError(
                f"structural FIR supports bits <= {self.MAX_BITS}, got {epoch.bits}"
            )
        self.epoch = epoch
        self.taps = taps
        self.kernel = kernel
        self.bank = CoefficientBank(epoch, taps)
        self.bank.write_all(list(coefficient_words))

        self.circuit = Circuit(f"structural_fir_{taps}")
        self.network = build_counting_network(self.circuit, "cn", taps)
        self.output = self.network.probe_output("y")

        # Per-tap multiplier wired into the counting network.
        self.multipliers = []
        for k in range(taps):
            mult = build_unipolar_multiplier(self.circuit, f"tap{k}")
            src, src_port = mult.output("out")
            dst, dst_port = self.network.input(f"a{k}")
            self.circuit.connect(src, src_port, dst, dst_port)
            self.multipliers.append(mult)

        # Tapped delay line: x -> [tap0], memcell -> [tap1], memcell -> ...
        self.delay_cells: List[RlMemoryCell] = []
        self.taps_in: List = []  # (element, port) receiving each tap's RL pulse
        previous_source = None
        for k in range(taps):
            b_element, b_port = self.multipliers[k].input("b")
            if k == 0:
                self.taps_in.append((b_element, b_port))
                continue
            memcell = self.circuit.add(
                RlMemoryCell(f"delay{k}", epoch.duration_fs)
            )
            splitter = self.circuit.add(Splitter(f"fan{k}", delay=0))
            self.circuit.connect(memcell, "out", splitter, "a")
            self.circuit.connect(splitter, "q1", b_element, b_port)
            if previous_source is not None:
                prev_splitter = previous_source
                self.circuit.connect(prev_splitter, "q2", memcell, "in")
            self.delay_cells.append(memcell)
            previous_source = splitter
        # Feed the head of the delay line and tap 0 from the same input.
        self._head = self.circuit.add(Splitter("head", delay=0))
        self.circuit.connect(self._head, "q1", *self.taps_in[0])
        if self.delay_cells:
            self.circuit.connect(self._head, "q2", self.delay_cells[0], "in")
        self.circuit.seal()

    @property
    def jj_count(self) -> int:
        """Structural JJ total (cells actually instantiated)."""
        return self.circuit.jj_count + self.bank.jj_count

    def process_slots(self, slots: Sequence[int]) -> List[int]:
        """Stream Race-Logic samples through the filter, one per epoch.

        Returns the output pulse count observed in each epoch window.
        """
        n_max = self.epoch.n_max
        for slot in slots:
            if not 0 <= slot <= n_max:
                raise ConfigurationError(
                    f"slots must be in [0, {n_max}], got {slot}"
                )
        sim = Simulator(self.circuit, kernel=self.kernel)
        sim.reset()
        duration = self.epoch.duration_fs
        for index, slot in enumerate(slots):
            base = index * duration
            # Arm every multiplier at the epoch start.
            for mult in self.multipliers:
                element, port = mult.input("epoch")
                sim.schedule_input(element, port, base)
            # The sample enters the delay line (slot == n_max -> no pulse,
            # encoding the value 1.0 which never resets the NDROs).
            if slot < n_max:
                sim.schedule_input(
                    self._head, "a", base + SETUP_FS + slot * self.epoch.slot_fs
                )
            # Coefficient streams from the bank, one per tap, every epoch.
            for k in range(self.taps):
                element, port = self.multipliers[k].input("a")
                for t in self.bank.stream_times(k):
                    sim.schedule_input(element, port, base + SETUP_FS + t)
        sim.run()
        # Every output pulse of epoch i lands at exactly
        #   i*T + SETUP + slot*s + (NDRO delay + levels * balancer delay),
        # so windows offset by that fixed datapath delay partition the
        # output stream cleanly between epochs.
        from repro.models import technology as tech

        levels = self.taps.bit_length() - 1
        datapath = tech.T_NDRO_FS + levels * tech.T_BALANCER_OUT_FS
        offset = SETUP_FS + datapath
        return [
            self.output.count(i * duration + offset - 1, (i + 1) * duration + offset - 1)
            for i in range(len(slots))
        ]

    def reference_counts(self, slots: Sequence[int]) -> List[int]:
        """Exact expected per-epoch counts (PNM filtering + stateful cascade).

        Balancer toggles persist across epochs, so a node whose state is 1
        at an epoch boundary sends that epoch's *floor* half to Y1 instead
        of the ceiling — the model tracks every node's state exactly as the
        netlist does.
        """
        n_max = self.epoch.n_max
        levels = self.taps.bit_length() - 1
        # One state per balancer, level by level (0 -> next pulse exits Y1).
        states = [[0] * (self.taps >> (level + 1)) for level in range(levels)]
        outputs = []
        for index in range(len(slots)):
            counts = []
            for k in range(self.taps):
                word = self.bank.read(k)
                if index - k < 0:
                    # Before the sample reaches tap k its multiplier's NDRO
                    # is armed each epoch but never reset, passing the whole
                    # coefficient stream (the x = 1.0 convention).
                    counts.append(word)
                    continue
                slot = slots[index - k]
                if slot >= n_max:
                    counts.append(word)
                else:
                    counts.append(int(pnm_pass_counts(word, slot, self.epoch.bits)))
            for level in range(levels):
                next_counts = []
                for node in range(len(counts) // 2):
                    total = counts[2 * node] + counts[2 * node + 1]
                    state = states[level][node]
                    # State 0: Y1 takes the ceiling; state 1: the floor.
                    next_counts.append((total + (1 - state)) // 2)
                    states[level][node] = state ^ (total & 1)
                counts = next_counts
            outputs.append(counts[0])
        return outputs
