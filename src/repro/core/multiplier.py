"""U-SFQ multipliers (paper section 4.1, Figs 3 and 4).

The multiplier crosses the two unary encodings: the pulse-stream operand A
feeds an NDRO's non-destructive read port, and the Race-Logic operand B
resets the NDRO when its pulse arrives — so exactly the stream pulses in
slots *before* B's slot pass through.  What remains is the product
``p_A * p_B``, still a pulse stream.

* Unipolar (Fig 3c left): one NDRO; epoch-start sets, RL resets, stream
  reads.
* Bipolar (Fig 3c right): the stochastic-computing XNOR. The top NDRO
  passes ``A`` before B arrives, the bottom NDRO passes ``not A`` after,
  and a merger combines them: ``OUT = (A and B) or (not A and not B)``,
  which multiplies in the bipolar domain.

Functional pulse-count models with the same quantisation semantics are
provided for fast sweeps and cross-validation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cells.interconnect import Jtl, Merger, Splitter
from repro.cells.logic import Inverter
from repro.cells.storage import Ndro
from repro.encoding.epoch import EpochSpec
from repro.encoding.pulsestream import PulseStreamCodec
from repro.encoding.racelogic import RaceLogicCodec
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator

#: JJ budgets used by the area models.  The bipolar multiplier is the
#: headline 46-JJ block (2 NDROs + inverter + merger + splitters + JTL),
#: which reproduces the paper's 25-200x (vs wave-pipelined) and 370x (vs
#: the 17 kJJ bit-parallel [37]) area-savings anchors.
MULTIPLIER_UNIPOLAR_JJ = 16  # NDRO + splitter + JTL
MULTIPLIER_BIPOLAR_JJ = 46
MULTIPLIER_JJ = MULTIPLIER_BIPOLAR_JJ

#: Offset between the epoch-start marker and time slot 0.  The marker must
#: arm the NDROs *before* the first slot so that a Race-Logic operand of 0
#: (reset in slot 0) blocks the whole stream.
SETUP_FS = tech.T_SPLITTER_FS * 2


# -- functional models ---------------------------------------------------------
def unipolar_product_count(
    n_a: int,
    slot_b: int,
    n_max: int,
    ticks: Optional[Sequence[int]] = None,
) -> int:
    """Pulses surviving the RL filter: stream ticks in slots < ``slot_b``.

    For the default floor-uniform stream (tick_k = floor(k * n_max / n_a))
    this equals ``ceil(n_a * slot_b / n_max)`` — the quantised product.
    An explicit tick pattern (e.g. a PNM readout) may be supplied.
    """
    _check_operands(n_a, slot_b, n_max)
    if ticks is not None:
        return sum(1 for t in ticks if t < slot_b)
    if n_a == 0:
        return 0
    return -((-n_a * slot_b) // n_max)  # ceil(n_a * slot_b / n_max)


def bipolar_product_count(
    n_a: int,
    slot_b: int,
    n_max: int,
    ticks: Optional[Sequence[int]] = None,
) -> int:
    """Output count of the XNOR-style bipolar multiplier.

    ``pass_top`` counts A's pulses before B;  ``pass_bottom`` counts the
    complement stream's pulses at/after B.  Decoded bipolar, the result is
    the product of the operands' bipolar values (up to quantisation).
    """
    _check_operands(n_a, slot_b, n_max)
    if ticks is None:
        pass_top = unipolar_product_count(n_a, slot_b, n_max)
    else:
        pass_top = sum(1 for t in ticks if t < slot_b)
    # Complement stream has (n_max - n_a) pulses; those at/after slot_b pass.
    # Slots >= slot_b total (n_max - slot_b); of those, (n_a - pass_top)
    # belong to A, the rest to the complement.
    pass_bottom = (n_max - slot_b) - (n_a - pass_top)
    return pass_top + pass_bottom


def _check_operands(n_a: int, slot_b: int, n_max: int) -> None:
    if n_max < 1:
        raise ConfigurationError(f"n_max must be >= 1, got {n_max}")
    if not 0 <= n_a <= n_max:
        raise ConfigurationError(f"stream count must be in [0, {n_max}], got {n_a}")
    if not 0 <= slot_b <= n_max:
        raise ConfigurationError(f"RL slot must be in [0, {n_max}], got {slot_b}")


# -- structural builders -------------------------------------------------------
def build_unipolar_multiplier(circuit: Circuit, name: str) -> Block:
    """One-NDRO unipolar multiplier (Fig 3c left).

    Exposed ports: inputs ``a`` (pulse stream), ``b`` (Race Logic),
    ``epoch`` (epoch-start marker); output ``out``.
    """
    block = Block(circuit, name)
    ndro = block.add(Ndro(block.subname("ndro")))
    jtl = block.add(Jtl(block.subname("jtl")))
    splitter = block.add(Splitter(block.subname("split_e")))

    # The splitter fans the epoch marker so composite blocks (e.g. the
    # bipolar multiplier or a PE) can reuse it; the spare leg ends in a JTL.
    circuit.connect(splitter, "q1", ndro, "set")
    circuit.connect(splitter, "q2", jtl, "a")

    block.expose_input("a", ndro, "clk")
    block.expose_input("b", ndro, "reset")
    block.expose_input("epoch", splitter, "a")
    block.expose_output("out", ndro, "q")
    return block


def build_bipolar_multiplier(circuit: Circuit, name: str) -> Block:
    """Two-NDRO + inverter bipolar multiplier (Fig 3c right).

    Exposed ports: inputs ``a`` (stream), ``b`` (RL), ``epoch``, and
    ``refclk`` (the maximum-rate reference the inverter needs to form
    ``not A``); output ``out``.
    """
    block = Block(circuit, name)
    split_a = block.add(Splitter(block.subname("split_a")))
    split_b = block.add(Splitter(block.subname("split_b")))
    split_e = block.add(Splitter(block.subname("split_e")))
    ref_jtl1 = block.add(Jtl(block.subname("ref_jtl1")))
    ref_jtl2 = block.add(Jtl(block.subname("ref_jtl2")))
    inverter = block.add(Inverter(block.subname("inv")))
    top = block.add(Ndro(block.subname("ndro_top")))
    # Path-balancing JTL: the complement branch is one inverter delay plus
    # one JTL longer than the direct branch; matching them keeps the two
    # pulse groups slot-aligned so downstream balancers see clean pairs
    # instead of t_BFF hazards.
    top_balance = block.add(
        Jtl(block.subname("top_balance"), delay=tech.T_INV_FS + tech.T_JTL_FS // 2)
    )
    bottom = block.add(Ndro(block.subname("ndro_bot")))
    merger = block.add(Merger(block.subname("merge_out")))

    # Stream A reads the top NDRO and feeds the inverter.
    circuit.connect(split_a, "q1", top, "clk")
    circuit.connect(split_a, "q2", inverter, "a")
    # The reference clock is delayed two JTLs so, within a slot, the data
    # pulse reaches the inverter before the clock samples it.
    circuit.connect(ref_jtl1, "q", ref_jtl2, "a")
    circuit.connect(ref_jtl2, "q", inverter, "clk")
    circuit.connect(inverter, "q", bottom, "clk")
    # RL operand B: resets the top (blocks A from its slot on), sets the
    # bottom (passes the complement from its slot on).
    circuit.connect(split_b, "q1", top, "reset")
    circuit.connect(split_b, "q2", bottom, "set")
    # Epoch marker: arms the top, clears the bottom.
    circuit.connect(split_e, "q1", top, "set")
    circuit.connect(split_e, "q2", bottom, "reset")
    # Combine both branches (the top through its path-balancing JTL).
    circuit.connect(top, "q", top_balance, "a")
    circuit.connect(top_balance, "q", merger, "a")
    circuit.connect(bottom, "q", merger, "b")

    block.expose_input("a", split_a, "a")
    block.expose_input("b", split_b, "a")
    block.expose_input("epoch", split_e, "a")
    block.expose_input("refclk", ref_jtl1, "a")
    block.expose_output("out", merger, "q")
    return block


# -- convenience wrappers ------------------------------------------------------
class UnipolarMultiplier:
    """A self-contained unipolar multiplier with encode/run/decode helpers.

    The netlist is fully built here, so the constructor seals it — every
    ``run_counts`` reuses the compiled kernel tables.  ``kernel`` pins the
    simulator kernel for this instance (default: resolve per run).
    """

    jj_count = MULTIPLIER_UNIPOLAR_JJ

    def __init__(self, epoch: EpochSpec, kernel: Optional[str] = None, trace=None):
        self.epoch = epoch
        self.kernel = kernel
        #: Optional :class:`repro.trace.TraceSession` passed to every
        #: simulator this wrapper builds (attach taps separately).
        self.trace = trace
        self.streams = PulseStreamCodec(epoch)
        self.race = RaceLogicCodec(epoch)
        self.circuit = Circuit("unipolar_multiplier")
        self.block = build_unipolar_multiplier(self.circuit, "mul")
        self.output = self.block.probe_output("out")
        self.circuit.seal()

    def run_counts(self, n_a: int, slot_b: int) -> int:
        """Multiply a pulse count by an RL slot; returns the output count."""
        sim = Simulator(self.circuit, kernel=self.kernel, trace=self.trace)
        sim.reset()
        self.block.drive(sim, "epoch", 0)
        self.block.drive(
            sim, "a", [t + SETUP_FS for t in self.streams.times_for_count(n_a)]
        )
        if slot_b < self.epoch.n_max:
            self.block.drive(sim, "b", SETUP_FS + self.epoch.slot_time(slot_b))
        sim.run()
        return self.output.count()

    def multiply(self, a_value: float, b_value: float) -> float:
        """Multiply two unipolar values; returns the decoded product."""
        n_a = self.streams.count_for_unipolar(a_value)
        slot_b = self.race.slot_for_unipolar(b_value)
        return self.run_counts(n_a, slot_b) / self.epoch.n_max


class BipolarMultiplier:
    """A self-contained bipolar multiplier with encode/run/decode helpers."""

    jj_count = MULTIPLIER_BIPOLAR_JJ

    def __init__(self, epoch: EpochSpec, kernel: Optional[str] = None, trace=None):
        self.epoch = epoch
        self.kernel = kernel
        #: Optional :class:`repro.trace.TraceSession` passed to every
        #: simulator this wrapper builds (attach taps separately).
        self.trace = trace
        self.streams = PulseStreamCodec(epoch)
        self.race = RaceLogicCodec(epoch)
        self.circuit = Circuit("bipolar_multiplier")
        self.block = build_bipolar_multiplier(self.circuit, "mul")
        self.output = self.block.probe_output("out")
        self.circuit.seal()

    def run_counts(self, n_a: int, slot_b: int) -> int:
        """Multiply a stream count by an RL slot; returns the output count."""
        sim = Simulator(self.circuit, kernel=self.kernel, trace=self.trace)
        sim.reset()
        self.block.drive(sim, "epoch", 0)
        self.block.drive(
            sim, "a", [t + SETUP_FS for t in self.streams.times_for_count(n_a)]
        )
        self.block.drive(
            sim,
            "refclk",
            [t + SETUP_FS for t in self.streams.times_for_count(self.epoch.n_max)],
        )
        if slot_b < self.epoch.n_max:
            self.block.drive(sim, "b", SETUP_FS + self.epoch.slot_time(slot_b))
        sim.run()
        return self.output.count()

    def multiply(self, a_value: float, b_value: float) -> float:
        """Multiply two bipolar values; returns the decoded bipolar product."""
        n_a = self.streams.count_for_bipolar(a_value)
        slot_b = self.race.slot_for_bipolar(b_value)
        count = self.run_counts(n_a, slot_b)
        return 2.0 * count / self.epoch.n_max - 1.0
