"""A gate-level binary shift-and-add multiplier on the pulse simulator.

Completes the structural binary baseline: partial products form in a row
of clocked AND gates and accumulate through the gate-level
:class:`~repro.core.binary_adder.RippleCarryAdder`, one shifted addend per
operand bit — the sequential multiply-accumulate organisation the paper
attributes to practical binary SFQ prototypes ([21]: "four 4-bit
multiply-accumulation units").

Every partial-product step is simulated at pulse level; the JJ model
covers the sequential datapath (AND row + double-width adder + operand /
accumulator DFF registers + the clock tree all those clocked cells
require).  For 8 bits this lands at the low end of the published Table 2
multiplier range — and ~50x the U-SFQ multiplier's 46 JJs.
"""

from __future__ import annotations

from repro.cells.clocked import JJ_AND
from repro.core.binary_adder import RippleCarryAdder
from repro.errors import ConfigurationError
from repro.models import technology as tech


class ShiftAddMultiplier:
    """A ``bits x bits -> 2*bits`` sequential binary multiplier."""

    def __init__(self, bits: int):
        if not 1 <= bits <= 8:
            raise ConfigurationError(f"bits must be in [1, 8], got {bits}")
        self.bits = bits
        self.adder = RippleCarryAdder(2 * bits)
        self.partial_product_steps = 0

    @property
    def jj_count(self) -> int:
        """Sequential datapath: AND row + adder + registers + clock tree."""
        and_row = 2 * self.bits * JJ_AND
        registers = 3 * 2 * self.bits * tech.JJ_DFF  # x, y, accumulator
        return and_row + self.adder.jj_count + registers + self.adder.clock_tree_jj

    def latency_fs(self) -> int:
        """``bits`` sequential passes through the double-width adder."""
        return self.bits * self.adder.latency_fs()

    def multiply(self, x: int, y: int) -> int:
        """Pulse-level shift-and-add; returns ``x * y``."""
        limit = 1 << self.bits
        for operand in (x, y):
            if not 0 <= operand < limit:
                raise ConfigurationError(
                    f"operands must fit in {self.bits} bits, got {operand}"
                )
        accumulator = 0
        mask = (1 << (2 * self.bits)) - 1
        for i in range(self.bits):
            if (x >> i) & 1:
                addend = (y << i) & mask
                total = self.adder.add(accumulator, addend)
                accumulator = total & mask
                self.partial_product_steps += 1
        return accumulator
