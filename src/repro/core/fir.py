"""The U-SFQ FIR filter accelerator and its binary baseline (section 5.4).

The unary FIR composes every substrate the paper introduces: coefficients
live in the NDRO memory bank and are read out as pulse streams through the
TFF2-chain PNM; input samples are Race-Logic pulses delayed through the
integrator-based RL shift register; each tap is a bipolar multiplier; and
the tap products are summed by a counting network.  One output sample is
produced per computing epoch.

:class:`UnaryFirFilter` implements that pipeline functionally with exact
pulse-count semantics (vectorised over the sample stream) plus hooks for
the three physical error modes of section 5.4.1:

* ``pulse_loss_rate`` — stream pulses lost to collisions/flux trapping.
  Each lost pulse perturbs the decoded value by one ``1/2**bits`` weight;
  losses hit the differential pulse-stream pair's rails symmetrically, so
  the perturbation is zero-mean (this is what makes a 30 % loss cost only
  ~4 dB at 16 bits — no pulse is a most-significant bit);
* ``rl_loss_rate`` — a lost Race-Logic pulse (the NDRO is never reset, so
  the whole stream passes: the sample is read as full scale).  The paper
  calls this out as the damaging mode: "all the information is
  concentrated in a single pulse";
* ``rl_delay_rate``/``rl_delay_slots`` — RL pulses displaced outside their
  expected time slot by delay variations (±30 % of a slot lands the pulse
  in a neighbouring slot), shifting the operand by a slot or two.

Two arithmetic modes are provided.  ``exact_counting=True`` (default) uses
the counting network's physical ceil-cascade, whose output resolution is
``2 * taps / 2**bits`` — coarse at low bit counts.  ``exact_counting=False``
reproduces the paper's Octave model, which quantises operands and tap
products but sums them at full precision (the benchmark suite carries an
ablation comparing the two).

:class:`BinaryFirFilter` is the fixed-point baseline with the paper's
bit-flip error model.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.pnm import pnm_pass_counts
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


def _next_pow2(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


class UnaryFirFilter:
    """Bipolar U-SFQ FIR with pulse-count-exact semantics and error hooks.

    Args:
        epoch: Epoch geometry (bits -> resolution).
        coefficients: Filter impulse response, values in [-1, 1].
        pulse_loss_rate: Fraction of output-stream pulses lost (zero-mean
            per-pulse perturbation; see module docstring).
        rl_loss_rate: Per-tap probability that the sample's RL pulse is
            lost for that tap's multiplier.
        rl_delay_rate: Per-tap probability of an RL timing displacement.
        rl_delay_slots: Maximum displacement in slots (default 1: a ±30 %
            slot-delay variation lands in the neighbouring slot).
        exact_counting: True for the physical counting-network cascade;
            False for the paper's full-precision-sum Octave model.
        seed: RNG seed for reproducible error injection.
    """

    def __init__(
        self,
        epoch: EpochSpec,
        coefficients: Sequence[float],
        pulse_loss_rate: float = 0.0,
        rl_loss_rate: float = 0.0,
        rl_delay_rate: float = 0.0,
        rl_delay_slots: int = 1,
        exact_counting: bool = True,
        seed: Optional[int] = None,
    ):
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.ndim != 1 or coefficients.size < 1:
            raise ConfigurationError("coefficients must be a non-empty 1-D array")
        if np.any(np.abs(coefficients) > 1.0):
            raise ConfigurationError("coefficients must lie in [-1, 1]")
        for rate in (pulse_loss_rate, rl_loss_rate, rl_delay_rate):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"error rates must be in [0, 1], got {rate}")
        if rl_delay_slots < 1:
            raise ConfigurationError(
                f"rl_delay_slots must be >= 1, got {rl_delay_slots}"
            )
        self.epoch = epoch
        self.coefficients = coefficients
        self.taps = coefficients.size
        self.length = _next_pow2(max(2, self.taps))
        self.pulse_loss_rate = pulse_loss_rate
        self.rl_loss_rate = rl_loss_rate
        self.rl_delay_rate = rl_delay_rate
        self.rl_delay_slots = rl_delay_slots
        self.exact_counting = exact_counting
        self.rng = np.random.default_rng(seed)

        n_max = epoch.n_max
        # Bipolar stream counts of the coefficients; padding taps encode
        # bipolar zero (n_max / 2) so they contribute nothing to the sum.
        # Counts are clipped to n_max - 1: the PNM's maximum burst.
        counts = np.rint((coefficients + 1.0) / 2.0 * n_max).astype(np.int64)
        self._h_counts = np.full(self.length, n_max // 2, dtype=np.int64)
        self._h_counts[: self.taps] = np.clip(counts, 0, n_max - 1)

    # -- area ------------------------------------------------------------------
    @property
    def jj_count(self) -> int:
        """Datapath + memory JJ budget (the Fig 18c model)."""
        from repro.models import area

        return area.fir_unary_jj(self.taps, self.epoch.bits)

    # -- filtering ---------------------------------------------------------------
    def process(self, samples: Sequence[float]) -> np.ndarray:
        """Filter a sample stream (values in [-1, 1]); returns the output.

        Output sample ``n`` is ``sum_k h[k] * x[n-k]`` with U-SFQ
        quantisation and any configured error injection.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ConfigurationError("samples must be 1-D")
        if samples.size == 0:
            return np.zeros(0)
        if np.any(np.abs(samples) > 1.0):
            raise ConfigurationError("samples must lie in [-1, 1]")

        n_max = self.epoch.n_max
        n_samples = samples.size
        slots = np.rint((samples + 1.0) / 2.0 * n_max).astype(np.int64)
        slots = np.clip(slots, 0, n_max)

        # Delay line: tap k sees x[n - k]; pre-history is bipolar zero.
        lagged = np.full((n_samples, self.length), n_max // 2, dtype=np.int64)
        for k in range(self.taps):
            lagged[k:, k] = slots[: n_samples - k]

        # Error (iii): RL displacement into a neighbouring slot.
        if self.rl_delay_rate > 0.0:
            hits = self.rng.random(lagged.shape) < self.rl_delay_rate
            shift = self.rng.integers(
                1, self.rl_delay_slots + 1, size=lagged.shape
            ) * self.rng.choice([-1, 1], size=lagged.shape)
            lagged = np.where(hits, np.clip(lagged + shift, 0, n_max), lagged)

        # Error (ii): a lost RL pulse never resets the NDRO -> full scale.
        if self.rl_loss_rate > 0.0:
            hits = self.rng.random(lagged.shape) < self.rl_loss_rate
            lagged = np.where(hits, n_max, lagged)

        h = np.broadcast_to(self._h_counts, lagged.shape)
        if self.exact_counting:
            # Physical model.  Per tap, the top NDRO passes the PNM
            # stream's ticks below the RL slot and the bottom passes the
            # complement's remainder; the counting-network ceil cascade
            # then reduces across taps (output carries <= n_max pulses).
            top = pnm_pass_counts(h, lagged, self.epoch.bits)
            counts = top + (n_max - lagged) - (h - top)
            while counts.shape[-1] > 1:
                counts = (counts[..., 0::2] + counts[..., 1::2] + 1) // 2
            counts = counts[..., 0]
        else:
            # Paper's Octave model: operands are quantised to the unary
            # grid but products and the across-tap sum are exact, so the
            # only arithmetic noise left is the per-pulse weight.
            h_b = 2.0 * h / n_max - 1.0
            x_b = 2.0 * lagged / n_max - 1.0
            tap_counts = (h_b * x_b + 1.0) / 2.0 * n_max
            counts = np.rint(tap_counts.sum(axis=-1)).astype(np.int64)

        # Error (i): stream pulses lost on the output lane; losses hit the
        # differential pair's rails with equal probability, so each lost
        # pulse perturbs the decoded value by +-weight with zero mean.
        if self.pulse_loss_rate > 0.0:
            lost = self.rng.binomial(counts, self.pulse_loss_rate)
            signed = 2 * self.rng.binomial(lost, 0.5) - lost
            counts = counts + signed

        if self.exact_counting:
            return (2.0 * counts / n_max - 1.0) * self.length
        return 2.0 * counts / n_max - self.length

    def ideal_response(self, samples: Sequence[float]) -> np.ndarray:
        """Float reference: same topology, no quantisation, no errors."""
        samples = np.asarray(samples, dtype=float)
        out = np.convolve(samples, self.coefficients)[: samples.size]
        return out


class BinaryFirFilter:
    """Fixed-point binary FIR baseline with the bit-flip error model.

    Coefficients and samples are quantised to ``bits``-wide two's
    complement fractions; with probability ``bit_flip_rate`` per output
    sample one uniformly chosen bit of the result word flips — the paper's
    binary error model, whose damage depends on the flipped bit's weight
    (Fig 19b).
    """

    def __init__(
        self,
        bits: int,
        coefficients: Sequence[float],
        bit_flip_rate: float = 0.0,
        seed: Optional[int] = None,
    ):
        if not 2 <= bits <= 24:
            raise ConfigurationError(f"bits must be in [2, 24], got {bits}")
        coefficients = np.asarray(coefficients, dtype=float)
        if coefficients.ndim != 1 or coefficients.size < 1:
            raise ConfigurationError("coefficients must be a non-empty 1-D array")
        if not 0.0 <= bit_flip_rate <= 1.0:
            raise ConfigurationError(
                f"bit_flip_rate must be in [0, 1], got {bit_flip_rate}"
            )
        self.bits = bits
        self.coefficients = coefficients
        self.taps = coefficients.size
        self.bit_flip_rate = bit_flip_rate
        self.rng = np.random.default_rng(seed)
        self._scale = 1 << (bits - 1)
        self._h_fixed = self._quantise(coefficients)

    @property
    def jj_count(self) -> int:
        from repro.models import area

        return area.fir_binary_jj(self.taps, self.bits)

    def _quantise(self, values: np.ndarray) -> np.ndarray:
        fixed = np.rint(np.clip(values, -1.0, 1.0) * self._scale)
        return np.clip(fixed, -self._scale, self._scale - 1).astype(np.int64)

    def process(self, samples: Sequence[float]) -> np.ndarray:
        """Filter a sample stream with fixed-point arithmetic + bit flips."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ConfigurationError("samples must be 1-D")
        if samples.size == 0:
            return np.zeros(0)
        x_fixed = self._quantise(samples)
        acc = np.convolve(x_fixed, self._h_fixed)[: samples.size]
        # Accumulator keeps 2B-1 fractional bits; round back to B bits.
        out = np.rint(acc / self._scale).astype(np.int64)
        out = np.clip(out, -self._scale * self.taps, self._scale * self.taps)

        if self.bit_flip_rate > 0.0:
            hits = self.rng.random(out.size) < self.bit_flip_rate
            if np.any(hits):
                flip_bits = self.rng.integers(0, self.bits, size=out.size)
                flips = np.where(hits, 1 << flip_bits, 0)
                out = out ^ flips

        return out / self._scale

    def ideal_response(self, samples: Sequence[float]) -> np.ndarray:
        samples = np.asarray(samples, dtype=float)
        return np.convolve(samples, self.coefficients)[: samples.size]
