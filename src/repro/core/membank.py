"""Coefficient memory bank (paper section 4.3, Fig 9b bottom).

DSP coefficients are written once and re-read every epoch, so the bank is
built from NDROs (non-destructive readout) exactly as in a binary SFQ
design; what differs in U-SFQ is the *readout path*: the shared TFF2-chain
PNM clock sweeps the NDRO word and mergers form the pulse stream, costing
"a 10 % area overhead compared to a binary implementation".

:class:`CoefficientBank` is the functional model: words in, per-epoch
pulse-stream times out (using the TFF2-chain tick pattern of
:func:`repro.core.pnm.pnm_tick_pattern`).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.pnm import pnm_tick_pattern
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError
from repro.models import technology as tech

#: Mergers + clock distribution add 10 % on top of the binary NDRO bank.
STREAM_READOUT_OVERHEAD = 0.10


def membank_jj(n_words: int, bits: int) -> int:
    """JJ budget: NDRO array plus the 10 % stream-forming overhead."""
    if n_words < 1 or bits < 1:
        raise ConfigurationError(
            f"need n_words >= 1 and bits >= 1, got {n_words}, {bits}"
        )
    binary_bank = n_words * bits * tech.JJ_NDRO
    return round(binary_bank * (1.0 + STREAM_READOUT_OVERHEAD))


class CoefficientBank:
    """Stores unsigned ``bits``-wide words and reads them out as streams.

    The pulse times reproduce what the TFF2-chain PNM emits for the stored
    word: clock tick ``t`` of the epoch maps to slot ``t``.
    """

    def __init__(self, epoch: EpochSpec, n_words: int):
        if n_words < 1:
            raise ConfigurationError(f"n_words must be >= 1, got {n_words}")
        self.epoch = epoch
        self.n_words = n_words
        self._words: List[int] = [0] * n_words

    @property
    def bits(self) -> int:
        return self.epoch.bits

    @property
    def jj_count(self) -> int:
        return membank_jj(self.n_words, self.bits)

    # -- programming -------------------------------------------------------
    def write(self, index: int, word: int) -> None:
        """Store an unsigned word (0 .. 2**bits - 1)."""
        self._check_index(index)
        if not 0 <= word < (1 << self.bits):
            raise ConfigurationError(
                f"word must fit in {self.bits} bits, got {word}"
            )
        self._words[index] = word

    def write_all(self, words: Sequence[int]) -> None:
        if len(words) != self.n_words:
            raise ConfigurationError(
                f"expected {self.n_words} words, got {len(words)}"
            )
        for index, word in enumerate(words):
            self.write(index, word)

    def read(self, index: int) -> int:
        self._check_index(index)
        return self._words[index]

    # -- readout ----------------------------------------------------------
    def tick_pattern(self, index: int) -> List[int]:
        """Slot indices at which the stored word's stream pulses."""
        return pnm_tick_pattern(self.read(index), self.bits)

    def stream_times(self, index: int, epoch_index: int = 0) -> List[int]:
        """Absolute pulse times of the word's stream in ``epoch_index``."""
        start = self.epoch.epoch_start(epoch_index)
        return [start + t * self.epoch.slot_fs for t in self.tick_pattern(index)]

    def stream_count(self, index: int) -> int:
        """Pulses per epoch for the stored word (equals the word itself)."""
        return self.read(index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n_words:
            raise ConfigurationError(
                f"word index must be in [0, {self.n_words}), got {index}"
            )
