"""Pulse-number multipliers (paper section 4.3, Fig 9).

A PNM turns a programmed binary word into a pulse stream.  The paper
contrasts two designs:

* the *typical* PNM ([32, 46, 48], Fig 9a): a TFF divider ladder discharged
  per trigger — the programmed number of pulses emerges as a **burst** at
  the maximum rate, i.e. non-uniformly spaced across the epoch, which hurts
  the multiplier's accuracy (modelled here as :class:`BurstPnm`);
* the proposed TFF2-chain PNM (Fig 9b): each TFF2 peels every second pulse
  off the divided clock into the stream and forwards the rest down the
  chain, producing **disjoint, interleaved** binary-weighted tick sets —
  a near-uniform-rate stream (:func:`build_tff2_pnm`, structural).

The tick set of the TFF2 chain has a closed form used throughout the
functional models: clock tick ``t`` (0-based) belongs to chain stage
``trailing_ones(t) + 1``, which carries bit ``bits - 1 - trailing_ones(t)``
of the word (:func:`pnm_tick_pattern`).  The all-ones word therefore yields
``2**bits - 1`` pulses ("1111" -> 15 in Fig 9a) and ``0100`` yields 4.
"""

from __future__ import annotations

from typing import List

from repro.cells.interconnect import Merger
from repro.cells.storage import Ndro
from repro.cells.toggle import Tff2
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.element import Element, PortSpec
from repro.pulsesim.netlist import Circuit


def _check_word(word: int, bits: int) -> None:
    if not 1 <= bits <= 20:
        raise ConfigurationError(f"bits must be in [1, 20], got {bits}")
    if not 0 <= word < (1 << bits):
        raise ConfigurationError(f"word must fit in {bits} bits, got {word}")


def _trailing_ones(value: int) -> int:
    count = 0
    while value & 1:
        value >>= 1
        count += 1
    return count


def pnm_tick_pattern(word: int, bits: int) -> List[int]:
    """Clock ticks (0 .. 2**bits - 2) at which the TFF2-chain PNM pulses.

    Tick ``t`` pulses iff bit ``bits - 1 - trailing_ones(t)`` of ``word``
    is set; tick ``2**bits - 1`` (all trailing ones) falls off the end of
    the chain.  ``len(pattern) == word`` for every word.
    """
    _check_word(word, bits)
    ticks = []
    for t in range((1 << bits) - 1):
        bit_index = bits - 1 - _trailing_ones(t)
        if (word >> bit_index) & 1:
            ticks.append(t)
    return ticks


def pnm_pass_counts(words, slots, bits: int):
    """Vectorised ``#{tick in pattern(word) : tick < slot}``.

    This is the unipolar multiplication count when the stream operand comes
    from the TFF2-chain PNM and the Race-Logic operand gates it at ``slot``.
    Stage ``m`` (ticks ``t ≡ 2**m - 1 (mod 2**(m+1))``) contributes
    ``floor((slot + 2**m) / 2**(m+1))`` ticks below ``slot`` when the
    corresponding word bit is set.  Because the patterns of different words
    interleave differently, per-tap rounding errors decorrelate — the
    property the FIR accuracy model relies on.

    Args:
        words: array-like of stream words (0 .. 2**bits - 1).
        slots: array-like of RL slots (0 .. 2**bits), broadcastable.
        bits: Resolution.

    Returns:
        Integer array of pass counts, shaped by broadcasting.
    """
    import numpy as np

    if not 1 <= bits <= 20:
        raise ConfigurationError(f"bits must be in [1, 20], got {bits}")
    words = np.asarray(words, dtype=np.int64)
    slots = np.asarray(slots, dtype=np.int64)
    n_max = 1 << bits
    if np.any((words < 0) | (words >= n_max)):
        raise ConfigurationError(f"words must be in [0, {n_max}), got {words}")
    if np.any((slots < 0) | (slots > n_max)):
        raise ConfigurationError(f"slots must be in [0, {n_max}], got {slots}")
    total = np.zeros(np.broadcast(words, slots).shape, dtype=np.int64)
    for m in range(bits):
        bit = (words >> (bits - 1 - m)) & 1
        total = total + bit * ((slots + (1 << m)) >> (m + 1))
    return total


def pnm_jj(bits: int) -> int:
    """JJ budget of one TFF2-chain PNM: chain + gates + merger tree."""
    if bits < 1:
        raise ConfigurationError(f"bits must be >= 1, got {bits}")
    return bits * tech.JJ_TFF2 + bits * tech.JJ_NDRO + max(0, bits - 1) * tech.JJ_MERGER


def build_tff2_pnm(circuit: Circuit, name: str, bits: int) -> Block:
    """Assemble the proposed TFF2-chain PNM (Fig 9b).

    Exposed ports: input ``clk`` (the fast clock, ``2**bits`` ticks per
    epoch); per-bit programming inputs ``set{i}``/``reset{i}`` (bit ``i``
    with weight ``2**i``); output ``out`` (the pulse stream).
    """
    if not 1 <= bits <= 16:
        raise ConfigurationError(f"bits must be in [1, 16], got {bits}")
    block = Block(circuit, name)

    stages = [block.add(Tff2(block.subname(f"tff2_{k}"))) for k in range(bits)]
    gates = [block.add(Ndro(block.subname(f"gate_{k}"))) for k in range(bits)]
    for k in range(bits - 1):
        # q2 continues the division chain; q1 feeds this stage's gate.
        circuit.connect(stages[k], "q2", stages[k + 1], "a")
    for k in range(bits):
        circuit.connect(stages[k], "q1", gates[k], "clk")

    # Merger tree over the gated stage outputs.
    frontier = [(gates[k], "q") for k in range(bits)]
    level = 0
    while len(frontier) > 1:
        merged = []
        for i in range(0, len(frontier) - 1, 2):
            node = block.add(Merger(block.subname(f"merge_{level}_{i // 2}")))
            circuit.connect(frontier[i][0], frontier[i][1], node, "a")
            circuit.connect(frontier[i + 1][0], frontier[i + 1][1], node, "b")
            merged.append((node, "q"))
        if len(frontier) % 2:
            merged.append(frontier[-1])
        frontier = merged
        level += 1

    block.expose_input("clk", stages[0], "a")
    for k in range(bits):
        # Stage k peels off 2**(bits - 1 - k) pulses, i.e. it carries bit
        # (bits - 1 - k); expose programming ports by bit weight.
        bit_index = bits - 1 - k
        block.expose_input(f"set{bit_index}", gates[k], "set")
        block.expose_input(f"reset{bit_index}", gates[k], "reset")
    block.expose_output("out", frontier[0][0], frontier[0][1])
    return block


class BurstPnm(Element):
    """Behavioural *typical* PNM (Fig 9a): per trigger, a burst of pulses.

    On each ``trigger`` pulse the cell emits its programmed ``count``
    pulses back-to-back at the TFF ladder's maximum rate — the non-uniform
    stream whose accuracy penalty motivates the TFF2 design.
    """

    INPUTS = (PortSpec("trigger"),)
    OUTPUTS = ("out",)

    def __init__(
        self,
        name: str,
        count: int,
        bits: int,
        spacing_fs: int = tech.T_TFF2_FS,
    ):
        super().__init__(name)
        _check_word(count, bits)
        self.count = count
        self.bits = bits
        self.spacing_fs = spacing_fs
        self.jj_count = pnm_jj(bits)

    def handle(self, sim, port, time):
        for k in range(self.count):
            self.emit(sim, "out", time + self.spacing_fs * (k + 1))

    def program(self, count: int) -> None:
        """Reprogram the burst length."""
        _check_word(count, self.bits)
        self.count = count
