"""A gate-level binary RSFQ ripple-carry adder (the baseline, as circuits).

The evaluation's binary baselines are published designs (Table 2 fits);
this module additionally *implements* a binary adder from the clocked
Boolean cells so unary-vs-binary comparisons can run structurally, and so
the paper's architectural complaint is measurable: in the binary datapath
**every logic cell needs a clock pulse every cycle**, so the clock
distribution tree (a splitter per clocked cell, section 1's "expensive
clock trees") ships with the design.

Each bit slice is a two-phase full adder:

* phase 1 clocks ``p = a XOR b`` and ``g = a AND b``,
* phase 2 (after the previous slice's carry settles) clocks
  ``sum = p XOR c_in``, ``t = p AND c_in``,
* phase 3 clocks ``c_out = g OR t``.

Carries ripple, so the clock phases stagger bit by bit — the latency
grows linearly with width, as the bit-parallel entries of Table 2 do.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cells.clocked import ClockedAnd, ClockedOr, ClockedXor
from repro.cells.interconnect import Splitter
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator

#: Clock-phase spacing inside a bit slice and between slices.
PHASE_FS = 10 * tech.T_DFF_FS


class _BitSlice:
    """One full-adder slice with named cells and clock hooks."""

    def __init__(self, block: Block, index: int):
        circuit = block.circuit
        prefix = block.subname(f"bit{index}")
        self.xor_pg = block.add(ClockedXor(f"{prefix}.xor_pg"))
        self.and_pg = block.add(ClockedAnd(f"{prefix}.and_pg"))
        self.split_p = block.add(Splitter(f"{prefix}.split_p", delay=0))
        self.xor_sum = block.add(ClockedXor(f"{prefix}.xor_sum"))
        self.and_t = block.add(ClockedAnd(f"{prefix}.and_t"))
        self.or_cout = block.add(ClockedOr(f"{prefix}.or_cout"))

        circuit.connect(self.xor_pg, "q", self.split_p, "a")
        circuit.connect(self.split_p, "q1", self.xor_sum, "a")
        circuit.connect(self.split_p, "q2", self.and_t, "a")
        circuit.connect(self.and_pg, "q", self.or_cout, "a")
        circuit.connect(self.and_t, "q", self.or_cout, "b")

    @property
    def clocked_cells(self):
        return (self.xor_pg, self.and_pg, self.xor_sum, self.and_t, self.or_cout)


class RippleCarryAdder:
    """A ``bits``-wide gate-level binary adder on the pulse simulator.

    :meth:`add` drives operand pulses (bit set = pulse present), the
    staggered clock schedule, and decodes the sum from the per-bit sum
    probes.
    """

    def __init__(self, bits: int, kernel: Optional[str] = None):
        if not 1 <= bits <= 16:
            raise ConfigurationError(f"bits must be in [1, 16], got {bits}")
        self.bits = bits
        self.kernel = kernel
        self.circuit = Circuit(f"binary_adder_{bits}")
        self.block = Block(self.circuit, "rca")
        self.slices: List[_BitSlice] = [
            _BitSlice(self.block, i) for i in range(bits)
        ]
        for index, (low, high) in enumerate(zip(self.slices, self.slices[1:])):
            # carry out feeds the next slice's c_in latches.
            split = self.block.add(
                Splitter(self.block.subname(f"carry_fan_{index}"), delay=0)
            )
            self.circuit.connect(low.or_cout, "q", split, "a")
            self.circuit.connect(split, "q1", high.xor_sum, "b")
            self.circuit.connect(split, "q2", high.and_t, "b")
        self.sum_probes = [
            self.circuit.probe(s.xor_sum, "q") for s in self.slices
        ]
        self.carry_probe = self.circuit.probe(self.slices[-1].or_cout, "q")
        self.circuit.seal()

    @property
    def jj_count(self) -> int:
        return self.block.jj_count

    @property
    def clocked_cell_count(self) -> int:
        """Cells needing a clock pulse each cycle (drives the clock tree)."""
        return 5 * self.bits

    @property
    def clock_tree_jj(self) -> int:
        """Splitter tree fanning one clock to every clocked cell."""
        return (self.clocked_cell_count - 1) * tech.JJ_SPLITTER

    def latency_fs(self) -> int:
        """Time from inputs to the last carry pulse."""
        return (2 * self.bits + 2) * PHASE_FS + tech.T_DFF_FS

    def add(self, x: int, y: int, carry_in: int = 0) -> int:
        """Compute ``x + y + carry_in`` (mod 2**(bits+1)) at pulse level."""
        limit = 1 << self.bits
        for operand in (x, y):
            if not 0 <= operand < limit:
                raise ConfigurationError(
                    f"operands must fit in {self.bits} bits, got {operand}"
                )
        if carry_in not in (0, 1):
            raise ConfigurationError(f"carry_in must be 0 or 1, got {carry_in}")

        sim = Simulator(self.circuit, kernel=self.kernel)
        sim.reset()
        for i, bit_slice in enumerate(self.slices):
            # Slices stagger by two phases so slice i's carry (clocked at
            # base + 2 phases) settles before slice i+1 evaluates its sum
            # (at base + 3 phases).
            base = (2 * i + 1) * PHASE_FS
            # Operand pulses into the phase-1 latches.
            if (x >> i) & 1:
                sim.schedule_input(bit_slice.xor_pg, "a", 0)
                sim.schedule_input(bit_slice.and_pg, "a", 0)
            if (y >> i) & 1:
                sim.schedule_input(bit_slice.xor_pg, "b", 0)
                sim.schedule_input(bit_slice.and_pg, "b", 0)
            # Three staggered clock phases per slice.
            sim.schedule_input(bit_slice.xor_pg, "clk", base)
            sim.schedule_input(bit_slice.and_pg, "clk", base)
            sim.schedule_input(bit_slice.xor_sum, "clk", base + PHASE_FS)
            sim.schedule_input(bit_slice.and_t, "clk", base + PHASE_FS)
            sim.schedule_input(bit_slice.or_cout, "clk", base + 2 * PHASE_FS)
        if carry_in:
            sim.schedule_input(self.slices[0].xor_sum, "b", 0)
            sim.schedule_input(self.slices[0].and_t, "b", 0)
        sim.run()

        total = 0
        for i, probe in enumerate(self.sum_probes):
            if probe.count():
                total |= 1 << i
        if self.carry_probe.count():
            total |= 1 << self.bits
        return total
