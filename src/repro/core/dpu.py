"""The U-SFQ dot-product unit (paper section 5.3, Fig 15).

A DPU of length L instantiates L multipliers in parallel — affordable only
because each U-SFQ multiplier is tens of JJs — and combines their output
streams through an L:1 counting network:

    Y = (a0*b0 + a1*b1 + ... + a_{L-1}*b_{L-1}) / L

with the ``a`` operands in Race-Logic format and the ``b`` operands as
pulse streams.  :class:`DotProductUnit` is the structural netlist;
:class:`DpuModel` is the functional counterpart (exact ceil-cascade
semantics), vectorised for the FIR and the evaluation sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.counting import (
    build_counting_network,
    counting_network_jj,
    counting_network_output_count,
)
from repro.core.multiplier import (
    MULTIPLIER_UNIPOLAR_JJ,
    SETUP_FS,
    build_unipolar_multiplier,
    bipolar_product_count,
    unipolar_product_count,
)
from repro.encoding.epoch import EpochSpec
from repro.encoding.pulsestream import PulseStreamCodec
from repro.encoding.racelogic import RaceLogicCodec
from repro.errors import ConfigurationError
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator


def _check_length(length: int) -> int:
    if length < 2 or length & (length - 1):
        raise ConfigurationError(
            f"DPU length must be a power of two >= 2, got {length}"
        )
    return length


def dpu_compute_jj(length: int, bipolar: bool = False) -> int:
    """JJ budget of the DPU datapath: L multipliers + the counting network."""
    from repro.core.multiplier import MULTIPLIER_BIPOLAR_JJ

    _check_length(length)
    per_mult = MULTIPLIER_BIPOLAR_JJ if bipolar else MULTIPLIER_UNIPOLAR_JJ
    return length * per_mult + counting_network_jj(length)


def build_dpu(
    circuit: Circuit, name: str, length: int, bipolar: bool = False
) -> Block:
    """Assemble a DPU: L multipliers into an L:1 counting network.

    Exposed ports: per lane ``a{i}`` (RL), ``b{i}`` (stream), and
    ``epoch{i}``; output ``y`` (stream carrying the scaled dot product).
    Bipolar DPUs additionally expose per-lane ``refclk{i}`` inputs for the
    inverters' maximum-rate reference.
    """
    from repro.core.multiplier import build_bipolar_multiplier

    _check_length(length)
    block = Block(circuit, name)

    network = build_counting_network(circuit, f"{name}.cn", length)
    block.elements.extend(network.elements)

    builder = build_bipolar_multiplier if bipolar else build_unipolar_multiplier
    for lane in range(length):
        mult = builder(circuit, f"{name}.mul{lane}")
        block.elements.extend(mult.elements)
        src_element, src_port = mult.output("out")
        dst_element, dst_port = network.input(f"a{lane}")
        circuit.connect(src_element, src_port, dst_element, dst_port)
        a_element, a_port = mult.input("b")
        b_element, b_port = mult.input("a")
        e_element, e_port = mult.input("epoch")
        block.expose_input(f"a{lane}", a_element, a_port)
        block.expose_input(f"b{lane}", b_element, b_port)
        block.expose_input(f"epoch{lane}", e_element, e_port)
        if bipolar:
            r_element, r_port = mult.input("refclk")
            block.expose_input(f"refclk{lane}", r_element, r_port)

    y_element, y_port = network.output("y")
    block.expose_output("y", y_element, y_port)
    return block


class DotProductUnit:
    """Self-contained structural DPU (unipolar or bipolar lanes)."""

    def __init__(
        self,
        epoch: EpochSpec,
        length: int,
        bipolar: bool = False,
        kernel: Optional[str] = None,
        trace=None,
    ):
        self.epoch = epoch
        self.length = _check_length(length)
        self.bipolar = bipolar
        self.kernel = kernel
        #: Optional :class:`repro.trace.TraceSession` passed to every
        #: simulator this wrapper builds (attach taps separately).
        self.trace = trace
        self.streams = PulseStreamCodec(epoch)
        self.race = RaceLogicCodec(epoch)
        self.circuit = Circuit(f"dpu_{length}{'_bipolar' if bipolar else ''}")
        self.block = build_dpu(self.circuit, "dpu", length, bipolar=bipolar)
        self.output = self.block.probe_output("y")
        self.circuit.seal()

    @property
    def jj_count(self) -> int:
        return dpu_compute_jj(self.length, self.bipolar)

    def run_counts(self, a_slots: Sequence[int], b_counts: Sequence[int]) -> int:
        """One epoch; returns the output pulse count."""
        if len(a_slots) != self.length or len(b_counts) != self.length:
            raise ConfigurationError(
                f"expected {self.length} operands per side, got "
                f"{len(a_slots)}/{len(b_counts)}"
            )
        sim = Simulator(self.circuit, kernel=self.kernel, trace=self.trace)
        sim.reset()
        refclk = (
            self.streams.times_for_count(self.epoch.n_max) if self.bipolar else None
        )
        for lane in range(self.length):
            self.block.drive(sim, f"epoch{lane}", 0)
            self.block.drive(
                sim,
                f"b{lane}",
                [
                    t + SETUP_FS
                    for t in self.streams.times_for_count(b_counts[lane])
                ],
            )
            if refclk is not None:
                self.block.drive(
                    sim, f"refclk{lane}", [t + SETUP_FS for t in refclk]
                )
            if a_slots[lane] < self.epoch.n_max:
                self.block.drive(
                    sim,
                    f"a{lane}",
                    SETUP_FS + self.epoch.slot_time(a_slots[lane]),
                )
        sim.run()
        return self.output.count()

    def dot(self, a_values: Sequence[float], b_values: Sequence[float]) -> float:
        """Unipolar dot product, decoded (result is sum / L)."""
        slots = [self.race.slot_for_unipolar(v) for v in a_values]
        counts = [self.streams.count_for_unipolar(v) for v in b_values]
        count = self.run_counts(slots, counts)
        return count * self.length / self.epoch.n_max

    def run_counts_batch(
        self,
        a_slot_rows: Sequence[Sequence[int]],
        b_count_rows: Sequence[Sequence[int]],
    ) -> np.ndarray:
        """Many independent single-epoch dot products as lanes of one run.

        Row ``i`` carries the operands :meth:`run_counts` would take for
        request ``i``; all rows execute as lanes of a single
        :class:`~repro.pulsesim.batch.BatchSimulator` dispatch (compiled
        once per circuit, event mode — the DPU is stateful), and lane
        results are bit-identical to per-row :meth:`run_counts` calls.
        Returns the ``(n_rows,)`` output pulse counts.  This is the
        execution shape the serving layer's micro-batcher coalesces
        concurrent requests into; heterogeneous multi-row requests slice
        their lanes back out with
        :func:`repro.pulsesim.batch.lane_slices`.
        """
        from repro.pulsesim.batch import BatchSimulator

        rows = len(a_slot_rows)
        if rows != len(b_count_rows):
            raise ConfigurationError(
                f"row counts differ: {rows} vs {len(b_count_rows)}"
            )
        if rows == 0:
            return np.zeros(0, dtype=np.int64)
        for row, (a_slots, b_counts) in enumerate(
            zip(a_slot_rows, b_count_rows)
        ):
            if len(a_slots) != self.length or len(b_counts) != self.length:
                raise ConfigurationError(
                    f"row {row}: expected {self.length} operands per side, "
                    f"got {len(a_slots)}/{len(b_counts)}"
                )
        sim = BatchSimulator(self.circuit, batch=rows)
        n_max = self.epoch.n_max
        refclk = (
            [t + SETUP_FS for t in self.streams.times_for_count(n_max)]
            if self.bipolar
            else None
        )
        for lane in range(self.length):
            element, port = self.block.input(f"epoch{lane}")
            sim.schedule_train(element, port, [0])
            element, port = self.block.input(f"b{lane}")
            sim.schedule_lane_trains(
                element,
                port,
                [
                    [
                        t + SETUP_FS
                        for t in self.streams.times_for_count(row[lane])
                    ]
                    for row in b_count_rows
                ],
            )
            if refclk is not None:
                element, port = self.block.input(f"refclk{lane}")
                sim.schedule_train(element, port, refclk)
            a_times = []
            a_lanes = []
            for row_index, row in enumerate(a_slot_rows):
                if row[lane] < n_max:
                    a_times.append(SETUP_FS + self.epoch.slot_time(row[lane]))
                    a_lanes.append(row_index)
            if a_times:
                element, port = self.block.input(f"a{lane}")
                sim.schedule_flat(element, port, a_times, a_lanes)
        sim.run()
        y_element, y_port = self.block.output("y")
        return sim.port_counts(y_element, y_port)

    def run_epochs(
        self,
        a_slot_frames: Sequence[Sequence[int]],
        b_count_frames: Sequence[Sequence[int]],
    ) -> List[int]:
        """Wave-pipelined operation: one dot product per epoch, back to back.

        The multipliers re-arm at every epoch boundary and the counting
        network's balancers carry their toggle state across epochs, exactly
        as the hardware would.  Returns the output count per epoch window.
        """
        if len(a_slot_frames) != len(b_count_frames):
            raise ConfigurationError(
                f"frame counts differ: {len(a_slot_frames)} vs {len(b_count_frames)}"
            )
        n_max = self.epoch.n_max
        duration = self.epoch.duration_fs
        sim = Simulator(self.circuit, kernel=self.kernel, trace=self.trace)
        sim.reset()
        for frame, (a_slots, b_counts) in enumerate(
            zip(a_slot_frames, b_count_frames)
        ):
            if len(a_slots) != self.length or len(b_counts) != self.length:
                raise ConfigurationError(
                    f"frame {frame}: expected {self.length} operands per side"
                )
            base = frame * duration
            for lane in range(self.length):
                self.block.drive(sim, f"epoch{lane}", base)
                self.block.drive(
                    sim,
                    f"b{lane}",
                    [
                        base + SETUP_FS + t
                        for t in self.streams.times_for_count(b_counts[lane])
                    ],
                )
                if a_slots[lane] < n_max:
                    self.block.drive(
                        sim,
                        f"a{lane}",
                        base + SETUP_FS + self.epoch.slot_time(a_slots[lane]),
                    )
        sim.run()
        # Output pulses of frame i land at a fixed datapath offset past the
        # stream times (NDRO read + one balancer delay per tree level).
        from repro.models import technology as tech

        levels = self.length.bit_length() - 1
        offset = SETUP_FS + tech.T_NDRO_FS + levels * tech.T_BALANCER_OUT_FS
        return [
            self.output.count(i * duration + offset - 1, (i + 1) * duration + offset - 1)
            for i in range(len(a_slot_frames))
        ]


class DpuModel:
    """Functional DPU (unipolar or bipolar) with exact cascade semantics."""

    def __init__(self, epoch: EpochSpec, length: int, bipolar: bool = False):
        self.epoch = epoch
        self.length = _check_length(length)
        self.bipolar = bipolar
        self.streams = PulseStreamCodec(epoch)
        self.race = RaceLogicCodec(epoch)

    @property
    def jj_count(self) -> int:
        return dpu_compute_jj(self.length, self.bipolar)

    # -- scalar API --------------------------------------------------------
    def output_count(self, a_slots: Sequence[int], b_counts: Sequence[int]) -> int:
        """Output pulse count for explicit operand encodings."""
        if len(a_slots) != self.length or len(b_counts) != self.length:
            raise ConfigurationError(
                f"expected {self.length} operands per side, got "
                f"{len(a_slots)}/{len(b_counts)}"
            )
        n_max = self.epoch.n_max
        product = bipolar_product_count if self.bipolar else unipolar_product_count
        counts = [
            product(b_counts[i], a_slots[i], n_max) for i in range(self.length)
        ]
        return counting_network_output_count(counts)

    def dot(self, a_values: Sequence[float], b_values: Sequence[float]) -> float:
        """Dot product of value lists: returns ``sum(a*b) / L`` (decoded in
        the active polarity's domain, with unary quantisation)."""
        if self.bipolar:
            slots = [self.race.slot_for_bipolar(v) for v in a_values]
            counts = [self.streams.count_for_bipolar(v) for v in b_values]
            count = self.output_count(slots, counts)
            return 2.0 * count / self.epoch.n_max - 1.0
        slots = [self.race.slot_for_unipolar(v) for v in a_values]
        counts = [self.streams.count_for_unipolar(v) for v in b_values]
        count = self.output_count(slots, counts)
        return count / self.epoch.n_max

    # -- vectorised API (used by the FIR) -----------------------------------
    def output_counts_batch(
        self, a_slots: np.ndarray, b_counts: np.ndarray
    ) -> np.ndarray:
        """Output counts for a batch: arrays shaped (n_samples, L)."""
        a_slots = np.asarray(a_slots, dtype=np.int64)
        b_counts = np.asarray(b_counts, dtype=np.int64)
        if a_slots.shape != b_counts.shape or a_slots.shape[-1] != self.length:
            raise ConfigurationError(
                f"batch shapes must match and end in L={self.length}; got "
                f"{a_slots.shape} and {b_counts.shape}"
            )
        n_max = self.epoch.n_max
        top = -((-b_counts * a_slots) // n_max)  # ceil(b * a / n_max)
        if self.bipolar:
            counts = top + (n_max - a_slots) - (b_counts - top)
        else:
            counts = top
        # Ceil-cascade across the lane axis.
        while counts.shape[-1] > 1:
            counts = (counts[..., 0::2] + counts[..., 1::2] + 1) // 2
        return counts[..., 0]


__all__ = [
    "DotProductUnit",
    "DpuModel",
    "build_dpu",
    "dpu_compute_jj",
]
