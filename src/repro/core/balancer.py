"""The pulse-stream balancer (paper section 4.2-B, Figs 6 and 7).

A balancer is a 2:2 toggle router: it alternately steers incoming pulses to
its two outputs, so each output carries ``(N_A + N_B) / 2`` pulses.  Unlike
a merger it *survives collisions*: two simultaneous input pulses produce
one pulse at each output.

Two implementations are provided:

* :class:`Balancer` — a behavioural cell implementing the routing-unit
  Mealy machine (Fig 6c) including the t_BFF transition hazard the paper
  analyses in section 5.4.1 (a pulse landing while the B-flip-flop is mid
  transition is ignored by the control logic and exits through the *same*
  output as its predecessor, slowly biasing the split).  This is the cell
  used inside counting networks, DPUs, and FIRs.
* :func:`build_structural_balancer` — the paper's two-circuit netlist:
  a :class:`BffRoutingUnit` (the B-flip-flop of Fig 6e with its input
  splitters and output mergers, A -> S1/R2, B -> S2/R1, C1 = Q1 merge !Q1,
  C2 = Q2 merge !Q2) generating control pulses that read a DFF2-based
  output stage (Fig 6b).  It reproduces the Fig 7 waveforms.
"""

from __future__ import annotations

from repro.cells.interconnect import Merger, Splitter
from repro.cells.storage import Dff2
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.element import Element, PortSpec
from repro.pulsesim.netlist import Circuit

#: JJ budget of the balancer block used by the area models: BFF routing unit
#: (BFF + splitters + mergers, 28 JJs) + DFF2 output stage (28 JJs).  This is
#: the calibration that makes the processing element's total land on the 126
#: JJs the paper states (see DESIGN.md section 5).
BALANCER_JJ = 56

#: JJ split between the two sub-circuits of the structural balancer.
ROUTING_UNIT_JJ = 28
OUTPUT_STAGE_JJ = BALANCER_JJ - ROUTING_UNIT_JJ


class _MealyRouter:
    """Shared implementation of the balancer Mealy machine (Fig 6c).

    Decides, for each input pulse, which control/output index (0 -> C1/Y1,
    1 -> C2/Y2) it is steered to, handling the simultaneous-pair case and
    the t_BFF transition hazard.  Returns the chosen index.
    """

    def __init__(self, t_bff_fs: int, coincidence_fs: int):
        self.t_bff_fs = t_bff_fs
        self.coincidence_fs = coincidence_fs
        self.state = 0
        self.hazard_events = 0
        self._last_time = None
        self._last_port = None
        self._last_index = None
        self._pair_open = False

    def route(self, port: str, time: int) -> int:
        if self._last_time is not None:
            gap = time - self._last_time
            if (
                gap <= self.coincidence_fs
                and port != self._last_port
                and self._pair_open
            ):
                # Second pulse of a simultaneous pair: complementary output,
                # completing the double toggle (net state unchanged).
                index = self.state
                self.state ^= 1
                self._pair_open = False
                self._remember(port, time, index)
                return index
            if gap < self.t_bff_fs:
                # Transition hazard (case iii): the control logic ignores
                # the pulse; the output stage releases it through the same
                # port as its predecessor and the state does not toggle.
                self.hazard_events += 1
                self._pair_open = False
                self._remember(port, time, self._last_index)
                return self._last_index
        index = self.state
        self.state ^= 1
        self._pair_open = True
        self._remember(port, time, index)
        return index

    def _remember(self, port, time, index):
        self._last_time = time
        self._last_port = port
        self._last_index = index

    def reset(self):
        self.state = 0
        self.hazard_events = 0
        self._last_time = None
        self._last_port = None
        self._last_index = None
        self._pair_open = False


class Balancer(Element):
    """Behavioural 2:2 balancer with coincidence and transition-hazard model.

    Ports ``a``/``b`` in, ``y1``/``y2`` out.  Timing parameters:

    * ``coincidence_fs`` — pulses on *different* inputs closer than this are
      simultaneous: one pulse exits each output and the internal state is
      net-unchanged (Fig 7, the pair at ~7 ps).
    * ``t_bff_fs`` — a pulse arriving later than the coincidence window but
      before the flip-flop finished its transition is ignored by the
      control logic and is steered to the same output as the previous
      pulse without toggling (:attr:`hazard_events` counts these).
    """

    INPUTS = (PortSpec("a"), PortSpec("b"))
    OUTPUTS = ("y1", "y2")
    jj_count = BALANCER_JJ

    def __init__(
        self,
        name: str,
        delay: int = tech.T_BALANCER_OUT_FS,
        t_bff_fs: int = tech.T_BFF_FS,
        coincidence_fs: int = 2_000,
    ):
        super().__init__(name)
        self.delay = delay
        self._router = _MealyRouter(t_bff_fs, coincidence_fs)

    @property
    def state(self) -> int:
        return self._router.state

    @property
    def hazard_events(self) -> int:
        return self._router.hazard_events

    @property
    def t_bff_fs(self) -> int:
        """Constructor parameter, readable for ``params()`` replay."""
        return self._router.t_bff_fs

    @property
    def coincidence_fs(self) -> int:
        """Constructor parameter, readable for ``params()`` replay."""
        return self._router.coincidence_fs

    def handle(self, sim, port, time):
        index = self._router.route(port, time)
        self.emit(sim, ("y1", "y2")[index], time + self.delay)

    def reset(self):
        self._router.reset()


class BffRoutingUnit(Element):
    """The balancer's routing unit (Fig 6f): BFF + splitters + mergers.

    Implements the Mealy machine with *per-input* control outputs so the
    output stage can read the DFF2 holding the matching token:

    * ``c1_a``/``c2_a`` — control pulses caused by input ``a`` (state 0/1),
    * ``c1_b``/``c2_b`` — control pulses caused by input ``b``.
    """

    INPUTS = (PortSpec("a"), PortSpec("b"))
    OUTPUTS = ("c1_a", "c2_a", "c1_b", "c2_b")
    jj_count = ROUTING_UNIT_JJ

    def __init__(
        self,
        name: str,
        delay: int = tech.T_DFF_FS,
        t_bff_fs: int = tech.T_BFF_FS,
        coincidence_fs: int = 2_000,
    ):
        super().__init__(name)
        self.delay = delay
        self._router = _MealyRouter(t_bff_fs, coincidence_fs)

    @property
    def hazard_events(self) -> int:
        return self._router.hazard_events

    def handle(self, sim, port, time):
        index = self._router.route(port, time)
        output = f"c{index + 1}_{port}"
        self.emit(sim, output, time + self.delay)

    def reset(self):
        self._router.reset()


def build_structural_balancer(circuit: Circuit, name: str) -> Block:
    """Assemble the paper's balancer netlist (Fig 6b/6f) as a block.

    Exposed ports: inputs ``a``, ``b``; outputs ``y1``, ``y2``.

    Each input fans (through a splitter) to its output-stage DFF2 data port
    and to the routing unit; the routing unit's control pulses read the
    matching DFF2 through its C1/C2 ports, and the DFF2s' Y1/Y2 readouts
    merge into the balancer outputs.
    """
    block = Block(circuit, name)

    split_a = block.add(Splitter(block.subname("split_a")))
    split_b = block.add(Splitter(block.subname("split_b")))
    routing = block.add(BffRoutingUnit(block.subname("routing")))
    dff2_a = block.add(Dff2(block.subname("dff2_a")))
    dff2_b = block.add(Dff2(block.subname("dff2_b")))
    merge_y1 = block.add(Merger(block.subname("merge_y1")))
    merge_y2 = block.add(Merger(block.subname("merge_y2")))

    # Inputs park a token in their DFF2 and notify the routing unit.
    circuit.connect(split_a, "q1", dff2_a, "a")
    circuit.connect(split_a, "q2", routing, "a")
    circuit.connect(split_b, "q1", dff2_b, "a")
    circuit.connect(split_b, "q2", routing, "b")
    # Controls read the DFF2 that holds the token of the causing input.
    circuit.connect(routing, "c1_a", dff2_a, "c1")
    circuit.connect(routing, "c2_a", dff2_a, "c2")
    circuit.connect(routing, "c1_b", dff2_b, "c1")
    circuit.connect(routing, "c2_b", dff2_b, "c2")
    # Output merges.
    circuit.connect(dff2_a, "y1", merge_y1, "a")
    circuit.connect(dff2_b, "y1", merge_y1, "b")
    circuit.connect(dff2_a, "y2", merge_y2, "a")
    circuit.connect(dff2_b, "y2", merge_y2, "b")

    block.expose_input("a", split_a, "a")
    block.expose_input("b", split_b, "a")
    block.expose_output("y1", merge_y1, "q")
    block.expose_output("y2", merge_y2, "q")
    return block
