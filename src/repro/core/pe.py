"""The U-SFQ processing element and PE arrays (paper section 5.2, Fig 13).

A PE is the multiply-accumulate workhorse of CGRAs and spatial CNN
architectures.  The unipolar U-SFQ PE chains the three proposed blocks:

* multiplier — In1 (Race Logic) x In2 (pulse stream),
* balancer adder — adds stream In3 (each balancer output carries half the
  combined count),
* pulse integrator — accumulates the adder's pulses across one or more
  epochs and reads the total out as a Race-Logic pulse, which is also the
  natural inter-PE interface.

The JJ budget is the paper's stated ``126`` (multiplier 46 + balancer 56 +
integrator stage 24) and is *independent of bit resolution* — the source
of the 98-99 % area savings vs an 8-bit binary PE.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.balancer import BALANCER_JJ, Balancer
from repro.core.buffer import INTEGRATOR_STAGE_JJ, PulseIntegrator
from repro.core.multiplier import (
    MULTIPLIER_BIPOLAR_JJ,
    SETUP_FS,
    build_unipolar_multiplier,
    unipolar_product_count,
)
from repro.encoding.epoch import EpochSpec
from repro.encoding.pulsestream import PulseStreamCodec
from repro.encoding.racelogic import RaceLogicCodec
from repro.errors import ConfigurationError
from repro.models import technology as tech
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import Simulator

#: The paper's PE area anchor (section 5.2): "The number of JJs for the
#: U-SFQ PE is 126 and does not increase with the number of bits."
PE_JJ = MULTIPLIER_BIPOLAR_JJ + BALANCER_JJ + INTEGRATOR_STAGE_JJ
assert PE_JJ == 126, "PE JJ calibration drifted from the paper's anchor"


def build_processing_element(circuit: Circuit, name: str, epoch: EpochSpec) -> Block:
    """Assemble the unipolar PE netlist (Fig 13a).

    Exposed ports: inputs ``in1`` (RL), ``in2`` (stream), ``in3`` (stream),
    ``epoch_start`` (arms the multiplier), ``epoch_end`` (reads the
    integrator); output ``out`` (RL).
    """
    block = Block(circuit, name)
    multiplier = build_unipolar_multiplier(circuit, f"{name}.mul")
    block.elements.extend(multiplier.elements)
    adder = block.add(Balancer(block.subname("bal")))
    integrator = block.add(
        PulseIntegrator(block.subname("acc"), epoch.slot_fs, epoch.n_max)
    )

    multiplier.connect_output_to_element("out", adder, "a")
    circuit.connect(adder, "y1", integrator, "a")

    mul_a = multiplier.input("a")
    mul_b = multiplier.input("b")
    mul_epoch = multiplier.input("epoch")
    block.expose_input("in2", mul_a[0], mul_a[1])
    block.expose_input("in1", mul_b[0], mul_b[1])
    block.expose_input("epoch_start", mul_epoch[0], mul_epoch[1])
    block.expose_input("in3", adder, "b")
    block.expose_input("epoch_end", integrator, "epoch")
    block.expose_output("out", integrator, "out")
    return block


class ProcessingElement:
    """Self-contained structural PE with encode/run/decode helpers."""

    jj_count = PE_JJ

    def __init__(self, epoch: EpochSpec, kernel: Optional[str] = None):
        self.epoch = epoch
        self.kernel = kernel
        self.streams = PulseStreamCodec(epoch)
        self.race = RaceLogicCodec(epoch)
        self.circuit = Circuit("processing_element")
        self.block = build_processing_element(self.circuit, "pe", epoch)
        self.output = self.block.probe_output("out")
        self.circuit.seal()

    def run_mac(self, slot_in1: int, count_in2: int, count_in3: int) -> int:
        """One epoch of (In1 x In2 + In3) / 2; returns the output RL slot."""
        n_max = self.epoch.n_max
        sim = Simulator(self.circuit, kernel=self.kernel)
        sim.reset()
        self.block.drive(sim, "epoch_start", 0)
        self.block.drive(
            sim,
            "in2",
            [t + SETUP_FS for t in self.streams.times_for_count(count_in2)],
        )
        if slot_in1 < n_max:
            self.block.drive(sim, "in1", SETUP_FS + self.epoch.slot_time(slot_in1))
        # In3 is offset by the multiplier NDRO's read delay so that, slot by
        # slot, product pulses and In3 pulses reach the balancer coincident
        # (the simultaneous-pair case it is designed to absorb).
        self.block.drive(
            sim,
            "in3",
            [
                t + SETUP_FS + tech.T_NDRO_FS
                for t in self.streams.times_for_count(count_in3)
            ],
        )
        self.block.drive(sim, "epoch_end", SETUP_FS + self.epoch.duration_fs)
        sim.run()
        times = self.output.times
        if not times:
            return 0
        read_time = SETUP_FS + self.epoch.duration_fs
        return (times[-1] - read_time) // self.epoch.slot_fs

    def mac(self, in1: float, in2: float, in3: float) -> float:
        """Unipolar (in1 * in2 + in3) / 2 with U-SFQ quantisation."""
        slot = self.race.slot_for_unipolar(in1)
        n2 = self.streams.count_for_unipolar(in2)
        n3 = self.streams.count_for_unipolar(in3)
        return self.run_mac(slot, n2, n3) / self.epoch.n_max


class PEModel:
    """Functional PE with the same quantisation semantics as the netlist."""

    jj_count = PE_JJ

    def __init__(self, epoch: EpochSpec):
        self.epoch = epoch
        self.streams = PulseStreamCodec(epoch)
        self.race = RaceLogicCodec(epoch)

    def mac_counts(self, slot_in1: int, count_in2: int, count_in3: int) -> int:
        """Output slot for one epoch of (In1 x In2 + In3) / 2."""
        n_max = self.epoch.n_max
        product = unipolar_product_count(count_in2, slot_in1, n_max)
        half_sum = (product + count_in3 + 1) // 2  # balancer Y1 takes the ceil
        return min(half_sum, n_max)

    def mac(self, in1: float, in2: float, in3: float) -> float:
        slot = self.race.slot_for_unipolar(in1)
        n2 = self.streams.count_for_unipolar(in2)
        n3 = self.streams.count_for_unipolar(in3)
        return self.mac_counts(slot, n2, n3) / self.epoch.n_max

    def accumulate(self, pairs: Sequence[Tuple[float, float]]) -> float:
        """Temporal MAC: integrate (a_t * b_t) / 2 over several epochs.

        The integrator keeps accumulating until read, saturating at
        ``n_max`` — the PE's multi-epoch dot-product mode.
        """
        n_max = self.epoch.n_max
        total = 0
        for a_value, b_value in pairs:
            slot = self.race.slot_for_unipolar(a_value)
            count = self.streams.count_for_unipolar(b_value)
            product = unipolar_product_count(count, slot, n_max)
            total += (product + 1) // 2
        return min(total, n_max) / n_max


class PEArray:
    """A grid of functional PEs (Fig 13b) with a weight-stationary mapping.

    Each PE accumulates one output element over time; :meth:`matmul` and
    :meth:`conv2d` map the classic CNN kernels onto the array, reporting
    the array's JJ budget for area studies.  Values are unipolar ([0, 1]);
    the caller handles scaling (each accumulated product is halved by the
    balancer, compensated in the decode).
    """

    def __init__(self, epoch: EpochSpec, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ConfigurationError(f"array must be >= 1x1, got {rows}x{cols}")
        self.epoch = epoch
        self.rows = rows
        self.cols = cols
        self.model = PEModel(epoch)

    @property
    def n_pes(self) -> int:
        return self.rows * self.cols

    @property
    def jj_count(self) -> int:
        return self.n_pes * PE_JJ

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Quantised unipolar matrix product with PE-temporal accumulation.

        ``a`` is (M, K), ``b`` is (K, N); entries must lie in [0, 1].  Each
        output element is produced by one PE accumulating K halved products
        (results are scaled back by 2 and clipped to [0, 1]).
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ConfigurationError(
                f"incompatible shapes for matmul: {a.shape} x {b.shape}"
            )
        out = np.zeros((a.shape[0], b.shape[1]))
        for i in range(a.shape[0]):
            for j in range(b.shape[1]):
                pairs = [(a[i, k], b[k, j]) for k in range(a.shape[1])]
                out[i, j] = min(1.0, 2.0 * self.model.accumulate(pairs))
        return out

    def conv2d(self, image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
        """Valid-mode 2-D convolution, one PE per output pixel."""
        image = np.asarray(image, dtype=float)
        kernel = np.asarray(kernel, dtype=float)
        if image.ndim != 2 or kernel.ndim != 2:
            raise ConfigurationError("conv2d expects 2-D image and kernel")
        kh, kw = kernel.shape
        oh, ow = image.shape[0] - kh + 1, image.shape[1] - kw + 1
        if oh < 1 or ow < 1:
            raise ConfigurationError("kernel larger than image")
        out = np.zeros((oh, ow))
        for i in range(oh):
            for j in range(ow):
                pairs = [
                    (image[i + di, j + dj], kernel[di, dj])
                    for di in range(kh)
                    for dj in range(kw)
                ]
                out[i, j] = min(1.0, 2.0 * self.model.accumulate(pairs))
        return out


__all__ = [
    "PEArray",
    "PEModel",
    "PE_JJ",
    "ProcessingElement",
    "build_processing_element",
]
