"""M:1 counting networks built from balancers (paper section 4.2-B, Fig 6d).

An ``M:1`` counting network (M a power of two) is a binary tree of
balancers: each level halves the pulse count, so the root's output carries
``(N_A1 + ... + N_AM) / M`` pulses — a collision-tolerant unary adder.
``M - 1`` balancers are required (three for the 4:1 example of Fig 6d).

The structural builder composes behavioural :class:`Balancer` cells; the
:func:`counting_network_output_count` functional model computes the exact
ceil-cascade count for ideally interleaved inputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.balancer import BALANCER_JJ, Balancer
from repro.errors import ConfigurationError
from repro.pulsesim.block import Block
from repro.pulsesim.netlist import Circuit


def _check_m(m_inputs: int) -> int:
    if m_inputs < 2 or m_inputs & (m_inputs - 1):
        raise ConfigurationError(
            f"counting network needs a power-of-two input count >= 2, got {m_inputs}"
        )
    return m_inputs


def counting_network_jj(m_inputs: int) -> int:
    """JJ budget of an M:1 counting network: (M - 1) balancers."""
    return (_check_m(m_inputs) - 1) * BALANCER_JJ


def counting_network_depth(m_inputs: int) -> int:
    """Number of balancer levels (log2 M)."""
    return _check_m(m_inputs).bit_length() - 1


def counting_network_output_count(counts: Sequence[int]) -> int:
    """Exact output pulse count for ideally interleaved input streams.

    Each balancer sends its *first* pulse to Y1, so taking the Y1 branch at
    every level yields ``ceil((n_left + n_right) / 2)`` per node; the
    cascade composes to ``ceil(sum / M)`` overall.
    """
    level = [int(c) for c in counts]
    _check_m(len(level))
    if any(c < 0 for c in level):
        raise ConfigurationError(f"pulse counts must be >= 0, got {counts}")
    while len(level) > 1:
        level = [
            (level[i] + level[i + 1] + 1) // 2 for i in range(0, len(level), 2)
        ]
    return level[0]


def build_counting_network(circuit: Circuit, name: str, m_inputs: int) -> Block:
    """Assemble an M:1 counting network of behavioural balancers.

    Exposed ports: inputs ``a0`` .. ``a{M-1}``; output ``y`` (the root's Y1;
    the root's Y2 is exposed as ``y_alt`` — either output carries the sum,
    as the paper notes).
    """
    _check_m(m_inputs)
    block = Block(circuit, name)

    # Build level by level; each node forwards its Y1 to the next level.
    balancer_index = 0
    frontier: List[Balancer] = []
    for i in range(m_inputs // 2):
        node = block.add(Balancer(block.subname(f"l0_b{i}")))
        block.expose_input(f"a{2 * i}", node, "a")
        block.expose_input(f"a{2 * i + 1}", node, "b")
        frontier.append(node)
        balancer_index += 1

    level = 1
    while len(frontier) > 1:
        next_frontier: List[Balancer] = []
        for i in range(0, len(frontier), 2):
            node = block.add(Balancer(block.subname(f"l{level}_b{i // 2}")))
            circuit.connect(frontier[i], "y1", node, "a")
            circuit.connect(frontier[i + 1], "y1", node, "b")
            next_frontier.append(node)
            balancer_index += 1
        frontier = next_frontier
        level += 1

    root = frontier[0]
    block.expose_output("y", root, "y1")
    block.expose_output("y_alt", root, "y2")
    return block


class CountingNetwork:
    """Convenience wrapper owning a circuit with a single counting network.

    Drives input pulse trains and reads back the output count; used by
    tests and small structural experiments.
    """

    def __init__(self, m_inputs: int, kernel: Optional[str] = None, trace=None):
        self.m_inputs = _check_m(m_inputs)
        self.kernel = kernel
        #: Optional :class:`repro.trace.TraceSession` passed to every
        #: simulator this wrapper builds (attach taps separately).
        self.trace = trace
        self.circuit = Circuit(f"counting_{m_inputs}to1")
        self.block = build_counting_network(self.circuit, "cn", m_inputs)
        self.output = self.block.probe_output("y")
        self.circuit.seal()

    @property
    def jj_count(self) -> int:
        return self.block.jj_count

    def run(self, input_times: Sequence[Sequence[int]]):
        """Simulate with one pulse-time list per input; returns output count."""
        from repro.pulsesim.simulator import Simulator

        if len(input_times) != self.m_inputs:
            raise ConfigurationError(
                f"expected {self.m_inputs} input trains, got {len(input_times)}"
            )
        sim = Simulator(self.circuit, kernel=self.kernel, trace=self.trace)
        sim.reset()
        for index, times in enumerate(input_times):
            self.block.drive(sim, f"a{index}", times)
        sim.run()
        return self.output.count()
