"""Inductor-integrator model of the RL buffer (paper Fig 10b/10c, Fig 11).

The buffer delays a Race-Logic pulse by exactly one epoch by *storing time
as inductor current*: the input pulse closes switch 1 and a clock source
charges inductance L at a constant rate (``I_L = (1/L) * integral(v_L dt)``);
when the comparator junction J1 reaches its critical current — tuned to
take half an epoch — the circuit flips to discharging through switch 2;
when the current returns to the low baseline, J2 kicks back and emits the
output pulse.  Charge plus discharge sum to one epoch regardless of when
the input arrived, so the pulse reappears with its slot (value) intact.

:class:`IntegratorBuffer` produces both the delayed pulse time and the
piecewise-linear current/voltage traces of Fig 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analog.waveform import Trace, pulses_to_trace
from repro.errors import ConfigurationError


@dataclass
class IntegratorTrace:
    """All Fig 11 signals for one buffered pulse."""

    epoch_marks: Trace  # E
    input_pulse: Trace  # IN
    node_a: Trace  # L_a: charging-side voltage
    node_b: Trace  # L_b: discharging-side voltage
    current: Trace  # I_L in uA
    output_pulse: Trace  # OUT

    def all_traces(self) -> List[Trace]:
        return [
            self.epoch_marks,
            self.input_pulse,
            self.node_a,
            self.node_b,
            self.current,
            self.output_pulse,
        ]


class IntegratorBuffer:
    """Piecewise-linear analog model of the integrator-based RL buffer.

    Args:
        epoch_fs: Epoch duration; the buffer delay.
        critical_current_ua: Comparator threshold I_c (current peak).
        baseline_ua: Discharge end level (J2 kickback point).
    """

    def __init__(
        self,
        epoch_fs: int,
        critical_current_ua: float = 200.0,
        baseline_ua: float = 0.0,
    ):
        if epoch_fs <= 0:
            raise ConfigurationError(f"epoch must be positive, got {epoch_fs}")
        if critical_current_ua <= baseline_ua:
            raise ConfigurationError(
                "critical current must exceed the discharge baseline"
            )
        self.epoch_fs = epoch_fs
        self.critical_current_ua = critical_current_ua
        self.baseline_ua = baseline_ua

    # -- architectural contract -------------------------------------------------
    def output_time(self, input_time_fs: int) -> int:
        """The delayed pulse: exactly one epoch after the input."""
        if input_time_fs < 0:
            raise ConfigurationError(f"input time must be >= 0, got {input_time_fs}")
        return input_time_fs + self.epoch_fs

    def charge_rate_ua_per_fs(self) -> float:
        """dI/dt while charging: reaches I_c in half an epoch."""
        return (self.critical_current_ua - self.baseline_ua) / (self.epoch_fs / 2)

    def current_ua(self, t_fs: float, input_time_fs: int) -> float:
        """Inductor current at ``t_fs`` for a pulse buffered at ``input_time_fs``."""
        half = self.epoch_fs / 2
        rate = self.charge_rate_ua_per_fs()
        dt = t_fs - input_time_fs
        if dt < 0:
            return self.baseline_ua
        if dt <= half:  # charging ramp
            return self.baseline_ua + rate * dt
        if dt <= self.epoch_fs:  # discharging ramp
            return self.critical_current_ua - rate * (dt - half)
        return self.baseline_ua

    # -- figure reproduction ------------------------------------------------------
    def simulate(
        self,
        input_time_fs: int,
        n_epochs: int = 2,
        n_samples: int = 3_000,
    ) -> IntegratorTrace:
        """Render all Fig 11 signals around one buffered pulse."""
        t_end = self.epoch_fs * max(n_epochs, 2)
        time = np.linspace(0, t_end, n_samples)
        out_time = self.output_time(input_time_fs)
        half = self.epoch_fs / 2

        current = np.array([self.current_ua(t, input_time_fs) for t in time])
        epoch_marks = pulses_to_trace(
            "E",
            [k * self.epoch_fs for k in range(max(n_epochs, 2) + 1)],
            0,
            t_end,
            n_samples,
        )
        input_pulse = pulses_to_trace("IN", [input_time_fs], 0, t_end, n_samples)
        output_pulse = pulses_to_trace("OUT", [out_time], 0, t_end, n_samples)
        # Node voltages: L_a pulses when charging starts/stops (switch 1 and
        # the J1 kickback); L_b pulses at discharge start and the J2 kickback.
        node_a = pulses_to_trace(
            "L_a",
            [input_time_fs, int(input_time_fs + half)],
            0,
            t_end,
            n_samples,
            amplitude_mv=1.0,
        )
        node_b = pulses_to_trace(
            "L_b",
            [int(input_time_fs + half), out_time],
            0,
            t_end,
            n_samples,
            amplitude_mv=1.0,
        )
        current_trace = Trace("I_L", time, current, unit="uA")
        return IntegratorTrace(
            epoch_marks, input_pulse, node_a, node_b, current_trace, output_pulse
        )
