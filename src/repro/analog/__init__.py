"""Analog-level behavioural models: waveform rendering and the inductor
integrator (paper Figs 7, 10, 11).

The event-driven simulator deals in pulse times; this package turns those
into voltage/current-versus-time traces comparable to the paper's WRspice
waveform figures, and models the integrator buffer's inductor-current ramp
explicitly.
"""

from repro.analog.integrator import IntegratorBuffer, IntegratorTrace
from repro.analog.waveform import Trace, pulses_to_trace

__all__ = ["IntegratorBuffer", "IntegratorTrace", "Trace", "pulses_to_trace"]
