"""Voltage-trace rendering of SFQ pulse trains.

SFQ pulses are ~2 ps wide, tens-of-mV spikes whose time integral is one
flux quantum; for figure reproduction we render each as a Gaussian.  A
:class:`Trace` bundles the sampled arrays with a label so experiments can
print aligned multi-signal timelines (Figs 7 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass
class Trace:
    """One named, sampled waveform."""

    label: str
    time_fs: np.ndarray
    value: np.ndarray
    unit: str = "mV"

    def at(self, time_fs: float) -> float:
        """Linearly interpolated value at a time."""
        return float(np.interp(time_fs, self.time_fs, self.value))

    def peak_times(self, threshold: float = None) -> List[float]:
        """Times of local maxima above ``threshold`` (half-max default)."""
        if threshold is None:
            threshold = 0.5 * float(np.max(self.value)) if self.value.size else 0.0
        peaks = []
        v = self.value
        for i in range(1, len(v) - 1):
            if v[i] >= threshold and v[i] >= v[i - 1] and v[i] > v[i + 1]:
                peaks.append(float(self.time_fs[i]))
        return peaks

    def ascii_sparkline(self, width: int = 72) -> str:
        """Terminal-friendly rendering for experiment reports."""
        if self.value.size == 0:
            return ""
        levels = " .:-=+*#%@"
        resampled = np.interp(
            np.linspace(self.time_fs[0], self.time_fs[-1], width),
            self.time_fs,
            self.value,
        )
        low, high = float(np.min(resampled)), float(np.max(resampled))
        span = (high - low) or 1.0
        chars = [
            levels[min(len(levels) - 1, int((v - low) / span * (len(levels) - 1)))]
            for v in resampled
        ]
        return "".join(chars)


def pulses_to_trace(
    label: str,
    pulse_times_fs: Sequence[int],
    t_start: int,
    t_end: int,
    n_samples: int = 2_000,
    pulse_width_fs: float = 2_000.0,
    amplitude_mv: float = 0.5,
) -> Trace:
    """Render a pulse train as a Gaussian-spike voltage trace."""
    time = np.linspace(t_start, t_end, n_samples)
    value = np.zeros_like(time)
    sigma = pulse_width_fs / 2.355  # FWHM -> sigma
    for pulse_time in pulse_times_fs:
        if t_start - 5 * sigma <= pulse_time <= t_end + 5 * sigma:
            value += amplitude_mv * np.exp(-0.5 * ((time - pulse_time) / sigma) ** 2)
    return Trace(label, time, value)
