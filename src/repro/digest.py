"""Content-addressing primitives shared by the runner cache and the server.

Two subsystems need to answer "is this exact computation already done?":
the experiment runner's on-disk result cache (:mod:`repro.runner.cache`)
and the serving layer's in-memory response cache (:mod:`repro.serve.cache`).
Both build keys the same way — a digest of the *code* that would produce
the result (so any source edit invalidates everything automatically) mixed
with a canonical rendering of the *inputs* — so the machinery lives here,
dependency-free, importable from anywhere in the tree.

:func:`source_digest` hashes every Python file under ``src/repro`` (it
moved here from ``repro.runner.cache``, which re-exports it unchanged).
:func:`canonical_json` is the one JSON rendering used for cache keys and
for response bodies that must be byte-identical across runs: sorted keys,
no whitespace, explicit float repr via the stdlib encoder.
"""

from __future__ import annotations

import functools
import hashlib
import json
from pathlib import Path
from typing import Any, Optional


def source_digest(root: Optional[Path] = None) -> str:
    """Hash every ``*.py`` file under the ``repro`` package (or ``root``)."""
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@functools.lru_cache(maxsize=1)
def cached_source_digest() -> str:
    """:func:`source_digest` of the installed tree, computed once per process.

    Long-running processes (the serving layer) key every cache entry on the
    code content; re-hashing ~200 files per request would defeat the cache,
    and the tree cannot change under a running process without a restart
    anyway.
    """
    return source_digest()


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN/Inf.

    This is the *only* rendering used for content-addressed keys and for
    servable response bodies, so "same payload" and "same bytes" coincide.
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        ensure_ascii=True,
    )


def payload_digest(*parts: str) -> str:
    """SHA-256 over ``parts`` joined with NUL separators, hex-encoded."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\0")
    return digest.hexdigest()


__all__ = [
    "cached_source_digest",
    "canonical_json",
    "payload_digest",
    "source_digest",
]
