"""U-SFQ: temporal and SFQ pulse-stream encoding for superconducting accelerators.

A production-quality reproduction of Gonzalez-Guerrero et al., ASPLOS 2022.
The library spans four layers:

* ``repro.pulsesim`` + ``repro.cells`` — an event-driven SFQ pulse
  simulator and a behavioural RSFQ cell library (the spice substitute);
* ``repro.encoding`` — the Race-Logic and pulse-stream unary encodings;
* ``repro.core`` — the U-SFQ building blocks (multipliers, balancer and
  counting-network adders, PNM, memory) and the three accelerators
  (processing element, dot-product unit, FIR filter);
* ``repro.models`` / ``repro.dsp`` / ``repro.experiments`` — the
  analytical cost models, DSP workload, and the harness regenerating every
  table and figure of the paper's evaluation.

Quickstart::

    from repro import EpochSpec, UnipolarMultiplier

    epoch = EpochSpec(bits=6)
    mult = UnipolarMultiplier(epoch)
    print(mult.multiply(0.5, 0.75))  # pulse-level simulated, ~0.375
"""

from repro.core import (
    Balancer,
    BinaryFirFilter,
    BipolarMultiplier,
    CoefficientBank,
    CountingNetwork,
    DotProductUnit,
    DpuModel,
    MergerAdder,
    PEArray,
    PEModel,
    ProcessingElement,
    RlMemoryCell,
    RlShiftRegister,
    UnaryFirFilter,
    UnipolarMultiplier,
)
from repro.encoding import EpochSpec, PulseStreamCodec, RaceLogicCodec
from repro.errors import (
    ConfigurationError,
    EncodingError,
    NetlistError,
    ReproError,
    SimulationError,
)
from repro.pulsesim import Block, Circuit, PulseRecorder, Simulator

__version__ = "1.0.0"

__all__ = [
    "Balancer",
    "BinaryFirFilter",
    "BipolarMultiplier",
    "Block",
    "Circuit",
    "CoefficientBank",
    "ConfigurationError",
    "CountingNetwork",
    "DotProductUnit",
    "DpuModel",
    "EncodingError",
    "EpochSpec",
    "MergerAdder",
    "NetlistError",
    "PEArray",
    "PEModel",
    "ProcessingElement",
    "PulseRecorder",
    "PulseStreamCodec",
    "RaceLogicCodec",
    "ReproError",
    "RlMemoryCell",
    "RlShiftRegister",
    "SimulationError",
    "Simulator",
    "UnaryFirFilter",
    "UnipolarMultiplier",
    "__version__",
]
