"""Time, frequency, and power units used throughout the library.

The pulse simulator keeps time as **integer femtoseconds** so that event
ordering is exact and simulations are bit-for-bit reproducible.  The paper
quotes cell delays in picoseconds (e.g. the 9 ps inverter delay that limits
the U-SFQ multiplier), epochs in nanoseconds, and throughput in GOPs; the
helpers below convert between those scales without floating-point drift on
the hot path.
"""

from __future__ import annotations

# One femtosecond is the base tick of the simulator.
FS = 1
PS = 1_000 * FS
NS = 1_000 * PS
US = 1_000 * NS

#: Convenient aliases for readability in formulas.
FEMTOSECONDS_PER_PICOSECOND = PS
FEMTOSECONDS_PER_NANOSECOND = NS


def ps(value: float) -> int:
    """Convert picoseconds to integer femtoseconds (rounded to nearest)."""
    return round(value * PS)


def ns(value: float) -> int:
    """Convert nanoseconds to integer femtoseconds (rounded to nearest)."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert microseconds to integer femtoseconds (rounded to nearest)."""
    return round(value * US)


def to_ps(time_fs: int) -> float:
    """Convert integer femtoseconds to picoseconds."""
    return time_fs / PS


def to_ns(time_fs: int) -> float:
    """Convert integer femtoseconds to nanoseconds."""
    return time_fs / NS


def to_us(time_fs: int) -> float:
    """Convert integer femtoseconds to microseconds."""
    return time_fs / US


def to_seconds(time_fs: int) -> float:
    """Convert integer femtoseconds to seconds."""
    return time_fs * 1e-15


def frequency_ghz(period_fs: int) -> float:
    """Frequency in GHz of a periodic signal with the given period.

    >>> frequency_ghz(ps(9))  # the paper's 9 ps inverter -> ~111 GHz
    111.11111111111111
    """
    if period_fs <= 0:
        raise ValueError(f"period must be positive, got {period_fs} fs")
    return 1e6 / period_fs


def period_fs(frequency_ghz_value: float) -> int:
    """Period in femtoseconds of a signal at the given frequency in GHz."""
    if frequency_ghz_value <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_ghz_value}")
    return round(1e6 / frequency_ghz_value)


def gops(ops_per_second: float) -> float:
    """Express an operations-per-second figure in giga-operations/second."""
    return ops_per_second / 1e9


# Power helpers -- the paper reports nW (active, per gate), uW (block
# active power), and mW (passive bias power).
def nw(value: float) -> float:
    """Nanowatts to watts."""
    return value * 1e-9


def uw(value: float) -> float:
    """Microwatts to watts."""
    return value * 1e-6


def mw(value: float) -> float:
    """Milliwatts to watts."""
    return value * 1e-3


def to_nw(watts: float) -> float:
    """Watts to nanowatts."""
    return watts * 1e9


def to_uw(watts: float) -> float:
    """Watts to microwatts."""
    return watts * 1e6


def to_mw(watts: float) -> float:
    """Watts to milliwatts."""
    return watts * 1e3
