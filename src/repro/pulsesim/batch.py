"""Vectorized batch kernel: thousands of independent epochs per dispatch.

Monte-Carlo sweeps (fig19 error injection, codec fuzzing, fleet-scale
accuracy studies) run the *same* netlist over and over with different
stimulus — per-point Python event loops pay the full interpreter cost for
every lane even though the lanes share all routing.  This module compiles
a sealed circuit once into a *structure-of-arrays* program executed over a
leading batch axis of ``B`` independent lanes:

* **Masked event mode** (the general case).  A single master event loop
  pops ``(time, packed_key, opcode, lane_mask)`` entries from one heap.
  Times and routing are scalar — shared by construction, because every
  lane runs the same netlist — while the boolean ``(B,)`` mask says which
  lanes the event exists in.  Cell state lives in NumPy arrays indexed
  ``[state_row, lane]``, so each opcode updates all masked lanes with a
  handful of vector operations instead of ``B`` interpreter dispatches.

  *Soundness*: restricting the master order to any one lane yields a
  valid scalar ``(time, priority, sequence)`` order.  Entries are pushed
  in the same relative order a scalar run would push them (stimulus in
  call order, fanout rows in wire order), masks are immutable once
  scheduled, and an event only ever spawns events whose masks are subsets
  of its own — so per lane, the subsequence of events whose mask includes
  that lane is exactly the scalar run's event sequence.  Sequence numbers
  differ from a scalar run's, but sequence only breaks ties *within* one
  (time, priority) class, where the competing batch entries are either
  copies of the same scalar event or ordered identically.

* **Analytic closed form** (feed-forward fast path).  When every cell is
  a JTL, splitter, or zero-dead-time merger — the paper's Race-Logic and
  pulse-stream interconnect fabrics — the response to one stimulus pulse
  is a fixed, state-independent tree of arrivals.  The compiler folds each
  ``(element, input port)`` into a :class:`_Profile` (events spawned,
  pulses emitted, latest-arrival offset, per-probe delay multisets) and
  ``run()`` reduces whole stimulus chunks with ``bincount``/``maximum``
  reductions: no event loop at all, cost independent of pulse count per
  tap.  This is where the large (50x+) batch speedups come from.

Generic cells (custom ``handle`` or ``emit``) still work in event mode:
each gets ``B`` per-lane clones (rebuilt from ``Element.params()``), and
the master loop calls ``clone.handle`` per active lane — correct but not
vectorized, like the scalar generic-call opcode.

Fault channels are vectorized natively: every lane draws from its own
``numpy.random.Generator`` seeded ``SeedSequence([seed, lane])``, with
chunked per-lane buffers so the hot path is a single gather.  Lane
streams are therefore independent of batch composition and reproducible,
but they are *not* the scalar channels' ``random.Random`` streams; only
rate-0/std-0 channels are bit-identical to scalar runs.

Typical usage::

    from repro.pulsesim.batch import BatchSimulator

    sim = BatchSimulator(circuit, batch=4096)
    sim.schedule_flat(entry, "a", times, lanes)   # per-lane stimulus
    stats = sim.run()                             # per-lane stat arrays
    counts = sim.port_counts(sink, "q")           # (B,) pulse counts

The batch-vs-sealed differential oracle in :mod:`repro.verify.oracles`
locks this kernel to the scalar sealed kernel lane by lane.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit

#: Packed sort keys are ``priority * _SEQ_SPAN + sequence`` exactly like
#: the scalar sealed kernel, so priority ordering is preserved.
_SEQ_SPAN = 1 << 48

# Batch opcode kinds.  Layouts (op is a plain list):
_B_CALL = 0  # [0, element, port]                     generic cell, per-lane clones
_B_DELAY = 1  # [1, dq, taps, rows]                    JTL
_B_MERGER = 2  # [2, midx, dead, dq, taps, rows]        merger (dead time)
_B_MULTI = 3  # [3, emissions]                         splitter
_B_SET = 4  # [4, sidx]                              state <- 1
_B_CLR = 5  # [5, sidx]                              state <- 0
_B_NDRO = 6  # [6, sidx, ridx, dq, taps, rows]        NDRO clk
_B_TFF = 7  # [7, sidx, dq, taps, rows]              TFF a
_B_DFF = 8  # [8, sidx, dq, taps, rows]              DFF clk / DFF2 c1,c2
_B_INV = 9  # [9, sidx, dq, taps, rows]              inverter clk
_B_DISARM = 10  # [10, sidx]                            inverter a
_B_TFF2 = 11  # [11, sidx, emission_q1, emission_q2]  TFF2 a
_B_DROP = 12  # [12, fidx, taps, rows]                 DropChannel a
_B_JITTER = 13  # [13, fidx, taps, rows]                 JitterChannel a
_B_BAL = 14  # [14, bidx, port_bit, t_bff, coinc, em1, em2]  balancer a/b

#: Analytic-mode guards: a splitter tree doubles per level, so profiles
#: cap the per-arrival tap fanout and event count; circuits past the cap
#: fall back to the masked event loop.
_ANALYTIC_TAP_CAP = 4096
_ANALYTIC_EVENT_CAP = 1 << 20

#: Per-lane RNG buffer length: variates drawn per refill of one lane.
_RNG_CHUNK = 256


class _NotAnalytic(Exception):
    """Internal: circuit is outside the closed-form fast path."""


class _Profile:
    """Closed-form response of one ``(element, input port)`` to one pulse.

    Attributes:
        events: Events a scalar kernel would pop per stimulus arrival
            (including the arrival itself).
        pulses: Pulses a scalar kernel would emit per stimulus arrival.
        d_max: Largest event-time offset from the stimulus time (the
            lane's ``end_time`` contribution).
        taps: ``tap_index -> int64 array`` of record-time offsets (one
            entry per pulse recorded at that probe, duplicates kept).
        mergers: ``merger_index -> int`` largest arrival offset at that
            merger (its ``_last_accept`` contribution; with zero dead
            time every arrival is accepted, so the latest arrival is the
            last accept).
    """

    __slots__ = ("events", "pulses", "d_max", "taps", "mergers")

    def __init__(self, events, pulses, d_max, taps, mergers):
        self.events = events
        self.pulses = pulses
        self.d_max = d_max
        self.taps = taps
        self.mergers = mergers


class BatchProgram:
    """Flat batched dispatch tables for one circuit at one version.

    Attributes:
        version: Circuit version the program was built from.
        inports: ``(id(element), port) -> (packed_priority_base, op)``.
        emit_tables: ``id(element) -> {output_port -> (taps, rows)}``,
            rows with zero base delay, for :meth:`BatchSimulator.emit`.
        tap_index: ``(id(element), output_port) -> recording index`` for
            every probed port.
        tap_keys: ``(element, port)`` per recording index.
        state_init: uint8 initial value per unified-state row.
        n_reads / n_mergers: row counts of the NDRO-reads and merger
            (last-accept, collisions) arrays.
        n_balancers: row count of the balancer Mealy-state arrays
            (toggle state, last arrival, pair-open flag, hazard count).
        fault_specs: ``("drop"|"jitter", element)`` per fault index.
        generic: elements executed via per-lane clones.
        state_map: ``id(element) -> ((attr, kind, index), ...)`` mapping
            scalar state attributes onto the batch arrays (for the
            differential oracle's state snapshots).
        analytic: whether the closed-form fast path applies.
        profiles: ``(id(element), port) -> _Profile`` when analytic.
    """

    __slots__ = (
        "version",
        "inports",
        "emit_tables",
        "tap_index",
        "tap_keys",
        "state_init",
        "n_reads",
        "n_mergers",
        "n_balancers",
        "fault_specs",
        "generic",
        "state_map",
        "analytic",
        "profiles",
    )


def _classify(element: Element) -> str:
    """Opcode family for ``element``, by handle-function identity.

    Mirrors the scalar sealed compiler: subclasses inheriting a standard
    ``handle`` (e.g. ``IdealMerger``) vectorize; overriding ``handle`` or
    ``emit`` falls back to the generic per-lane-clone path.
    """
    from repro.cells.interconnect import Jtl, Merger, Splitter
    from repro.cells.logic import Inverter
    from repro.cells.storage import Dff, Dff2, Ndro
    from repro.cells.toggle import Tff, Tff2
    from repro.core.balancer import Balancer
    from repro.pulsesim.faults import DropChannel, JitterChannel

    if type(element).emit is not Element.emit:
        return "generic"
    handle = type(element).handle
    table = {
        Jtl.handle: "jtl",
        Splitter.handle: "splitter",
        Merger.handle: "merger",
        Ndro.handle: "ndro",
        Dff.handle: "dff",
        Dff2.handle: "dff2",
        Tff.handle: "tff",
        Tff2.handle: "tff2",
        Inverter.handle: "inverter",
        DropChannel.handle: "drop",
        JitterChannel.handle: "jitter",
        Balancer.handle: "balancer",
    }
    return table.get(handle, "generic")


def compile_batch(circuit: Circuit) -> BatchProgram:
    """Compile a sealed circuit into a :class:`BatchProgram`.

    Normally reached through :meth:`Circuit.seal_batch`, which caches the
    program against the circuit version (a probe attached later bumps the
    version and recompiles with the new tap index).
    """
    if not circuit.sealed:
        circuit.seal()

    prog = BatchProgram()
    prog.version = circuit._version

    tap_index: Dict[Tuple[int, str], int] = {}
    tap_keys: List[Tuple[Element, str]] = []
    for (eid, port), taps in circuit._taps.items():
        if taps:
            tap_index[(eid, port)] = len(tap_keys)
            tap_keys.append((taps[0].source, port))

    ops: Dict[Tuple[int, str], list] = {}

    def op_of(el, port):
        return ops.setdefault((id(el), port), [])

    def taps_of(el, port):
        ti = tap_index.get((id(el), port))
        return () if ti is None else (ti,)

    def rows_of(el, port, base):
        return tuple(
            (
                wire.sink.input_priority(wire.sink_port) * _SEQ_SPAN,
                base + wire.delay,
                op_of(wire.sink, wire.sink_port),
            )
            for wire in circuit._fanout.get((id(el), port), ())
        )

    def emission(el, out):
        delay = el.delay
        return (delay, taps_of(el, out), rows_of(el, out, delay))

    kinds: Dict[int, str] = {}
    state_init: List[int] = []
    state_map: Dict[int, tuple] = {}
    fault_specs: List[Tuple[str, Element]] = []
    generic: List[Element] = []
    n_reads = 0
    n_mergers = 0
    n_balancers = 0
    emit_tables: Dict[int, dict] = {}
    inports: Dict[Tuple[int, str], tuple] = {}

    for element in circuit.elements:
        eid = id(element)
        kind = _classify(element)
        kinds[eid] = kind
        emit_tables[eid] = {
            port: (taps_of(element, port), rows_of(element, port, 0))
            for port in element.output_names
        }
        if kind == "jtl":
            op_of(element, "a")[:] = [_B_DELAY, *emission(element, "q")]
        elif kind == "splitter":
            op = [_B_MULTI, (emission(element, "q1"), emission(element, "q2"))]
            op_of(element, "a")[:] = op
        elif kind == "merger":
            m = n_mergers
            n_mergers += 1
            body = [_B_MERGER, m, element.dead_time, *emission(element, "q")]
            for port in element.input_names:
                op_of(element, port)[:] = body
            state_map[eid] = (
                ("collisions", "mcoll", m),
                ("_last_accept", "mlast", m),
            )
        elif kind == "ndro":
            s = len(state_init)
            state_init.append(0)
            r = n_reads
            n_reads += 1
            op_of(element, "set")[:] = [_B_SET, s]
            op_of(element, "reset")[:] = [_B_CLR, s]
            op_of(element, "clk")[:] = [_B_NDRO, s, r, *emission(element, "q")]
            state_map[eid] = (("state", "u8", s), ("reads", "reads", r))
        elif kind == "dff":
            s = len(state_init)
            state_init.append(0)
            op_of(element, "d")[:] = [_B_SET, s]
            op_of(element, "clk")[:] = [_B_DFF, s, *emission(element, "q")]
            state_map[eid] = (("state", "u8", s),)
        elif kind == "dff2":
            s = len(state_init)
            state_init.append(0)
            op_of(element, "a")[:] = [_B_SET, s]
            op_of(element, "c1")[:] = [_B_DFF, s, *emission(element, "y1")]
            op_of(element, "c2")[:] = [_B_DFF, s, *emission(element, "y2")]
            state_map[eid] = (("state", "u8", s),)
        elif kind == "tff":
            s = len(state_init)
            state_init.append(0)
            op_of(element, "a")[:] = [_B_TFF, s, *emission(element, "q")]
            state_map[eid] = (("state", "u8", s),)
        elif kind == "tff2":
            s = len(state_init)
            state_init.append(0)
            op_of(element, "a")[:] = [
                _B_TFF2,
                s,
                emission(element, "q1"),
                emission(element, "q2"),
            ]
            state_map[eid] = (("state", "u8", s),)
        elif kind == "inverter":
            s = len(state_init)
            state_init.append(1)  # armed until an `a` pulse disarms
            op_of(element, "a")[:] = [_B_DISARM, s]
            op_of(element, "clk")[:] = [_B_INV, s, *emission(element, "q")]
            state_map[eid] = (("_armed", "bool", s),)
        elif kind == "balancer":
            b = n_balancers
            n_balancers += 1
            em1 = emission(element, "y1")
            em2 = emission(element, "y2")
            for bit, port in enumerate(("a", "b")):
                op_of(element, port)[:] = [
                    _B_BAL,
                    b,
                    bit,
                    element.t_bff_fs,
                    element.coincidence_fs,
                    em1,
                    em2,
                ]
            state_map[eid] = (
                ("state", "bstate", b),
                ("hazard_events", "bhaz", b),
            )
        elif kind in ("drop", "jitter"):
            f = len(fault_specs)
            fault_specs.append((kind, element))
            code = _B_DROP if kind == "drop" else _B_JITTER
            op_of(element, "a")[:] = [
                code,
                f,
                taps_of(element, "q"),
                rows_of(element, "q", 0),
            ]
            if kind == "drop":
                state_map[eid] = (
                    ("pulses_seen", "fault", (f, "seen")),
                    ("pulses_dropped", "fault", (f, "lost")),
                )
            else:
                state_map[eid] = (
                    ("pulses_seen", "fault", (f, "seen")),
                    ("pulses_displaced", "fault", (f, "lost")),
                    ("max_displacement_fs", "fault", (f, "peak")),
                )
        else:
            generic.append(element)
            for port in element.input_names:
                op_of(element, port)[:] = [_B_CALL, element, port]
        for port in element.input_names:
            inports[(eid, port)] = (
                element.input_priority(port) * _SEQ_SPAN,
                op_of(element, port),
            )

    prog.inports = inports
    prog.emit_tables = emit_tables
    prog.tap_index = tap_index
    prog.tap_keys = tap_keys
    prog.state_init = np.asarray(state_init, dtype=np.uint8)
    prog.n_reads = n_reads
    prog.n_mergers = n_mergers
    prog.n_balancers = n_balancers
    prog.fault_specs = fault_specs
    prog.generic = generic
    prog.state_map = state_map

    prog.analytic = all(
        kind in ("jtl", "splitter")
        or (kind == "merger" and element.dead_time == 0)
        for element, kind in zip(circuit.elements, kinds.values())
    ) and bool(circuit.elements)
    prog.profiles = None
    if prog.analytic:
        try:
            prog.profiles = _build_profiles(circuit, kinds, tap_index)
        except _NotAnalytic:
            prog.analytic = False
    return prog


def _build_profiles(circuit, kinds, tap_index):
    """Closed-form :class:`_Profile` per ``(element, input port)``.

    Raises :class:`_NotAnalytic` on feedback loops or when the response
    tree outgrows the caps (the event loop handles those circuits).
    """
    merger_index: Dict[int, int] = {}
    m = 0
    for element in circuit.elements:
        if kinds[id(element)] == "merger":
            merger_index[id(element)] = m
            m += 1

    memo: Dict[Tuple[int, str], _Profile] = {}

    def visit(el, port, stack):
        key = (id(el), port)
        got = memo.get(key)
        if got is not None:
            return got
        if key in stack:
            raise _NotAnalytic  # feedback loop: no static response tree
        stack.add(key)
        events = 1
        pulses = 0
        d_max = 0
        tap_parts: Dict[int, list] = {}
        mergers: Dict[int, int] = {}
        kind = kinds[id(el)]
        if kind == "merger":
            mergers[merger_index[id(el)]] = 0
        outs = ("q1", "q2") if kind == "splitter" else ("q",)
        for out in outs:
            dq = el.delay
            pulses += 1
            ti = tap_index.get((id(el), out))
            if ti is not None:
                tap_parts.setdefault(ti, []).append(
                    np.asarray([dq], dtype=np.int64)
                )
            for wire in circuit._fanout.get((id(el), out), ()):
                child = visit(wire.sink, wire.sink_port, stack)
                off = dq + wire.delay
                events += child.events
                pulses += child.pulses
                if events > _ANALYTIC_EVENT_CAP:
                    raise _NotAnalytic
                if off + child.d_max > d_max:
                    d_max = off + child.d_max
                for cti, delays in child.taps.items():
                    tap_parts.setdefault(cti, []).append(delays + off)
                for cm, cd in child.mergers.items():
                    if cd + off > mergers.get(cm, -1):
                        mergers[cm] = cd + off
        taps = {}
        for ti, parts in tap_parts.items():
            merged = np.concatenate(parts)
            if merged.size > _ANALYTIC_TAP_CAP:
                raise _NotAnalytic
            taps[ti] = merged
        stack.discard(key)
        prof = _Profile(events, pulses, d_max, taps, mergers)
        memo[key] = prof
        return prof

    for element in circuit.elements:
        for port in element.input_names:
            visit(element, port, set())
    return memo


class _LaneRng:
    """Chunked per-lane random streams for vectorized fault channels.

    Lane ``i`` draws from ``Generator(PCG64(SeedSequence([seed, i])))``,
    so its stream depends only on the channel seed and lane index — never
    on batch size or on what other lanes consumed.  Variates are drawn
    ``_RNG_CHUNK`` at a time per lane; the hot path is one gather plus a
    masked pointer bump.
    """

    __slots__ = ("_gens", "_buf", "_ptr", "_ids", "_normal")

    def __init__(self, seed: int, batch: int, normal: bool):
        self._gens = [
            np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, lane])))
            for lane in range(batch)
        ]
        self._buf = np.empty((batch, _RNG_CHUNK), dtype=np.float64)
        self._ptr = np.full(batch, _RNG_CHUNK, dtype=np.int64)
        self._ids = np.arange(batch)
        self._normal = normal

    def take(self, mask: np.ndarray) -> np.ndarray:
        """Next variate per lane; consumed (pointer advanced) only where
        ``mask`` is set.  Unmasked entries are unspecified."""
        need = mask & (self._ptr >= _RNG_CHUNK)
        if need.any():
            for lane in np.flatnonzero(need):
                gen = self._gens[lane]
                self._buf[lane] = (
                    gen.standard_normal(_RNG_CHUNK)
                    if self._normal
                    else gen.random(_RNG_CHUNK)
                )
                self._ptr[lane] = 0
        vals = self._buf[self._ids, np.minimum(self._ptr, _RNG_CHUNK - 1)]
        self._ptr += mask
        return vals


class _DropState:
    __slots__ = ("rng", "rates", "seen", "lost")

    def __init__(self, element, batch):
        self.rng = _LaneRng(element.seed, batch, normal=False)
        self.rates = np.full(batch, element.drop_rate, dtype=np.float64)
        self.seen = np.zeros(batch, dtype=np.int64)
        self.lost = np.zeros(batch, dtype=np.int64)


class _JitterState:
    __slots__ = ("rng", "std", "mean", "seen", "lost", "peak")

    def __init__(self, element, batch):
        self.rng = _LaneRng(element.seed, batch, normal=True)
        self.std = element.std_fs
        self.mean = element.mean_fs
        self.seen = np.zeros(batch, dtype=np.int64)
        self.lost = np.zeros(batch, dtype=np.int64)  # pulses_displaced
        self.peak = np.zeros(batch, dtype=np.int64)  # max_displacement_fs


class BatchStats:
    """Per-lane run statistics; scalar-compatible views via :meth:`lane`.

    ``mode`` is ``"analytic"`` or ``"event"``; both produce the same
    ``events``/``pulses``/``end_time`` a scalar sealed run of each lane
    would report.  Queue depth is not tracked (the master queue's depth
    has no per-lane meaning) and ``wall_s`` is the whole-batch wall time.
    """

    __slots__ = ("batch", "events", "pulses", "end_time", "wall_s", "mode")

    def __init__(self, batch, events, pulses, end_time, wall_s, mode):
        self.batch = batch
        self.events = events
        self.pulses = pulses
        self.end_time = end_time
        self.wall_s = wall_s
        self.mode = mode

    @property
    def events_total(self) -> int:
        return int(self.events.sum())

    @property
    def pulses_total(self) -> int:
        return int(self.pulses.sum())

    def lane(self, lane: int):
        """A :class:`~repro.pulsesim.simulator.SimulationStats` for one lane."""
        from repro.pulsesim.simulator import SimulationStats

        return SimulationStats(
            events_processed=int(self.events[lane]),
            pulses_emitted=int(self.pulses[lane]),
            end_time=int(self.end_time[lane]),
            max_queue_depth=0,
            wall_s=self.wall_s,
        )


class BatchSimulator:
    """Run ``batch`` independent lanes of one circuit in lockstep.

    Args:
        circuit: The netlist; compiled via :meth:`Circuit.seal_batch`.
        batch: Number of independent lanes (epochs) to execute.
        max_events: Total lane-event budget across the whole batch
            (oscillation guard, compare the scalar per-run default).
        kw-only drop-rate overrides etc. are set post-construction via
            :meth:`set_drop_rates`.

    Stimulus must target elements of ``circuit``; probes must be attached
    before the first ``run()`` (the program snapshot carries the tap
    indices).  ``run(until=...)`` bounds simulated time like the scalar
    kernels and forces the event loop; an unbounded run on an eligible
    feed-forward circuit takes the analytic fast path.
    """

    def __init__(
        self,
        circuit: Circuit,
        batch: int,
        max_events: int = 50_000_000,
    ):
        if batch < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {batch}")
        self.circuit = circuit
        self.batch = int(batch)
        self.max_events = max_events
        self._program = circuit.seal_batch()
        self._alloc()

    # -- lifecycle ------------------------------------------------------------
    def _alloc(self) -> None:
        prog = self._program
        B = self.batch
        n_state = prog.state_init.size
        self._state = np.repeat(prog.state_init[:, None], B, axis=1)
        if n_state == 0:
            self._state = self._state.reshape(0, B)
        self._reads = np.zeros((prog.n_reads, B), dtype=np.int64)
        self._mlast = np.full((prog.n_mergers, B), -1, dtype=np.int64)
        self._mcoll = np.zeros((prog.n_mergers, B), dtype=np.int64)
        nb = prog.n_balancers
        self._bal_state = np.zeros((nb, B), dtype=np.uint8)
        self._bal_last_t = np.full((nb, B), -1, dtype=np.int64)
        self._bal_last_port = np.zeros((nb, B), dtype=np.uint8)
        self._bal_last_idx = np.zeros((nb, B), dtype=np.uint8)
        self._bal_pair = np.zeros((nb, B), dtype=bool)
        self._bal_haz = np.zeros((nb, B), dtype=np.int64)
        self._events = np.zeros(B, dtype=np.int64)
        self._pulses = np.zeros(B, dtype=np.int64)
        self._end = np.zeros(B, dtype=np.int64)
        self._recs: List[list] = [[] for _ in prog.tap_keys]  # (time, mask)
        self._arecs: List[list] = [[] for _ in prog.tap_keys]  # (times, lanes, delays)
        self._raw: List[tuple] = []
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0
        self._mode: Optional[str] = None
        self._total_events = 0
        self._wall = 0.0
        self._ones = np.ones(B, dtype=bool)
        self._call_lane: Optional[int] = None
        self._clone_owner: Dict[int, int] = {}
        self._clones: Dict[int, list] = {}
        for element in prog.generic:
            lanes = [self._make_clone(element) for _ in range(B)]
            self._clones[id(element)] = lanes
            for clone in lanes:
                self._clone_owner[id(clone)] = id(element)
        self._faults = [
            _DropState(el, B) if kind == "drop" else _JitterState(el, B)
            for kind, el in prog.fault_specs
        ]

    def _make_clone(self, element: Element) -> Element:
        try:
            return type(element)(element.name, **element.params())
        except Exception as exc:
            raise SimulationError(
                f"cannot build per-lane clones of {element!r}: constructor "
                f"replay via params() failed ({exc}); give the cell a "
                "params()-recoverable constructor to run it under the batch "
                "kernel"
            ) from exc

    def reset(self) -> None:
        """Fresh lanes: state, recordings, stats, RNG streams rewound."""
        self._alloc()

    # -- scheduling -----------------------------------------------------------
    def _check_port(self, element: Element, port: str) -> None:
        if (id(element), port) not in self._program.inports:
            raise SimulationError(
                f"{element.name}.{port} is not an input port of an element "
                f"of circuit {self.circuit.name!r}"
            )

    def _add_chunk(self, element, port, times, lanes) -> None:
        self._check_port(element, port)
        times = np.asarray(times, dtype=np.int64)
        if times.ndim != 1:
            raise SimulationError(
                f"stimulus times must be one-dimensional, got shape {times.shape}"
            )
        if times.size and times.min() < 0:
            raise SimulationError(
                f"cannot schedule pulse at negative time {int(times.min())}"
            )
        if lanes is not None:
            lanes = np.asarray(lanes, dtype=np.int64)
            if lanes.shape != times.shape:
                raise SimulationError(
                    f"lane array shape {lanes.shape} does not match times "
                    f"shape {times.shape}"
                )
            if lanes.size and (lanes.min() < 0 or lanes.max() >= self.batch):
                raise SimulationError(
                    f"lane ids must be in [0, {self.batch}), got "
                    f"[{int(lanes.min())}, {int(lanes.max())}]"
                )
        if times.size:
            self._raw.append((element, port, times, lanes))

    def schedule_input(self, element: Element, port: str, time) -> None:
        """One pulse per lane: a scalar broadcasts, a ``(batch,)`` array
        gives each lane its own time."""
        arr = np.asarray(time)
        if arr.ndim == 0:
            self._add_chunk(element, port, [int(time)], None)
        elif arr.shape == (self.batch,):
            self._add_chunk(element, port, arr, np.arange(self.batch))
        else:
            raise SimulationError(
                f"schedule_input takes a scalar or a ({self.batch},) array, "
                f"got shape {arr.shape}"
            )

    def schedule_train(self, element: Element, port: str, times) -> None:
        """Broadcast a stimulus train to every lane."""
        self._add_chunk(element, port, list(times), None)

    def schedule_lane_trains(self, element: Element, port: str, trains) -> None:
        """Per-lane trains: ``trains[i]`` is lane ``i``'s pulse times."""
        trains = list(trains)
        if len(trains) != self.batch:
            raise SimulationError(
                f"need one train per lane ({self.batch}), got {len(trains)}"
            )
        times = []
        lanes = []
        for lane, train in enumerate(trains):
            train = list(train)
            times.extend(train)
            lanes.extend([lane] * len(train))
        if times:
            self._add_chunk(element, port, times, lanes)

    def schedule_flat(self, element: Element, port: str, times, lanes) -> None:
        """Flat ``(times, lanes)`` stimulus arrays (the SoA native form)."""
        self._add_chunk(element, port, times, lanes)

    def set_drop_rates(self, element: Element, rates) -> None:
        """Per-lane drop probabilities for one :class:`DropChannel`.

        Lets a Monte-Carlo sweep coalesce *different* error rates into a
        single batch run (each lane keeps its own seeded stream, so lane
        results match a same-rate batch run lane for lane).
        """
        for state, (kind, el) in zip(self._faults, self._program.fault_specs):
            if el is element:
                if kind != "drop":
                    raise ConfigurationError(
                        f"{element.name} is a {kind} channel, not a DropChannel"
                    )
                arr = np.asarray(rates, dtype=np.float64)
                if arr.ndim == 0:
                    arr = np.full(self.batch, float(arr))
                if arr.shape != (self.batch,):
                    raise ConfigurationError(
                        f"rates must be scalar or ({self.batch},), got {arr.shape}"
                    )
                if arr.min() < 0.0 or arr.max() > 1.0:
                    raise ConfigurationError("drop rates must be in [0, 1]")
                state.rates = arr
                return
        raise ConfigurationError(
            f"{element.name!r} is not a fault channel of this circuit"
        )

    # -- execution ------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> BatchStats:
        """Execute all pending stimulus; returns per-lane stats.

        ``until`` bounds simulated time (events after it stay queued for a
        later ``run``) and forces event mode.  Analytic and event results
        cannot be mixed within one simulator lifetime — ``reset()`` first.
        """
        prog = self._program
        if prog.version != self.circuit._version:
            raise SimulationError(
                "circuit changed (topology or probes) after this "
                "BatchSimulator was built; construct a new BatchSimulator"
            )
        wall0 = perf_counter()
        want_event = (
            until is not None or not prog.analytic or self._mode == "event"
        )
        if want_event:
            if self._mode == "analytic":
                raise SimulationError(
                    "cannot continue an analytic batch run in event mode; "
                    "reset() and reschedule"
                )
            self._mode = "event"
            self._flush_raw_to_heap()
            self._run_events(until)
        else:
            self._mode = "analytic"
            self._run_analytic()
        self._wall += perf_counter() - wall0
        return BatchStats(
            batch=self.batch,
            events=self._events.copy(),
            pulses=self._pulses.copy(),
            end_time=self._end.copy(),
            wall_s=self._wall,
            mode=self._mode,
        )

    # -- analytic fast path ---------------------------------------------------
    def _run_analytic(self) -> None:
        prog = self._program
        B = self.batch
        for element, port, times, lanes in self._raw:
            prof = prog.profiles[(id(element), port)]
            if lanes is None:
                n = times.size
                self._events += prof.events * n
                self._pulses += prof.pulses * n
                tmax = int(times.max())
                np.maximum(self._end, tmax + prof.d_max, out=self._end)
                for m, dm in prof.mergers.items():
                    row = self._mlast[m]
                    np.maximum(row, tmax + dm, out=row)
                for ti, delays in prof.taps.items():
                    self._arecs[ti].append((times, None, delays))
            else:
                counts = np.bincount(lanes, minlength=B)
                self._events += prof.events * counts
                self._pulses += prof.pulses * counts
                has = counts > 0
                tmax = np.full(B, -1, dtype=np.int64)
                np.maximum.at(tmax, lanes, times)
                np.maximum(
                    self._end,
                    np.where(has, tmax + prof.d_max, self._end),
                    out=self._end,
                )
                for m, dm in prof.mergers.items():
                    row = self._mlast[m]
                    np.maximum(row, np.where(has, tmax + dm, row), out=row)
                for ti, delays in prof.taps.items():
                    self._arecs[ti].append((times, lanes, delays))
        self._raw.clear()
        self._total_events = int(self._events.sum())
        if self._total_events > self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                "raise the budget for this batch size"
            )

    # -- masked event loop ----------------------------------------------------
    def _flush_raw_to_heap(self) -> None:
        heap = self._heap
        for element, port, times, lanes in self._raw:
            kb, op = self._program.inports[(id(element), port)]
            if lanes is None:
                ones = self._ones
                uts, counts = np.unique(times, return_counts=True)
                for t, c in zip(uts.tolist(), counts.tolist()):
                    for _ in range(c):
                        heappush(heap, (t, kb + self._seq, op, ones))
                        self._seq += 1
            else:
                order = np.lexsort((lanes, times))
                ts = times[order]
                ls = lanes[order]
                uts, starts = np.unique(ts, return_index=True)
                bounds = starts.tolist() + [ts.size]
                for i, t in enumerate(uts.tolist()):
                    seg = ls[bounds[i] : bounds[i + 1]]
                    counts = np.bincount(seg, minlength=self.batch)
                    for k in range(int(counts.max())):
                        heappush(
                            heap, (t, kb + self._seq, op, counts > k)
                        )
                        self._seq += 1
        self._raw.clear()

    def _emit(self, t, dq, taps, rows, mask) -> None:
        """Record taps and push fanout for one emission over ``mask``."""
        self._pulses += mask
        if taps:
            ot = t + dq
            recs = self._recs
            for ti in taps:
                recs[ti].append((ot, mask))
        if rows:
            heap = self._heap
            seq = self._seq
            for kb, dly, nop in rows:
                heappush(heap, (t + dly, kb + seq, nop, mask))
                seq += 1
            self._seq = seq

    def _run_events(self, until: Optional[int]) -> None:
        from repro.pulsesim.faults import _TOTALS

        heap = self._heap
        state = self._state
        now = self._now
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                t, _key, op, mask = heappop(heap)
                if t < now:
                    raise SimulationError(
                        f"causality violation: event at {t} fs before "
                        f"now={now} fs"
                    )
                now = t
                self._events += mask
                n_active = int(mask.sum())
                self._total_events += n_active
                if self._total_events > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely an oscillating netlist"
                    )
                self._end[mask] = t
                kind = op[0]
                if kind == _B_DELAY:
                    self._emit(t, op[1], op[2], op[3], mask)
                elif kind == _B_MULTI:
                    for dq, taps, rows in op[1]:
                        self._emit(t, dq, taps, rows, mask)
                elif kind == _B_MERGER:
                    _c, m, dead, dq, taps, rows = op
                    last = self._mlast[m]
                    ok = (last < 0) | (t - last >= dead)
                    reject = mask & ~ok
                    if reject.any():
                        self._mcoll[m][reject] += 1
                    accept = mask & ok
                    if accept.any():
                        last[accept] = t
                        self._emit(t, dq, taps, rows, accept)
                elif kind == _B_SET:
                    state[op[1]][mask] = 1
                elif kind == _B_CLR:
                    state[op[1]][mask] = 0
                elif kind == _B_NDRO:
                    _c, s, r, dq, taps, rows = op
                    self._reads[r] += mask
                    fire = mask & (state[s] == 1)
                    if fire.any():
                        self._emit(t, dq, taps, rows, fire)
                elif kind == _B_TFF:
                    _c, s, dq, taps, rows = op
                    st = state[s]
                    st[mask] ^= 1
                    fire = mask & (st == 0)
                    if fire.any():
                        self._emit(t, dq, taps, rows, fire)
                elif kind == _B_DFF:
                    _c, s, dq, taps, rows = op
                    st = state[s]
                    fire = mask & (st == 1)
                    if fire.any():
                        st[fire] = 0
                        self._emit(t, dq, taps, rows, fire)
                elif kind == _B_INV:
                    _c, s, dq, taps, rows = op
                    st = state[s]
                    fire = mask & (st == 1)
                    st[mask] = 1
                    if fire.any():
                        self._emit(t, dq, taps, rows, fire)
                elif kind == _B_DISARM:
                    state[op[1]][mask] = 0
                elif kind == _B_TFF2:
                    _c, s, em1, em2 = op
                    st = state[s]
                    m1 = mask & (st == 0)
                    m2 = mask & (st == 1)
                    st[mask] ^= 1
                    if m1.any():
                        self._emit(t, em1[0], em1[1], em1[2], m1)
                    if m2.any():
                        self._emit(t, em2[0], em2[1], em2[2], m2)
                elif kind == _B_BAL:
                    # Vectorized balancer Mealy machine (repro.core.
                    # balancer._MealyRouter.route, lane-parallel).  The
                    # lane-restricted event order equals the scalar order
                    # (kernel invariant), so sequential per-lane routing
                    # decisions map 1:1 onto these masked updates.
                    _c, b, pbit, t_bff, coinc, em1, em2 = op
                    lt = self._bal_last_t[b]
                    has = mask & (lt >= 0)
                    gap = t - lt
                    pair_hit = (
                        has
                        & (gap <= coinc)
                        & (self._bal_last_port[b] != pbit)
                        & self._bal_pair[b]
                    )
                    hazard = has & ~pair_hit & (gap < t_bff)
                    st = self._bal_state[b]
                    idx = np.where(hazard, self._bal_last_idx[b], st)
                    if hazard.any():
                        self._bal_haz[b] += hazard
                    toggle = mask & ~hazard
                    st[toggle] ^= 1
                    normal = mask & ~pair_hit & ~hazard
                    self._bal_pair[b][mask] = normal[mask]
                    lt[mask] = t
                    self._bal_last_port[b][mask] = pbit
                    self._bal_last_idx[b][mask] = idx[mask]
                    m1 = mask & (idx == 0)
                    m2 = mask & (idx == 1)
                    if m1.any():
                        self._emit(t, em1[0], em1[1], em1[2], m1)
                    if m2.any():
                        self._emit(t, em2[0], em2[1], em2[2], m2)
                elif kind == _B_DROP:
                    _c, f, taps, rows = op
                    fa = self._faults[f]
                    fa.seen += mask
                    _TOTALS["drop.pulses_seen"] += n_active
                    u = fa.rng.take(mask)
                    dropped = mask & (u < fa.rates)
                    nd = int(dropped.sum())
                    if nd:
                        fa.lost += dropped
                        _TOTALS["drop.pulses_dropped"] += nd
                    accept = mask & ~dropped
                    if accept.any():
                        self._emit(t, 0, taps, rows, accept)
                elif kind == _B_JITTER:
                    _c, f, taps, rows = op
                    fa = self._faults[f]
                    fa.seen += mask
                    _TOTALS["jitter.pulses_seen"] += n_active
                    if fa.std:
                        disp = np.rint(fa.rng.take(mask) * fa.std).astype(
                            np.int64
                        )
                    else:
                        disp = np.zeros(self.batch, dtype=np.int64)
                    delay = np.maximum(0, fa.mean + disp)
                    effective = delay - fa.mean
                    moved = mask & (effective != 0)
                    nm = int(moved.sum())
                    if nm:
                        fa.lost += moved
                        _TOTALS["jitter.pulses_displaced"] += nm
                        np.maximum(
                            fa.peak,
                            np.where(moved, np.abs(effective), 0),
                            out=fa.peak,
                        )
                    for d in np.unique(delay[mask]).tolist():
                        sub = mask & (delay == d)
                        self._emit(t + d, 0, taps, rows, sub)
                elif kind == _B_CALL:
                    element, port = op[1], op[2]
                    clones = self._clones[id(element)]
                    self._now = now
                    try:
                        for lane in np.flatnonzero(mask).tolist():
                            self._call_lane = lane
                            clones[lane].handle(self, port, t)
                    finally:
                        self._call_lane = None
                else:  # pragma: no cover - compiler invariant
                    raise SimulationError(
                        f"corrupt batch program (kind {kind!r})"
                    )
        finally:
            self._now = now
        if until is not None:
            np.maximum(self._end, until, out=self._end)

    def emit(self, source: Element, port: str, time: int) -> None:
        """Pulse delivery for generic-cell callbacks (single-lane mask)."""
        lane = self._call_lane
        if lane is None:
            raise SimulationError(
                "BatchSimulator.emit is only valid inside a cell callback"
            )
        eid = self._clone_owner.get(id(source), id(source))
        table = self._program.emit_tables.get(eid)
        row = table.get(port) if table is not None else None
        if row is None:
            self._pulses[lane] += 1
            return
        mask = np.zeros(self.batch, dtype=bool)
        mask[lane] = True
        self._emit(time, 0, row[0], row[1], mask)

    # -- results --------------------------------------------------------------
    def _tap(self, element: Element, port: str) -> int:
        ti = self._program.tap_index.get((id(element), port))
        if ti is None:
            raise SimulationError(
                f"no probe on {element.name}.{port}; attach one with "
                "circuit.probe(...) before building the BatchSimulator"
            )
        return ti

    def port_counts(self, element: Element, port: str) -> np.ndarray:
        """Per-lane pulse count ``(batch,)`` recorded at a probed port."""
        ti = self._tap(element, port)
        out = np.zeros(self.batch, dtype=np.int64)
        for times, lanes, delays in self._arecs[ti]:
            if lanes is None:
                out += times.size * delays.size
            else:
                out += np.bincount(lanes, minlength=self.batch) * delays.size
        for _t, mask in self._recs[ti]:
            out += mask
        return out

    def port_times(self, element: Element, port: str, lane: int) -> List[int]:
        """Sorted pulse times recorded at a probed port in one lane."""
        ti = self._tap(element, port)
        parts = []
        for times, lanes, delays in self._arecs[ti]:
            sel = times if lanes is None else times[lanes == lane]
            if sel.size and delays.size:
                parts.append((sel[:, None] + delays[None, :]).ravel())
        direct = [t for t, mask in self._recs[ti] if mask[lane]]
        if direct:
            parts.append(np.asarray(direct, dtype=np.int64))
        if not parts:
            return []
        merged = np.concatenate(parts)
        merged.sort()
        return merged.tolist()

    def element_attr(self, element: Element, attr: str, lane: int, default=None):
        """Scalar-equivalent state attribute of ``element`` in one lane.

        Mirrors ``getattr(element, attr, default)`` on a scalar run: the
        batch arrays are consulted for vectorized cells, the per-lane
        clone for generic cells, and the element's own (never-touched)
        attribute as the fallback for state the batch kernel does not
        model (e.g. stateless cells).
        """
        eid = id(element)
        clones = self._clones.get(eid)
        if clones is not None:
            return getattr(clones[lane], attr, default)
        for name, kind, idx in self._program.state_map.get(eid, ()):
            if name != attr:
                continue
            if kind == "u8":
                return int(self._state[idx, lane])
            if kind == "bool":
                return bool(self._state[idx, lane])
            if kind == "reads":
                return int(self._reads[idx, lane])
            if kind == "mlast":
                value = int(self._mlast[idx, lane])
                return None if value < 0 else value
            if kind == "mcoll":
                return int(self._mcoll[idx, lane])
            if kind == "fault":
                f, field = idx
                return int(getattr(self._faults[f], field)[lane])
            if kind == "bstate":
                return int(self._bal_state[idx, lane])
            if kind == "bhaz":
                return int(self._bal_haz[idx, lane])
        return getattr(element, attr, default)

    @property
    def pending_events(self) -> int:
        """Master-queue entries still pending (0 after an unbounded run)."""
        return len(self._heap) + sum(
            chunk[2].size for chunk in self._raw
        )


# -- per-request lane slicing --------------------------------------------------
def lane_slices(lane_counts) -> List[slice]:
    """Contiguous per-request lane ranges for a coalesced batch run.

    The serving layer packs heterogeneous payloads into one
    :class:`BatchSimulator` run: request ``i`` contributes
    ``lane_counts[i]`` adjacent lanes (one per dot-product row, epoch,
    Monte-Carlo sample...).  This returns one :class:`slice` per request,
    valid into any ``(batch,)``-shaped per-lane array — ``port_counts``,
    :class:`BatchStats` fields — so results come back out per request:

        >>> lane_slices([2, 1, 3])
        [slice(0, 2, None), slice(2, 3, None), slice(3, 6, None)]

    Zero-lane requests are allowed (an empty slice keeps positions
    aligned); negative counts raise :class:`ConfigurationError`.
    """
    slices: List[slice] = []
    start = 0
    for count in lane_counts:
        count = int(count)
        if count < 0:
            raise ConfigurationError(
                f"lane counts must be >= 0, got {count}"
            )
        slices.append(slice(start, start + count))
        start += count
    return slices
