"""Composite block helper.

The U-SFQ building blocks (multiplier, balancer, counting network, PNM,
...) are netlists of several cells with a handful of externally meaningful
ports.  :class:`Block` groups the cells of one such sub-circuit, exposes
aliased input/output ports, and tracks the block's JJ budget, so
accelerator netlists compose blocks instead of raw cells.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import NetlistError
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.probe import PulseRecorder


class Block:
    """A named group of cells inside a :class:`Circuit` with aliased ports."""

    def __init__(self, circuit: Circuit, name: str):
        self.circuit = circuit
        self.name = name
        self.elements: List[Element] = []
        self._inputs: Dict[str, Tuple[Element, str]] = {}
        self._outputs: Dict[str, Tuple[Element, str]] = {}

    # -- construction ------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add a cell to the circuit under this block's namespace."""
        self.circuit.add(element)
        self.elements.append(element)
        return element

    def subname(self, suffix: str) -> str:
        """A cell name namespaced under this block."""
        return f"{self.name}.{suffix}"

    def expose_input(self, alias: str, element: Element, port: str) -> None:
        element.input_priority(port)  # validate
        if alias in self._inputs:
            raise NetlistError(f"block {self.name!r} already has input {alias!r}")
        self._inputs[alias] = (element, port)

    def expose_output(self, alias: str, element: Element, port: str) -> None:
        element.check_output(port)
        if alias in self._outputs:
            raise NetlistError(f"block {self.name!r} already has output {alias!r}")
        self._outputs[alias] = (element, port)

    # -- access --------------------------------------------------------------
    def input(self, alias: str) -> Tuple[Element, str]:
        try:
            return self._inputs[alias]
        except KeyError:
            known = ", ".join(sorted(self._inputs))
            raise NetlistError(
                f"block {self.name!r} has no input {alias!r} (has: {known})"
            ) from None

    def output(self, alias: str) -> Tuple[Element, str]:
        try:
            return self._outputs[alias]
        except KeyError:
            known = ", ".join(sorted(self._outputs))
            raise NetlistError(
                f"block {self.name!r} has no output {alias!r} (has: {known})"
            ) from None

    @property
    def input_aliases(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def output_aliases(self) -> Tuple[str, ...]:
        return tuple(self._outputs)

    # -- conveniences ------------------------------------------------------
    def drive(self, sim, alias: str, times) -> None:
        """Schedule stimulus pulses into an exposed input."""
        element, port = self.input(alias)
        if isinstance(times, int):
            times = (times,)
        sim.schedule_train(element, port, times)

    def probe_output(self, alias: str, probe: PulseRecorder = None) -> PulseRecorder:
        """Attach (or create) a recorder on an exposed output."""
        element, port = self.output(alias)
        return self.circuit.probe(element, port, probe)

    def connect_output_to(self, alias: str, other: "Block", other_alias: str, delay: int = 0):
        """Wire this block's exposed output into another block's exposed input."""
        src_element, src_port = self.output(alias)
        dst_element, dst_port = other.input(other_alias)
        return self.circuit.connect(src_element, src_port, dst_element, dst_port, delay)

    def connect_output_to_element(self, alias: str, element: Element, port: str, delay: int = 0):
        """Wire this block's exposed output straight into a cell port."""
        src_element, src_port = self.output(alias)
        return self.circuit.connect(src_element, src_port, element, port, delay)

    @property
    def jj_count(self) -> int:
        """JJ budget of this block's cells."""
        return sum(element.jj_count for element in self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Block {self.name!r}: {len(self.elements)} cells, {self.jj_count} JJs>"
