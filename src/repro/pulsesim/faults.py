"""Fault-injection channels for structural error studies.

Section 5.4.1 attributes U-SFQ computation errors to physical
non-idealities: delay variations that displace pulses (collisions in the
adder, Race-Logic slot errors) and flux trapping that loses pulses.
These channels let any structural netlist experience those faults: splice
a channel into a wire and re-run the simulation.

* :class:`JitterChannel` — adds Gaussian (truncated at zero) delay noise
  to every pulse; feeding a balancer from a jittery lane provokes exactly
  the t_BFF transition hazards the paper analyses.
* :class:`DropChannel` — deletes pulses with a fixed probability (flux
  trapped in parasitic inductors).

Both are seeded for reproducibility and count what they did — per
instance (``pulses_seen`` etc., reset with the circuit) and cumulatively
per process in :func:`fault_totals`, which the experiment runner diffs
around each work unit to surface ``faults.*`` counters in run manifests.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.errors import ConfigurationError
from repro.pulsesim.element import Element, PortSpec

#: Process-cumulative fault counters.  Never reset (circuit ``reset()``
#: only clears per-instance counts): consumers snapshot before/after a
#: unit of work and report the delta, which stays correct when worker
#: processes are reused across units.
_TOTALS: Dict[str, int] = {
    "jitter.pulses_seen": 0,
    "jitter.pulses_displaced": 0,
    "drop.pulses_seen": 0,
    "drop.pulses_dropped": 0,
}


def fault_totals() -> Dict[str, int]:
    """Snapshot of the process-cumulative fault counters."""
    return dict(_TOTALS)


class JitterChannel(Element):
    """A wire segment with Gaussian delay jitter.

    Args:
        name: Element name.
        std_fs: Jitter standard deviation (femtoseconds).
        mean_fs: Nominal propagation delay.
        seed: RNG seed (reproducible runs).
    """

    INPUTS = (PortSpec("a"),)
    OUTPUTS = ("q",)
    jj_count = 0  # a fault model, not a cell

    def __init__(self, name: str, std_fs: int, mean_fs: int = 0, seed: int = 0):
        super().__init__(name)
        if std_fs < 0 or mean_fs < 0:
            raise ConfigurationError(
                f"jitter parameters must be >= 0, got std={std_fs}, mean={mean_fs}"
            )
        self.std_fs = std_fs
        self.mean_fs = mean_fs
        self.seed = seed
        self._rng = random.Random(seed)
        self.pulses_seen = 0
        self.pulses_displaced = 0
        self.max_displacement_fs = 0

    def handle(self, sim, port, time):
        self.pulses_seen += 1
        _TOTALS["jitter.pulses_seen"] += 1
        displacement = round(self._rng.gauss(0, self.std_fs)) if self.std_fs else 0
        delay = max(0, self.mean_fs + displacement)
        # Count what the simulation actually did: clamping at zero delay can
        # swallow part (or, with mean_fs=0, all) of a negative draw.
        effective = delay - self.mean_fs
        if effective:
            self.pulses_displaced += 1
            _TOTALS["jitter.pulses_displaced"] += 1
            self.max_displacement_fs = max(
                self.max_displacement_fs, abs(effective)
            )
        self.emit(sim, "q", time + delay)

    def reset(self):
        self._rng = random.Random(self.seed)
        self.pulses_seen = 0
        self.pulses_displaced = 0
        self.max_displacement_fs = 0


class DropChannel(Element):
    """A wire segment that loses pulses with probability ``drop_rate``."""

    INPUTS = (PortSpec("a"),)
    OUTPUTS = ("q",)
    jj_count = 0

    def __init__(self, name: str, drop_rate: float, seed: int = 0):
        super().__init__(name)
        if not 0.0 <= drop_rate <= 1.0:
            raise ConfigurationError(
                f"drop_rate must be in [0, 1], got {drop_rate}"
            )
        self.drop_rate = drop_rate
        self.seed = seed
        self._rng = random.Random(seed)
        self.pulses_seen = 0
        self.pulses_dropped = 0

    def handle(self, sim, port, time):
        self.pulses_seen += 1
        _TOTALS["drop.pulses_seen"] += 1
        if self._rng.random() < self.drop_rate:
            self.pulses_dropped += 1
            _TOTALS["drop.pulses_dropped"] += 1
            return
        self.emit(sim, "q", time)

    def reset(self):
        self._rng = random.Random(self.seed)
        self.pulses_seen = 0
        self.pulses_dropped = 0
