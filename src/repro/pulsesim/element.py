"""Base class for behavioural SFQ cells.

An :class:`Element` is a named cell with declared input and output ports.
When a pulse reaches an input port, the simulator calls
:meth:`Element.handle`; the cell updates its internal state and may emit
pulses on its output ports via :meth:`Element.emit`.  Emission is routed by
the owning :class:`~repro.pulsesim.netlist.Circuit`.

Simultaneous pulses are a first-class concern in SFQ (merger collisions,
balancer coincidence).  Two mechanisms keep behaviour deterministic and
physical:

* every port carries a *priority*; events with equal timestamps are
  processed in priority order (e.g. an NDRO's reset beats its clock so a
  Race-Logic pulse landing exactly on a stream slot blocks that slot, the
  convention the paper's multiplier waveforms use), and
* cells that care about coincidence windows (merger dead time, the
  balancer's t_BFF transition) compare timestamps themselves.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.errors import NetlistError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.pulsesim.simulator import Simulator


@dataclass(frozen=True)
class PortSpec:
    """Declaration of a cell port.

    Attributes:
        name: Port name, unique within the cell.
        priority: Tie-break rank for simultaneous events; lower runs first.
    """

    name: str
    priority: int = 0


class CellRole:
    """Structural roles a cell can declare for static analysis.

    The design-rule checker (:mod:`repro.lint`) reasons about netlists
    through these tags rather than concrete cell classes, so new cells
    participate in linting by declaring roles instead of patching rules.
    """

    #: The cell provides legal fanout (one input pulse, several outputs).
    SPLITTER = "splitter"
    #: The cell legally combines several pulse sources into one output.
    MERGER = "merger"
    #: The cell holds flux state and can absorb pulses: it breaks
    #: combinational loops and terminates timing paths.
    STORAGE = "storage"
    #: The cell only functions when a clock/readout port is driven; its
    #: clock ports are listed in ``Element.CLOCK_PORTS``.
    CLOCKED = "clocked"
    #: The cell is a pass-through buffer; a dangling output on it is an
    #: intentional termination, not a forgotten net.
    BUFFER = "buffer"
    #: The cell models temporal NoC transport between fabric partitions
    #: (serialization + per-hop latency + a bounded link FIFO); lint
    #: checks that such cells always carry a positive minimum latency —
    #: the lookahead the partitioned parallel engine synchronizes on.
    NOC = "noc"


class Element:
    """A behavioural SFQ cell participating in a :class:`Circuit`.

    Subclasses declare ``INPUTS`` and ``OUTPUTS`` as tuples of port names or
    :class:`PortSpec` objects, set :attr:`jj_count`, and implement
    :meth:`handle`.  State must live on the instance and be cleared by
    :meth:`reset` so a circuit can be re-simulated.
    """

    INPUTS: Tuple = ()
    OUTPUTS: Tuple = ()

    #: Structural roles (:class:`CellRole` tags) the lint rules consult.
    ROLES: frozenset = frozenset()

    #: Input ports that must be driven for the cell to function at all
    #: (clock / readout strobes); consulted by the ``no-clock-driver`` rule.
    CLOCK_PORTS: Tuple[str, ...] = ()

    #: Number of Josephson junctions in the cell (area model unit).
    jj_count: int = 0

    def __init__(self, name: str):
        self.name = name
        self.circuit = None  # set by Circuit.add
        self._input_specs: Dict[str, PortSpec] = {
            spec.name: spec for spec in map(self._as_spec, type(self).INPUTS)
        }
        self._output_names = tuple(
            spec.name for spec in map(self._as_spec, type(self).OUTPUTS)
        )

    @staticmethod
    def _as_spec(port) -> PortSpec:
        if isinstance(port, PortSpec):
            return port
        return PortSpec(str(port))

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(self._input_specs)

    @property
    def output_names(self) -> Tuple[str, ...]:
        return self._output_names

    def input_priority(self, port: str) -> int:
        try:
            return self._input_specs[port].priority
        except KeyError:
            raise NetlistError(f"{self!r} has no input port {port!r}") from None

    def check_output(self, port: str) -> None:
        if port not in self._output_names:
            raise NetlistError(f"{self!r} has no output port {port!r}")

    def has_role(self, role: str) -> bool:
        """Whether this cell declares the given :class:`CellRole` tag."""
        return role in type(self).ROLES

    def params(self) -> Dict[str, object]:
        """Constructor parameters (sans ``name``) needed to rebuild this cell.

        By convention every cell stores each ``__init__`` parameter under an
        instance attribute of the same name (``delay``, ``dead_time``,
        ``seed``, ...), so the generic implementation recovers them by
        inspecting the constructor signature.  Netlist export embeds the
        result and :func:`~repro.pulsesim.export.import_netlist` feeds it
        back to the constructor; cells that transform their arguments must
        override this method.  Raises :class:`~repro.errors.NetlistError`
        when a parameter cannot be recovered.
        """
        signature = inspect.signature(type(self).__init__)
        params: Dict[str, object] = {}
        for pname, parameter in signature.parameters.items():
            if pname in ("self", "name"):
                continue
            if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
                continue
            if not hasattr(self, pname):
                raise NetlistError(
                    f"{self!r} does not store constructor parameter {pname!r} "
                    "as an attribute; override params() to make the cell "
                    "netlist-exportable"
                )
            params[pname] = getattr(self, pname)
        return params

    @property
    def propagation_delay_fs(self) -> int:
        """Worst-case input-to-output delay used by static timing analysis.

        Cells store their delay on ``self.delay``; elements without one
        (pure behavioural models) contribute zero.
        """
        return getattr(self, "delay", 0)

    # -- simulation interface ------------------------------------------------
    def handle(self, sim: "Simulator", port: str, time: int) -> None:
        """React to a pulse arriving at ``port`` at ``time`` (femtoseconds)."""
        raise NotImplementedError

    def emit(self, sim: "Simulator", port: str, time: int) -> None:
        """Emit a pulse on an output port; the circuit fans it out."""
        sim.emit(self, port, time)

    def reset(self) -> None:
        """Clear internal state before a fresh simulation run."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"
