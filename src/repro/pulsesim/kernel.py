"""Compiled event kernel: sealed circuits, opcode programs, bucket queue.

Every figure and table of the reproduction funnels through the simulator's
event loop, so its constant factors bound how large a U-SFQ design we can
sweep.  The reference kernel (:class:`~repro.pulsesim.simulator.Simulator`)
pays for its flexibility on every single event: a bound-method ``handle``
call, attribute reads for the cell's delay, an ``Element.emit ->
Simulator.emit`` double dispatch, a probe lookup, a fanout dict lookup,
and a priority lookup per wire.  This module compiles all of that away
once per netlist:

* :func:`compile_circuit` translates each ``(element, input port)`` pair
  into a small *opcode program*: a flat list whose first entry is an
  integer kind and whose remaining entries are everything the kernel
  needs to execute the cell's response inline — pre-summed
  ``cell delay + wire delay`` offsets, the bound ``record`` methods of any
  probes on the output (empty for unprobed ports, so probe notification
  costs nothing there), and direct references to each sink's own program.
  The standard cell library (JTL, splitter, merger, NDRO, DFF, DFF2, TFF,
  TFF2, inverter) compiles to dedicated opcodes the run loop executes
  without a single Python method call; anything else — custom cells,
  fault-injection channels — compiles to a generic *call* opcode that
  invokes the cell's ``handle`` exactly like the reference loop.

  Programs are mutable lists patched *in place* on recompile (e.g. when a
  probe is attached after events were scheduled), so queued events can
  never hold stale routing.

* Event sort keys are packed into a single integer,
  ``priority * 2**48 + sequence``, preserving the reference kernel's
  ``(time, priority, sequence)`` total order (time is the bucket key,
  and the packed key compares priority first because the sequence counter
  stays far below 2**48) while replacing tuple comparisons with single
  machine-int comparisons.

* :class:`SealedSimulator` replaces the single binary heap with a
  bucket/calendar queue keyed by the exact integer femtosecond timestamp:
  a dict of per-time buckets plus a small heap of *distinct* pending
  times.  A lone pending event at a time is stored as the bare entry (no
  list), so the common sparse case allocates nothing extra; buckets
  upgrade to a heap-ordered list on contention.  SFQ workloads are
  slot-aligned — pulse-stream stimuli, clock trains, and splitter fanout
  all land many events on the same femtosecond — so the run loop drains
  each bucket in an inner loop, paying the peek/causality machinery once
  per *distinct time* instead of once per event.  For sparse horizons
  (every timestamp distinct) the structure degrades to a plain heap of
  times, never worse than a small constant factor off the reference.
  ``schedule_train`` resolves the port's program and packed priority once
  and batch-inserts the whole stimulus train.

Because compilation snapshots cell timing (``delay``, ``dead_time``) and
port priorities, those must not be mutated after a circuit is compiled;
in this codebase they are constructor-set constants.

The sealed kernel is *semantically identical* to the reference loop: the
same ``(time, priority, sequence)`` total order, the same stats, and
byte-identical experiment output (locked by the differential property test
in ``tests/pulsesim/test_kernel_differential.py``).  One deliberate
divergence: on a causality violation the reference kernel has already
popped the offending event when it raises, while the sealed kernel raises
before popping, so the event stays queued; the error and all counters are
identical.

Kernel selection::

    Simulator(circuit)                      # "auto": compiled fast path
    Simulator(circuit, kernel="sealed")     # seal the circuit, fast path
    Simulator(circuit, kernel="reference")  # the original heap loop

or globally via the ``REPRO_KERNEL`` environment variable (the CLI's
``--kernel`` flag sets it so worker processes inherit the choice).
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.simulator import (
    SimulationStats,
    Simulator,
    _collectors,
)

#: Recognised kernel names, in documentation order.
KERNELS = ("auto", "reference", "sealed")

#: Environment variable consulted when ``Simulator(kernel=None)``.
KERNEL_ENV = "REPRO_KERNEL"

#: Packed sort keys are ``priority * _SEQ_SPAN + sequence``; the sequence
#: counter would need 2**48 events (years of wall clock) to overflow into
#: the priority bits.
_SEQ_SPAN = 1 << 48

_INF = float("inf")

# Opcode kinds.  The run loop dispatches on these with a two-level compare
# chain (``kind <= 5`` first), so the numbering groups the hottest opcodes
# for the fewest comparisons.
_OP_CALL = 0  # [0, handle, port]                      generic cell
_OP_DELAY1 = 1  # [1, kb, dly, nop]                      JTL, 1 wire, unprobed
_OP_MERGER = 2  # [2, cell, dead, dq, taps, rows]        merger (dead time)
_OP_MULTI = 3  # [3, emissions]                         splitter
_OP_STORE1 = 4  # [4, cell]                              state = 1
_OP_STORE0 = 5  # [5, cell]                              state = 0
_OP_NDRO = 6  # [6, cell, dq, taps, rows]              NDRO clk
_OP_TFF = 7  # [7, cell, dq, taps, rows]              TFF a
_OP_DELAY1T = 8  # [8, dq, taps, kb, dly, nop]            JTL, 1 wire, probed
_OP_DELAYN = 9  # [9, dq, taps, rows]                    JTL, general fanout
_OP_INV = 10  # [10, cell, dq, taps, rows]             inverter clk
_OP_DISARM = 11  # [11, cell]                             inverter a
_OP_DFF = 12  # [12, cell, dq, taps, rows]             DFF clk / DFF2 c1,c2
_OP_TFF2 = 13  # [13, cell, emission_q1, emission_q2]   TFF2 a


def resolve_kernel(kernel: Optional[str]) -> str:
    """Normalise a kernel choice: explicit arg > ``REPRO_KERNEL`` > auto."""
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "auto"
    if kernel not in KERNELS:
        known = ", ".join(KERNELS)
        raise ConfigurationError(f"unknown kernel {kernel!r}; known: {known}")
    return kernel


class CompiledTables:
    """Flat dispatch tables for one circuit at one topology version.

    Attributes:
        version: The circuit version these tables were built from.
        ports: ``id(element) -> {output_port -> (taps, fan)}`` — the
            *emission* view used by :meth:`SealedSimulator.emit` and the
            specialised emit closures of generic cells.  ``fan`` rows are
            ``(packed_priority_base, wire_delay, sink_program)``.
        inports: ``id(element) -> {input_port -> (packed_priority_base,
            program)}`` — the *arrival* view used to schedule stimulus.
        monotonic: True when the compiler proved no event can create
            another event at its *own* timestamp — every cell is inline
            (no generic ``handle`` that might emit with zero latency) and
            every cell delay + wire delay sum is positive.  The run loop
            then drains contended buckets with one ``sort`` and plain
            ``list.pop`` instead of a heap operation per event.
    """

    __slots__ = ("version", "ports", "inports", "monotonic")

    def __init__(
        self,
        version: int,
        ports: Dict[int, Dict[str, tuple]],
        inports: Dict[int, Dict[str, tuple]],
        monotonic: bool,
    ):
        self.version = version
        self.ports = ports
        self.inports = inports
        self.monotonic = monotonic


# -- program construction ------------------------------------------------------


def _op_of(circuit: Circuit, element: Element, port: str) -> list:
    """The persistent program list for one ``(element, input port)``.

    The same list object is reused across recompiles and patched in place,
    so events already sitting in a queue (which reference programs
    directly) always see current routing and probes.
    """
    key = (id(element), port)
    op = circuit._ops.get(key)
    if op is None:
        op = []
        circuit._ops[key] = op
    return op


def _taps_of(circuit: Circuit, element: Element, port: str) -> tuple:
    return tuple(
        tap.probe.record for tap in circuit._taps.get((id(element), port), ())
    )


def _rows_of(
    circuit: Circuit, element: Element, port: str, base_delay: int
) -> tuple:
    """Fanout rows ``(packed_priority_base, total_delay, sink_program)``.

    ``base_delay`` is folded into each row so the run loop computes the
    arrival time with a single addition (cell delay + wire delay are
    pre-summed for inline opcodes; emission tables pass 0 because their
    callers receive an already-delayed emission time).
    """
    return tuple(
        (
            wire.sink.input_priority(wire.sink_port) * _SEQ_SPAN,
            base_delay + wire.delay,
            _op_of(circuit, wire.sink, wire.sink_port),
        )
        for wire in circuit._fanout.get((id(element), port), ())
    )


def _emission(circuit: Circuit, cell: Element, out_port: str) -> tuple:
    """``(delay, taps, rows)`` for one output port of a fixed-delay cell."""
    delay = cell.delay
    return (
        delay,
        _taps_of(circuit, cell, out_port),
        _rows_of(circuit, cell, out_port, delay),
    )


def _compile_jtl(cell, port, circuit):
    dq, taps, rows = _emission(circuit, cell, "q")
    if len(rows) == 1:
        kb, dly, nop = rows[0]
        if not taps:
            return [_OP_DELAY1, kb, dly, nop]
        return [_OP_DELAY1T, dq, taps, kb, dly, nop]
    return [_OP_DELAYN, dq, taps, rows]


def _compile_splitter(cell, port, circuit):
    return [
        _OP_MULTI,
        tuple(_emission(circuit, cell, out) for out in ("q1", "q2")),
    ]


def _compile_merger(cell, port, circuit):
    dq, taps, rows = _emission(circuit, cell, "q")
    return [_OP_MERGER, cell, cell.dead_time, dq, taps, rows]


def _compile_ndro(cell, port, circuit):
    if port == "set":
        return [_OP_STORE1, cell]
    if port == "reset":
        return [_OP_STORE0, cell]
    dq, taps, rows = _emission(circuit, cell, "q")
    return [_OP_NDRO, cell, dq, taps, rows]


def _compile_dff(cell, port, circuit):
    if port == "d":
        return [_OP_STORE1, cell]
    dq, taps, rows = _emission(circuit, cell, "q")
    return [_OP_DFF, cell, dq, taps, rows]


def _compile_dff2(cell, port, circuit):
    if port == "a":
        return [_OP_STORE1, cell]
    out = "y1" if port == "c1" else "y2"
    dq, taps, rows = _emission(circuit, cell, out)
    return [_OP_DFF, cell, dq, taps, rows]


def _compile_tff(cell, port, circuit):
    dq, taps, rows = _emission(circuit, cell, "q")
    return [_OP_TFF, cell, dq, taps, rows]


def _compile_tff2(cell, port, circuit):
    return [
        _OP_TFF2,
        cell,
        _emission(circuit, cell, "q1"),
        _emission(circuit, cell, "q2"),
    ]


def _compile_inverter(cell, port, circuit):
    if port == "a":
        return [_OP_DISARM, cell]
    dq, taps, rows = _emission(circuit, cell, "q")
    return [_OP_INV, cell, dq, taps, rows]


_inline_compilers = None


def _inline_registry() -> dict:
    """``handle function -> opcode compiler`` for the standard cell library.

    Keyed by the *function* implementing ``handle`` so subclasses that
    inherit behaviour (e.g. ``IdealMerger``) are covered automatically,
    while subclasses that override ``handle`` fall back to the generic
    call opcode.  Built lazily to keep the kernel importable before the
    cell library.
    """
    global _inline_compilers
    if _inline_compilers is None:
        from repro.cells.interconnect import Jtl, Merger, Splitter
        from repro.cells.logic import Inverter
        from repro.cells.storage import Dff, Dff2, Ndro
        from repro.cells.toggle import Tff, Tff2

        _inline_compilers = {
            Jtl.handle: _compile_jtl,
            Splitter.handle: _compile_splitter,
            Merger.handle: _compile_merger,
            Ndro.handle: _compile_ndro,
            Dff.handle: _compile_dff,
            Dff2.handle: _compile_dff2,
            Tff.handle: _compile_tff,
            Tff2.handle: _compile_tff2,
            Inverter.handle: _compile_inverter,
        }
    return _inline_compilers


def _make_emit(element: Element, table: Dict[str, tuple]):
    """Specialised ``emit`` closure for a generic (non-inline) cell.

    Installed as an *instance* attribute, shadowing :meth:`Element.emit`,
    so custom cells and fault channels calling ``self.emit(...)`` dispatch
    straight into the compiled fanout push.  ``table`` is the element's
    persistent emission table, patched in place on recompile.  If the
    simulator is not a :class:`SealedSimulator` (e.g. the same circuit is
    re-run under ``kernel="reference"`` for a differential check) the
    closure falls back to the simulator's own ``emit``.
    """

    def emit(sim, port: str, time: int) -> None:
        if sim.__class__ is not SealedSimulator:
            return sim.emit(element, port, time)
        sim._pulses += 1
        row = table.get(port)
        if row is None:
            return
        taps, fan = row
        for record in taps:
            record(time)
        if fan:
            seq = sim._sequence
            buckets = sim._buckets
            times = sim._times
            for kb, delay, nop in fan:
                arrival = time + delay
                k = kb + seq
                entry = (k, nop)
                seq += 1
                bucket = buckets.get(arrival)
                if bucket is None:
                    buckets[arrival] = entry
                    heappush(times, arrival)
                elif type(bucket) is list:
                    heappush(bucket, entry)
                elif bucket[0] < k:
                    buckets[arrival] = [bucket, entry]
                else:
                    buckets[arrival] = [entry, bucket]
            sim._sequence = seq

    return emit


def compile_circuit(circuit: Circuit) -> CompiledTables:
    """Freeze ``circuit``'s current topology + probes into kernel tables.

    Idempotent and cheap relative to any simulation: called automatically
    by :meth:`Circuit.seal` and lazily by :class:`SealedSimulator` whenever
    the circuit's version is newer than the cached tables.
    """
    registry = _inline_registry()
    default_emit = Element.emit
    emit_tables = circuit._emit_tables
    ports: Dict[int, Dict[str, tuple]] = {}
    inports: Dict[int, Dict[str, tuple]] = {}
    monotonic = True
    for element in circuit.elements:
        eid = id(element)
        etable = emit_tables.get(eid)
        if etable is None:
            etable = {}
            emit_tables[eid] = etable
        for port in element.output_names:
            etable[port] = (
                _taps_of(circuit, element, port),
                _rows_of(circuit, element, port, 0),
            )
        ports[eid] = etable
        compiler = None
        if type(element).emit is default_emit:
            compiler = registry.get(type(element).handle)
            if compiler is None:
                # Generic cells get the closure; inline cells never call
                # emit under the sealed loop, and cells with a custom emit
                # keep it (routing through SealedSimulator.emit).
                element.emit = _make_emit(element, etable)
        if compiler is None:
            # A free-form handle may emit with zero latency at its own
            # timestamp, so contended buckets must stay heap-ordered.
            monotonic = False
        elif monotonic:
            for port in element.output_names:
                for wire in circuit._fanout.get((id(element), port), ()):
                    if element.delay + wire.delay <= 0:
                        monotonic = False
        table: Dict[str, tuple] = {}
        for port in element.input_names:
            op = _op_of(circuit, element, port)
            if compiler is not None:
                op[:] = compiler(element, port, circuit)
            else:
                op[:] = [_OP_CALL, element.handle, port]
            table[port] = (element.input_priority(port) * _SEQ_SPAN, op)
        inports[eid] = table
    tables = CompiledTables(circuit._version, ports, inports, monotonic)
    circuit._compiled = tables
    return tables


class SealedSimulator(Simulator):
    """Drop-in :class:`Simulator` running the compiled fast path.

    Constructed via ``Simulator(circuit, kernel="auto"|"sealed")`` — do not
    instantiate directly unless you want to bypass kernel resolution.  The
    semantics (event order, stats, resume, error messages) are identical to
    the reference loop; only the machinery differs.
    """

    def __init__(
        self,
        circuit: Circuit,
        max_events: int = 50_000_000,
        kernel: Optional[str] = None,
        trace=None,
    ):
        self.circuit = circuit
        self.max_events = max_events
        self.kernel = "sealed" if circuit.sealed else (kernel or "auto")
        self._trace = trace
        #: time -> pending entries ``(packed_key, program)``: a bare entry
        #: tuple when one event is pending at that time, a heap-ordered
        #: list once there is contention.
        self._buckets: Dict[int, object] = {}
        #: heap of the distinct times with a pending bucket
        self._times: List[int] = []
        self._sequence = 0
        self._pulses = 0
        #: True while list buckets may be plain appended (monotonic-mode)
        #: rather than heap-ordered; a non-monotonic run heapifies first.
        self._heap_dirty = False
        self.now = 0
        self.stats = SimulationStats()

    # -- compilation ---------------------------------------------------------
    def _tables(self) -> CompiledTables:
        tables = self.circuit._compiled
        if tables is None or tables.version != self.circuit._version:
            tables = compile_circuit(self.circuit)
        return tables

    def _inport(self, element: Element, port: str) -> tuple:
        """``(packed_priority_base, program)`` for an arrival at a port."""
        tables = self._tables()
        table = tables.inports.get(id(element))
        if table is not None:
            row = table.get(port)
            if row is not None:
                return row
        # Foreign element (not in this circuit) or unknown port: validate
        # exactly like the reference kernel, then fall back to a direct
        # call.  An arbitrary handle voids the zero-latency-free proof.
        priority = element.input_priority(port)
        tables.monotonic = False
        return (priority * _SEQ_SPAN, [_OP_CALL, element.handle, port])

    # -- scheduling ----------------------------------------------------------
    def schedule_input(self, element: Element, port: str, time: int) -> None:
        """Inject an external stimulus pulse at ``element.port``."""
        if time < 0:
            raise SimulationError(f"cannot schedule pulse at negative time {time}")
        kb, op = self._inport(element, port)
        k = kb + self._sequence
        entry = (k, op)
        self._sequence += 1
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = entry
            heappush(self._times, time)
        elif type(bucket) is list:
            heappush(bucket, entry)
        elif bucket[0] < k:
            self._buckets[time] = [bucket, entry]
        else:
            self._buckets[time] = [entry, bucket]

    def schedule_train(self, element: Element, port: str, times) -> None:
        """Batch-inject a stimulus train: program resolved once."""
        buckets = self._buckets
        theap = self._times
        seq = self._sequence
        kb = op = None
        try:
            for time in times:
                if time < 0:
                    raise SimulationError(
                        f"cannot schedule pulse at negative time {time}"
                    )
                if op is None:
                    # Resolved on the first pulse so an empty train, like
                    # the reference loop, never touches the port at all.
                    kb, op = self._inport(element, port)
                k = kb + seq
                entry = (k, op)
                seq += 1
                bucket = buckets.get(time)
                if bucket is None:
                    buckets[time] = entry
                    heappush(theap, time)
                elif type(bucket) is list:
                    heappush(bucket, entry)
                elif bucket[0] < k:
                    buckets[time] = [bucket, entry]
                else:
                    buckets[time] = [entry, bucket]
        finally:
            self._sequence = seq

    def emit(self, source: Element, port: str, time: int) -> None:
        """Deliver a pulse from ``source.port`` (compiled-table dispatch).

        Cells normally bypass this method entirely — inline opcodes push
        fanout directly and generic cells get a specialised closure — but
        it remains for direct calls, for cells with a custom ``emit``
        override, and for foreign elements (which, as in the reference
        kernel, count the pulse and go nowhere).
        """
        table = self._tables().ports.get(id(source))
        row = table.get(port) if table is not None else None
        self._pulses += 1
        if row is None:
            return
        taps, fan = row
        for record in taps:
            record(time)
        if fan:
            seq = self._sequence
            buckets = self._buckets
            theap = self._times
            for kb, delay, nop in fan:
                arrival = time + delay
                k = kb + seq
                entry = (k, nop)
                seq += 1
                bucket = buckets.get(arrival)
                if bucket is None:
                    buckets[arrival] = entry
                    heappush(theap, arrival)
                elif type(bucket) is list:
                    heappush(bucket, entry)
                elif bucket[0] < k:
                    buckets[arrival] = [bucket, entry]
                else:
                    buckets[arrival] = [entry, bucket]
            self._sequence = seq

    # -- execution -----------------------------------------------------------
    def _run(self, until: Optional[int] = None) -> SimulationStats:
        """Drain the bucket queue; same contract as the reference ``run``.

        (``run`` itself lives on the base class: a one-attribute-check
        dispatcher that calls this hot loop directly when no trace session
        is installed.)  The loop keeps every counter in locals and
        interprets the compiled opcode programs inline; only generic-call
        opcodes leave the frame.  The emission block is deliberately
        duplicated per opcode — hoisting it into a helper would put a
        Python call back on the hot path.
        """
        circuit = self.circuit
        if circuit._compiled is None or (
            circuit._compiled.version != circuit._version
        ):
            compile_circuit(circuit)
        mono = circuit._compiled.monotonic
        if mono:
            # Contended buckets are plain-appended below (the drain sorts
            # them anyway), which breaks the heap invariant for any bucket
            # left pending by an ``until``-bounded exit.
            self._heap_dirty = True
        elif self._heap_dirty:
            for leftover in self._buckets.values():
                if type(leftover) is list:
                    heapify(leftover)
            self._heap_dirty = False
        stats = self.stats
        stats.pulses_emitted = self._pulses
        processed_before = stats.events_processed
        pulses_before = self._pulses
        events = processed_before
        budget = events + self.max_events
        now = self.now
        seq = self._sequence
        pulses = self._pulses
        maxq = stats.max_queue_depth
        wall_start = perf_counter()
        buckets = self._buckets
        times = self._times
        bget = buckets.get
        push = heappush
        # In monotonic mode heap order inside a bucket is pointless — the
        # drain below sorts the whole bucket once — so pushes degrade to
        # plain appends (``list.append`` unbound: still a single C call).
        bpush = list.append if mono else heappush
        pop = heappop
        horizon = _INF if until is None else until
        try:
            while times:
                t = times[0]
                if t > horizon:
                    break
                if t < now:
                    raise SimulationError(
                        f"causality violation: event at {t} fs before now={now} fs"
                    )
                if t > now:
                    # Queue-depth high-water mark, sampled once per strict
                    # time advance: scheduled minus processed counts every
                    # event still pending (the bucket at t included) and
                    # matches the reference kernel's sample exactly.
                    depth = seq - events
                    if depth > maxq:
                        maxq = depth
                now = t
                bucket = buckets[t]
                if type(bucket) is list:
                    if mono:
                        # No event can schedule back into this bucket, so
                        # heap order is overkill: one sort (appends above
                        # may have left it unordered), then walk it by
                        # index — no per-event pop at all.
                        bucket.sort()
                        key, op = bucket[0]
                        di = 1
                        dn = len(bucket)
                    else:
                        key, op = pop(bucket)
                    drain = bucket
                else:  # a lone entry stored bare
                    key, op = bucket
                    del buckets[t]
                    pop(times)
                    drain = None
                # Inner drain: every entry in this bucket shares timestamp
                # t, so the peek/causality/bucket machinery above runs once
                # per *distinct time* instead of once per event.
                while True:
                    events += 1
                    if events > budget:
                        if mono and drain is not None:
                            # Drop the already-walked prefix so the bucket
                            # resumes exactly like the pop-based path.
                            del drain[:di]
                        raise SimulationError(
                            f"exceeded max_events={self.max_events}; "
                            "likely an oscillating netlist"
                        )
                    kind = op[0]
                    if kind <= 5:
                        if kind == 1:  # DELAY1: unprobed single-wire JTL
                            _k, kb, dly, nop = op
                            pulses += 1
                            arrival = t + dly
                            k = kb + seq
                            entry = (k, nop)
                            seq += 1
                            b = bget(arrival)
                            if b is None:
                                buckets[arrival] = entry
                                push(times, arrival)
                            elif type(b) is list:
                                bpush(b, entry)
                            elif b[0] < k:
                                buckets[arrival] = [b, entry]
                            else:
                                buckets[arrival] = [entry, b]
                        elif kind == 2:  # MERGER
                            cell = op[1]
                            last = cell._last_accept
                            if last is not None and t - last < op[2]:
                                cell.collisions += 1
                            else:
                                cell._last_accept = t
                                pulses += 1
                                taps = op[4]
                                if taps:
                                    ot = t + op[3]
                                    for record in taps:
                                        record(ot)
                                for kb, dly, nop in op[5]:
                                    arrival = t + dly
                                    k = kb + seq
                                    entry = (k, nop)
                                    seq += 1
                                    b = bget(arrival)
                                    if b is None:
                                        buckets[arrival] = entry
                                        push(times, arrival)
                                    elif type(b) is list:
                                        bpush(b, entry)
                                    elif b[0] < k:
                                        buckets[arrival] = [b, entry]
                                    else:
                                        buckets[arrival] = [entry, b]
                        elif kind == 3:  # MULTI: splitter, per-output blocks
                            for dq, taps, rows in op[1]:
                                pulses += 1
                                if taps:
                                    ot = t + dq
                                    for record in taps:
                                        record(ot)
                                for kb, dly, nop in rows:
                                    arrival = t + dly
                                    k = kb + seq
                                    entry = (k, nop)
                                    seq += 1
                                    b = bget(arrival)
                                    if b is None:
                                        buckets[arrival] = entry
                                        push(times, arrival)
                                    elif type(b) is list:
                                        bpush(b, entry)
                                    elif b[0] < k:
                                        buckets[arrival] = [b, entry]
                                    else:
                                        buckets[arrival] = [entry, b]
                        elif kind == 0:  # CALL: generic cell handle
                            self.now = now
                            self._sequence = seq
                            self._pulses = pulses
                            stats.events_processed = events
                            stats.pulses_emitted = pulses
                            try:
                                op[1](self, op[2], t)
                            finally:
                                seq = self._sequence
                                pulses = self._pulses
                        elif kind == 4:  # STORE1: NDRO set / DFF d / DFF2 a
                            op[1].state = 1
                        else:  # STORE0: NDRO reset
                            op[1].state = 0
                    else:
                        if kind == 6:  # NDRO clk
                            cell = op[1]
                            cell.reads += 1
                            if cell.state:
                                pulses += 1
                                taps = op[3]
                                if taps:
                                    ot = t + op[2]
                                    for record in taps:
                                        record(ot)
                                for kb, dly, nop in op[4]:
                                    arrival = t + dly
                                    k = kb + seq
                                    entry = (k, nop)
                                    seq += 1
                                    b = bget(arrival)
                                    if b is None:
                                        buckets[arrival] = entry
                                        push(times, arrival)
                                    elif type(b) is list:
                                        bpush(b, entry)
                                    elif b[0] < k:
                                        buckets[arrival] = [b, entry]
                                    else:
                                        buckets[arrival] = [entry, b]
                        elif kind == 7:  # TFF: emit every second pulse
                            cell = op[1]
                            state = cell.state ^ 1
                            cell.state = state
                            if state == 0:
                                pulses += 1
                                taps = op[3]
                                if taps:
                                    ot = t + op[2]
                                    for record in taps:
                                        record(ot)
                                for kb, dly, nop in op[4]:
                                    arrival = t + dly
                                    k = kb + seq
                                    entry = (k, nop)
                                    seq += 1
                                    b = bget(arrival)
                                    if b is None:
                                        buckets[arrival] = entry
                                        push(times, arrival)
                                    elif type(b) is list:
                                        bpush(b, entry)
                                    elif b[0] < k:
                                        buckets[arrival] = [b, entry]
                                    else:
                                        buckets[arrival] = [entry, b]
                        elif kind == 8:  # DELAY1T: probed single-wire JTL
                            _k, dq, taps, kb, dly, nop = op
                            pulses += 1
                            ot = t + dq
                            for record in taps:
                                record(ot)
                            arrival = t + dly
                            k = kb + seq
                            entry = (k, nop)
                            seq += 1
                            b = bget(arrival)
                            if b is None:
                                buckets[arrival] = entry
                                push(times, arrival)
                            elif type(b) is list:
                                bpush(b, entry)
                            elif b[0] < k:
                                buckets[arrival] = [b, entry]
                            else:
                                buckets[arrival] = [entry, b]
                        elif kind == 9:  # DELAYN: JTL with 0 or 2+ wires
                            _k, dq, taps, rows = op
                            pulses += 1
                            if taps:
                                ot = t + dq
                                for record in taps:
                                    record(ot)
                            for kb, dly, nop in rows:
                                arrival = t + dly
                                k = kb + seq
                                entry = (k, nop)
                                seq += 1
                                b = bget(arrival)
                                if b is None:
                                    buckets[arrival] = entry
                                    push(times, arrival)
                                elif type(b) is list:
                                    bpush(b, entry)
                                elif b[0] < k:
                                    buckets[arrival] = [b, entry]
                                else:
                                    buckets[arrival] = [entry, b]
                        elif kind == 10:  # INV: inverter clk
                            cell = op[1]
                            if cell._armed:
                                pulses += 1
                                taps = op[3]
                                if taps:
                                    ot = t + op[2]
                                    for record in taps:
                                        record(ot)
                                for kb, dly, nop in op[4]:
                                    arrival = t + dly
                                    k = kb + seq
                                    entry = (k, nop)
                                    seq += 1
                                    b = bget(arrival)
                                    if b is None:
                                        buckets[arrival] = entry
                                        push(times, arrival)
                                    elif type(b) is list:
                                        bpush(b, entry)
                                    elif b[0] < k:
                                        buckets[arrival] = [b, entry]
                                    else:
                                        buckets[arrival] = [entry, b]
                            else:
                                cell._armed = True
                        elif kind == 11:  # DISARM: inverter a
                            op[1]._armed = False
                        elif kind == 12:  # DFF clk / DFF2 c1,c2
                            cell = op[1]
                            if cell.state:
                                cell.state = 0
                                pulses += 1
                                taps = op[3]
                                if taps:
                                    ot = t + op[2]
                                    for record in taps:
                                        record(ot)
                                for kb, dly, nop in op[4]:
                                    arrival = t + dly
                                    k = kb + seq
                                    entry = (k, nop)
                                    seq += 1
                                    b = bget(arrival)
                                    if b is None:
                                        buckets[arrival] = entry
                                        push(times, arrival)
                                    elif type(b) is list:
                                        bpush(b, entry)
                                    elif b[0] < k:
                                        buckets[arrival] = [b, entry]
                                    else:
                                        buckets[arrival] = [entry, b]
                        elif kind == 13:  # TFF2: alternate q1 / q2
                            cell = op[1]
                            if cell.state == 0:
                                dq, taps, rows = op[2]
                            else:
                                dq, taps, rows = op[3]
                            cell.state ^= 1
                            pulses += 1
                            if taps:
                                ot = t + dq
                                for record in taps:
                                    record(ot)
                            for kb, dly, nop in rows:
                                arrival = t + dly
                                k = kb + seq
                                entry = (k, nop)
                                seq += 1
                                b = bget(arrival)
                                if b is None:
                                    buckets[arrival] = entry
                                    push(times, arrival)
                                elif type(b) is list:
                                    bpush(b, entry)
                                elif b[0] < k:
                                    buckets[arrival] = [b, entry]
                                else:
                                    buckets[arrival] = [entry, b]
                        else:  # pragma: no cover - compiler invariant
                            raise SimulationError(
                                f"corrupt compiled program (kind {kind!r})"
                            )
                    # Same-time continuation.  Monotonic: walk the sorted
                    # bucket by index (its length is fixed — nothing can
                    # push back into it).  Otherwise: keep heap-popping,
                    # which does see zero-delay pushes landing back in it.
                    if drain is None:
                        break
                    if mono:
                        if di < dn:
                            key, op = drain[di]
                            di += 1
                            continue
                    elif drain:
                        key, op = pop(drain)
                        continue
                    del buckets[t]
                    pop(times)
                    break
        finally:
            self.now = now
            self._sequence = seq
            self._pulses = pulses
            stats.events_processed = events
            stats.pulses_emitted = pulses
            stats.max_queue_depth = maxq
            wall_delta = perf_counter() - wall_start
            stats.wall_s += wall_delta
        end = now if until is None else (now if now > until else until)
        stats.end_time = max(stats.end_time, end)
        for collector in _collectors.get():
            collector.events_processed += events - processed_before
            collector.pulses_emitted += pulses - pulses_before
            collector.end_time = max(collector.end_time, stats.end_time)
            collector.max_queue_depth = max(collector.max_queue_depth, maxq)
            collector.wall_s += wall_delta
        return stats

    def _next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest pending bucket, or None when idle."""
        return self._times[0] if self._times else None

    def reset(self) -> None:
        """Clear queue, clock, stats, and all circuit state."""
        self._buckets.clear()
        self._times.clear()
        self._sequence = 0
        self._pulses = 0
        self._heap_dirty = False
        self.now = 0
        self.stats = SimulationStats()
        self.circuit.reset()

    @property
    def pending_events(self) -> int:
        return sum(
            len(bucket) if type(bucket) is list else 1
            for bucket in self._buckets.values()
        )
