"""Circuit container: elements, wires, probes.

A :class:`Circuit` owns a set of :class:`~repro.pulsesim.element.Element`
cells and the directed wires between their ports.  Wires may carry a
propagation delay (used to model JTL/PTL interconnect without instantiating
a cell per segment).  Probes subscribe to output ports and record every
pulse emitted there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import NetlistError
from repro.pulsesim.element import Element


@dataclass
class Wire:
    """A directed connection from an output port to an input port."""

    source: Element
    source_port: str
    sink: Element
    sink_port: str
    delay: int = 0

    def __repr__(self) -> str:
        delay = f", {self.delay} fs" if self.delay else ""
        return (
            f"<Wire {self.source.name}.{self.source_port} -> "
            f"{self.sink.name}.{self.sink_port}{delay}>"
        )


@dataclass
class _OutputTap:
    """Internal record of a probe attached to an output port."""

    probe: object
    source: Element
    source_port: str


class Circuit:
    """A netlist of SFQ cells.

    Elements are added with :meth:`add`, wired with :meth:`connect`, and
    observed with :meth:`probe`.  The circuit is passive; simulation is
    driven by :class:`~repro.pulsesim.simulator.Simulator`.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.elements: List[Element] = []
        self._names: Dict[str, Element] = {}
        self._fanout: Dict[Tuple[int, str], List[Wire]] = {}
        self._taps: Dict[Tuple[int, str], List[_OutputTap]] = {}

    # -- construction --------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Register ``element`` and return it (for fluent construction)."""
        if element.name in self._names:
            raise NetlistError(
                f"duplicate element name {element.name!r} in circuit {self.name!r}"
            )
        if element.circuit is not None:
            raise NetlistError(f"{element!r} already belongs to a circuit")
        element.circuit = self
        self.elements.append(element)
        self._names[element.name] = element
        return element

    def __getitem__(self, name: str) -> Element:
        try:
            return self._names[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def connect(
        self,
        source: Element,
        source_port: str,
        sink: Element,
        sink_port: str,
        delay: int = 0,
    ) -> Wire:
        """Wire ``source.source_port`` to ``sink.sink_port``.

        ``delay`` (femtoseconds) models interconnect propagation time.
        Output ports may fan out to several sinks; in real RSFQ that needs a
        splitter cell, so structural netlists should add explicit splitters
        when JJ counts matter and rely on fanout only for test scaffolding.
        """
        self._check_owned(source)
        self._check_owned(sink)
        source.check_output(source_port)
        sink.input_priority(sink_port)  # raises for unknown input ports
        if delay < 0:
            raise NetlistError(f"wire delay must be >= 0, got {delay}")
        wire = Wire(source, source_port, sink, sink_port, delay)
        self._fanout.setdefault((id(source), source_port), []).append(wire)
        return wire

    def probe(self, source: Element, source_port: str, probe=None):
        """Attach a probe to an output port and return it.

        Without an explicit ``probe`` object a fresh
        :class:`~repro.pulsesim.probe.PulseRecorder` is created.
        """
        from repro.pulsesim.probe import PulseRecorder

        self._check_owned(source)
        source.check_output(source_port)
        if probe is None:
            probe = PulseRecorder(f"{source.name}.{source_port}")
        label = getattr(probe, "label", None)
        for tap in self._taps.get((id(source), source_port), ()):
            if getattr(tap.probe, "label", None) == label:
                raise NetlistError(
                    f"port {source.name}.{source_port} already has a probe "
                    f"named {label!r}; give the second recorder a distinct label"
                )
        tap = _OutputTap(probe, source, source_port)
        self._taps.setdefault((id(source), source_port), []).append(tap)
        return probe

    def _check_owned(self, element: Element) -> None:
        if element.circuit is not self:
            raise NetlistError(f"{element!r} does not belong to circuit {self.name!r}")

    # -- simulation support ---------------------------------------------------
    def fanout(self, source: Element, source_port: str) -> List[Wire]:
        """Wires leaving ``source.source_port`` (empty list if none)."""
        return self._fanout.get((id(source), source_port), [])

    # -- introspection (linting, export, debugging) ---------------------------
    @property
    def wires(self) -> List[Wire]:
        """Every wire in the circuit, in insertion order per source port."""
        return list(self.iter_wires())

    def iter_wires(self) -> Iterator[Wire]:
        """Iterate over all wires without materialising a list."""
        for wires in self._fanout.values():
            yield from wires

    def wires_into(self, sink: Element, sink_port: str) -> List[Wire]:
        """Wires arriving at ``sink.sink_port`` (the fan-in of one input)."""
        return [
            wire
            for wire in self.iter_wires()
            if wire.sink is sink and wire.sink_port == sink_port
        ]

    def probed_ports(self) -> List[Tuple[Element, str]]:
        """``(element, output_port)`` pairs that have at least one probe."""
        return [
            (taps[0].source, taps[0].source_port)
            for taps in self._taps.values()
            if taps
        ]

    def notify_probes(self, source: Element, source_port: str, time: int) -> None:
        for tap in self._taps.get((id(source), source_port), ()):
            tap.probe.record(time)

    def reset(self) -> None:
        """Reset all elements and probes for a fresh run."""
        for element in self.elements:
            element.reset()
        for taps in self._taps.values():
            for tap in taps:
                tap.probe.reset()

    @property
    def jj_count(self) -> int:
        """Total Josephson junctions across all cells (the area metric)."""
        return sum(element.jj_count for element in self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Circuit {self.name!r}: {len(self.elements)} elements, "
            f"{self.jj_count} JJs>"
        )
