"""Circuit container: elements, wires, probes.

A :class:`Circuit` owns a set of :class:`~repro.pulsesim.element.Element`
cells and the directed wires between their ports.  Wires may carry a
propagation delay (used to model JTL/PTL interconnect without instantiating
a cell per segment).  Probes subscribe to output ports and record every
pulse emitted there.

Once construction is finished a circuit can be *sealed* with
:meth:`Circuit.seal`: topology (elements and wires) becomes immutable and
the netlist is compiled into the flat integer-indexed dispatch tables the
sealed simulator kernel runs on (:mod:`repro.pulsesim.kernel`).  Probes may
still be attached after sealing — observability is not topology — which
simply triggers a recompile on the next run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import NetlistError
from repro.pulsesim.element import Element


@dataclass
class Wire:
    """A directed connection from an output port to an input port."""

    source: Element
    source_port: str
    sink: Element
    sink_port: str
    delay: int = 0

    def __repr__(self) -> str:
        delay = f", {self.delay} fs" if self.delay else ""
        return (
            f"<Wire {self.source.name}.{self.source_port} -> "
            f"{self.sink.name}.{self.sink_port}{delay}>"
        )


@dataclass
class _OutputTap:
    """Internal record of a probe attached to an output port."""

    probe: object
    source: Element
    source_port: str


class Circuit:
    """A netlist of SFQ cells.

    Elements are added with :meth:`add`, wired with :meth:`connect`, and
    observed with :meth:`probe`.  The circuit is passive; simulation is
    driven by :class:`~repro.pulsesim.simulator.Simulator`.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.elements: List[Element] = []
        self._names: Dict[str, Element] = {}
        self._fanout: Dict[Tuple[int, str], List[Wire]] = {}
        self._fanin: Dict[Tuple[int, str], List[Wire]] = {}
        self._taps: Dict[Tuple[int, str], List[_OutputTap]] = {}
        #: Bumped on every structural/observability change; the compiled
        #: kernel tables (:mod:`repro.pulsesim.kernel`) are tagged with the
        #: version they were built from and rebuilt lazily on mismatch.
        self._version = 0
        self._sealed = False
        self._compiled = None  # repro.pulsesim.kernel.CompiledTables
        #: Persistent per-(element, input port) opcode programs and
        #: per-element emission tables.  The kernel compiler reuses these
        #: objects across recompiles, patching contents in place, so queued
        #: events referencing a program can never go stale.
        self._ops: Dict[Tuple[int, str], list] = {}
        self._emit_tables: Dict[int, dict] = {}
        self._batch_compiled = None  # repro.pulsesim.batch.BatchProgram

    # -- construction --------------------------------------------------------
    def _mutate_topology(self, what: str) -> None:
        if self._sealed:
            raise NetlistError(
                f"circuit {self.name!r} is sealed; cannot {what} "
                "(seal() freezes topology so the compiled kernel tables stay valid)"
            )
        self._version += 1
        self._compiled = None

    def add(self, element: Element) -> Element:
        """Register ``element`` and return it (for fluent construction)."""
        self._mutate_topology("add an element")
        if element.name in self._names:
            raise NetlistError(
                f"duplicate element name {element.name!r} in circuit {self.name!r}"
            )
        if element.circuit is not None:
            raise NetlistError(f"{element!r} already belongs to a circuit")
        element.circuit = self
        self.elements.append(element)
        self._names[element.name] = element
        return element

    def __getitem__(self, name: str) -> Element:
        try:
            return self._names[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def connect(
        self,
        source: Element,
        source_port: str,
        sink: Element,
        sink_port: str,
        delay: int = 0,
    ) -> Wire:
        """Wire ``source.source_port`` to ``sink.sink_port``.

        ``delay`` (femtoseconds) models interconnect propagation time.
        Output ports may fan out to several sinks; in real RSFQ that needs a
        splitter cell, so structural netlists should add explicit splitters
        when JJ counts matter and rely on fanout only for test scaffolding.
        """
        self._mutate_topology("connect a wire")
        self._check_owned(source)
        self._check_owned(sink)
        source.check_output(source_port)
        sink.input_priority(sink_port)  # raises for unknown input ports
        if delay < 0:
            raise NetlistError(f"wire delay must be >= 0, got {delay}")
        wire = Wire(source, source_port, sink, sink_port, delay)
        self._fanout.setdefault((id(source), source_port), []).append(wire)
        self._fanin.setdefault((id(sink), sink_port), []).append(wire)
        return wire

    def probe(self, source: Element, source_port: str, probe=None):
        """Attach a probe to an output port and return it.

        Without an explicit ``probe`` object a fresh
        :class:`~repro.pulsesim.probe.PulseRecorder` is created.
        """
        from repro.pulsesim.probe import PulseRecorder

        self._check_owned(source)
        source.check_output(source_port)
        if probe is None:
            probe = PulseRecorder(f"{source.name}.{source_port}")
        label = getattr(probe, "label", None)
        for tap in self._taps.get((id(source), source_port), ()):
            if getattr(tap.probe, "label", None) == label:
                raise NetlistError(
                    f"port {source.name}.{source_port} already has a probe "
                    f"named {label!r}; give the second recorder a distinct label"
                )
        tap = _OutputTap(probe, source, source_port)
        self._taps.setdefault((id(source), source_port), []).append(tap)
        # Probes are observability, not topology: they are legal on sealed
        # circuits, but invalidate any compiled dispatch tables.
        self._version += 1
        self._compiled = None
        return probe

    def detach_probe(self, probe) -> bool:
        """Remove a probe attached with :meth:`probe`.

        Returns whether the probe was found.  Like attaching, detaching is
        legal on sealed circuits and invalidates compiled dispatch tables.
        """
        for key, taps in list(self._taps.items()):
            for tap in taps:
                if tap.probe is probe:
                    taps.remove(tap)
                    if not taps:
                        del self._taps[key]
                    self._version += 1
                    self._compiled = None
                    return True
        return False

    def _check_owned(self, element: Element) -> None:
        if element.circuit is not self:
            raise NetlistError(f"{element!r} does not belong to circuit {self.name!r}")

    # -- sealing / compilation ------------------------------------------------
    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` has frozen this circuit's topology."""
        return self._sealed

    def seal(self) -> "Circuit":
        """Freeze the topology and compile the fast-path dispatch tables.

        After sealing, :meth:`add` and :meth:`connect` raise
        :class:`~repro.errors.NetlistError` and :meth:`fanout` returns
        immutable tuples.  :meth:`probe` remains legal (observability only);
        attaching one triggers a lazy recompile.  Sealing twice is a no-op;
        the method returns ``self`` for fluent use::

            circuit = build_netlist().seal()
        """
        if not self._sealed:
            self._sealed = True
            # Freeze the per-port wire lists so no caller can alias-mutate
            # routing; iter_wires/fanout hand these tuples out directly.
            for key, wires in self._fanout.items():
                self._fanout[key] = tuple(wires)
            for key, wires in self._fanin.items():
                self._fanin[key] = tuple(wires)
            from repro.pulsesim.kernel import compile_circuit

            compile_circuit(self)
        return self

    def seal_batch(self):
        """Seal the circuit and return its compiled batch program.

        The :class:`~repro.pulsesim.batch.BatchProgram` is cached against
        the circuit version, so attaching a probe (which bumps the
        version) triggers a recompile with the new tap index on the next
        call.  :class:`~repro.pulsesim.batch.BatchSimulator` calls this at
        construction; the returned program is shared by all simulators of
        the same circuit version.
        """
        self.seal()
        cached = self._batch_compiled
        if cached is None or cached.version != self._version:
            from repro.pulsesim.batch import compile_batch

            cached = compile_batch(self)
            self._batch_compiled = cached
        return cached

    # -- simulation support ---------------------------------------------------
    def fanout(self, source: Element, source_port: str) -> Sequence[Wire]:
        """Wires leaving ``source.source_port`` (empty if none).

        Returns a defensive copy before :meth:`seal` and the frozen tuple
        afterwards, so callers can never alias-mutate the routing tables.
        """
        wires = self._fanout.get((id(source), source_port))
        if self._sealed:
            return wires if wires is not None else ()
        return list(wires) if wires is not None else []

    def _fanout_raw(self, source: Element, source_port: str) -> Sequence[Wire]:
        """Internal zero-copy fanout lookup for the simulator hot loop."""
        return self._fanout.get((id(source), source_port), ())

    # -- introspection (linting, export, debugging) ---------------------------
    @property
    def wires(self) -> List[Wire]:
        """Every wire in the circuit, in insertion order per source port."""
        return list(self.iter_wires())

    def iter_wires(self) -> Iterator[Wire]:
        """Iterate over all wires without materialising a list."""
        for wires in self._fanout.values():
            yield from wires

    def wires_into(self, sink: Element, sink_port: str) -> List[Wire]:
        """Wires arriving at ``sink.sink_port`` (the fan-in of one input).

        Served from a per-port index maintained by :meth:`connect`, so the
        lookup is O(fan-in) rather than a scan of every wire (the linter
        checks unmerged fan-in over all ports of all cells).  Wires appear
        in the order the :meth:`connect` calls were made.
        """
        return list(self._fanin.get((id(sink), sink_port), ()))

    def probed_ports(self) -> List[Tuple[Element, str]]:
        """``(element, output_port)`` pairs that have at least one probe."""
        return [
            (taps[0].source, taps[0].source_port)
            for taps in self._taps.values()
            if taps
        ]

    def notify_probes(self, source: Element, source_port: str, time: int) -> None:
        for tap in self._taps.get((id(source), source_port), ()):
            tap.probe.record(time)

    def reset(self) -> None:
        """Reset all elements and probes for a fresh run."""
        for element in self.elements:
            element.reset()
        for taps in self._taps.values():
            for tap in taps:
                tap.probe.reset()

    @property
    def jj_count(self) -> int:
        """Total Josephson junctions across all cells (the area metric)."""
        return sum(element.jj_count for element in self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Circuit {self.name!r}: {len(self.elements)} elements, "
            f"{self.jj_count} JJs>"
        )
