"""Probes: pulse recorders and waveform renderers.

A :class:`PulseRecorder` captures pulse arrival times on a net — this is the
primary measurement device (pulse *counts* decode pulse-stream values,
pulse *times* decode Race-Logic values).  A :class:`WaveformProbe` renders
the recorded pulses as an analog-looking trace for the waveform figures
(Figs 7 and 11 of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class PulseRecorder:
    """Records every pulse time (femtoseconds) observed on one net."""

    def __init__(self, label: str = ""):
        self.label = label
        self.times: List[int] = []

    def record(self, time: int) -> None:
        self.times.append(time)

    def reset(self) -> None:
        self.times.clear()

    def count(self, start: int = 0, end: Optional[int] = None) -> int:
        """Number of pulses in ``[start, end)`` (whole history by default)."""
        if end is None and start == 0:
            return len(self.times)
        end = float("inf") if end is None else end
        return sum(1 for t in self.times if start <= t < end)

    def first(self) -> int:
        """Time of the first pulse; raises if none arrived."""
        if not self.times:
            raise ValueError(f"probe {self.label!r} recorded no pulses")
        return min(self.times)

    def in_window(self, start: int, end: int) -> List[int]:
        """Pulse times within ``[start, end)``, sorted."""
        return sorted(t for t in self.times if start <= t < end)

    def inter_pulse_intervals(self) -> List[int]:
        """Gaps between consecutive pulses (sorted order)."""
        ordered = sorted(self.times)
        return [b - a for a, b in zip(ordered, ordered[1:])]

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PulseRecorder {self.label!r}: {len(self.times)} pulses>"


class WaveformProbe(PulseRecorder):
    """A recorder that can also render pulses as a voltage-like trace.

    SFQ pulses integrate to one flux quantum; for visualisation we render
    each as a Gaussian of configurable width and amplitude, matching the
    look of the paper's WRspice waveform figures.
    """

    def __init__(
        self,
        label: str = "",
        pulse_width_fs: int = 2_000,
        amplitude_mv: float = 0.5,
    ):
        super().__init__(label)
        self.pulse_width_fs = pulse_width_fs
        self.amplitude_mv = amplitude_mv

    def render(
        self, t_start: int, t_end: int, n_samples: int = 2_000
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(time_fs, voltage_mv)`` arrays over ``[t_start, t_end]``."""
        time = np.linspace(t_start, t_end, n_samples)
        voltage = np.zeros_like(time)
        sigma = self.pulse_width_fs / 2.355  # FWHM -> sigma
        for pulse_time in self.times:
            if t_start - 5 * sigma <= pulse_time <= t_end + 5 * sigma:
                voltage += self.amplitude_mv * np.exp(
                    -0.5 * ((time - pulse_time) / sigma) ** 2
                )
        return time, voltage


def merge_timelines(recorders: Sequence[PulseRecorder]) -> List[Tuple[int, str]]:
    """Interleave several recorders into one ``(time, label)`` event list."""
    events = [
        (time, recorder.label) for recorder in recorders for time in recorder.times
    ]
    events.sort()
    return events
