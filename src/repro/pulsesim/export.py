"""Netlist inspection and export.

The paper's artifact is "a small DPU netlist" for a rudimentary testing
environment; this module provides the equivalent view of any circuit built
here: a JSON-serialisable description (cells, wires, JJ budgets) and a
Graphviz DOT rendering for schematics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pulsesim.netlist import Circuit


def netlist_description(circuit: Circuit) -> Dict:
    """A JSON-serialisable description of a circuit.

    Contains every cell (type, JJ count, input/output ports) and every
    wire (source cell/port -> sink cell/port, delay), plus totals.
    """
    cells = [
        {
            "name": element.name,
            "type": type(element).__name__,
            "jj_count": element.jj_count,
            "inputs": list(element.input_names),
            "outputs": list(element.output_names),
        }
        for element in circuit.elements
    ]
    wires = []
    for element in circuit.elements:
        for port in element.output_names:
            for wire in circuit.fanout(element, port):
                wires.append(
                    {
                        "from": f"{wire.source.name}.{wire.source_port}",
                        "to": f"{wire.sink.name}.{wire.sink_port}",
                        "delay_fs": wire.delay,
                    }
                )
    return {
        "name": circuit.name,
        "cells": cells,
        "wires": wires,
        "cell_count": len(cells),
        "wire_count": len(wires),
        "jj_count": circuit.jj_count,
    }


def cell_census(circuit: Circuit) -> Dict[str, int]:
    """Cell-type histogram (how many NDROs, mergers, ... the design uses)."""
    census: Dict[str, int] = {}
    for element in circuit.elements:
        census[type(element).__name__] = census.get(type(element).__name__, 0) + 1
    return census


def to_dot(circuit: Circuit) -> str:
    """A Graphviz DOT rendering of the netlist (cells as nodes)."""
    lines: List[str] = [
        f'digraph "{circuit.name}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for element in circuit.elements:
        label = f"{element.name}\\n{type(element).__name__} ({element.jj_count} JJ)"
        lines.append(f'  "{element.name}" [label="{label}"];')
    for element in circuit.elements:
        for port in element.output_names:
            for wire in circuit.fanout(element, port):
                attributes = f'taillabel="{wire.source_port}", headlabel="{wire.sink_port}"'
                if wire.delay:
                    attributes += f', label="{wire.delay} fs"'
                lines.append(
                    f'  "{wire.source.name}" -> "{wire.sink.name}" [{attributes}];'
                )
    lines.append("}")
    return "\n".join(lines)
