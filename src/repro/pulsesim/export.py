"""Netlist inspection, export, and re-import.

The paper's artifact is "a small DPU netlist" for a rudimentary testing
environment; this module provides the equivalent view of any circuit built
here: a JSON-serialisable description (cells, wires, probes, JJ budgets)
and a Graphviz DOT rendering for schematics.

Output order is deterministic regardless of construction order: cells
sort by name, wires by (source, source port, sink, sink port, delay),
probes by (cell, port, label) — so two structurally identical circuits
export byte-identical descriptions, and descriptions diff cleanly across
refactors.

:func:`import_netlist` is the inverse of :func:`netlist_description`: it
reconstructs a *runnable* circuit — cells rebuilt from their embedded
constructor parameters, wires rewired, recorder probes reattached — so a
description can be archived, diffed, shipped to another process, and
re-simulated.  ``describe -> import -> describe`` is byte-stable, a
property the :mod:`repro.verify` conformance harness checks on randomly
generated netlists.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import NetlistError
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit


def _wire_key(wire) -> tuple:
    return (
        wire.source.name,
        wire.source_port,
        wire.sink.name,
        wire.sink_port,
        wire.delay,
    )


def _sorted_wires(circuit: Circuit) -> List:
    wires = [
        wire
        for element in circuit.elements
        for port in element.output_names
        for wire in circuit.fanout(element, port)
    ]
    wires.sort(key=_wire_key)
    return wires


def _sorted_probes(circuit: Circuit) -> List[tuple]:
    """``(cell_name, port, label, probe_type)`` per attached probe, sorted."""
    probes = []
    for element, port in circuit.probed_ports():
        for tap in circuit._taps.get((id(element), port), ()):
            label = getattr(tap.probe, "label", None) or ""
            probes.append((element.name, port, label, type(tap.probe).__name__))
    probes.sort()
    return probes


def netlist_description(circuit: Circuit) -> Dict:
    """A JSON-serialisable description of a circuit.

    Contains every cell (type, JJ count, input/output ports), every wire
    (source cell/port -> sink cell/port, delay), and every attached probe
    (observability taps, including trace sessions), plus totals.
    """
    cells = []
    for element in sorted(circuit.elements, key=lambda e: e.name):
        cell = {
            "name": element.name,
            "type": type(element).__name__,
            "jj_count": element.jj_count,
            "inputs": list(element.input_names),
            "outputs": list(element.output_names),
        }
        try:
            cell["params"] = element.params()
        except NetlistError:
            # The cell does not expose its constructor arguments; the
            # description stays readable but cannot be re-imported.
            pass
        cells.append(cell)
    wires = [
        {
            "from": f"{wire.source.name}.{wire.source_port}",
            "to": f"{wire.sink.name}.{wire.sink_port}",
            "delay_fs": wire.delay,
        }
        for wire in _sorted_wires(circuit)
    ]
    probes = [
        {
            "port": f"{cell}.{port}",
            "label": label,
            "type": probe_type,
        }
        for cell, port, label, probe_type in _sorted_probes(circuit)
    ]
    return {
        "name": circuit.name,
        "cells": cells,
        "wires": wires,
        "probes": probes,
        "cell_count": len(cells),
        "wire_count": len(wires),
        "probe_count": len(probes),
        "jj_count": circuit.jj_count,
    }


# -- re-import -----------------------------------------------------------------
def default_cell_registry() -> Dict[str, Type[Element]]:
    """Cell classes :func:`import_netlist` can instantiate, keyed by the
    ``type`` name :func:`netlist_description` emits.

    Covers the whole standard-cell library (:mod:`repro.cells`) and the
    fault channels (:mod:`repro.pulsesim.faults`).  Callers with custom
    cells pass ``registry={**default_cell_registry(), "MyCell": MyCell}``.
    """
    from repro.cells.bff import Bff
    from repro.cells.clocked import ClockedAnd, ClockedOr, ClockedXor
    from repro.cells.interconnect import IdealMerger, Jtl, Merger, Splitter
    from repro.cells.logic import FirstArrival, Inverter, LastArrival
    from repro.cells.mux import Demux, Mux
    from repro.cells.noc import NocLink
    from repro.cells.storage import Dff, Dff2, Ndro
    from repro.cells.toggle import Tff, Tff2
    from repro.pulsesim.faults import DropChannel, JitterChannel

    classes = (
        Bff, ClockedAnd, ClockedOr, ClockedXor, IdealMerger, Jtl, Merger,
        Splitter, FirstArrival, Inverter, LastArrival, Demux, Mux, Dff,
        Dff2, Ndro, Tff, Tff2, DropChannel, JitterChannel, NocLink,
    )
    return {cls.__name__: cls for cls in classes}


def _split_endpoint(reference: str, names: Dict[str, Element]) -> tuple:
    """Split an exported ``"cell.port"`` reference into (element, port).

    Cell names may themselves contain dots, so try every split from the
    right until the prefix names a known cell.
    """
    index = len(reference)
    while True:
        index = reference.rfind(".", 0, index)
        if index < 0:
            raise NetlistError(
                f"wire endpoint {reference!r} does not name a known cell"
            )
        name, port = reference[:index], reference[index + 1:]
        if name in names:
            return names[name], port


def import_netlist(
    description: Dict,
    registry: Optional[Dict[str, Type[Element]]] = None,
) -> Circuit:
    """Reconstruct a runnable :class:`Circuit` from a
    :func:`netlist_description` dict (the exact inverse operation).

    Cells are rebuilt through ``registry`` (default:
    :func:`default_cell_registry`) from their embedded ``params``; wires are
    rewired with their delays; recorder probes (``PulseRecorder`` /
    ``WaveformProbe``) are reattached under their original labels.  Probe
    entries of any other type (e.g. trace-session taps) describe transient
    observers and raise — a description containing them is a snapshot of a
    *traced* run, not an archivable netlist.

    Raises :class:`~repro.errors.NetlistError` for unknown cell types,
    cells exported without ``params``, unknown probe types, or malformed
    wire endpoints.  Round trip:
    ``netlist_description(import_netlist(d)) == d``.
    """
    from repro.pulsesim.probe import PulseRecorder, WaveformProbe

    registry = registry if registry is not None else default_cell_registry()
    circuit = Circuit(description["name"])
    for cell in description["cells"]:
        kind = cell["type"]
        try:
            factory = registry[kind]
        except KeyError:
            known = ", ".join(sorted(registry))
            raise NetlistError(
                f"cannot import cell {cell['name']!r}: unknown type {kind!r} "
                f"(registry knows: {known})"
            ) from None
        if "params" not in cell:
            raise NetlistError(
                f"cannot import cell {cell['name']!r}: the description "
                "carries no constructor params (the exporting cell did not "
                "implement params())"
            )
        circuit.add(factory(cell["name"], **cell["params"]))
    for wire in description["wires"]:
        source, source_port = _split_endpoint(wire["from"], circuit._names)
        sink, sink_port = _split_endpoint(wire["to"], circuit._names)
        circuit.connect(source, source_port, sink, sink_port,
                        delay=wire["delay_fs"])
    probe_factories = {
        "PulseRecorder": PulseRecorder,
        "WaveformProbe": WaveformProbe,
    }
    for probe in description["probes"]:
        element, port = _split_endpoint(probe["port"], circuit._names)
        try:
            factory = probe_factories[probe["type"]]
        except KeyError:
            raise NetlistError(
                f"cannot import probe on {probe['port']}: type "
                f"{probe['type']!r} is not a reconstructible recorder"
            ) from None
        circuit.probe(element, port, probe=factory(probe["label"]))
    return circuit


def cell_census(circuit: Circuit) -> Dict[str, int]:
    """Cell-type histogram (how many NDROs, mergers, ... the design uses)."""
    census: Dict[str, int] = {}
    for element in circuit.elements:
        census[type(element).__name__] = census.get(type(element).__name__, 0) + 1
    return census


def to_dot(circuit: Circuit) -> str:
    """A Graphviz DOT rendering of the netlist (cells as nodes).

    Probes render as dashed ellipses hanging off their tapped port, so a
    schematic shows where the observability taps sit.
    """
    lines: List[str] = [
        f'digraph "{circuit.name}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for element in sorted(circuit.elements, key=lambda e: e.name):
        label = f"{element.name}\\n{type(element).__name__} ({element.jj_count} JJ)"
        lines.append(f'  "{element.name}" [label="{label}"];')
    for wire in _sorted_wires(circuit):
        attributes = f'taillabel="{wire.source_port}", headlabel="{wire.sink_port}"'
        if wire.delay:
            attributes += f', label="{wire.delay} fs"'
        lines.append(
            f'  "{wire.source.name}" -> "{wire.sink.name}" [{attributes}];'
        )
    for index, (cell, port, label, _type) in enumerate(_sorted_probes(circuit)):
        node = f"probe{index}"
        text = label or f"{cell}.{port}"
        lines.append(
            f'  "{node}" [label="{text}", shape=ellipse, style=dashed];'
        )
        lines.append(
            f'  "{cell}" -> "{node}" [taillabel="{port}", style=dashed];'
        )
    lines.append("}")
    return "\n".join(lines)
