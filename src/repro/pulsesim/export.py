"""Netlist inspection and export.

The paper's artifact is "a small DPU netlist" for a rudimentary testing
environment; this module provides the equivalent view of any circuit built
here: a JSON-serialisable description (cells, wires, probes, JJ budgets)
and a Graphviz DOT rendering for schematics.

Output order is deterministic regardless of construction order: cells
sort by name, wires by (source, source port, sink, sink port, delay),
probes by (cell, port, label) — so two structurally identical circuits
export byte-identical descriptions, and descriptions diff cleanly across
refactors.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pulsesim.netlist import Circuit


def _wire_key(wire) -> tuple:
    return (
        wire.source.name,
        wire.source_port,
        wire.sink.name,
        wire.sink_port,
        wire.delay,
    )


def _sorted_wires(circuit: Circuit) -> List:
    wires = [
        wire
        for element in circuit.elements
        for port in element.output_names
        for wire in circuit.fanout(element, port)
    ]
    wires.sort(key=_wire_key)
    return wires


def _sorted_probes(circuit: Circuit) -> List[tuple]:
    """``(cell_name, port, label, probe_type)`` per attached probe, sorted."""
    probes = []
    for element, port in circuit.probed_ports():
        for tap in circuit._taps.get((id(element), port), ()):
            label = getattr(tap.probe, "label", None) or ""
            probes.append((element.name, port, label, type(tap.probe).__name__))
    probes.sort()
    return probes


def netlist_description(circuit: Circuit) -> Dict:
    """A JSON-serialisable description of a circuit.

    Contains every cell (type, JJ count, input/output ports), every wire
    (source cell/port -> sink cell/port, delay), and every attached probe
    (observability taps, including trace sessions), plus totals.
    """
    cells = [
        {
            "name": element.name,
            "type": type(element).__name__,
            "jj_count": element.jj_count,
            "inputs": list(element.input_names),
            "outputs": list(element.output_names),
        }
        for element in sorted(circuit.elements, key=lambda e: e.name)
    ]
    wires = [
        {
            "from": f"{wire.source.name}.{wire.source_port}",
            "to": f"{wire.sink.name}.{wire.sink_port}",
            "delay_fs": wire.delay,
        }
        for wire in _sorted_wires(circuit)
    ]
    probes = [
        {
            "port": f"{cell}.{port}",
            "label": label,
            "type": probe_type,
        }
        for cell, port, label, probe_type in _sorted_probes(circuit)
    ]
    return {
        "name": circuit.name,
        "cells": cells,
        "wires": wires,
        "probes": probes,
        "cell_count": len(cells),
        "wire_count": len(wires),
        "probe_count": len(probes),
        "jj_count": circuit.jj_count,
    }


def cell_census(circuit: Circuit) -> Dict[str, int]:
    """Cell-type histogram (how many NDROs, mergers, ... the design uses)."""
    census: Dict[str, int] = {}
    for element in circuit.elements:
        census[type(element).__name__] = census.get(type(element).__name__, 0) + 1
    return census


def to_dot(circuit: Circuit) -> str:
    """A Graphviz DOT rendering of the netlist (cells as nodes).

    Probes render as dashed ellipses hanging off their tapped port, so a
    schematic shows where the observability taps sit.
    """
    lines: List[str] = [
        f'digraph "{circuit.name}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for element in sorted(circuit.elements, key=lambda e: e.name):
        label = f"{element.name}\\n{type(element).__name__} ({element.jj_count} JJ)"
        lines.append(f'  "{element.name}" [label="{label}"];')
    for wire in _sorted_wires(circuit):
        attributes = f'taillabel="{wire.source_port}", headlabel="{wire.sink_port}"'
        if wire.delay:
            attributes += f', label="{wire.delay} fs"'
        lines.append(
            f'  "{wire.source.name}" -> "{wire.sink.name}" [{attributes}];'
        )
    for index, (cell, port, label, _type) in enumerate(_sorted_probes(circuit)):
        node = f"probe{index}"
        text = label or f"{cell}.{port}"
        lines.append(
            f'  "{node}" [label="{text}", shape=ellipse, style=dashed];'
        )
        lines.append(
            f'  "{cell}" -> "{node}" [taillabel="{port}", style=dashed];'
        )
    lines.append("}")
    return "\n".join(lines)
