"""Event-queue kernel for the SFQ pulse simulator.

The *reference* kernel is a classic discrete-event loop over a binary
heap.  Heap keys are ``(time, priority, sequence)``:

* ``time`` is the integer femtosecond timestamp of the pulse arrival,
* ``priority`` is the destination port's tie-break rank so that cells can
  declare, e.g., "reset beats clock when simultaneous", and
* ``sequence`` is a monotonically increasing counter that makes ordering
  total and runs fully deterministic.

``Simulator(circuit)`` does not necessarily construct this class: the
``kernel`` argument ("auto", the default, "reference", or "sealed")
selects the implementation, and "auto"/"sealed" return the compiled
fast-path kernel from :mod:`repro.pulsesim.kernel`, which preserves the
exact ``(time, priority, sequence)`` total order, stats, and outputs.
This module keeps the straightforward heap loop as the executable
specification the compiled kernel is differentially tested against.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from time import perf_counter
from typing import Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit


@dataclass
class SimulationStats:
    """Counters exposed after a run for tests and benchmarks.

    ``max_queue_depth`` is the high-water mark of pending events, sampled
    whenever simulated time strictly advances (before the first event of
    the new timestamp is processed).  Both kernels sample at the same
    instants with the same formula — scheduled minus processed events — so
    the value is bit-identical across kernels and run chunkings.
    ``wall_s`` is the host wall-clock time spent inside the event loop; it
    is the one deliberately non-deterministic counter (excluded from all
    bit-identity comparisons).
    """

    events_processed: int = 0
    pulses_emitted: int = 0
    end_time: int = 0
    max_queue_depth: int = 0
    wall_s: float = 0.0

    def merge(self, other: "SimulationStats") -> None:
        """Fold another counter set into this one (``end_time`` and
        ``max_queue_depth`` take the max; the rest add)."""
        self.events_processed += other.events_processed
        self.pulses_emitted += other.pulses_emitted
        self.end_time = max(self.end_time, other.end_time)
        self.max_queue_depth = max(self.max_queue_depth, other.max_queue_depth)
        self.wall_s += other.wall_s


# Active collectors for :func:`capture_stats`.  Every Simulator.run() adds
# its per-call deltas to each collector on the stack, so a caller can
# aggregate work done by simulators it never sees (e.g. the experiment
# runner totalling events across all netlists an experiment builds).
# Stored in a ContextVar (immutable tuple) so concurrent asyncio tasks and
# copied-context threads each get their own stack; see active_collectors().
_collectors: ContextVar[Tuple[SimulationStats, ...]] = ContextVar(
    "repro_pulsesim_stats_collectors", default=()
)


def active_collectors() -> Tuple[SimulationStats, ...]:
    """The ambient :func:`capture_stats` collectors, innermost last."""
    return _collectors.get()


@contextmanager
def capture_stats() -> Iterator[SimulationStats]:
    """Accumulate stats from every ``Simulator.run()`` inside the block."""
    collector = SimulationStats()
    token = _collectors.set(_collectors.get() + (collector,))
    try:
        yield collector
    finally:
        _collectors.reset(token)


@contextmanager
def quiet_stats() -> Iterator[None]:
    """Hide the ambient collectors for the block (engines that re-run the
    same work across shards/windows report merged totals exactly once)."""
    token = _collectors.set(())
    try:
        yield
    finally:
        _collectors.reset(token)


class Simulator:
    """Runs a :class:`Circuit` by draining a time-ordered event queue.

    Args:
        circuit: The netlist to simulate.
        max_events: Per-``run()`` event budget (oscillation guard).
        kernel: ``"auto"`` (default) and ``"sealed"`` use the compiled
            fast-path kernel (:mod:`repro.pulsesim.kernel`); ``"sealed"``
            additionally seals the circuit.  ``"reference"`` forces this
            class's plain heap loop.  ``None`` defers to the
            ``REPRO_KERNEL`` environment variable, then ``"auto"``.
        trace: An optional :class:`repro.trace.TraceSession`.  When set,
            :meth:`run` steps the kernel one distinct timestamp at a time
            so the session can sample scheduler health; results and stats
            stay bit-identical to an untraced run.  When ``None`` (the
            default) tracing costs exactly one attribute check per
            :meth:`run` call — the hot loop is untouched.
    """

    def __new__(
        cls,
        circuit: Circuit = None,
        max_events: int = 50_000_000,
        kernel: Optional[str] = None,
        trace=None,
    ):
        if cls is Simulator:
            from repro.pulsesim.kernel import SealedSimulator, resolve_kernel

            choice = resolve_kernel(kernel)
            if choice != "reference":
                if choice == "sealed":
                    circuit.seal()
                return super().__new__(SealedSimulator)
        return super().__new__(cls)

    def __init__(
        self,
        circuit: Circuit,
        max_events: int = 50_000_000,
        kernel: Optional[str] = None,
        trace=None,
    ):
        self.circuit = circuit
        self.max_events = max_events
        self.kernel = "reference"
        self._trace = trace
        self._heap: List[Tuple[int, int, int, Element, str]] = []
        self._sequence = 0
        self.now = 0
        self.stats = SimulationStats()

    # -- scheduling ------------------------------------------------------------
    def schedule_input(self, element: Element, port: str, time: int) -> None:
        """Inject an external stimulus pulse at ``element.port``."""
        if time < 0:
            raise SimulationError(f"cannot schedule pulse at negative time {time}")
        priority = element.input_priority(port)
        heapq.heappush(self._heap, (time, priority, self._sequence, element, port))
        self._sequence += 1

    def schedule_train(self, element: Element, port: str, times) -> None:
        """Inject a train of stimulus pulses (any iterable of times)."""
        for time in times:
            self.schedule_input(element, port, time)

    def emit(self, source: Element, port: str, time: int) -> None:
        """Deliver a pulse emitted by ``source.port`` to its fanout.

        Called by cells (via :meth:`Element.emit`); also notifies probes.
        """
        self.stats.pulses_emitted += 1
        self.circuit.notify_probes(source, port, time)
        for wire in self.circuit._fanout_raw(source, port):
            arrival = time + wire.delay
            priority = wire.sink.input_priority(wire.sink_port)
            heapq.heappush(
                self._heap,
                (arrival, priority, self._sequence, wire.sink, wire.sink_port),
            )
            self._sequence += 1

    # -- execution ---------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> SimulationStats:
        """Drain the event heap, optionally stopping after time ``until``.

        Events scheduled at exactly ``until`` are still processed; events
        strictly later remain queued, so a run can be resumed by calling
        :meth:`run` again.  Resume semantics:

        * ``stats`` accumulate across resumed runs (they are reset only by
          :meth:`reset`), but ``max_events`` is a *per-call* budget — each
          ``run()`` may process up to ``max_events`` events regardless of
          how many earlier calls processed;
        * ``stats.end_time`` is the simulated horizon: ``until`` when a
          bounded run stops early (time advanced to ``until`` even if the
          last event was earlier), else the last processed event time.  It
          never moves backwards on a later bounded call.
        """
        trace = self._trace
        if trace is None:
            return self._run(until)
        return trace.run_traced(self, until)

    def _run(self, until: Optional[int] = None) -> SimulationStats:
        """The reference hot loop (see :meth:`run` for the contract)."""
        heap = self._heap
        stats = self.stats
        processed_before = stats.events_processed
        pulses_before = stats.pulses_emitted
        maxq = stats.max_queue_depth
        wall_start = perf_counter()
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    break
                time, _priority, _seq, element, port = heapq.heappop(heap)
                if time < self.now:
                    raise SimulationError(
                        f"causality violation: event at {time} fs before now={self.now} fs"
                    )
                if time > self.now:
                    # Pending = scheduled - processed (the just-popped event
                    # is still uncounted, so it is included) — the same
                    # formula the sealed kernel samples at the same instant.
                    depth = self._sequence - stats.events_processed
                    if depth > maxq:
                        maxq = depth
                self.now = time
                stats.events_processed += 1
                if stats.events_processed - processed_before > self.max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely an oscillating netlist"
                    )
                element.handle(self, port, time)
        finally:
            wall_delta = perf_counter() - wall_start
            stats.max_queue_depth = maxq
            stats.wall_s += wall_delta
        horizon = self.now if until is None else max(self.now, until)
        stats.end_time = max(stats.end_time, horizon)
        for collector in _collectors.get():
            collector.events_processed += stats.events_processed - processed_before
            collector.pulses_emitted += stats.pulses_emitted - pulses_before
            collector.end_time = max(collector.end_time, stats.end_time)
            collector.max_queue_depth = max(collector.max_queue_depth, maxq)
            collector.wall_s += wall_delta
        return stats

    def _next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest pending event, or None when idle."""
        return self._heap[0][0] if self._heap else None

    def _pending(self) -> int:
        """Pending event count as scheduled-minus-processed (O(1), both
        kernels agree on it at every distinct-time boundary)."""
        return self._sequence - self.stats.events_processed

    def reset(self) -> None:
        """Clear queue, clock, stats, and all circuit state."""
        self._heap.clear()
        self._sequence = 0
        self.now = 0
        self.stats = SimulationStats()
        self.circuit.reset()

    @property
    def pending_events(self) -> int:
        return len(self._heap)
