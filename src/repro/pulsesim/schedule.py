"""Stimulus generators: pulse streams, Race-Logic pulses, clocks.

The U-SFQ arithmetic semantics (paper section 3) assume a computing epoch
divided into ``n_max`` time slots.  A pulse-stream operand with value
``n / n_max`` is a *uniform-rate* train of ``n`` pulses across the epoch; a
Race-Logic operand with slot id ``d`` is a single pulse at the start of
slot ``d``.  These helpers produce femtosecond pulse times that honour
those conventions so that structural simulations decode to the exact
quantised products the functional models predict.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import EncodingError


def uniform_stream_times(
    n_pulses: int,
    n_max: int,
    slot_fs: int,
    start: int = 0,
) -> List[int]:
    """Times of a uniform-rate stream of ``n_pulses`` over an ``n_max``-slot epoch.

    Pulse ``k`` lands at slot ``floor(k * n_max / n_pulses)``, which spreads
    pulses as evenly as integer slots allow (the property the paper's
    TFF2-based pulse-number multiplier is designed to approximate, Fig 9b).
    """
    if not 0 <= n_pulses <= n_max:
        raise EncodingError(f"need 0 <= n_pulses <= n_max, got {n_pulses}/{n_max}")
    if slot_fs <= 0:
        raise EncodingError(f"slot width must be positive, got {slot_fs}")
    return [start + (k * n_max // n_pulses) * slot_fs for k in range(n_pulses)]


def burst_stream_times(
    n_pulses: int,
    n_max: int,
    slot_fs: int,
    start: int = 0,
) -> List[int]:
    """Times of a *burst* stream: all pulses in the first slots of the epoch.

    This is the non-uniform worst case (what a plain TFF-chain PNM emits,
    Fig 9a); multiplying with it shows the accuracy penalty of non-uniform
    spacing that motivates the TFF2 PNM.
    """
    if not 0 <= n_pulses <= n_max:
        raise EncodingError(f"need 0 <= n_pulses <= n_max, got {n_pulses}/{n_max}")
    if slot_fs <= 0:
        raise EncodingError(f"slot width must be positive, got {slot_fs}")
    return [start + k * slot_fs for k in range(n_pulses)]


def rl_pulse_time(slot_id: int, slot_fs: int, start: int = 0) -> int:
    """Arrival time of a Race-Logic pulse encoding time-slot ``slot_id``."""
    if slot_id < 0:
        raise EncodingError(f"Race-Logic slot id must be >= 0, got {slot_id}")
    if slot_fs <= 0:
        raise EncodingError(f"slot width must be positive, got {slot_fs}")
    return start + slot_id * slot_fs


def uniform_stream_times_batch(
    counts,
    n_max: int,
    slot_fs: int,
    start: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat ``(times, lanes)`` arrays of per-lane uniform-rate streams.

    ``counts[i]`` is lane ``i``'s pulse count; lane ``i``'s times are
    exactly ``uniform_stream_times(counts[i], n_max, slot_fs, start)``.
    The result feeds :meth:`BatchSimulator.schedule_flat` directly.
    Lanes sharing a count share one vectorised time computation, so a
    Monte-Carlo batch with few distinct operand values costs almost
    nothing to build.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1:
        raise EncodingError(f"counts must be one-dimensional, got {counts.shape}")
    if counts.size and (counts.min() < 0 or counts.max() > n_max):
        raise EncodingError(
            f"need 0 <= counts <= n_max, got range "
            f"[{int(counts.min())}, {int(counts.max())}] with n_max={n_max}"
        )
    if slot_fs <= 0:
        raise EncodingError(f"slot width must be positive, got {slot_fs}")
    all_times = []
    all_lanes = []
    for n in np.unique(counts).tolist():
        if n == 0:
            continue
        lanes = np.flatnonzero(counts == n)
        k = np.arange(n, dtype=np.int64)
        times = start + (k * n_max // n) * slot_fs
        all_times.append(np.tile(times, lanes.size))
        all_lanes.append(np.repeat(lanes, times.size))
    if not all_times:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(all_times), np.concatenate(all_lanes)


def rl_pulse_times_batch(
    slots,
    slot_fs: int,
    start: int = 0,
) -> np.ndarray:
    """Per-lane Race-Logic pulse times: ``slots[i]`` is lane ``i``'s slot.

    The ``(batch,)`` result feeds :meth:`BatchSimulator.schedule_input`
    (array form: one pulse per lane).
    """
    slots = np.asarray(slots, dtype=np.int64)
    if slots.size and slots.min() < 0:
        raise EncodingError(
            f"Race-Logic slot ids must be >= 0, got {int(slots.min())}"
        )
    if slot_fs <= 0:
        raise EncodingError(f"slot width must be positive, got {slot_fs}")
    return start + slots * slot_fs


def clock_times(
    period_fs: int,
    count: int,
    start: int = 0,
) -> List[int]:
    """``count`` clock pulse times with the given period, first at ``start``."""
    if period_fs <= 0:
        raise EncodingError(f"clock period must be positive, got {period_fs}")
    if count < 0:
        raise EncodingError(f"clock pulse count must be >= 0, got {count}")
    return [start + k * period_fs for k in range(count)]
