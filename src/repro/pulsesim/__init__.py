"""Discrete-event simulator for SFQ pulse circuits.

This package is the spice-substitute substrate of the reproduction (see
DESIGN.md section 2).  Information in RSFQ circuits is carried by
picosecond-wide SFQ pulses; at the architecture level all that matters is
*when* pulses arrive at which cell port and how each cell's internal SQUID
state reacts.  We therefore model a circuit as a netlist of behavioural
cells exchanging timestamped pulses through an event queue, with integer
femtosecond timestamps for exact, reproducible event ordering.

Typical usage::

    from repro.pulsesim import Circuit, Simulator, PulseRecorder
    from repro.cells import Ndro

    circuit = Circuit()
    ndro = circuit.add(Ndro("cell"))
    probe = circuit.probe(ndro, "q")
    sim = Simulator(circuit)
    sim.schedule_input(ndro, "set", 0)
    sim.schedule_input(ndro, "clk", 10_000)
    sim.run()
    assert probe.count() == 1
"""

from repro.pulsesim.batch import BatchProgram, BatchSimulator, BatchStats, compile_batch
from repro.pulsesim.block import Block
from repro.pulsesim.element import CellRole, Element, PortSpec
from repro.pulsesim.faults import DropChannel, JitterChannel
from repro.pulsesim.kernel import (
    KERNELS,
    SealedSimulator,
    compile_circuit,
    resolve_kernel,
)
from repro.pulsesim.netlist import Circuit, Wire
from repro.pulsesim.probe import PulseRecorder, WaveformProbe
from repro.pulsesim.schedule import (
    burst_stream_times,
    clock_times,
    rl_pulse_time,
    rl_pulse_times_batch,
    uniform_stream_times,
    uniform_stream_times_batch,
)
from repro.pulsesim.simulator import (
    SimulationStats,
    Simulator,
    active_collectors,
    capture_stats,
    quiet_stats,
)

__all__ = [
    "BatchProgram",
    "BatchSimulator",
    "BatchStats",
    "Block",
    "CellRole",
    "Circuit",
    "DropChannel",
    "Element",
    "JitterChannel",
    "KERNELS",
    "PortSpec",
    "PulseRecorder",
    "SealedSimulator",
    "SimulationStats",
    "Simulator",
    "WaveformProbe",
    "Wire",
    "active_collectors",
    "capture_stats",
    "quiet_stats",
    "compile_batch",
    "compile_circuit",
    "resolve_kernel",
    "burst_stream_times",
    "clock_times",
    "rl_pulse_time",
    "rl_pulse_times_batch",
    "uniform_stream_times",
    "uniform_stream_times_batch",
]
