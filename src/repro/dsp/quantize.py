"""Fixed-point and unary quantisation helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _check_bits(bits: int) -> None:
    if not 2 <= bits <= 24:
        raise ConfigurationError(f"bits must be in [2, 24], got {bits}")


def quantise_fixed_point(values: np.ndarray, bits: int) -> np.ndarray:
    """Round values in [-1, 1] to ``bits``-wide two's-complement fractions."""
    _check_bits(bits)
    values = np.asarray(values, dtype=float)
    scale = 1 << (bits - 1)
    fixed = np.rint(np.clip(values, -1.0, 1.0) * scale)
    return np.clip(fixed, -scale, scale - 1) / scale


def quantise_unary_bipolar(values: np.ndarray, bits: int) -> np.ndarray:
    """Round bipolar values to the 2**bits-level unary grid."""
    _check_bits(bits)
    values = np.asarray(values, dtype=float)
    n_max = 1 << bits
    counts = np.rint(np.clip((values + 1.0) / 2.0, 0.0, 1.0) * n_max)
    return 2.0 * counts / n_max - 1.0


def quantisation_snr_db(values: np.ndarray, bits: int, unary: bool = False) -> float:
    """SNR cost of quantising a signal (paper: ~24 dB at 16 bits for the
    golden FIR output, ~15 dB at 6 bits)."""
    from repro.dsp.snr import snr_db

    quantiser = quantise_unary_bipolar if unary else quantise_fixed_point
    return snr_db(np.asarray(values, dtype=float), quantiser(values, bits))
