"""SNR measurement and spectra.

The accuracy evaluation scores a filter by the signal-to-noise ratio of
its output against the golden reference: noise is everything that differs
from the reference.  Transient start-up samples (the filter's group delay)
are excluded.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


def snr_db(reference: np.ndarray, measured: np.ndarray, skip: int = 0) -> float:
    """SNR of ``measured`` against ``reference`` in dB.

    ``skip`` drops leading transient samples.  A perfect match returns
    +inf; an all-zero reference is rejected.
    """
    reference = np.asarray(reference, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if reference.shape != measured.shape:
        raise ConfigurationError(
            f"shape mismatch: {reference.shape} vs {measured.shape}"
        )
    if skip < 0 or skip >= reference.size:
        raise ConfigurationError(
            f"skip must be in [0, {reference.size}), got {skip}"
        )
    reference = reference[skip:]
    measured = measured[skip:]
    signal_power = float(np.mean(reference**2))
    if signal_power == 0.0:
        raise ConfigurationError("reference signal has zero power")
    noise_power = float(np.mean((measured - reference) ** 2))
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)


def spectrum(
    signal: np.ndarray, sample_rate_hz: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-sided amplitude spectrum in dB re max.

    Returns ``(frequencies_hz, magnitude_db)``.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1 or signal.size < 2:
        raise ConfigurationError("signal must be 1-D with >= 2 samples")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    window = np.hanning(signal.size)
    transform = np.fft.rfft(signal * window)
    magnitude = np.abs(transform)
    peak = float(np.max(magnitude))
    if peak == 0.0:
        magnitude_db = np.full(magnitude.shape, -200.0)
    else:
        magnitude_db = 20.0 * np.log10(np.maximum(magnitude / peak, 1e-10))
    freqs = np.fft.rfftfreq(signal.size, d=1.0 / sample_rate_hz)
    return freqs, magnitude_db


def tone_power_db(
    signal: np.ndarray, sample_rate_hz: float, tone_hz: float, bandwidth_hz: float = 200.0
) -> float:
    """Power (dB re max bin) near one tone — used for Fig 19c readouts."""
    freqs, magnitude_db = spectrum(signal, sample_rate_hz)
    mask = np.abs(freqs - tone_hz) <= bandwidth_hz
    if not np.any(mask):
        raise ConfigurationError(
            f"no spectral bins within {bandwidth_hz} Hz of {tone_hz} Hz"
        )
    return float(np.max(magnitude_db[mask]))
