"""The golden-reference pipeline of the accuracy evaluation (section 5.4.1).

"We use Octave to generate a golden reference that includes an input x(t),
the filter impulse response h(t), and the filter output y(t). The synthetic
input x(t) is a superposition of sinusoidal signals with frequencies at
1 kHz, 7 kHz, 8 kHz, and 9 kHz. We design a 16-taps FIR filter to recover
the 1 kHz sine wave ... The SNR of the sinusoidal obtained at the FIR
filter output y(t) is 25.7 dB."

Here the same pipeline in NumPy: the reference SNR is measured against the
ideal 1 kHz component (scaled and phase-aligned by the filter's response).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.firdesign import design_lowpass, frequency_response
from repro.dsp.signals import sine, superposition
from repro.dsp.snr import snr_db

PAPER_FREQUENCIES_HZ = (1_000.0, 7_000.0, 8_000.0, 9_000.0)
PAPER_TAPS = 16
PAPER_SAMPLE_RATE_HZ = 20_000.0
#: Calibrated so the float 16-tap filter's output SNR lands on the 25.7 dB
#: the paper reports (we measure 25.8 dB); the residual noise is 7 kHz
#: leakage through the short filter's transition band.
PAPER_CUTOFF_HZ = 5_500.0


@dataclass(frozen=True)
class GoldenReference:
    """Everything the Fig 19 experiments consume."""

    sample_rate_hz: float
    x: np.ndarray  # synthetic input
    h: np.ndarray  # FIR impulse response
    y: np.ndarray  # golden float filter output
    target: np.ndarray  # the ideal recovered 1 kHz tone
    skip: int  # transient samples to exclude from SNR

    @property
    def golden_snr_db(self) -> float:
        """SNR of the float filter output vs the ideal tone (paper: 25.7 dB)."""
        return snr_db(self.target, self.y, skip=self.skip)


def make_golden_reference(
    n_samples: int = 4_000,
    taps: int = PAPER_TAPS,
    sample_rate_hz: float = PAPER_SAMPLE_RATE_HZ,
    cutoff_hz: float = PAPER_CUTOFF_HZ,
    coefficient_scale: float = 1.0,
) -> GoldenReference:
    """Build the section 5.4.1 workload end to end."""
    x = superposition(PAPER_FREQUENCIES_HZ, n_samples, sample_rate_hz)
    h = design_lowpass(taps, cutoff_hz, sample_rate_hz, scale=coefficient_scale)
    y = np.convolve(x, h)[:n_samples]

    # Ideal recovered tone: the input's 1 kHz component, scaled by |H(1k)|
    # and delayed by the filter's (linear-phase) group delay.
    amplitude_1k = _component_amplitude(n_samples, sample_rate_hz)
    freqs, magnitude = frequency_response(h, sample_rate_hz)
    gain_1k = float(np.interp(1_000.0, freqs, magnitude))
    group_delay = (taps - 1) / 2.0  # samples
    phase = -2.0 * np.pi * 1_000.0 * group_delay / sample_rate_hz
    target = gain_1k * amplitude_1k * sine(
        1_000.0, n_samples, sample_rate_hz, phase_rad=phase
    )

    return GoldenReference(
        sample_rate_hz=sample_rate_hz,
        x=x,
        h=h,
        y=y,
        target=target,
        skip=max(taps * 2, 32),
    )


def _component_amplitude(n_samples: int, sample_rate_hz: float) -> float:
    """Amplitude of the 1 kHz component after input normalisation."""
    raw = superposition(
        PAPER_FREQUENCIES_HZ, n_samples, sample_rate_hz, normalise=False
    )
    peak = float(np.max(np.abs(raw)))
    return 1.0 / peak if peak > 0 else 1.0
