"""Error-injection experiment drivers (Fig 19).

Runs the binary and unary FIR filters over the golden workload while
sweeping error rates, and collects the SNR statistics the paper plots:

* Fig 19a — mean SNR vs error rate for the binary (bit-flip) filter and
  the unary filter under (i) stream pulse loss, (ii) RL pulse loss and
  (iii) RL displacement;
* Fig 19b — the SNR *distribution* for the binary filter at a small error
  rate (bit flips hit random significance, so damage varies wildly);
* Fig 19c — the unary filter's output spectrum under increasing error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.fir import BinaryFirFilter, UnaryFirFilter
from repro.dsp.golden import GoldenReference
from repro.dsp.snr import snr_db
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError


@dataclass
class SnrSweepResult:
    """Mean/min/max SNR per error rate for one error mode."""

    mode: str
    error_rates: List[float] = field(default_factory=list)
    mean_db: List[float] = field(default_factory=list)
    min_db: List[float] = field(default_factory=list)
    max_db: List[float] = field(default_factory=list)

    def append(self, rate: float, samples_db: Sequence[float]) -> None:
        self.error_rates.append(rate)
        self.mean_db.append(float(np.mean(samples_db)))
        self.min_db.append(float(np.min(samples_db)))
        self.max_db.append(float(np.max(samples_db)))


def _measure(golden: GoldenReference, output: np.ndarray) -> float:
    return snr_db(golden.target, output, skip=golden.skip)


def sweep_binary_bit_flips(
    golden: GoldenReference,
    bits: int,
    error_rates: Sequence[float],
    trials: int = 5,
    seed: int = 1234,
) -> SnrSweepResult:
    """Binary FIR SNR vs bit-flip rate."""
    result = SnrSweepResult("binary bit flips")
    for rate_index, rate in enumerate(error_rates):
        samples = []
        for trial in range(trials):
            fir = BinaryFirFilter(
                bits, golden.h, bit_flip_rate=rate,
                seed=seed + 1_000 * rate_index + trial,
            )
            samples.append(_measure(golden, fir.process(golden.x)))
        result.append(rate, samples)
    return result


def sweep_unary_errors(
    golden: GoldenReference,
    bits: int,
    error_rates: Sequence[float],
    mode: str,
    trials: int = 5,
    seed: int = 1234,
) -> SnrSweepResult:
    """Unary FIR SNR vs error rate for one of the three error modes."""
    kwargs_for_mode = {
        "pulse_loss": lambda rate: {"pulse_loss_rate": rate},
        "rl_loss": lambda rate: {"rl_loss_rate": rate},
        "rl_delay": lambda rate: {"rl_delay_rate": rate, "rl_delay_slots": 1},
    }
    if mode not in kwargs_for_mode:
        raise ConfigurationError(
            f"mode must be one of {sorted(kwargs_for_mode)}, got {mode!r}"
        )
    epoch = EpochSpec(bits)
    result = SnrSweepResult(f"unary {mode}")
    for rate_index, rate in enumerate(error_rates):
        samples = []
        for trial in range(trials):
            fir = UnaryFirFilter(
                epoch, golden.h,
                exact_counting=False,  # the paper's Octave accuracy model
                seed=seed + 1_000 * rate_index + trial,
                **kwargs_for_mode[mode](rate),
            )
            samples.append(_measure(golden, fir.process(golden.x)))
        result.append(rate, samples)
    return result


def binary_snr_distribution(
    golden: GoldenReference,
    bits: int,
    error_rate: float = 0.01,
    trials: int = 200,
    seed: int = 99,
) -> np.ndarray:
    """Per-trial SNR samples for the Fig 19b histogram."""
    samples = []
    for trial in range(trials):
        fir = BinaryFirFilter(bits, golden.h, bit_flip_rate=error_rate, seed=seed + trial)
        samples.append(_measure(golden, fir.process(golden.x)))
    return np.asarray(samples)


def unary_spectra_under_error(
    golden: GoldenReference,
    bits: int,
    error_rates: Sequence[float] = (0.0, 0.5),
    seed: int = 7,
) -> Dict[float, np.ndarray]:
    """Unary FIR outputs at several pulse-loss rates (for Fig 19c spectra)."""
    epoch = EpochSpec(bits)
    outputs: Dict[float, np.ndarray] = {}
    for rate in error_rates:
        fir = UnaryFirFilter(epoch, golden.h, pulse_loss_rate=rate, seed=seed)
        outputs[rate] = fir.process(golden.x)
    return outputs
