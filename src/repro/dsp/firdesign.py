"""Windowed-sinc FIR design.

A from-scratch replacement for Octave's ``fir1``: ideal low-pass impulse
response truncated with a Hamming window, normalised to unit DC gain.
Used to design the 16-tap filter that recovers the 1 kHz tone from the
paper's synthetic workload.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def hamming_window(n_taps: int) -> np.ndarray:
    """The Hamming window of length ``n_taps``."""
    if n_taps < 1:
        raise ConfigurationError(f"n_taps must be >= 1, got {n_taps}")
    if n_taps == 1:
        return np.ones(1)
    n = np.arange(n_taps)
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * n / (n_taps - 1))


def design_lowpass(
    n_taps: int,
    cutoff_hz: float,
    sample_rate_hz: float,
    scale: float = 1.0,
) -> np.ndarray:
    """Design a low-pass FIR by the window method.

    Args:
        n_taps: Filter length (the paper uses 16).
        cutoff_hz: -6 dB cutoff frequency.
        sample_rate_hz: Sampling rate.
        scale: Post-normalisation gain (<= 1 keeps coefficients in the
            unary representable range).

    Returns:
        Coefficients with unit DC gain times ``scale``.
    """
    if n_taps < 2:
        raise ConfigurationError(f"n_taps must be >= 2, got {n_taps}")
    if not 0.0 < cutoff_hz < sample_rate_hz / 2.0:
        raise ConfigurationError(
            f"cutoff must be in (0, Nyquist={sample_rate_hz / 2}), got {cutoff_hz}"
        )
    fc = cutoff_hz / sample_rate_hz  # normalised cutoff (cycles/sample)
    n = np.arange(n_taps) - (n_taps - 1) / 2.0
    # Ideal low-pass: 2 fc sinc(2 fc n); the n = 0 limit is 2 fc.
    h = 2.0 * fc * np.sinc(2.0 * fc * n)
    h *= hamming_window(n_taps)
    h /= np.sum(h)  # unit DC gain
    return h * scale


def frequency_response(
    coefficients: np.ndarray, sample_rate_hz: float, n_points: int = 512
):
    """Magnitude response |H(f)| on a linear frequency grid.

    Returns ``(frequencies_hz, magnitude)``.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 1 or coefficients.size < 1:
        raise ConfigurationError("coefficients must be a non-empty 1-D array")
    freqs = np.linspace(0.0, sample_rate_hz / 2.0, n_points)
    omega = 2.0 * np.pi * freqs / sample_rate_hz
    exponents = np.exp(-1j * np.outer(omega, np.arange(coefficients.size)))
    response = exponents @ coefficients
    return freqs, np.abs(response)
