"""DSP substrate replacing the paper's Octave scripts (section 5.4.1).

Signal synthesis, windowed-sinc FIR design, fixed-point quantisation, SNR
measurement, and the golden-reference pipeline used by the accuracy
evaluation (Fig 19): a superposition of 1/7/8/9 kHz sines filtered by a
16-tap low-pass that recovers the 1 kHz tone.
"""

from repro.dsp.filtering import StreamingFir, process_in_chunks
from repro.dsp.firdesign import design_lowpass
from repro.dsp.golden import GoldenReference, make_golden_reference
from repro.dsp.signals import sine, superposition
from repro.dsp.snr import snr_db, spectrum

__all__ = [
    "GoldenReference",
    "StreamingFir",
    "design_lowpass",
    "make_golden_reference",
    "process_in_chunks",
    "sine",
    "snr_db",
    "spectrum",
    "superposition",
]
