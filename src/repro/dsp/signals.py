"""Synthetic test signals.

The accuracy evaluation synthesises its input as "a superposition of
sinusoidal signals with frequencies at 1 kHz, 7 kHz, 8 kHz, and 9 kHz",
scaled to avoid overflow (paper section 5.4.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


def time_axis(n_samples: int, sample_rate_hz: float) -> np.ndarray:
    """Sample times in seconds."""
    if n_samples < 1:
        raise ConfigurationError(f"n_samples must be >= 1, got {n_samples}")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    return np.arange(n_samples) / sample_rate_hz


def sine(
    frequency_hz: float,
    n_samples: int,
    sample_rate_hz: float,
    amplitude: float = 1.0,
    phase_rad: float = 0.0,
) -> np.ndarray:
    """A sampled sine wave."""
    if frequency_hz < 0:
        raise ConfigurationError(f"frequency must be >= 0, got {frequency_hz}")
    t = time_axis(n_samples, sample_rate_hz)
    return amplitude * np.sin(2.0 * np.pi * frequency_hz * t + phase_rad)


def superposition(
    frequencies_hz: Sequence[float],
    n_samples: int,
    sample_rate_hz: float,
    amplitudes: Optional[Sequence[float]] = None,
    normalise: bool = True,
) -> np.ndarray:
    """Sum of sines, optionally scaled into [-1, 1] to avoid overflow."""
    if not frequencies_hz:
        raise ConfigurationError("need at least one frequency")
    if amplitudes is None:
        amplitudes = [1.0] * len(frequencies_hz)
    if len(amplitudes) != len(frequencies_hz):
        raise ConfigurationError(
            f"{len(frequencies_hz)} frequencies but {len(amplitudes)} amplitudes"
        )
    signal = np.zeros(n_samples)
    for frequency, amplitude in zip(frequencies_hz, amplitudes):
        signal += sine(frequency, n_samples, sample_rate_hz, amplitude)
    if normalise:
        peak = float(np.max(np.abs(signal)))
        if peak > 0:
            signal = signal / peak
    return signal


def paper_input(
    n_samples: int = 4_000, sample_rate_hz: float = 20_000.0
) -> np.ndarray:
    """The section 5.4.1 workload: 1 + 7 + 8 + 9 kHz, normalised."""
    return superposition([1_000.0, 7_000.0, 8_000.0, 9_000.0], n_samples, sample_rate_hz)
