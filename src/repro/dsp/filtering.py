"""Streaming (sample-at-a-time) filtering on the unary FIR.

The batch :class:`~repro.core.fir.UnaryFirFilter` mirrors the paper's
offline Octave evaluation; real DSP front-ends (IR sensors, SDR) consume
samples continuously.  :class:`StreamingFir` wraps the batch filter with a
delay-line history so arbitrary chunking produces *exactly* the same
output sequence as one big batch — one output per pushed sample, matching
the accelerator's one-result-per-epoch operation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.fir import UnaryFirFilter
from repro.errors import ConfigurationError


class StreamingFir:
    """Chunked streaming wrapper around a :class:`UnaryFirFilter`.

    Error injection must be disabled on the wrapped filter: its RNG stream
    would otherwise depend on chunk boundaries, breaking the equivalence
    guarantee this class provides.
    """

    def __init__(self, fir: UnaryFirFilter):
        if (
            fir.pulse_loss_rate or fir.rl_loss_rate or fir.rl_delay_rate
        ):
            raise ConfigurationError(
                "StreamingFir requires an error-free filter (seeded error "
                "injection is chunk-order dependent); run errors in batch mode"
            )
        self.fir = fir
        self._history = np.zeros(0)
        self.samples_processed = 0

    @property
    def taps(self) -> int:
        return self.fir.taps

    def push(self, sample: float) -> float:
        """Process one sample; returns this epoch's filter output."""
        return float(self.push_block([sample])[0])

    def push_block(self, samples: Sequence[float]) -> np.ndarray:
        """Process a chunk; returns one output per input sample."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ConfigurationError("push_block expects a 1-D chunk")
        if samples.size == 0:
            return np.zeros(0)
        extended = np.concatenate([self._history, samples])
        outputs = self.fir.process(extended)[self._history.size :]
        keep = min(extended.size, self.taps - 1)
        self._history = extended[extended.size - keep :] if keep else np.zeros(0)
        self.samples_processed += samples.size
        return outputs

    def reset(self) -> None:
        """Clear the delay line (an empty filter pipeline)."""
        self._history = np.zeros(0)
        self.samples_processed = 0


def process_in_chunks(
    fir: UnaryFirFilter, samples: Sequence[float], chunk: int
) -> List[float]:
    """Convenience: stream ``samples`` through ``fir`` in ``chunk``-sized blocks."""
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
    streamer = StreamingFir(fir)
    outputs: List[float] = []
    samples = np.asarray(samples, dtype=float)
    for start in range(0, samples.size, chunk):
        outputs.extend(streamer.push_block(samples[start : start + chunk]))
    return outputs
