"""Clock-follow-data delay balancing for the synthesis pipeline.

The lowering pipeline schedules every cell input so that operand pulses
arrive exactly when the operator's phase discipline requires (the
"clock-follow-data" style of Aviles et al., PAPERS.md): the NDRO ladder
``set < reset < clk`` for multipliers, and dead-time staggering for
merger fan-in.  Two things live here:

* :func:`required_slot_fs` — the slot-period recursion.  Pulse *spread*
  (the width of the arrival window of one logical slot) is independent
  of the slot period, so the minimal legal period can be computed in one
  pass before any cell is placed: multipliers need the whole window of
  slot ``b-1`` to precede the RL reset by the margin, and each merger
  fold step needs adjacent slots' windows separated by the dead time.
* :class:`Padder` — materialises the per-input balancing delays, either
  as wire delays (``"wire"``, zero JJ — the netlist-level idealisation)
  or as explicit JTL pad cells (``"jtl"``, 2 JJ each — the micro-
  architectural costing the area model trades against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cells.interconnect import Jtl
from repro.errors import SynthesisError
from repro.models import technology as tech
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit
from repro.synth.expand import PrimGraph

#: Ordering margin between the NDRO phase-ladder steps (set -> reset ->
#: clk).  One margin separates epoch-set from RL-reset, and reset leads
#: the clk window by another margin.
MARGIN_FS = 1000

PAD_MODES = ("wire", "jtl")


def stream_spreads(graph: PrimGraph) -> Tuple[dict, int]:
    """Arrival-window spread per stream primitive, plus the slot floor.

    Returns ``(spreads, required)`` where ``spreads[prim_id]`` is the
    worst-case width (fs) of the window in which one logical slot's
    pulses arrive, and ``required`` is the minimal slot period satisfying
    every multiplier margin and merger dead-time constraint.
    """
    dead = tech.T_MERGER_DEAD_FS
    spreads: dict = {}
    required = 1
    for node in graph.nodes.values():
        if node.op == "sconst":
            spreads[node.id] = 0
        elif node.op == "rconst":
            continue
        elif node.op == "mul":
            spread_in = spreads[node.args[0]]
            # The latest pulse of slot b-1 must still precede the RL
            # reset of slot b by the margin: slot > spread + margin.
            required = max(required, spread_in + MARGIN_FS + 1)
            spreads[node.id] = spread_in
        elif node.op == "add":
            acc = spreads[node.args[0]]
            for ref in node.args[1:]:
                acc = acc + dead + spreads[ref]
                # Adjacent logical slots at the merger output must stay a
                # dead time apart: slot >= out_spread + dead.
                required = max(required, acc + dead)
            spreads[node.id] = acc
        elif node.op == "delay":
            ref = node.args[0]
            if ref in spreads:
                spreads[node.id] = spreads[ref]
        else:  # pragma: no cover - expand emits only PRIM_OPS
            raise AssertionError(f"unknown primitive op {node.op!r}")
    return spreads, required


def required_slot_fs(graph: PrimGraph) -> int:
    """Minimal legal slot period for ``graph`` (fs)."""
    return stream_spreads(graph)[1]


def choose_slot_fs(graph: PrimGraph) -> int:
    """Slot period to synthesize at: the BFF period, the computed floor,
    or a validated user override from the spec."""
    required = required_slot_fs(graph)
    if graph.slot_fs is not None:
        if graph.slot_fs < required:
            raise SynthesisError(
                f"spec slot_fs {graph.slot_fs} fs is below the minimum"
                f" {required} fs required by this graph's timing"
                " constraints"
            )
        return graph.slot_fs
    return max(tech.T_BFF_FS, required)


@dataclass
class Padder:
    """Inserts the balancing delays the lowering pipeline requests.

    ``"wire"`` mode books each pad as a delay on the connecting wire;
    ``"jtl"`` mode inserts a dedicated JTL cell (named ``pad<N>``)
    carrying the pad as its element delay, wired with zero-delay nets,
    so the balancing overhead shows up in the JJ count.
    """

    circuit: Circuit
    mode: str = "wire"
    total_fs: int = 0
    pads: List[int] = field(default_factory=list)
    _cells: int = 0

    def __post_init__(self) -> None:
        if self.mode not in PAD_MODES:
            raise SynthesisError(
                f"unknown padding mode {self.mode!r} (expected one of"
                f" {PAD_MODES})"
            )

    @property
    def jtl_cells(self) -> int:
        return self._cells

    def connect(
        self,
        source: Element,
        source_port: str,
        sink: Element,
        sink_port: str,
        pad_fs: int,
    ) -> None:
        """Wire source -> sink with ``pad_fs`` of balancing delay."""
        if pad_fs < 0:
            raise SynthesisError(
                f"negative balancing pad {pad_fs} fs on"
                f" {source.name}.{source_port} -> {sink.name}.{sink_port}"
            )
        self.total_fs += pad_fs
        self.pads.append(pad_fs)
        if self.mode == "jtl" and pad_fs > 0:
            self._cells += 1
            pad = self.circuit.add(Jtl(f"pad{self._cells}", delay=pad_fs))
            self.circuit.connect(source, source_port, pad, "a")
            self.circuit.connect(pad, "q", sink, sink_port)
        else:
            self.circuit.connect(source, source_port, sink, sink_port, pad_fs)
