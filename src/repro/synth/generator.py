"""Bounded random dataflow specs for the conformance suite.

Mirrors the :mod:`repro.verify` generator idiom: a plain
``random.Random`` seeded from a readable derivation string drives a
constructive generator that can only produce *valid* specs — every
argument references an earlier value with the right encoding, RL
weights stay static, and the outputs are exactly the values nothing
else consumed (so the total-observability rule holds by construction).

Sizes are deliberately small (<= ``max_nodes`` user nodes, few bits):
the acceptance suite compiles hundreds of these per run.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Set

from repro.synth.spec import DataflowSpec, dataflow_spec

#: Epoch resolutions the generator samples; kept low so a compiled
#: spec's stimulus stays a few dozen pulses.
BITS_CHOICES = (2, 3, 4)

#: Relative draw weights for the node kinds after the seed constants.
_OP_WEIGHTS = (
    ("const", 3),
    ("add", 4),
    ("mul", 4),
    ("delay", 2),
    ("tap", 2),
    ("matvec", 1),
)


def spec_rng(seed: int, example: int) -> random.Random:
    """The deterministic RNG for one (campaign seed, example) pair."""
    return random.Random(f"usfq-synth/{seed}/{example}")


def random_spec(
    rng: random.Random,
    max_nodes: int = 7,
    name: str = "generated",
) -> DataflowSpec:
    """One random, always-valid spec with 2..``max_nodes`` + 2 nodes."""
    bits = rng.choice(BITS_CHOICES)
    n_max = 2 ** bits
    nodes: List[Dict[str, Any]] = []
    streams: List[str] = []  # stream-encoded refs, in definition order
    race: List[Dict[str, Any]] = []  # {"ref": ..., "level": static value}
    consumed: Set[str] = set()
    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def emit_const(encoding: str) -> str:
        ref = fresh("c")
        level = rng.randint(0, n_max)
        nodes.append(
            {"id": ref, "op": "const", "encoding": encoding, "level": level}
        )
        if encoding == "stream":
            streams.append(ref)
        else:
            race.append({"ref": ref, "level": level})
        return ref

    def pick_stream() -> str:
        ref = rng.choice(streams)
        consumed.add(ref)
        return ref

    def pick_race() -> Dict[str, Any]:
        if not race:
            emit_const("rl")
        entry = rng.choice(race)
        consumed.add(entry["ref"])
        return entry

    # Seed pool: always start from 1-2 stream literals.
    for _ in range(rng.randint(1, 2)):
        emit_const("stream")

    for _ in range(rng.randint(1, max_nodes)):
        op = rng.choices(
            [name_ for name_, _w in _OP_WEIGHTS],
            weights=[w for _name, w in _OP_WEIGHTS],
        )[0]
        if op == "const":
            emit_const(rng.choice(("stream", "rl")))
        elif op == "add":
            lanes = [pick_stream() for _ in range(rng.randint(1, 3))]
            ref = fresh("s")
            nodes.append({"id": ref, "op": "add", "args": lanes})
            streams.append(ref)
        elif op == "mul":
            a = pick_stream()
            b = pick_race()
            ref = fresh("p")
            nodes.append({"id": ref, "op": "mul", "args": [a, b["ref"]]})
            streams.append(ref)
        elif op == "delay":
            if race and rng.random() < 0.3:
                entry = rng.choice(race)
                headroom = n_max - entry["level"]
                slots = rng.randint(0, min(3, headroom))
                consumed.add(entry["ref"])
                ref = fresh("d")
                nodes.append(
                    {"id": ref, "op": "delay", "args": [entry["ref"]],
                     "slots": slots}
                )
                race.append({"ref": ref, "level": entry["level"] + slots})
            else:
                ref = fresh("d")
                nodes.append(
                    {"id": ref, "op": "delay", "args": [pick_stream()],
                     "slots": rng.randint(0, 3)}
                )
                streams.append(ref)
        elif op == "tap":
            count = rng.randint(1, 3)
            # (count-1)*spacing <= 4 <= n_max holds for every BITS_CHOICES.
            spacing = rng.randint(1, 2)
            ref = fresh("f")
            nodes.append({
                "id": ref,
                "op": "tap",
                "args": [pick_stream()],
                "taps": [rng.randint(0, n_max) for _ in range(count)],
                "spacing": spacing,
            })
            streams.append(ref)
        elif op == "matvec":
            width = rng.randint(1, 2)
            rows = rng.randint(1, 2)
            args = [pick_stream() for _ in range(width)]
            ref = fresh("m")
            nodes.append({
                "id": ref,
                "op": "matvec",
                "args": args,
                "matrix": [
                    [rng.randint(0, n_max) for _ in range(width)]
                    for _ in range(rows)
                ],
            })
            streams.extend(f"{ref}.y{row}" for row in range(rows))

    produced = []
    for entry in nodes:
        if entry["op"] == "matvec":
            produced.extend(
                f"{entry['id']}.y{row}" for row in range(len(entry["matrix"]))
            )
        else:
            produced.append(entry["id"])
    outputs = [ref for ref in produced if ref not in consumed]
    return dataflow_spec(name=name, bits=bits, nodes=nodes, outputs=outputs)