"""Top-level synthesis API: validate → expand → optimize → lower.

``compile_spec`` is the one call users need; ``lint_program`` and
``analyze_program`` wrap the repo's static checkers with the compiled
program's entry points pre-wired, so callers (CLI, oracles, tests) get
the exact same rule configuration everywhere.

Imports of :mod:`repro.lint` and :mod:`repro.analyze` stay local to the
wrapper functions: those packages import :mod:`repro.synth.builder` for
the shared legality helpers, and module-level imports here would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SynthesisError
from repro.synth.expand import expand_spec
from repro.synth.lower import CompiledProgram, lower_graph
from repro.synth.opt import OptReport, optimize_graph
from repro.synth.refeval import evaluate
from repro.synth.spec import DataflowSpec, spec_from_json, validate_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.api import Analysis
    from repro.lint.report import Report


def compile_spec(
    spec: DataflowSpec,
    optimize: bool = True,
    padding: str = "wire",
) -> CompiledProgram:
    """Compile a dataflow spec to a sealed, balanced U-SFQ netlist.

    The expected output levels recorded in the program always come from
    the reference evaluation of the *unexpanded-by-opt* graph; when the
    cell-choice pass runs, its rewritten graph is re-evaluated and must
    agree exactly — a miscompiling optimization fails the compile rather
    than shipping a wrong netlist.
    """
    validate_spec(spec)
    graph = expand_spec(spec)
    expected = evaluate(graph)
    report: Optional[OptReport] = None
    if optimize:
        optimized, report = optimize_graph(graph)
        check = evaluate(optimized)
        if check != expected:
            mismatched = sorted(
                ref for ref in expected
                if expected[ref] != check.get(ref)
            )
            raise SynthesisError(
                "cell-choice optimization changed program semantics at"
                f" {mismatched} — refusing to emit the netlist"
            )
        graph = optimized
    program = lower_graph(
        graph,
        expected,
        padding=padding,
        optimized=report is not None,
        elided_jj=report.jj_saved if report is not None else 0,
    )
    program.spec_doc = spec.to_json()
    program.spec_key = spec.key()
    return program


def compile_json(
    text: str,
    optimize: bool = True,
    padding: str = "wire",
) -> CompiledProgram:
    """Compile a spec from its JSON text."""
    return compile_spec(spec_from_json(text), optimize=optimize,
                        padding=padding)


def lint_program(program: CompiledProgram) -> "Report":
    """Lint the compiled netlist, entry points pre-wired."""
    from repro.lint import LintConfig, lint_circuit

    return lint_circuit(
        program.circuit,
        entry_points=program.entry_points,
        config=LintConfig(),
        target=f"synth:{program.name}",
    )


def analyze_program(
    program: CompiledProgram,
    proof_mode: bool = True,
) -> "Analysis":
    """Abstract-interpret the compiled netlist.

    ``proof_mode`` analyses the one-pulse-per-entry abstraction (the
    regime in which the interval domain can discharge merger collision
    proofs); otherwise the program's concrete stimulus trains drive the
    analysis and the resulting bounds cover the real run.
    """
    from repro.analyze import analyze_circuit

    stimulus = None
    if not proof_mode:
        by_name = {
            element.name: (element, port)
            for element, port in program.entry_points
        }
        stimulus = {
            by_name[name]: times
            for name, times in program.stimulus.items()
        }
    return analyze_circuit(
        program.circuit,
        entry_points=program.entry_points,
        stimulus=stimulus,
        target=f"synth:{program.name}",
    )