"""NumPy reference evaluation of a primitive dataflow graph.

This is the oracle side of the synth-differential check: it evaluates a
:class:`~repro.synth.expand.PrimGraph` directly over *slot multisets* —
the denotational model of the two unary encodings — with no circuit,
timing, or cell semantics involved.  The lowered netlist simulation must
decode to exactly these values.

Model (paper §3):

* A pulse-stream value is a sorted multiset of slot indices; the decoded
  level is its cardinality.  Literals use the same uniform placement as
  the stimulus generator (``k * n_max // n``).
* An RL value is a single slot index (the value itself).
* ``mul`` keeps the stream ticks in slots strictly below the RL slot
  (the NDRO passes clk pulses between ``set`` and ``reset``); the
  resulting count equals ``unipolar_product_count``.
* ``add`` is multiset union; ``delay`` shifts every slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.multiplier import unipolar_product_count
from repro.synth.expand import PrimGraph


@dataclass(frozen=True)
class OutputValue:
    """Reference result for one public output."""

    ref: str
    encoding: str
    level: int
    ticks: Tuple[int, ...]


def uniform_slots(level: int, n_max: int) -> np.ndarray:
    """Slot indices of a uniformly spread ``level``-pulse stream literal.

    Mirrors :func:`repro.pulsesim.schedule.uniform_stream_times` with
    ``slot_fs = 1`` and ``start = 0``.
    """
    if level == 0:
        return np.empty(0, dtype=np.int64)
    return (np.arange(level, dtype=np.int64) * n_max) // level


def evaluate(graph: PrimGraph) -> Dict[str, OutputValue]:
    """Evaluate all public outputs of ``graph``; keyed by value ref."""
    n_max = graph.n_max
    streams: Dict[str, np.ndarray] = {}
    levels: Dict[str, int] = {}

    for node in graph.nodes.values():
        if node.op == "sconst":
            streams[node.id] = uniform_slots(node.level, n_max)
        elif node.op == "rconst":
            levels[node.id] = node.level
        elif node.op == "add":
            lanes: List[np.ndarray] = [streams[ref] for ref in node.args]
            streams[node.id] = np.sort(np.concatenate(lanes))
        elif node.op == "mul":
            ticks = streams[node.args[0]]
            slot = levels[node.args[1]]
            streams[node.id] = ticks[ticks < slot]
        elif node.op == "delay":
            ref = node.args[0]
            if ref in levels:
                levels[node.id] = levels[ref] + node.slots
            else:
                streams[node.id] = streams[ref] + node.slots
        else:  # pragma: no cover - expand emits only PRIM_OPS
            raise AssertionError(f"unknown primitive op {node.op!r}")

    results: Dict[str, OutputValue] = {}
    for ref, prim_id in graph.outputs:
        if prim_id in levels:
            results[ref] = OutputValue(
                ref=ref, encoding="rl", level=levels[prim_id], ticks=(),
            )
        else:
            ticks = streams[prim_id]
            results[ref] = OutputValue(
                ref=ref,
                encoding="stream",
                level=int(ticks.size),
                ticks=tuple(int(t) for t in ticks),
            )
    return results


def expected_levels(graph: PrimGraph) -> Dict[str, int]:
    """Decoded integer level per public output ref."""
    return {ref: value.level for ref, value in evaluate(graph).items()}


def check_product_model(graph: PrimGraph) -> None:
    """Internal consistency: multiset product counts match the closed form.

    Every ``mul`` whose stream operand is a *uniform literal* must agree
    with :func:`repro.core.multiplier.unipolar_product_count`; used by
    the unit suite to tie this evaluator to the paper's Eq. 1 model.
    """
    n_max = graph.n_max
    for node in graph.nodes.values():
        if node.op != "mul":
            continue
        stream = graph.nodes[node.args[0]]
        rl = graph.nodes[node.args[1]]
        if stream.op != "sconst" or rl.op != "rconst":
            continue
        ticks = uniform_slots(stream.level, n_max)
        got = int((ticks < rl.level).sum())
        want = unipolar_product_count(stream.level, rl.level, n_max)
        if got != want:
            raise AssertionError(
                f"uniform product mismatch at {node.id!r}:"
                f" multiset {got} vs closed form {want}"
            )
