"""T1-style cell-choice optimization over the primitive graph.

Following the Bairamkulov et al. cell-substitution idea (PAPERS.md),
this pass chooses cheaper implementations for primitive nodes whose
operand values make the general cell redundant — all decisions are
static because RL weights in the IR are compile-time constants:

* ``delay`` by 0 slots is the identity (alias).
* A known-zero stream (0-level literal, product with the RL weight 0,
  sum of known zeros) collapses to a 0-level literal: the NDRO/merger
  tree is dead silicon.
* A ``mul`` whose stream operand provably never pulses at or after the
  RL slot passes everything — the 16-JJ multiplier is an 0-JJ alias.
  This covers the full-scale weight ``b == n_max`` (unit weight).
* ``add`` lanes that are known zeros are pruned; a single surviving
  lane makes the whole merger tree an alias.
* Dead code (anything no output needs after the rewrites) is dropped.

The pass preserves decoded values *and* exact tick multisets — the API
layer cross-checks the reference evaluation of the optimized graph
against the original on every compile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ
from repro.models import area, technology as tech
from repro.synth.expand import PrimGraph, PrimNode


@dataclass(frozen=True)
class OptReport:
    """What the cell-choice pass achieved on one graph."""

    nodes_before: int
    nodes_after: int
    muls_elided: int
    zeros_folded: int
    lanes_pruned: int
    jj_before: int
    jj_after: int

    @property
    def jj_saved(self) -> int:
        return self.jj_before - self.jj_after


def estimate_jj(graph: PrimGraph) -> int:
    """Wire-padding JJ cost of lowering ``graph`` (mirrors the lowering
    tally: entries + epoch chain + multiplier blocks + fold mergers +
    fanout splitters)."""
    consumers: Dict[str, int] = {prim_id: 0 for prim_id in graph.nodes}
    for node in graph.nodes.values():
        for ref in node.args:
            consumers[ref] += 1
    for _ref, prim_id in graph.outputs:
        consumers[prim_id] += 1
    jj = 0
    muls = 0
    for node in graph.nodes.values():
        if node.op in ("sconst", "rconst"):
            jj += tech.JJ_JTL
        elif node.op == "mul":
            jj += MULTIPLIER_UNIPOLAR_JJ
            muls += 1
        elif node.op == "add":
            jj += max(0, len(node.args) - 1) * area.adder_unary_merger_jj()
        fanout = max(0, consumers[node.id] - 1)
        jj += fanout * tech.JJ_SPLITTER
    if muls:
        jj += tech.JJ_JTL  # in_epoch entry
        jj += max(0, muls - 1) * tech.JJ_SPLITTER
    return jj


def _max_slot(graph: PrimGraph, levels: Dict[str, int],
              cache: Dict[str, int], prim_id: str) -> int:
    """Largest slot index any pulse of a stream value can occupy
    (``-1`` for a provably empty stream)."""
    if prim_id in cache:
        return cache[prim_id]
    node = graph.nodes[prim_id]
    if node.op == "sconst":
        if node.level == 0:
            result = -1
        else:
            result = (node.level - 1) * graph.n_max // node.level
    elif node.op == "mul":
        stream_max = _max_slot(graph, levels, cache, node.args[0])
        result = min(stream_max, levels[node.args[1]] - 1)
    elif node.op == "add":
        result = max(
            _max_slot(graph, levels, cache, ref) for ref in node.args
        )
    elif node.op == "delay":
        result = _max_slot(graph, levels, cache, node.args[0])
        if result >= 0:
            result += node.slots
    else:  # pragma: no cover - rconst is never a stream operand
        raise AssertionError(f"not a stream primitive: {node.op!r}")
    cache[prim_id] = result
    return result


def optimize_graph(graph: PrimGraph) -> "tuple[PrimGraph, OptReport]":
    """Rewrite ``graph`` with the cell-choice rules; returns a new graph."""
    jj_before = estimate_jj(graph)
    out = PrimGraph(name=graph.name, bits=graph.bits, slot_fs=graph.slot_fs)
    alias: Dict[str, str] = {}
    levels: Dict[str, int] = {}  # static RL values, through delays
    zeros: Set[str] = set()  # provably silent streams
    muls_elided = 0
    zeros_folded = 0
    lanes_pruned = 0
    max_slot_cache: Dict[str, int] = {}

    def resolve(ref: str) -> str:
        while ref in alias:
            ref = alias[ref]
        return ref

    def emit_zero(node: PrimNode) -> None:
        nonlocal zeros_folded
        zeros_folded += 1
        zeros.add(node.id)
        out.emit(PrimNode(node.id, "sconst", level=0))

    for node in graph.nodes.values():
        args = tuple(resolve(ref) for ref in node.args)
        if node.op == "sconst":
            if node.level == 0:
                zeros.add(node.id)
            out.emit(node)
        elif node.op == "rconst":
            levels[node.id] = node.level
            out.emit(node)
        elif node.op == "delay":
            if node.slots == 0:
                alias[node.id] = args[0]
                continue
            arg = args[0]
            if arg in levels:
                levels[node.id] = levels[arg] + node.slots
            elif arg in zeros:
                # Delaying silence is still silence; keep the alias so
                # downstream zero folds fire, but emit nothing.
                alias[node.id] = arg
                continue
            out.emit(PrimNode(node.id, "delay", (arg,), slots=node.slots))
        elif node.op == "mul":
            stream, rl = args
            if stream in zeros or levels[rl] == 0:
                emit_zero(node)
                continue
            top = _max_slot(out, levels, max_slot_cache, stream)
            if top < levels[rl]:
                # Every tick precedes the reset: the product IS the
                # stream, the NDRO never blocks anything.
                muls_elided += 1
                alias[node.id] = stream
                continue
            out.emit(PrimNode(node.id, "mul", (stream, rl)))
        elif node.op == "add":
            live = [ref for ref in args if ref not in zeros]
            lanes_pruned += len(args) - len(live)
            if not live:
                emit_zero(node)
            elif len(live) == 1:
                alias[node.id] = live[0]
            else:
                out.emit(PrimNode(node.id, "add", tuple(live)))
        else:  # pragma: no cover - expand emits only PRIM_OPS
            raise AssertionError(f"unknown primitive op {node.op!r}")

    for ref, prim_id in graph.outputs:
        out.outputs.append((ref, resolve(prim_id)))

    # Dead-code elimination: keep only what the outputs reach.
    live_set: Set[str] = set()
    stack: List[str] = [prim_id for _ref, prim_id in out.outputs]
    while stack:
        prim_id = stack.pop()
        if prim_id in live_set:
            continue
        live_set.add(prim_id)
        stack.extend(out.nodes[prim_id].args)
    pruned = PrimGraph(name=out.name, bits=out.bits, slot_fs=out.slot_fs)
    for prim_id, node in out.nodes.items():
        if prim_id in live_set:
            pruned.nodes[prim_id] = node
    pruned.outputs = list(out.outputs)

    report = OptReport(
        nodes_before=len(graph.nodes),
        nodes_after=len(pruned.nodes),
        muls_elided=muls_elided,
        zeros_folded=zeros_folded,
        lanes_pruned=lanes_pruned,
        jj_before=jj_before,
        jj_after=estimate_jj(pruned),
    )
    return pruned, report


def resolve_outputs(graph: PrimGraph) -> Dict[str, str]:
    """Public ref -> producing primitive id (post-optimization view)."""
    return dict(graph.outputs)