"""Lowering: primitive dataflow graph → balanced, lint-clean netlist.

Cell-name namespaces (provably collision-free because user node ids may
not contain ``__`` and the id ``epoch`` is reserved):

* ``in_<prim_id>``   — entry JTL per literal (stimulus lands on its ``a``)
* ``in_epoch``       — entry JTL for the shared epoch-start marker
* ``epoch__s<i>``    — splitter chain distributing the epoch marker
* ``n_<prim_id>.*``  — cells of a multiplier block (``.ndro`` etc.)
* ``n_<prim_id>__m<i>`` / ``__s<i>`` — fold mergers / fanout splitters
* ``pad<N>``         — JTL pad cells (``"jtl"`` padding mode only)

Timing discipline (clock-follow-data):

Every stream edge carries ``(lat, spread)``: the pulse for logical slot
``j`` arrives in ``[lat + j*slot, lat + j*slot + spread]``.  RL edges
carry a single pulse at ``lat + value*slot``.  Multipliers align their
NDRO phase ladder at an anchor ``L*``: epoch sets at ``L* - 2*margin``
(after the block's internal splitter), the RL operand resets at
``L* - margin + b*slot``, and stream ticks read at ``L* + j*slot`` — so
slot ``b``'s tick is blocked and slot ``b-1``'s window clears the reset
by the margin.  Adder fan-in folds lanes left-to-right through mergers,
staggering each new lane one dead time past the accumulated window.
``delay`` nodes cost zero cells: they relabel the edge
(``lat -= slots*slot_fs``) so downstream padding absorbs the shift.

Under the slot-period floors computed in :mod:`repro.synth.balance`,
any two pulses meeting at a merger are at least one dead time apart
(valid runs lose no pulses) and the static worst-case arrival skew at
every merger is also at least one dead time (the lint/analyze
``merger-collision`` rule is clean by construction).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.cells.interconnect import Jtl, Merger
from repro.core.multiplier import MULTIPLIER_UNIPOLAR_JJ, build_unipolar_multiplier
from repro.errors import SynthesisError
from repro.models import area, technology as tech
from repro.pulsesim.element import Element
from repro.pulsesim.export import netlist_description
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.probe import PulseRecorder
from repro.pulsesim.schedule import uniform_stream_times
from repro.pulsesim.simulator import Simulator
from repro.synth import builder
from repro.synth.balance import MARGIN_FS, Padder, choose_slot_fs, stream_spreads
from repro.synth.expand import PrimGraph
from repro.synth.refeval import OutputValue

FORMAT = "usfq-synth/1"


@dataclass(frozen=True)
class OutputPort:
    """Where one public output surfaces in the lowered netlist."""

    ref: str
    encoding: str
    probe_label: str
    latency_fs: int
    expected_level: int


@dataclass(frozen=True)
class SimOutcome:
    """Decoded results of one simulation of a compiled program."""

    levels: Dict[str, int]
    collisions: int
    events: int


@dataclass
class CompiledProgram:
    """A lowered spec: sealed circuit, stimulus schedule, decode plan."""

    name: str
    bits: int
    spec_doc: Dict[str, Any]
    spec_key: str
    circuit: Circuit
    slot_fs: int
    required_slot_fs: int
    entry_points: List[Tuple[Element, str]]
    stimulus: Dict[str, List[int]]
    outputs: List[OutputPort]
    probes: Dict[str, PulseRecorder]
    stats: Dict[str, int]

    @property
    def n_max(self) -> int:
        return 2 ** self.bits

    def simulate(self, kernel: Optional[str] = None) -> SimOutcome:
        """Run the stimulus schedule and decode every output."""
        sim = Simulator(self.circuit, kernel=kernel)
        sim.reset()
        by_name = {element.name: element for element in self.circuit.elements}
        for name, times in self.stimulus.items():
            sim.schedule_train(by_name[name], "a", times)
        run_stats = sim.run()
        levels: Dict[str, int] = {}
        for output in self.outputs:
            probe = self.probes[output.probe_label]
            if output.encoding == "stream":
                levels[output.ref] = probe.count()
            else:
                if len(probe.times) != 1:
                    raise SynthesisError(
                        f"RL output {output.ref!r} produced"
                        f" {len(probe.times)} pulses (expected exactly 1)"
                    )
                offset = probe.times[0] - output.latency_fs
                if offset % self.slot_fs:
                    raise SynthesisError(
                        f"RL output {output.ref!r} pulse is off-grid:"
                        f" {offset} fs past latency is not a multiple of"
                        f" the {self.slot_fs} fs slot"
                    )
                levels[output.ref] = offset // self.slot_fs
        collisions = sum(
            element.collisions
            for element in self.circuit.elements
            if isinstance(element, Merger)
        )
        return SimOutcome(
            levels=levels,
            collisions=collisions,
            events=run_stats.events_processed,
        )

    def to_json(self) -> str:
        """Deterministic, byte-stable JSON rendering of the compile."""
        doc = {
            "format": FORMAT,
            "spec": self.spec_doc,
            "spec_key": self.spec_key,
            "epoch": {
                "bits": self.bits,
                "n_max": self.n_max,
                "slot_fs": self.slot_fs,
                "required_slot_fs": self.required_slot_fs,
            },
            "netlist": netlist_description(self.circuit),
            "stimulus": {
                name: list(times)
                for name, times in sorted(self.stimulus.items())
            },
            "outputs": [
                {
                    "ref": output.ref,
                    "encoding": output.encoding,
                    "probe": output.probe_label,
                    "latency_fs": output.latency_fs,
                    "expected_level": output.expected_level,
                }
                for output in self.outputs
            ],
            "stats": dict(sorted(self.stats.items())),
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"


@dataclass
class _Edge:
    """Consumer-side view of one produced value during lowering."""

    encoding: str
    spread: int
    legs: Deque[Tuple[Element, str, int]] = field(default_factory=deque)

    def take(self) -> Tuple[Element, str, int]:
        return self.legs.popleft()


def _consumer_counts(graph: PrimGraph) -> Dict[str, int]:
    counts: Dict[str, int] = {prim_id: 0 for prim_id in graph.nodes}
    for node in graph.nodes.values():
        for ref in node.args:
            counts[ref] += 1
    for _ref, prim_id in graph.outputs:
        counts[prim_id] += 1
    return counts


def lower_graph(
    graph: PrimGraph,
    expected: Dict[str, OutputValue],
    padding: str = "wire",
    optimized: bool = False,
    elided_jj: int = 0,
) -> CompiledProgram:
    """Lower a primitive graph into a sealed, balanced netlist.

    ``expected`` supplies the reference levels recorded per output (from
    the *unoptimized* graph, so optimizer bugs are observable).
    """
    spreads, required = stream_spreads(graph)
    slot = choose_slot_fs(graph)
    n_max = graph.n_max
    dead = tech.T_MERGER_DEAD_FS

    circuit = Circuit(graph.name)
    padder = Padder(circuit, mode=padding)
    counts = _consumer_counts(graph)
    edges: Dict[str, _Edge] = {}
    entry_points: List[Tuple[Element, str]] = []
    stimulus: Dict[str, List[int]] = {}
    spare_outputs: List[Tuple[Element, str]] = []
    cell_tally = {"mul": 0, "merger": 0, "splitter": 0, "entry": 0}

    def entry(name: str, times: List[int]) -> Element:
        jtl = circuit.add(Jtl(name))
        entry_points.append((jtl, "a"))
        stimulus[name] = times
        cell_tally["entry"] += 1
        return jtl

    def fan_out(prim_id: str, source: Element, port: str, lat: int) -> _Edge:
        """Build the fanout chain for a produced value; legs carry lats."""
        node = graph.nodes[prim_id]
        edge = _Edge(
            encoding=graph.node_encoding(prim_id),
            spread=spreads.get(prim_id, 0),
        )
        legs = builder.fanout_chain(
            circuit, f"n_{prim_id}", source, port, counts[prim_id]
        )
        cell_tally["splitter"] += builder.splitters_needed(1, counts[prim_id])
        for element, leg_port, depth in legs:
            edge.legs.append((element, leg_port, lat + depth * tech.T_SPLITTER_FS))
        edges[prim_id] = edge
        return edge

    # Shared epoch-start marker: one entry, one splitter chain, one leg
    # per multiplier (taken in topological order).
    mul_count = sum(1 for node in graph.nodes.values() if node.op == "mul")
    epoch_legs: Deque[Tuple[Element, str, int]] = deque()
    if mul_count:
        epoch_jtl = entry("in_epoch", [0])
        chain = builder.fanout_chain(circuit, "epoch", epoch_jtl, "q", mul_count)
        cell_tally["splitter"] += builder.splitters_needed(1, mul_count)
        for element, port, depth in chain:
            epoch_legs.append(
                (element, port, epoch_jtl.delay + depth * tech.T_SPLITTER_FS)
            )

    for node in graph.nodes.values():
        if node.op in ("sconst", "rconst"):
            if node.op == "sconst":
                times = uniform_stream_times(node.level, n_max, slot, start=0)
            else:
                times = [node.level * slot]
            jtl = entry(f"in_{node.id}", list(times))
            fan_out(node.id, jtl, "q", jtl.delay)
        elif node.op == "mul":
            s_el, s_port, s_lat = edges[node.args[0]].take()
            r_el, r_port, r_lat = edges[node.args[1]].take()
            e_el, e_port, e_lat = epoch_legs.popleft()
            block = build_unipolar_multiplier(circuit, f"n_{node.id}")
            cell_tally["mul"] += 1
            anchor = max(
                s_lat,
                r_lat + MARGIN_FS,
                e_lat + tech.T_SPLITTER_FS + 2 * MARGIN_FS,
            )
            a_el, a_port = block.input("a")
            b_el, b_port = block.input("b")
            ep_el, ep_port = block.input("epoch")
            padder.connect(s_el, s_port, a_el, a_port, anchor - s_lat)
            padder.connect(r_el, r_port, b_el, b_port, anchor - MARGIN_FS - r_lat)
            padder.connect(
                e_el, e_port, ep_el, ep_port,
                anchor - 2 * MARGIN_FS - tech.T_SPLITTER_FS - e_lat,
            )
            out_el, out_port = block.output("out")
            # The block's spare epoch leg (splitter q2 -> JTL) must be
            # observed to satisfy the dangling-output rule.
            for element in block.elements:
                if element.name.endswith(".jtl"):
                    spare_outputs.append((element, "q"))
            fan_out(node.id, out_el, out_port, anchor + out_el.delay)
        elif node.op == "add":
            lanes = [edges[ref].take() for ref in node.args]
            lane_spreads = [spreads[ref] for ref in node.args]
            acc_el, acc_port, acc_lat = lanes[0]
            acc_spread = lane_spreads[0]
            for index, (lane, lane_spread) in enumerate(
                zip(lanes[1:], lane_spreads[1:]), start=1
            ):
                lane_el, lane_port, lane_lat = lane
                merger = circuit.add(Merger(f"n_{node.id}__m{index}"))
                cell_tally["merger"] += 1
                anchor = max(acc_lat, lane_lat)
                padder.connect(acc_el, acc_port, merger, "a", anchor - acc_lat)
                padder.connect(
                    lane_el, lane_port, merger, "b",
                    anchor - lane_lat + acc_spread + dead,
                )
                acc_el, acc_port = merger, "q"
                acc_lat = anchor + merger.delay
                acc_spread = acc_spread + dead + lane_spread
            fan_out(node.id, acc_el, acc_port, acc_lat)
        elif node.op == "delay":
            parent = edges[node.args[0]]
            el, port, lat = parent.take()
            fan_out(node.id, el, port, lat - node.slots * slot)
        else:  # pragma: no cover - expand emits only PRIM_OPS
            raise AssertionError(f"unknown primitive op {node.op!r}")

    outputs: List[OutputPort] = []
    probes: Dict[str, PulseRecorder] = {}
    latency_fs = 0
    for ref, prim_id in graph.outputs:
        edge = edges[prim_id]
        element, port, lat = edge.take()
        label = f"out:{ref}"
        probe = circuit.probe(element, port, PulseRecorder(label))
        probes[label] = probe
        outputs.append(
            OutputPort(
                ref=ref,
                encoding=edge.encoding,
                probe_label=label,
                latency_fs=lat,
                expected_level=expected[ref].level,
            )
        )
        latency_fs = max(latency_fs, lat)

    for probe in builder.probe_unconsumed(circuit, spare_outputs, frozenset()):
        probes[probe.label] = probe

    leftovers = [prim_id for prim_id, edge in edges.items() if edge.legs]
    if leftovers:  # pragma: no cover - consumer counting is exact
        raise SynthesisError(f"unconsumed fanout legs for {leftovers}")

    circuit.seal()

    jj_estimate = (
        cell_tally["mul"] * MULTIPLIER_UNIPOLAR_JJ
        + cell_tally["merger"] * area.adder_unary_merger_jj()
        + cell_tally["splitter"] * tech.JJ_SPLITTER
        + (cell_tally["entry"] + padder.jtl_cells) * tech.JJ_JTL
    )
    stats = {
        "cells": len(circuit.elements),
        "jj": circuit.jj_count,
        "jj_estimate": jj_estimate,
        "elided_jj": elided_jj,
        "optimized": int(optimized),
        "multipliers": cell_tally["mul"],
        "mergers": cell_tally["merger"],
        "splitters": cell_tally["splitter"],
        "entries": cell_tally["entry"],
        "pad_jtls": padder.jtl_cells,
        "pads_fs": padder.total_fs,
        "slot_fs": slot,
        "required_slot_fs": required,
        "latency_fs": latency_fs,
        "epoch_fs": n_max * slot,
    }

    return CompiledProgram(
        name=graph.name,
        bits=graph.bits,
        spec_doc={},
        spec_key="",
        circuit=circuit,
        slot_fs=slot,
        required_slot_fs=required,
        entry_points=entry_points,
        stimulus=stimulus,
        outputs=outputs,
        probes=probes,
        stats=stats,
    )
