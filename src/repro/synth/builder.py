"""Shared netlist-legality helpers (the builder hoist).

Three construction-time legality disciplines used to live in two copies
each — once in the :mod:`repro.verify` generator (as a construction
constraint) and once in the lint/analyze rule bodies (as the detection
counterpart).  They are hoisted here so the random generator, the DRC
rules, and the synthesis lowering pipeline consume one implementation:

* **merger spacing** — :func:`space_arrivals` computes the minimal
  per-input delay bumps that keep static worst-case arrivals at a merger
  at least one dead time apart; :func:`collision_pairs` is the matching
  detector (adjacent arrivals, sorted by time, closer than the dead
  time).  A netlist built with the former produces zero findings from the
  latter by construction.
* **explicit fanout** — SFQ outputs drive exactly one sink; fanning out
  requires splitter cells, each contributing a net gain of one output.
  :func:`splitters_needed` counts them; :func:`fanout_chain` materialises
  the chain in a circuit and hands back the per-leg endpoints with their
  splitter depths.
* **total observability** — every output port nothing consumes gets a
  recorder so no generated or synthesized circuit has dangling outputs
  (:func:`probe_unconsumed`).

This module deliberately imports only the cell/netlist layer, so both
``repro.verify`` and ``repro.analyze`` can depend on it without cycles.
"""

from __future__ import annotations

from typing import Container, List, Sequence, Tuple, TypeVar

from repro.cells.interconnect import Splitter
from repro.pulsesim.element import Element
from repro.pulsesim.netlist import Circuit
from repro.pulsesim.probe import PulseRecorder

#: ``(element, port)`` — the endpoint convention shared with
#: :mod:`repro.lint.graph`.
Endpoint = Tuple[Element, str]

K = TypeVar("K")


def splitters_needed(available: int, required: int) -> int:
    """Splitter cells needed to grow ``available`` outputs to ``required``.

    Each 1:2 splitter consumes one output and produces two — a net gain
    of one — so fan-in can only be served by adding one splitter per
    missing output.  This is the growth rule the verify generator applies
    before wiring any multi-input cell.
    """
    return max(0, required - available)


def space_arrivals(arrivals: Sequence[int], dead_time: int) -> List[int]:
    """Minimal delay bumps making merger-input arrivals collision-free.

    Given the static worst-case arrival time per input port, returns one
    non-negative bump per port such that, after bumping, arrivals taken
    in their original time order are at least ``dead_time`` apart.  The
    sweep is greedy over the ports sorted by original arrival (stable,
    so ties keep port declaration order): each port is pushed just far
    enough past its predecessor — exactly the constraint under which
    :func:`collision_pairs` finds nothing.
    """
    bumps = [0] * len(arrivals)
    if dead_time <= 0 or len(arrivals) < 2:
        return bumps
    spaced = list(arrivals)
    order = sorted(range(len(spaced)), key=lambda i: spaced[i])
    for earlier, later in zip(order, order[1:]):
        skew = spaced[later] - spaced[earlier]
        if skew < dead_time:
            bump = dead_time - skew
            bumps[later] += bump
            spaced[later] += bump
    return bumps


def collision_pairs(
    arrivals: Sequence[Tuple[K, int]],
    dead_time: int,
) -> List[Tuple[Tuple[K, int], Tuple[K, int], int]]:
    """Adjacent arrival pairs closer than the merger dead time.

    ``arrivals`` is ``(key, worst_case_time)`` per driven input port;
    the result lists ``(earlier, later, skew)`` for every adjacent pair
    (sorted by time, stable on ties) with ``skew < dead_time`` — the
    detection counterpart of :func:`space_arrivals`, and the shared body
    of the lint/analyze ``merger-collision`` diagnostics.
    """
    if dead_time <= 0 or len(arrivals) < 2:
        return []
    ordered = sorted(arrivals, key=lambda item: item[1])
    return [
        (earlier, later, later[1] - earlier[1])
        for earlier, later in zip(ordered, ordered[1:])
        if later[1] - earlier[1] < dead_time
    ]


def fanout_chain(
    circuit: Circuit,
    prefix: str,
    source: Element,
    source_port: str,
    count: int,
) -> List[Tuple[Element, str, int]]:
    """Serve ``count`` consumers from one output via a splitter chain.

    Builds ``splitters_needed(1, count)`` splitters named
    ``{prefix}__s1..`` and returns one ``(element, port, depth)`` leg per
    consumer, where ``depth`` is the number of splitters the leg's pulse
    traverses (for latency bookkeeping).  ``count == 1`` returns the bare
    source endpoint at depth 0; chain wires carry zero delay so all leg
    latency is explicit in the depths.
    """
    if count < 1:
        raise ValueError(f"fanout chain needs >= 1 consumer, got {count}")
    if count == 1:
        return [(source, source_port, 0)]
    legs: List[Tuple[Element, str, int]] = []
    tail: Endpoint = (source, source_port)
    for index in range(1, splitters_needed(1, count) + 1):
        splitter = circuit.add(Splitter(f"{prefix}__s{index}"))
        circuit.connect(tail[0], tail[1], splitter, "a")
        legs.append((splitter, "q1", index))
        tail = (splitter, "q2")
    legs.append((tail[0], tail[1], count - 1))
    return legs


def probe_unconsumed(
    circuit: Circuit,
    outputs: Sequence[Endpoint],
    consumed: Container[int],
) -> List[PulseRecorder]:
    """Attach a recorder to every output endpoint nothing consumes.

    ``outputs`` lists candidate ``(element, port)`` endpoints in a
    deterministic order; ``consumed`` holds the indices that already
    drive a sink.  Every other endpoint gets a default
    :class:`~repro.pulsesim.probe.PulseRecorder`, satisfying the
    ``dangling-output`` design rule by construction.  Recorders are
    returned in ``outputs`` order.
    """
    return [
        circuit.probe(element, port)
        for slot, (element, port) in enumerate(outputs)
        if slot not in consumed
    ]
