"""Command-line interface for the dataflow synthesis frontend.

Usage::

    usfq-synth compile fir.json                    # netlist JSON to stdout
    usfq-synth compile fir.json --out fir.c.json   # ... or to a file
    usfq-synth compile fir.json --simulate         # also run + decode
    usfq-synth compile fir.json --no-opt --padding jtl
    usfq-synth check examples/specs/*.json         # gate a spec corpus
    usfq-synth check fir.json --fail-on warning --json
    python -m repro.synth compile fir.json         # module alias

``compile`` emits the deterministic compile document (byte-stable, so
golden files can lock it).  ``check`` compiles each spec and then runs
the full machine-checkable correctness story: the netlist linter, the
abstract interpreter's merger-collision proofs, and a simulation of the
compiled stimulus on both kernels decoded against the NumPy reference
evaluation of the spec.

Exit codes: 0 — everything clean below the ``--fail-on`` severity;
1 — at least one finding at or above it; 2 — a spec was unreadable or
malformed.  Severities: lint findings keep their own level, an
unproved merger is a ``warning`` (the interval domain is conservative,
not wrong), and a simulation mismatch or a lost pulse is always an
``error``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError, SynthesisError
from repro.lint.report import Severity
from repro.synth.api import (
    analyze_program,
    compile_spec,
    lint_program,
)
from repro.synth.lower import CompiledProgram
from repro.synth.spec import DataflowSpec, spec_from_json

#: Simulator kernels ``check`` cross-validates (both must agree).
CHECK_KERNELS = ("reference", "sealed")


def _load_spec(path: Path) -> DataflowSpec:
    try:
        text = path.read_text()
    except OSError as exc:
        raise SynthesisError(f"cannot read {path}: {exc}") from exc
    return spec_from_json(text)


def _check_program(program: CompiledProgram) -> List[Dict[str, Any]]:
    """All findings for one compiled spec as severity-tagged dicts."""
    findings: List[Dict[str, Any]] = []
    lint = lint_program(program)
    for diagnostic in lint.diagnostics:
        entry = diagnostic.to_dict()
        entry["check"] = "lint"
        findings.append(entry)
    analysis = analyze_program(program)
    stats = analysis.report.stats
    unproved = stats["mergers_checked"] - stats["mergers_proved"]
    if unproved:
        findings.append({
            "check": "analyze",
            "severity": str(Severity.WARNING),
            "message": (
                f"{unproved} of {stats['mergers_checked']} merger(s) not"
                " proved collision-free by the interval domain"
            ),
        })
    expected = {o.ref: o.expected_level for o in program.outputs}
    for kernel in CHECK_KERNELS:
        outcome = program.simulate(kernel=kernel)
        if outcome.levels != expected:
            findings.append({
                "check": "simulate",
                "severity": str(Severity.ERROR),
                "message": (
                    f"{kernel} kernel decoded {outcome.levels}, reference"
                    f" evaluation expects {expected}"
                ),
            })
        if outcome.collisions:
            findings.append({
                "check": "simulate",
                "severity": str(Severity.ERROR),
                "message": (
                    f"{outcome.collisions} merger collision(s) under the"
                    f" {kernel} kernel — pulses lost"
                ),
            })
    return findings


def _cmd_compile(args: argparse.Namespace) -> int:
    path = Path(args.spec)
    spec = _load_spec(path)
    program = compile_spec(
        spec, optimize=not args.no_opt, padding=args.padding
    )
    rendered = program.to_json()
    if args.simulate:
        doc = json.loads(rendered)
        outcome = program.simulate()
        doc["simulation"] = {
            "levels": dict(sorted(outcome.levels.items())),
            "collisions": outcome.collisions,
            "events": outcome.events,
        }
        rendered = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(rendered)
    else:
        sys.stdout.write(rendered)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    level = Severity.parse(args.fail_on)
    results: List[Dict[str, Any]] = []
    failed = False
    for name in args.specs:
        path = Path(name)
        spec = _load_spec(path)
        program = compile_spec(
            spec, optimize=not args.no_opt, padding=args.padding
        )
        findings = _check_program(program)
        entry = {
            "spec": str(path),
            "name": spec.name,
            "spec_key": spec.key(),
            "jj": program.stats["jj"],
            "slot_fs": program.slot_fs,
            "findings": findings,
        }
        results.append(entry)
        if any(Severity.parse(f["severity"]) >= level for f in findings):
            failed = True
    if args.json:
        json.dump({"results": results}, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for entry in results:
            status = "FAIL" if any(
                Severity.parse(f["severity"]) >= level
                for f in entry["findings"]
            ) else "ok"
            print(
                f"[{status}] {entry['spec']} ({entry['name']},"
                f" {entry['jj']} JJ, slot {entry['slot_fs']} fs):"
                f" {len(entry['findings'])} finding(s)"
            )
            for finding in entry["findings"]:
                print(f"    [{finding['severity']}] {finding['check']}:"
                      f" {finding['message']}")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="usfq-synth",
        description=(
            "Compile JSON dataflow specs (const/add/mul/delay/tap/matvec"
            " over unary pulse-stream and Race-Logic encodings) into"
            " balanced, lint-clean U-SFQ netlists."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser(
        "compile", help="compile one spec and emit the netlist document"
    )
    p_compile.add_argument("spec", help="path to a dataflow spec (JSON)")
    p_compile.add_argument(
        "--out", metavar="FILE", help="write the document here (default: stdout)"
    )
    p_compile.add_argument(
        "--json", action="store_true",
        help="accepted for symmetry; compile output is always JSON",
    )
    p_compile.add_argument(
        "--simulate", action="store_true",
        help="also simulate the stimulus and append decoded levels",
    )
    p_compile.add_argument(
        "--no-opt", action="store_true",
        help="skip the T1-style cell-choice optimization pass",
    )
    p_compile.add_argument(
        "--padding", choices=("wire", "jtl"), default="wire",
        help="balancing delays as wire delays (default) or JTL pad cells",
    )
    p_compile.set_defaults(func=_cmd_compile)

    p_check = sub.add_parser(
        "check",
        help="compile spec(s) and gate on lint + proofs + simulation",
    )
    p_check.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="paths to dataflow specs (JSON)",
    )
    p_check.add_argument(
        "--fail-on", default="error",
        choices=("error", "warning", "info"),
        help="lowest severity that fails the run (default: error)",
    )
    p_check.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    p_check.add_argument(
        "--no-opt", action="store_true",
        help="skip the cell-choice optimization pass",
    )
    p_check.add_argument(
        "--padding", choices=("wire", "jtl"), default="wire",
        help="balancing delays as wire delays (default) or JTL pad cells",
    )
    p_check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    try:
        result: int = args.func(args)
        return result
    except ReproError as exc:
        print(f"usfq-synth: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
