"""``python -m repro.synth`` — the synthesis frontend CLI."""

import sys

from repro.synth.cli import main

sys.exit(main())
