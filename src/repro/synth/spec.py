"""Dataflow specification IR for the U-SFQ synthesis frontend.

A :class:`DataflowSpec` is a small, JSON-serializable dataflow program
over unary-encoded operands.  Each node produces one value (the matvec
macro produces one per row) in one of the two paper encodings:

* ``"stream"`` — pulse-stream: the value ``n`` is carried as ``n``
  pulses spread over the epoch of ``n_max = 2**bits`` slots (paper
  §3.1).
* ``"rl"`` — Race Logic: a single pulse whose slot index *is* the
  value (paper §3.2).  RL values in this IR are static weights — they
  are known at compile time, which is what lets the lowering pipeline
  schedule the NDRO ``set``/``reset`` ladder deterministically and lets
  the optimizer fold multiplications by 0 or full scale.

Node operators (``op``):

``const``
    A literal operand: ``level`` in ``0..n_max`` with an explicit
    ``encoding`` (``"stream"`` caps at ``n_max``; ``"rl"`` allows the
    full-scale slot ``n_max`` meaning "never resets").
``add``
    Superposition of >= 1 pulse streams (merger tree after lowering).
``mul``
    Unipolar product of a stream by a static RL weight (NDRO cell,
    paper Fig. 7): ``args = [stream, rl]``.
``delay``
    Shift a value by ``slots`` epoch slots.  For streams this delays
    every pulse; for RL it adds to the encoded value (so ``value +
    slots`` must stay within the epoch).
``tap``
    FIR tap-chain macro: one stream input, ``taps`` static RL weights
    applied to progressively delayed copies (``spacing`` slots apart),
    summed.  Expands to delay/const/mul/add primitives.
``matvec``
    Matrix-vector macro: ``matrix`` (rows of static weights) times a
    vector of stream args; row ``i`` is published as ``"<id>.y<i>"``.

Values are referenced by node id (or ``"<id>.y<i>"`` for matvec rows).
Every produced value must be consumed or listed in ``outputs`` — the
same *total observability* rule the netlist linter enforces — and
``outputs`` must be non-empty.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SynthesisError

FORMAT = "usfq-dataflow/1"

#: Encodings a spec edge can carry (paper §3).
ENCODINGS = ("stream", "rl")

#: Operators accepted in the IR, including the two macros.
OPS = ("const", "add", "mul", "delay", "tap", "matvec")

#: Upper bound on epoch resolution for synthesized circuits: epochs are
#: ``2**bits`` slots and simulated event counts grow linearly with them.
MAX_BITS = 10

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: Node ids the lowering pipeline reserves for its own namespaces.
RESERVED_IDS = frozenset({"epoch"})


def _check_id(node_id: Any) -> str:
    if not isinstance(node_id, str) or not _ID_RE.match(node_id):
        raise SynthesisError(
            f"node id {node_id!r} must match {_ID_RE.pattern}"
        )
    if "__" in node_id:
        raise SynthesisError(
            f"node id {node_id!r} may not contain '__'"
            " (reserved for synthesized cell names)"
        )
    if node_id in RESERVED_IDS:
        raise SynthesisError(f"node id {node_id!r} is reserved")
    return node_id


@dataclass(frozen=True)
class NodeSpec:
    """One dataflow node. Unused fields stay at their defaults."""

    id: str
    op: str
    args: Tuple[str, ...] = ()
    level: Optional[int] = None
    encoding: Optional[str] = None
    slots: Optional[int] = None
    taps: Tuple[int, ...] = ()
    spacing: int = 1
    matrix: Tuple[Tuple[int, ...], ...] = ()

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"id": self.id, "op": self.op}
        if self.args:
            doc["args"] = list(self.args)
        if self.level is not None:
            doc["level"] = self.level
        if self.encoding is not None:
            doc["encoding"] = self.encoding
        if self.slots is not None:
            doc["slots"] = self.slots
        if self.taps:
            doc["taps"] = list(self.taps)
            doc["spacing"] = self.spacing
        if self.matrix:
            doc["matrix"] = [list(row) for row in self.matrix]
        return doc

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "NodeSpec":
        if not isinstance(doc, Mapping):
            raise SynthesisError(f"node entry must be an object, got {doc!r}")
        unknown = set(doc) - {
            "id", "op", "args", "level", "encoding",
            "slots", "taps", "spacing", "matrix",
        }
        if unknown:
            raise SynthesisError(
                f"node {doc.get('id')!r} has unknown fields {sorted(unknown)}"
            )
        node_id = _check_id(doc.get("id"))
        op = doc.get("op")
        if op not in OPS:
            raise SynthesisError(
                f"node {node_id!r}: unknown op {op!r} (expected one of {OPS})"
            )
        args = doc.get("args", [])
        if not isinstance(args, list) or not all(
            isinstance(a, str) for a in args
        ):
            raise SynthesisError(
                f"node {node_id!r}: args must be a list of value refs"
            )
        taps = doc.get("taps", [])
        if not isinstance(taps, list) or not all(
            isinstance(t, int) and not isinstance(t, bool) for t in taps
        ):
            raise SynthesisError(
                f"node {node_id!r}: taps must be a list of integers"
            )
        matrix = doc.get("matrix", [])
        if not isinstance(matrix, list) or not all(
            isinstance(row, list)
            and all(isinstance(w, int) and not isinstance(w, bool) for w in row)
            for row in matrix
        ):
            raise SynthesisError(
                f"node {node_id!r}: matrix must be a list of integer rows"
            )
        for name in ("level", "slots", "spacing"):
            value = doc.get(name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise SynthesisError(
                    f"node {node_id!r}: {name} must be an integer"
                )
        encoding = doc.get("encoding")
        if encoding is not None and encoding not in ENCODINGS:
            raise SynthesisError(
                f"node {node_id!r}: unknown encoding {encoding!r}"
            )
        return cls(
            id=node_id,
            op=op,
            args=tuple(args),
            level=doc.get("level"),
            encoding=encoding,
            slots=doc.get("slots"),
            taps=tuple(taps),
            spacing=doc.get("spacing", 1),
            matrix=tuple(tuple(row) for row in matrix),
        )


@dataclass(frozen=True)
class DataflowSpec:
    """A named dataflow program plus its epoch parameters."""

    name: str
    bits: int
    nodes: Tuple[NodeSpec, ...]
    outputs: Tuple[str, ...]
    slot_fs: Optional[int] = None

    @property
    def n_max(self) -> int:
        return 2 ** self.bits

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "format": FORMAT,
            "name": self.name,
            "bits": self.bits,
            "nodes": [node.to_json() for node in self.nodes],
            "outputs": list(self.outputs),
        }
        if self.slot_fs is not None:
            doc["slot_fs"] = self.slot_fs
        return doc

    def key(self) -> str:
        """Short content hash, used to seed per-spec derived randomness."""
        canonical = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "DataflowSpec":
        if not isinstance(doc, Mapping):
            raise SynthesisError(f"spec must be an object, got {doc!r}")
        if doc.get("format") != FORMAT:
            raise SynthesisError(
                f"unsupported spec format {doc.get('format')!r}"
                f" (expected {FORMAT!r})"
            )
        unknown = set(doc) - {"format", "name", "bits", "nodes", "outputs",
                              "slot_fs"}
        if unknown:
            raise SynthesisError(f"spec has unknown fields {sorted(unknown)}")
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise SynthesisError("spec name must be a non-empty string")
        bits = doc.get("bits")
        if not isinstance(bits, int) or isinstance(bits, bool):
            raise SynthesisError("spec bits must be an integer")
        nodes_doc = doc.get("nodes")
        if not isinstance(nodes_doc, list):
            raise SynthesisError("spec nodes must be a list")
        outputs = doc.get("outputs")
        if not isinstance(outputs, list) or not all(
            isinstance(ref, str) for ref in outputs
        ):
            raise SynthesisError("spec outputs must be a list of value refs")
        slot_fs = doc.get("slot_fs")
        if slot_fs is not None and (
            not isinstance(slot_fs, int) or isinstance(slot_fs, bool)
        ):
            raise SynthesisError("spec slot_fs must be an integer")
        spec = cls(
            name=name,
            bits=bits,
            nodes=tuple(NodeSpec.from_json(entry) for entry in nodes_doc),
            outputs=tuple(outputs),
            slot_fs=slot_fs,
        )
        validate_spec(spec)
        return spec


def spec_from_json(text: str) -> DataflowSpec:
    """Parse and validate a spec from its JSON text."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SynthesisError(f"spec is not valid JSON: {exc}") from exc
    return DataflowSpec.from_json(doc)


@dataclass
class _Produced:
    """Type information for one produced value during validation.

    ``level`` is the statically known value for RL edges (RL weights in
    this IR are compile-time constants; delays add to them).
    """

    encoding: str
    consumed: bool = False
    level: Optional[int] = None


def _expect_args(node: NodeSpec, count: int) -> None:
    if len(node.args) != count:
        raise SynthesisError(
            f"node {node.id!r}: op {node.op!r} takes exactly {count}"
            f" argument(s), got {len(node.args)}"
        )


def _forbid(node: NodeSpec, **fields: bool) -> None:
    for name, present in fields.items():
        if present:
            raise SynthesisError(
                f"node {node.id!r}: field {name!r} is not valid for"
                f" op {node.op!r}"
            )


def validate_spec(spec: DataflowSpec) -> Dict[str, str]:
    """Validate a spec; returns the ``ref -> encoding`` type environment.

    Raises :class:`~repro.errors.SynthesisError` on the first violation:
    malformed ids/fields, out-of-range levels, unknown or out-of-order
    references, encoding mismatches, unconsumed values missing from
    ``outputs``, or unknown outputs.
    """
    if not 1 <= spec.bits <= MAX_BITS:
        raise SynthesisError(
            f"spec bits must be in 1..{MAX_BITS}, got {spec.bits}"
        )
    if spec.slot_fs is not None and spec.slot_fs <= 0:
        raise SynthesisError(f"spec slot_fs must be positive, got"
                             f" {spec.slot_fs}")
    if not isinstance(spec.name, str) or not spec.name:
        raise SynthesisError("spec name must be a non-empty string")
    n_max = spec.n_max
    env: Dict[str, _Produced] = {}

    def use(node: NodeSpec, ref: str, want: str) -> None:
        produced = env.get(ref)
        if produced is None:
            raise SynthesisError(
                f"node {node.id!r}: argument {ref!r} does not reference an"
                " earlier node"
            )
        if produced.encoding != want:
            raise SynthesisError(
                f"node {node.id!r}: argument {ref!r} is"
                f" {produced.encoding!r}-encoded, expected {want!r}"
            )
        produced.consumed = True

    def define(
        node: NodeSpec, ref: str, encoding: str, level: Optional[int] = None
    ) -> None:
        if ref in env:
            raise SynthesisError(f"duplicate value ref {ref!r}")
        env[ref] = _Produced(encoding, level=level)

    def check_weight(node: NodeSpec, weight: int, what: str) -> None:
        if not 0 <= weight <= n_max:
            raise SynthesisError(
                f"node {node.id!r}: {what} {weight} out of range"
                f" 0..{n_max} for bits={spec.bits}"
            )

    for node in spec.nodes:
        _check_id(node.id)
        if node.op == "const":
            _expect_args(node, 0)
            _forbid(node, slots=node.slots is not None, taps=bool(node.taps),
                    matrix=bool(node.matrix))
            if node.encoding not in ENCODINGS:
                raise SynthesisError(
                    f"node {node.id!r}: const needs an explicit encoding"
                )
            if node.level is None:
                raise SynthesisError(f"node {node.id!r}: const needs a level")
            if not 0 <= node.level <= n_max:
                raise SynthesisError(
                    f"node {node.id!r}: level {node.level} out of range"
                    f" 0..{n_max} for bits={spec.bits}"
                )
            define(node, node.id, node.encoding,
                   level=node.level if node.encoding == "rl" else None)
        elif node.op == "add":
            _forbid(node, level=node.level is not None,
                    encoding=node.encoding is not None,
                    slots=node.slots is not None, taps=bool(node.taps),
                    matrix=bool(node.matrix))
            if not node.args:
                raise SynthesisError(
                    f"node {node.id!r}: add needs at least one argument"
                )
            for ref in node.args:
                use(node, ref, "stream")
            define(node, node.id, "stream")
        elif node.op == "mul":
            _expect_args(node, 2)
            _forbid(node, level=node.level is not None,
                    encoding=node.encoding is not None,
                    slots=node.slots is not None, taps=bool(node.taps),
                    matrix=bool(node.matrix))
            use(node, node.args[0], "stream")
            use(node, node.args[1], "rl")
            define(node, node.id, "stream")
        elif node.op == "delay":
            _expect_args(node, 1)
            _forbid(node, level=node.level is not None,
                    encoding=node.encoding is not None, taps=bool(node.taps),
                    matrix=bool(node.matrix))
            if node.slots is None or not 0 <= node.slots <= n_max:
                raise SynthesisError(
                    f"node {node.id!r}: delay needs slots in 0..{n_max}"
                )
            ref = node.args[0]
            produced = env.get(ref)
            if produced is None:
                raise SynthesisError(
                    f"node {node.id!r}: argument {ref!r} does not reference"
                    " an earlier node"
                )
            use(node, ref, produced.encoding)
            level: Optional[int] = None
            if produced.encoding == "rl":
                assert produced.level is not None
                level = produced.level + node.slots
                if level > n_max:
                    raise SynthesisError(
                        f"node {node.id!r}: delaying RL value"
                        f" {produced.level} by {node.slots} slots exceeds"
                        f" the epoch ({n_max} slots)"
                    )
            define(node, node.id, produced.encoding, level=level)
        elif node.op == "tap":
            _expect_args(node, 1)
            _forbid(node, level=node.level is not None,
                    encoding=node.encoding is not None,
                    slots=node.slots is not None, matrix=bool(node.matrix))
            if not node.taps:
                raise SynthesisError(
                    f"node {node.id!r}: tap needs at least one tap weight"
                )
            if node.spacing < 1:
                raise SynthesisError(
                    f"node {node.id!r}: tap spacing must be >= 1"
                )
            for weight in node.taps:
                check_weight(node, weight, "tap weight")
            depth = (len(node.taps) - 1) * node.spacing
            if depth > n_max:
                raise SynthesisError(
                    f"node {node.id!r}: tap chain spans {depth} slots,"
                    f" exceeding the epoch ({n_max} slots)"
                )
            use(node, node.args[0], "stream")
            define(node, node.id, "stream")
        elif node.op == "matvec":
            _forbid(node, level=node.level is not None,
                    encoding=node.encoding is not None,
                    slots=node.slots is not None, taps=bool(node.taps))
            if not node.matrix:
                raise SynthesisError(
                    f"node {node.id!r}: matvec needs a non-empty matrix"
                )
            if not node.args:
                raise SynthesisError(
                    f"node {node.id!r}: matvec needs at least one argument"
                )
            width = len(node.args)
            for row_index, row in enumerate(node.matrix):
                if len(row) != width:
                    raise SynthesisError(
                        f"node {node.id!r}: matrix row {row_index} has"
                        f" {len(row)} weights for {width} argument(s)"
                    )
                for weight in row:
                    check_weight(node, weight, "matrix weight")
            for ref in node.args:
                use(node, ref, "stream")
            for row_index in range(len(node.matrix)):
                define(node, f"{node.id}.y{row_index}", "stream")
        else:  # pragma: no cover - OPS membership is checked in from_json
            raise SynthesisError(f"node {node.id!r}: unknown op {node.op!r}")

    if not spec.outputs:
        raise SynthesisError("spec outputs must be non-empty")
    seen_outputs = set()
    for ref in spec.outputs:
        if ref not in env:
            raise SynthesisError(f"output {ref!r} is not a produced value")
        if ref in seen_outputs:
            raise SynthesisError(f"output {ref!r} listed twice")
        seen_outputs.add(ref)
        env[ref].consumed = True

    dangling = [ref for ref, produced in env.items() if not produced.consumed]
    if dangling:
        raise SynthesisError(
            "values are neither consumed nor output (dangling):"
            f" {sorted(dangling)}"
        )
    return {ref: produced.encoding for ref, produced in env.items()}


def output_encodings(spec: DataflowSpec) -> Dict[str, str]:
    """``ref -> encoding`` for the spec's declared outputs."""
    env = validate_spec(spec)
    return {ref: env[ref] for ref in spec.outputs}


def dataflow_spec(
    name: str,
    bits: int,
    nodes: Sequence[Mapping[str, Any]],
    outputs: Sequence[str],
    slot_fs: Optional[int] = None,
) -> DataflowSpec:
    """Convenience constructor from plain dicts; validates the result."""
    spec = DataflowSpec(
        name=name,
        bits=bits,
        nodes=tuple(NodeSpec.from_json(dict(entry)) for entry in nodes),
        outputs=tuple(outputs),
        slot_fs=slot_fs,
    )
    validate_spec(spec)
    return spec
