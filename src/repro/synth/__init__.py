"""repro.synth — dataflow-spec → lint-clean U-SFQ netlist compiler.

The synthesis frontend compiles a JSON-serializable
:class:`~repro.synth.spec.DataflowSpec` (const/add/mul/delay/tap/matvec
nodes over the paper's two unary encodings) into a sealed, delay-
balanced netlist built from the shipped block library.  Compiled
circuits are ordinary :class:`~repro.pulsesim.netlist.Circuit` objects:
sealable, batchable, shardable, and servable exactly like hand-built
ones.

Layering note: :mod:`repro.synth.builder` is also imported by
``repro.verify`` and ``repro.analyze`` (the legality-helper hoist), so
nothing in this package may import those packages at module level —
the lint/analyze wrappers in :mod:`repro.synth.api` import lazily.
"""

from repro.synth.api import (
    analyze_program,
    compile_json,
    compile_spec,
    lint_program,
)
from repro.synth.balance import MARGIN_FS, required_slot_fs
from repro.synth.expand import PrimGraph, PrimNode, expand_spec
from repro.synth.generator import random_spec, spec_rng
from repro.synth.lower import CompiledProgram, OutputPort, SimOutcome
from repro.synth.opt import OptReport, optimize_graph
from repro.synth.refeval import OutputValue, evaluate, expected_levels
from repro.synth.spec import (
    DataflowSpec,
    NodeSpec,
    dataflow_spec,
    spec_from_json,
    validate_spec,
)

__all__ = [
    "CompiledProgram",
    "DataflowSpec",
    "MARGIN_FS",
    "NodeSpec",
    "OptReport",
    "OutputPort",
    "OutputValue",
    "PrimGraph",
    "PrimNode",
    "SimOutcome",
    "analyze_program",
    "compile_json",
    "compile_spec",
    "dataflow_spec",
    "evaluate",
    "expand_spec",
    "expected_levels",
    "lint_program",
    "optimize_graph",
    "random_spec",
    "required_slot_fs",
    "spec_from_json",
    "spec_rng",
    "validate_spec",
]
