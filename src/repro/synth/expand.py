"""Macro expansion: :class:`DataflowSpec` → primitive dataflow graph.

The lowering pipeline and the optimizer both operate on a flat graph of
five primitive operators; the ``tap`` (FIR chain) and ``matvec`` macros
are expanded here into delay/const/mul/add primitives.  Synthesized ids
for expansion-internal values use the ``__`` separator, which the spec
validator forbids in user ids, so expansion can never collide with a
user-declared node.

Primitive ops:

``sconst``  stream literal (``level`` pulses over the epoch)
``rconst``  Race-Logic literal (single pulse at slot ``level``)
``add``     stream superposition (>= 1 lanes)
``mul``     unipolar stream x RL product (``args = [stream, rl]``)
``delay``   shift by ``slots`` epoch slots (either encoding)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.synth.spec import DataflowSpec, validate_spec

PRIM_OPS = ("sconst", "rconst", "add", "mul", "delay")


@dataclass(frozen=True)
class PrimNode:
    """One primitive node; ``args`` reference earlier primitive ids."""

    id: str
    op: str
    args: Tuple[str, ...] = ()
    level: int = 0
    slots: int = 0

    @property
    def encoding(self) -> str:
        return "rl" if self.op == "rconst" else "stream"


@dataclass
class PrimGraph:
    """Flat primitive graph in topological (insertion) order.

    ``outputs`` maps each public value ref from the source spec to the
    primitive node that produces it; iteration order follows the spec's
    ``outputs`` declaration.
    """

    name: str
    bits: int
    nodes: Dict[str, PrimNode] = field(default_factory=dict)
    outputs: List[Tuple[str, str]] = field(default_factory=list)
    slot_fs: Optional[int] = None

    @property
    def n_max(self) -> int:
        return 2 ** self.bits

    def node_encoding(self, prim_id: str) -> str:
        node = self.nodes[prim_id]
        if node.op == "delay":
            return self.node_encoding(node.args[0])
        return node.encoding

    def emit(self, node: PrimNode) -> str:
        if node.id in self.nodes:
            raise SynthesisError(f"duplicate primitive id {node.id!r}")
        self.nodes[node.id] = node
        return node.id

    def replace_node(self, node: PrimNode) -> None:
        """Swap a node in place, preserving topological position."""
        if node.id not in self.nodes:
            raise SynthesisError(f"unknown primitive id {node.id!r}")
        self.nodes[node.id] = node


def expand_spec(spec: DataflowSpec) -> PrimGraph:
    """Validate a spec and expand its macros into a primitive graph."""
    validate_spec(spec)
    graph = PrimGraph(name=spec.name, bits=spec.bits, slot_fs=spec.slot_fs)
    # Public value ref -> primitive id carrying it.
    refs: Dict[str, str] = {}

    def tap_product(
        base: str, source: str, index: int, weight: int, spacing: int
    ) -> str:
        """One FIR lane: delayed copy of ``source`` times a static weight."""
        lane = source
        lag = index * spacing
        if lag:
            lane = graph.emit(
                PrimNode(f"{base}__d{index}", "delay", (lane,), slots=lag)
            )
        rl = graph.emit(
            PrimNode(f"{base}__c{index}", "rconst", level=weight)
        )
        return graph.emit(
            PrimNode(f"{base}__p{index}", "mul", (lane, rl))
        )

    for node in spec.nodes:
        if node.op == "const":
            op = "sconst" if node.encoding == "stream" else "rconst"
            assert node.level is not None
            refs[node.id] = graph.emit(
                PrimNode(node.id, op, level=node.level)
            )
        elif node.op == "add":
            args = tuple(refs[ref] for ref in node.args)
            refs[node.id] = graph.emit(PrimNode(node.id, "add", args))
        elif node.op == "mul":
            args = tuple(refs[ref] for ref in node.args)
            refs[node.id] = graph.emit(PrimNode(node.id, "mul", args))
        elif node.op == "delay":
            assert node.slots is not None
            refs[node.id] = graph.emit(
                PrimNode(node.id, "delay", (refs[node.args[0]],),
                         slots=node.slots)
            )
        elif node.op == "tap":
            source = refs[node.args[0]]
            lanes = tuple(
                tap_product(node.id, source, index, weight, node.spacing)
                for index, weight in enumerate(node.taps)
            )
            if len(lanes) == 1:
                # Single-tap chains reduce to their one product; keep the
                # public id by renaming the product node.
                prim = graph.nodes.pop(lanes[0])
                refs[node.id] = graph.emit(replace(prim, id=node.id))
            else:
                refs[node.id] = graph.emit(PrimNode(node.id, "add", lanes))
        elif node.op == "matvec":
            sources = tuple(refs[ref] for ref in node.args)
            for row_index, row in enumerate(node.matrix):
                lanes = []
                for col_index, weight in enumerate(row):
                    rl = graph.emit(
                        PrimNode(f"{node.id}__w{row_index}_{col_index}",
                                 "rconst", level=weight)
                    )
                    lanes.append(graph.emit(
                        PrimNode(f"{node.id}__p{row_index}_{col_index}",
                                 "mul", (sources[col_index], rl))
                    ))
                refs[f"{node.id}.y{row_index}"] = graph.emit(
                    PrimNode(f"{node.id}__y{row_index}", "add", tuple(lanes))
                )
        else:  # pragma: no cover - validate_spec rejects unknown ops
            raise SynthesisError(f"unknown op {node.op!r}")

    for ref in spec.outputs:
        graph.outputs.append((ref, refs[ref]))
    return graph
