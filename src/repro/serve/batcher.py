"""The micro-batching queue: concurrent requests become batch lanes.

Requests sharing a batch key (same op + canonical config) accumulate in
a *group*.  A group flushes — becoming one
:meth:`~repro.serve.engine.ComputeEngine.execute_group` dispatch — when
either trigger fires first:

* **size**: the group reaches ``max_batch`` lanes, or
* **time**: ``max_wait_us`` elapsed since the group's first request.

Both triggers funnel through one ``_flush`` that atomically pops the
group from the table, so the timer racing the size trigger (or two size
triggers racing across awaits) can never double-dispatch: whoever pops
the group owns it, the loser finds the table empty.  A request arriving
while a flush is in flight starts a *new* group with its own timer —
in-flight work never blocks admission of the next batch.

Deadlines are enforced at flush time: a request whose budget expired
while queued is ejected (its waiter gets :class:`DeadlineExceeded`, the
service maps that to HTTP 504) *before* lanes are allocated, so expired
work never occupies the simulator.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.serve.protocol import Request
from repro.trace import MetricsRegistry


class DeadlineExceeded(ReproError):
    """The request's deadline expired before execution; maps to HTTP 504."""


#: The execute hook: ``(op, config, operands_list) -> results`` awaitable.
ExecuteFn = Callable[[str, Dict[str, Any], List[Dict[str, Any]]],
                     Awaitable[List[Dict[str, Any]]]]

_Entry = Tuple[Request, "asyncio.Future[Dict[str, Any]]", Optional[float]]


class _Group:
    __slots__ = ("key", "entries", "timer")

    def __init__(self, key: str):
        self.key = key
        self.entries: List[_Entry] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Coalesces submissions into grouped execute dispatches."""

    def __init__(
        self,
        execute: ExecuteFn,
        max_batch: int = 64,
        max_wait_us: int = 2_000,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ConfigurationError(
                f"max_wait_us must be >= 0, got {max_wait_us}"
            )
        self._execute = execute
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._groups: Dict[str, _Group] = {}
        self._tasks: "set[asyncio.Task[None]]" = set()

    # -- submission --------------------------------------------------------------
    async def submit(
        self,
        request: Request,
        deadline_at: Optional[float] = None,
        coalesce: bool = True,
    ) -> Dict[str, Any]:
        """Queue one request; resolves with its result dict.

        ``deadline_at`` is an ``loop.time()`` instant; ``coalesce=False``
        (model ops, or a ``max_batch=1`` server) dispatches immediately
        as a group of one — same code path, zero queueing delay.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        entry: _Entry = (request, future, deadline_at)
        if not coalesce or self.max_batch == 1:
            group = _Group(request.batch_key() + "|solo")
            group.entries.append(entry)
            self._dispatch(group)
            return await future
        key = request.batch_key()
        group = self._groups.get(key)
        if group is None:
            group = _Group(key)
            self._groups[key] = group
            group.timer = loop.call_later(
                self.max_wait_us / 1e6, self._flush, key
            )
        group.entries.append(entry)
        if len(group.entries) >= self.max_batch:
            self._flush(key)
        return await future

    # -- flushing ----------------------------------------------------------------
    def _flush(self, key: str) -> None:
        """Pop-and-dispatch; safe under timer/size races (pop is atomic)."""
        group = self._groups.pop(key, None)
        if group is None:
            return  # the other trigger won the race
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        self._dispatch(group)

    def flush_all(self) -> None:
        """Flush every open group now (drain path)."""
        for key in list(self._groups):
            self._flush(key)

    @property
    def pending(self) -> int:
        """Requests queued in open (not yet dispatched) groups."""
        return sum(len(group.entries) for group in self._groups.values())

    def _dispatch(self, group: _Group) -> None:
        task = asyncio.ensure_future(self._run(group))
        # Keep a strong reference until done (asyncio only holds weakly).
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, group: _Group) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: List[_Entry] = []
        for request, future, deadline_at in group.entries:
            if future.cancelled():
                continue
            if deadline_at is not None and now >= deadline_at:
                self.metrics.counter("serve_deadline_evictions_total").inc()
                future.set_exception(
                    DeadlineExceeded(
                        f"deadline expired {1e3 * (now - deadline_at):.1f} ms "
                        "before the batch dispatched"
                    )
                )
                continue
            live.append((request, future, deadline_at))
        if not live:
            return
        self.metrics.counter("serve_batches_total").inc()
        self.metrics.counter("serve_batched_requests_total").inc(len(live))
        self.metrics.histogram("serve_batch_lanes").observe(len(live))
        first = live[0][0]
        try:
            results = await self._execute(
                first.op, first.config, [request.operands for request, _, _ in live]
            )
            if len(results) != len(live):
                raise ConfigurationError(
                    f"engine returned {len(results)} results for "
                    f"{len(live)} requests"
                )
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            for _, future, _ in live:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future, _), result in zip(live, results):
            if not future.done():
                future.set_result(result)
