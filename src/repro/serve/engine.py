"""The compute backend: validated requests in, canonical result dicts out.

One :class:`ComputeEngine` owns the compiled hardware instances.  DPU
circuits are built and sealed once per canonical config (an LRU keeps the
working set bounded) and every subsequent request for that config reuses
the sealed netlist — the serving layer's whole latency story depends on
never re-compiling on the hot path.

``dpu.dot`` executes *groups*: N requests become N lanes of one
:meth:`repro.core.dpu.DotProductUnit.run_counts_batch` dispatch, whose
lanes are bit-identical to per-request scalar runs (the differential
tests in ``tests/serve`` and the verify oracle hold this line).  Model
ops (``fir.*``, ``pe.*``) evaluate per request — they are closed-form
and cost microseconds, so lanes would buy nothing.

Everything here is synchronous and picklable-state-free so the same
class serves both execution tiers: in-process threads and
:class:`repro.parallel.ProcessActor` workers (each worker builds its own
engine; memoisation is per-process).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # heavy import kept off the module-load path
    from repro.core.dpu import DotProductUnit

from repro.digest import canonical_json
from repro.encoding.epoch import EpochSpec
from repro.errors import ConfigurationError

#: Compiled-circuit LRU size: distinct DPU configs kept warm per engine.
DEFAULT_MAX_CIRCUITS = 8


def _float(value: Any) -> float:
    """Plain python float (canonical JSON rejects numpy scalars)."""
    return float(value)


class ComputeEngine:
    """Executes request groups against memoised hardware instances."""

    def __init__(self, max_circuits: int = DEFAULT_MAX_CIRCUITS):
        if max_circuits < 1:
            raise ConfigurationError(
                f"max_circuits must be >= 1, got {max_circuits}"
            )
        self._max_circuits = max_circuits
        self._dpus: "OrderedDict[str, DotProductUnit]" = OrderedDict()

    # -- compiled-instance memoisation ----------------------------------------
    def _dpu(self, config: Dict[str, Any]) -> "DotProductUnit":
        key = canonical_json(config)
        unit = self._dpus.get(key)
        if unit is not None:
            self._dpus.move_to_end(key)
            return unit
        from repro.core.dpu import DotProductUnit

        epoch = EpochSpec(bits=config["bits"], slot_fs=config["slot_fs"])
        unit = DotProductUnit(
            epoch, length=config["length"], bipolar=config["bipolar"]
        )
        self._dpus[key] = unit
        while len(self._dpus) > self._max_circuits:
            self._dpus.popitem(last=False)
        return unit

    def warm(self, op: str, config: Dict[str, Any]) -> bool:
        """Pre-compile the instance a config needs (benchmark warmup)."""
        if op == "dpu.dot":
            self._dpu(config)
        return True

    # -- execution --------------------------------------------------------------
    def execute_group(
        self,
        op: str,
        config: Dict[str, Any],
        operands_list: List[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Run every request of one batch group; results in request order.

        All requests in a group share ``op`` and ``config`` (that is what
        a batch key means).  For ``dpu.dot`` the group is one coalesced
        batch-kernel dispatch; for model ops the group always has one
        entry and evaluates directly.
        """
        if not operands_list:
            return []
        if op == "dpu.dot":
            return self._run_dpu_dot(config, operands_list)
        if op in ("fir.unary", "fir.binary"):
            return [
                self._run_fir(op, config, operands)
                for operands in operands_list
            ]
        if op == "pe.mac":
            return [
                self._run_pe_mac(config, operands)
                for operands in operands_list
            ]
        if op == "pe.matmul":
            return [
                self._run_pe_matmul(config, operands)
                for operands in operands_list
            ]
        raise ConfigurationError(f"engine cannot execute op {op!r}")

    def _run_dpu_dot(
        self, config: Dict[str, Any], operands_list: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        unit = self._dpu(config)
        a_rows = [operands["a_slots"] for operands in operands_list]
        b_rows = [operands["b_counts"] for operands in operands_list]
        counts = unit.run_counts_batch(a_rows, b_rows)
        return [{"count": int(count)} for count in counts]

    def _run_fir(
        self, op: str, config: Dict[str, Any], operands: Dict[str, Any]
    ) -> Dict[str, Any]:
        fir: Any
        if op == "fir.unary":
            from repro.core.fir import UnaryFirFilter

            epoch = EpochSpec(bits=config["bits"], slot_fs=config["slot_fs"])
            fir = UnaryFirFilter(epoch, config["coefficients"], seed=0)
        else:
            from repro.core.fir import BinaryFirFilter

            fir = BinaryFirFilter(config["bits"], config["coefficients"], seed=0)
        outputs = fir.process(operands["samples"])
        return {"outputs": [_float(value) for value in outputs]}

    def _run_pe_mac(
        self, config: Dict[str, Any], operands: Dict[str, Any]
    ) -> Dict[str, Any]:
        from repro.core.pe import PEModel

        epoch = EpochSpec(bits=config["bits"], slot_fs=config["slot_fs"])
        in1, in2, in3 = operands["values"]
        return {"value": _float(PEModel(epoch).mac(in1, in2, in3))}

    def _run_pe_matmul(
        self, config: Dict[str, Any], operands: Dict[str, Any]
    ) -> Dict[str, Any]:
        import numpy as np

        from repro.core.pe import PEArray

        epoch = EpochSpec(bits=config["bits"], slot_fs=config["slot_fs"])
        a = np.asarray(operands["a"], dtype=float)
        b = np.asarray(operands["b"], dtype=float)
        array = PEArray(epoch, rows=a.shape[0], cols=b.shape[1])
        product = array.matmul(a, b)
        return {
            "values": [
                [_float(value) for value in row] for row in product
            ]
        }
