"""Request model for the serving layer.

A request is JSON with an ``op`` selecting the accelerator operation, a
``config`` describing the (compile-once) hardware instance, and operand
fields.  Parsing is strict — unknown fields, wrong types, and
out-of-range operands are rejected with a :class:`ProtocolError` before
any simulation work is queued, so malformed traffic cannot occupy batch
lanes.

Two derived keys drive the serving machinery:

* :meth:`Request.batch_key` — requests with equal batch keys execute as
  lanes of **one** batch-kernel dispatch.  For ``dpu.dot`` that is the
  canonical config (same circuit, any operands); model-evaluated ops
  (``fir.*``, ``pe.*``) are cheap enough that each request is its own
  group of one.
* :meth:`Request.cache_key` — content address of the response: the
  source-tree digest crossed with the canonical JSON of ``op`` +
  ``config`` + operands.  ``deadline_ms`` is *excluded*: how long a
  client is willing to wait never changes the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.digest import canonical_json, payload_digest
from repro.errors import ReproError

#: Validation ceilings: generous for experiments, small enough that one
#: request cannot monopolise the service.
MAX_LENGTH = 64  #: DPU lanes per request
MAX_BITS = 10  #: epoch resolution (n_max = 1024)
MAX_SAMPLES = 4096  #: FIR sample-stream length
MAX_TAPS = 64  #: FIR coefficient count
MAX_MATMUL_DIM = 32  #: PE-array matmul side length

#: The ops this service understands, in documentation order.
OPS = ("dpu.dot", "fir.unary", "fir.binary", "pe.mac", "pe.matmul")

#: Ops whose requests coalesce onto lanes of one batch dispatch.
BATCHABLE_OPS = frozenset({"dpu.dot"})


class ProtocolError(ReproError):
    """A request failed validation; maps to HTTP 400."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _get_int(obj: Dict[str, Any], key: str, lo: int, hi: int) -> int:
    value = obj.get(key)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"'{key}' must be an integer",
    )
    _require(lo <= value <= hi, f"'{key}' must be in [{lo}, {hi}], got {value}")
    return value


def _get_bool(obj: Dict[str, Any], key: str, default: bool) -> bool:
    value = obj.get(key, default)
    _require(isinstance(value, bool), f"'{key}' must be a boolean")
    return value


def _get_number_list(
    obj: Dict[str, Any], key: str, max_len: int, lo: float, hi: float
) -> List[float]:
    value = obj.get(key)
    _require(isinstance(value, list), f"'{key}' must be a list")
    _require(
        1 <= len(value) <= max_len,
        f"'{key}' must have 1..{max_len} entries, got {len(value)}",
    )
    out: List[float] = []
    for index, item in enumerate(value):
        _require(
            isinstance(item, (int, float)) and not isinstance(item, bool),
            f"'{key}[{index}]' must be a number",
        )
        _require(
            lo <= item <= hi,
            f"'{key}[{index}]' must be in [{lo}, {hi}], got {item}",
        )
        out.append(float(item))
    return out


def _get_int_list(
    obj: Dict[str, Any], key: str, exact_len: int, lo: int, hi: int
) -> List[int]:
    value = obj.get(key)
    _require(isinstance(value, list), f"'{key}' must be a list")
    _require(
        len(value) == exact_len,
        f"'{key}' must have exactly {exact_len} entries, got "
        f"{len(value) if isinstance(value, list) else '?'}",
    )
    out: List[int] = []
    for index, item in enumerate(value):
        _require(
            isinstance(item, int) and not isinstance(item, bool),
            f"'{key}[{index}]' must be an integer",
        )
        _require(
            lo <= item <= hi,
            f"'{key}[{index}]' must be in [{lo}, {hi}], got {item}",
        )
        out.append(item)
    return out


@dataclass(frozen=True)
class Request:
    """One validated request, ready for batching/caching/execution.

    ``config`` and ``operands`` are canonicalised dicts (sorted keys at
    serialisation time via :func:`repro.digest.canonical_json`), so equal
    requests always produce equal keys and byte-identical responses.
    """

    op: str
    config: Dict[str, Any]
    operands: Dict[str, Any]
    deadline_ms: Optional[float] = field(default=None, compare=False)

    def batch_key(self) -> str:
        if self.op in BATCHABLE_OPS:
            return f"{self.op}|{canonical_json(self.config)}"
        # Non-batchable ops never share a dispatch: key on identity.
        return f"{self.op}|{id(self)}"

    def cache_key(self, source_digest: str) -> str:
        body = canonical_json(
            {"config": self.config, "op": self.op, "operands": self.operands}
        )
        return payload_digest(source_digest, body)


def _parse_epoch_config(config: Dict[str, Any]) -> Tuple[int, int]:
    bits = _get_int(config, "bits", 1, MAX_BITS)
    slot_fs = _get_int(config, "slot_fs", 1_000, 10_000_000)
    return bits, slot_fs


def _parse_dpu_dot(payload: Dict[str, Any]) -> Request:
    config_in = payload.get("config")
    _require(isinstance(config_in, dict), "'config' must be an object")
    bits, slot_fs = _parse_epoch_config(config_in)
    length = _get_int(config_in, "length", 1, MAX_LENGTH)
    bipolar = _get_bool(config_in, "bipolar", False)
    n_max = 1 << bits
    # a operands are race-logic slots (n_max == "no pulse"), b operands
    # are pulse counts — the exact domain of DotProductUnit.run_counts.
    a_slots = _get_int_list(payload, "a_slots", length, 0, n_max)
    b_counts = _get_int_list(payload, "b_counts", length, 0, n_max)
    config = {
        "bipolar": bipolar,
        "bits": bits,
        "length": length,
        "slot_fs": slot_fs,
    }
    operands = {"a_slots": a_slots, "b_counts": b_counts}
    return Request(op="dpu.dot", config=config, operands=operands)


def _parse_fir(payload: Dict[str, Any], op: str) -> Request:
    config_in = payload.get("config")
    _require(isinstance(config_in, dict), "'config' must be an object")
    bits, slot_fs = _parse_epoch_config(config_in)
    coefficients = _get_number_list(
        config_in, "coefficients", MAX_TAPS, -1.0, 1.0
    )
    samples = _get_number_list(payload, "samples", MAX_SAMPLES, -1.0, 1.0)
    config = {
        "bits": bits,
        "coefficients": coefficients,
        "slot_fs": slot_fs,
    }
    return Request(op=op, config=config, operands={"samples": samples})


def _parse_pe_mac(payload: Dict[str, Any]) -> Request:
    config_in = payload.get("config")
    _require(isinstance(config_in, dict), "'config' must be an object")
    bits, slot_fs = _parse_epoch_config(config_in)
    values = _get_number_list(payload, "values", 3, 0.0, 1.0)
    _require(len(values) == 3, "'values' must be [in1, in2, in3]")
    config = {"bits": bits, "slot_fs": slot_fs}
    return Request(op="pe.mac", config=config, operands={"values": values})


def _parse_pe_matmul(payload: Dict[str, Any]) -> Request:
    config_in = payload.get("config")
    _require(isinstance(config_in, dict), "'config' must be an object")
    bits, slot_fs = _parse_epoch_config(config_in)

    def matrix(key: str) -> List[List[float]]:
        value = payload.get(key)
        _require(isinstance(value, list) and value, f"'{key}' must be a "
                 "non-empty list of rows")
        _require(
            len(value) <= MAX_MATMUL_DIM,
            f"'{key}' must have at most {MAX_MATMUL_DIM} rows",
        )
        width = None
        rows: List[List[float]] = []
        for r, row in enumerate(value):
            _require(isinstance(row, list), f"'{key}[{r}]' must be a list")
            if width is None:
                width = len(row)
                _require(
                    1 <= width <= MAX_MATMUL_DIM,
                    f"'{key}' rows must have 1..{MAX_MATMUL_DIM} entries",
                )
            _require(
                len(row) == width, f"'{key}' rows must all have equal length"
            )
            for c, item in enumerate(row):
                _require(
                    isinstance(item, (int, float))
                    and not isinstance(item, bool),
                    f"'{key}[{r}][{c}]' must be a number",
                )
                _require(
                    0.0 <= item <= 1.0,
                    f"'{key}[{r}][{c}]' must be in [0, 1]",
                )
            rows.append([float(item) for item in row])
        return rows

    a = matrix("a")
    b = matrix("b")
    _require(
        len(a[0]) == len(b),
        f"inner dimensions differ: a is {len(a)}x{len(a[0])}, "
        f"b is {len(b)}x{len(b[0])}",
    )
    config = {"bits": bits, "slot_fs": slot_fs}
    return Request(op="pe.matmul", config=config, operands={"a": a, "b": b})


_PARSERS = {
    "dpu.dot": _parse_dpu_dot,
    "fir.unary": lambda payload: _parse_fir(payload, "fir.unary"),
    "fir.binary": lambda payload: _parse_fir(payload, "fir.binary"),
    "pe.mac": _parse_pe_mac,
    "pe.matmul": _parse_pe_matmul,
}


def parse_request(payload: Any) -> Request:
    """Validate one JSON request body into a :class:`Request`.

    Raises :class:`ProtocolError` (→ HTTP 400) on any malformed input.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    op = payload.get("op")
    _require(isinstance(op, str), "'op' must be a string")
    parser = _PARSERS.get(op)
    if parser is None:
        raise ProtocolError(
            f"unknown op {op!r}; supported: {', '.join(OPS)}"
        )
    deadline_ms: Optional[float] = None
    if "deadline_ms" in payload:
        raw = payload["deadline_ms"]
        _require(
            isinstance(raw, (int, float)) and not isinstance(raw, bool),
            "'deadline_ms' must be a number",
        )
        _require(raw > 0, f"'deadline_ms' must be positive, got {raw}")
        deadline_ms = float(raw)
    request = parser(payload)
    if deadline_ms is not None:
        object.__setattr__(request, "deadline_ms", deadline_ms)
    return request
