"""``python -m repro.serve`` — same entry point as ``usfq-serve``."""

from repro.serve.cli import main

raise SystemExit(main())
