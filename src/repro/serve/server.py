"""The asyncio HTTP front end and the service object behind it.

:class:`ServeService` is transport-independent: ``handle(method, path,
body)`` returns ``(status, content_type, body_bytes, headers)`` and all
the serving policy lives there — admission control, deadline budgets,
cache lookup, batcher submission, drain state, metrics.  The HTTP layer
below it is a deliberately minimal stdlib HTTP/1.1 server (request line +
headers + Content-Length body, keep-alive) because the whole point of
this subsystem is *no new dependencies*.

Request lifecycle for ``POST /v1/compute``::

    admission (429 if the house is full, 503 if draining)
      -> parse + validate              (400 on bad input)
      -> cache lookup                  (hit: return stored bytes)
      -> micro-batcher                 (coalesce, deadline-evict: 504)
      -> execution tier                (worker crash: restart + retry)
      -> render canonical JSON, store in cache, respond

Responses are rendered with :func:`repro.digest.canonical_json`, so a
batched, a solo, and a cached answer to the same request are one and the
same byte string — the property the differential tests pin down.
"""

from __future__ import annotations

import asyncio
import json
import signal
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.digest import cached_source_digest, canonical_json
from repro.errors import ConfigurationError
from repro.parallel import WorkerError
from repro.serve.batcher import DeadlineExceeded, MicroBatcher
from repro.serve.cache import ResponseCache
from repro.serve.prometheus import render_prometheus
from repro.serve.protocol import BATCHABLE_OPS, ProtocolError, parse_request
from repro.serve.workers import ExecutionTier
from repro.trace import MetricsRegistry

#: Largest accepted request body; protects the parse path, not the sim.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Latency-histogram bucket bounds in milliseconds.
LATENCY_BOUNDS_MS = (0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

_JSON = "application/json"
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServeConfig:
    """Everything a server instance needs, CLI-mappable field by field."""

    host: str = "127.0.0.1"
    port: int = 8471
    max_batch: int = 64  #: lanes per coalesced dispatch (1 = no coalescing)
    max_wait_us: int = 2_000  #: batch window after the first request
    workers: int = 0  #: 0 = inline threads; N = ProcessActor pool
    max_pending: int = 256  #: admission ceiling (in-flight requests)
    cache_entries: int = 4096  #: response-cache capacity (0 disables)
    drain_grace_s: float = 10.0  #: max wait for in-flight work on shutdown
    latency_window: int = 8192  #: samples kept for /stats percentiles

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.latency_window < 1:
            raise ConfigurationError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    rank = max(0, min(len(samples) - 1, round(fraction * (len(samples) - 1))))
    return samples[rank]


def _latency_summary(samples: List[float]) -> Dict[str, Any]:
    if not samples:
        return {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None}
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50), 4),
        "p95_ms": round(_percentile(ordered, 0.95), 4),
        "p99_ms": round(_percentile(ordered, 0.99), 4),
    }


class ServeService:
    """Serving policy: admission, caching, batching, draining, metrics."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = MetricsRegistry()
        self.cache = ResponseCache(config.cache_entries)
        self.tier = ExecutionTier(config.workers, metrics=self.metrics)
        self.batcher = MicroBatcher(
            self.tier.execute,
            max_batch=config.max_batch,
            max_wait_us=config.max_wait_us,
            metrics=self.metrics,
        )
        self.source_digest = cached_source_digest()
        self.draining = False
        self.in_flight = 0
        self._start_time: Optional[float] = None
        self._idle = asyncio.Event()
        self._idle.set()
        #: (latency_ms, was_cache_hit) samples for /stats percentiles.
        self._latencies: Deque[Tuple[float, bool]] = deque(
            maxlen=config.latency_window
        )

    # -- plumbing ----------------------------------------------------------------
    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    def _uptime_s(self) -> float:
        if self._start_time is None:
            return 0.0
        return self._now() - self._start_time

    @staticmethod
    def _json_response(
        status: int, payload: Dict[str, Any]
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        return status, _JSON, canonical_json(payload).encode(), {}

    def _error(
        self, status: int, message: str, **headers: str
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        body = canonical_json({"error": message, "ok": False}).encode()
        return status, _JSON, body, dict(headers)

    # -- endpoints ---------------------------------------------------------------
    async def handle(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        """Route one request; never raises (failures become status codes)."""
        if self._start_time is None:
            self._start_time = self._now()
        if path == "/healthz" and method == "GET":
            status = "draining" if self.draining else "serving"
            return self._json_response(200, {"ok": True, "status": status})
        if path == "/metrics" and method == "GET":
            self._export_gauges()
            text = render_prometheus(self.metrics.to_dict())
            return 200, "text/plain; version=0.0.4", text.encode(), {}
        if path == "/stats" and method == "GET":
            return self._json_response(200, self.stats())
        if path == "/v1/compute":
            if method != "POST":
                return self._error(405, "use POST for /v1/compute")
            return await self._handle_compute(body)
        return self._error(404, f"no route for {method} {path}")

    def _export_gauges(self) -> None:
        self.metrics.gauge("serve_in_flight").set(self.in_flight)
        self.metrics.gauge("serve_cache_entries").set(len(self.cache))

    def stats(self) -> Dict[str, Any]:
        all_samples = [latency for latency, _ in self._latencies]
        cached = [latency for latency, hit in self._latencies if hit]
        uncached = [latency for latency, hit in self._latencies if not hit]
        return {
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            },
            "config": {
                "max_batch": self.config.max_batch,
                "max_pending": self.config.max_pending,
                "max_wait_us": self.config.max_wait_us,
                "workers": self.config.workers,
            },
            "draining": self.draining,
            "in_flight": self.in_flight,
            "latency": {
                "all": _latency_summary(all_samples),
                "cached": _latency_summary(cached),
                "uncached": _latency_summary(uncached),
            },
            "source_digest": self.source_digest,
            "uptime_s": round(self._uptime_s(), 3),
        }

    # -- the compute path --------------------------------------------------------
    async def _handle_compute(
        self, body: bytes
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        if self.draining:
            self.metrics.counter("serve_draining_rejected_total").inc()
            return self._error(
                503, "server is draining", **{"Retry-After": "1"}
            )
        if self.in_flight >= self.config.max_pending:
            self.metrics.counter("serve_rejected_total").inc()
            return self._error(
                429,
                f"admission queue full ({self.config.max_pending} in flight)",
                **{"Retry-After": "0.05"},
            )
        self.metrics.counter("serve_requests_total").inc()
        started = self._now()
        try:
            payload = json.loads(body)
        except (ValueError, UnicodeDecodeError):
            return self._error(400, "request body is not valid JSON")
        try:
            request = parse_request(payload)
        except ProtocolError as exc:
            self.metrics.counter("serve_protocol_errors_total").inc()
            return self._error(400, str(exc))

        key = request.cache_key(self.source_digest)
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.counter("serve_cache_hits_total").inc()
            self._record_latency(started, hit=True)
            return 200, _JSON, cached, {"X-Cache": "hit"}
        self.metrics.counter("serve_cache_misses_total").inc()

        deadline_at = None
        if request.deadline_ms is not None:
            deadline_at = started + request.deadline_ms / 1e3
        self.in_flight += 1
        self._idle.clear()
        try:
            result = await self.batcher.submit(
                request,
                deadline_at=deadline_at,
                coalesce=request.op in BATCHABLE_OPS,
            )
        except DeadlineExceeded as exc:
            return self._error(504, str(exc))
        except (ProtocolError, ConfigurationError) as exc:
            return self._error(400, str(exc))
        except WorkerError as exc:
            self.metrics.counter("serve_execution_errors_total").inc()
            return self._error(500, f"execution failed: {exc}")
        except Exception as exc:  # noqa: BLE001 - the front door never raises
            self.metrics.counter("serve_execution_errors_total").inc()
            return self._error(500, f"execution failed: {exc!r}")
        finally:
            self.in_flight -= 1
            if self.in_flight == 0:
                self._idle.set()
        response = canonical_json(
            {"ok": True, "op": request.op, "result": result}
        ).encode()
        self.cache.put(key, response)
        self._record_latency(started, hit=False)
        return 200, _JSON, response, {"X-Cache": "miss"}

    def _record_latency(self, started: float, hit: bool) -> None:
        latency_ms = (self._now() - started) * 1e3
        self._latencies.append((latency_ms, hit))
        self.metrics.histogram(
            "serve_request_latency_ms", bounds=LATENCY_BOUNDS_MS
        ).observe(latency_ms)

    # -- draining ----------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse new compute work; flush open batches immediately."""
        if not self.draining:
            self.draining = True
            self.batcher.flush_all()

    async def drained(self) -> None:
        """Resolve when in-flight work finishes (or the grace period ends)."""
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_grace_s
            )
        except asyncio.TimeoutError:
            pass  # grace exhausted; the caller shuts down regardless

    def close(self) -> None:
        self.tier.close()


# -- the HTTP/1.1 layer ------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request off the stream; None on EOF/garbage/overflow."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        ConnectionResetError,
    ):
        return None
    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, _version = request_line.split(" ", 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        return None
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
    return method, path, headers, body


def _render_response(
    status: int, content_type: str, body: bytes, headers: Dict[str, str],
    keep_alive: bool,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _handle_connection(
    service: ServeService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            parsed = await _read_request(reader)
            if parsed is None:
                break
            method, path, headers, body = parsed
            keep_alive = headers.get("connection", "keep-alive") != "close"
            status, content_type, payload, extra = await service.handle(
                method, path, body
            )
            writer.write(
                _render_response(status, content_type, payload, extra, keep_alive)
            )
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_http_server(
    service: ServeService, host: str, port: int
) -> "asyncio.base_events.Server":
    """Bind the HTTP front end; ``port=0`` binds an ephemeral port."""

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host=host, port=port, limit=MAX_BODY_BYTES
    )


def bound_port(server: "asyncio.base_events.Server") -> int:
    return int(server.sockets[0].getsockname()[1])


async def serve_forever(
    config: ServeConfig,
    ready: Optional[Callable[[ServeService, int], None]] = None,
    install_signals: bool = True,
    stop_event: Optional[asyncio.Event] = None,
) -> None:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    ``ready(service, port)`` fires once the socket is bound — the CLI
    prints the listening line from it, tests capture the port.  Passing
    ``stop_event`` gives embedders (the test harness) a programmatic
    SIGTERM: setting it triggers the same drain path.
    """
    service = ServeService(config)
    server = await start_http_server(service, config.host, config.port)
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or exotic platform: rely on stop()
    if ready is not None:
        ready(service, bound_port(server))
    try:
        await stop.wait()
    finally:
        service.begin_drain()
        await service.drained()
        server.close()
        await server.wait_closed()
        service.close()
