"""repro.serve — the U-SFQ accelerator as an async, request-batched service.

The paper's hardware thesis is that pulse-streams amortise: one epoch of
the DPU costs the same whether one or sixty-four dot products ride on it,
because lanes share the event stream.  This package is the software
restatement of that claim.  A long-running asyncio service accepts
dot-product / FIR / PE requests over HTTP/JSON, and a **micro-batching
queue** coalesces concurrent requests onto lanes of a single
:class:`repro.pulsesim.batch.BatchSimulator` dispatch — so the serving
throughput curve reproduces the kernel-level coalescing curve.

Layers (each importable and testable without the one above):

* :mod:`~repro.serve.protocol` — request parsing/validation, canonical
  cache keys, batch-group keys.
* :mod:`~repro.serve.engine` — the compute backend: compiled-circuit
  memoisation, ``run_counts_batch`` execution, model-based FIR/PE ops.
* :mod:`~repro.serve.cache` — content-addressed response cache (keys
  include the source-tree digest, so stale code never serves).
* :mod:`~repro.serve.batcher` — the micro-batching queue: flush on size
  or timer, per-request deadline eviction.
* :mod:`~repro.serve.workers` — execution tier: inline threads or a pool
  of :class:`repro.parallel.ProcessActor` workers with crash restart.
* :mod:`~repro.serve.server` — minimal stdlib HTTP/1.1 front end, the
  admission queue, draining, and the ``/metrics`` ``/stats`` ``/healthz``
  endpoints.
* :mod:`~repro.serve.testing` — in-process server harness for tests and
  benchmarks.
"""

from repro.serve.batcher import DeadlineExceeded, MicroBatcher
from repro.serve.cache import ResponseCache
from repro.serve.engine import ComputeEngine
from repro.serve.protocol import ProtocolError, Request, parse_request
from repro.serve.server import ServeConfig, ServeService, serve_forever
from repro.serve.testing import ServerHandle, start_server_thread

__all__ = [
    "ComputeEngine",
    "DeadlineExceeded",
    "MicroBatcher",
    "ProtocolError",
    "Request",
    "ResponseCache",
    "ServeConfig",
    "ServeService",
    "ServerHandle",
    "parse_request",
    "serve_forever",
    "start_server_thread",
]
